// wan_pricing: run the library on *your own* WAN.
//
// Reads a topology file (and optionally a workload file) in the formats of
// net/topology_io.h and workload/workload_io.h, prints the candidate path
// sets and their prices, and runs Metis over the cycle.  When no files are
// given it writes commented sample files next to the binary and uses them,
// so the example doubles as format documentation.
//
//   $ ./wan_pricing --topology my_wan.txt --workload my_cycle.txt
#include <fstream>
#include <iostream>

#include "core/metis.h"
#include "net/paths.h"
#include "net/topology_io.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generator.h"
#include "workload/workload_io.h"

namespace {

void write_samples(const std::string& topo_path, const std::string& load_path) {
  std::ofstream topo(topo_path);
  topo << "# Sample WAN: 4 data centers, ring + one chord.\n"
          "# link <a> <b> <price-per-unit> [capacity-units]\n"
          "nodes 4\n"
          "link 0 1 1.0\n"
          "link 1 2 1.5\n"
          "link 2 3 1.0\n"
          "link 3 0 2.0\n"
          "link 0 2 2.5\n";
  std::ofstream load(load_path);
  load << "# Sample billing cycle: 6 slots.\n"
          "# request <src> <dst> <start> <end> <rate-units> <value>\n"
          "slots 6\n"
          "request 0 2 0 3 0.6 4.5\n"
          "request 1 3 1 4 0.4 3.0\n"
          "request 0 3 2 5 0.3 0.4\n"
          "request 2 0 0 1 0.8 3.5\n"
          "request 3 1 3 5 0.5 0.6\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  std::string topo_path = args.get("topology", "");
  std::string load_path = args.get("workload", "");
  const int theta = args.get_int("theta", 16);
  if (args.help_requested()) {
    std::cout << args.usage("wan_pricing: Metis over a user-supplied WAN");
    return 0;
  }
  args.finish();

  if (topo_path.empty() || load_path.empty()) {
    topo_path = "sample_wan.txt";
    load_path = "sample_cycle.txt";
    write_samples(topo_path, load_path);
    std::cout << "No files given; wrote " << topo_path << " and " << load_path
              << " as editable samples.\n\n";
  }

  const net::Topology topo = net::read_topology_file(topo_path);
  const workload::Workload cycle = workload::read_workload_file(load_path);
  core::InstanceConfig config;
  config.num_slots = cycle.num_slots;
  const core::SpmInstance instance(topo, cycle.requests, config);

  // Path sets and prices per distinct DC pair in the workload.
  std::cout << "Candidate paths (Yen's algorithm, price metric):\n";
  TablePrinter paths({"request", "route", "path price"});
  for (int i = 0; i < instance.num_requests(); ++i) {
    for (int j = 0; j < instance.num_paths(i); ++j) {
      std::string route = "DC" + std::to_string(instance.request(i).src);
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        route += "->DC" + std::to_string(instance.topology().edge(e).dst);
      }
      paths.add_row({static_cast<long long>(i), route,
                     net::path_weight(instance.topology(), instance.paths(i)[j],
                                      net::PathMetric::Price)});
    }
  }
  paths.print(std::cout);

  core::MetisOptions options;
  options.theta = theta;
  Rng rng(1);
  const core::MetisResult result = core::run_metis(instance, rng, options);
  std::cout << "Metis decision: accepted " << result.best.accepted << "/"
            << instance.num_requests() << ", revenue " << result.best.revenue
            << ", cost " << result.best.cost << ", profit "
            << result.best.profit << '\n';
  TablePrinter purchase({"edge", "units", "price", "cost"});
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    if (result.plan.units[e] == 0) continue;
    const auto& edge = instance.topology().edge(e);
    purchase.add_row({std::string("DC") + std::to_string(edge.src) + "->DC" +
                          std::to_string(edge.dst),
                      static_cast<long long>(result.plan.units[e]), edge.price,
                      edge.price * result.plan.units[e]});
  }
  std::cout << "\nBandwidth purchase plan:\n";
  purchase.print(std::cout);
  return 0;
}
