// multi_cycle: a year in the life of a geo-distributed cloud.
//
// ISPs bill per cycle; the figures in the paper decide one cycle in
// isolation.  Here the BillingCycleSimulator plays several consecutive
// cycles with compounding demand growth and accounts the cumulative profit
// of three provider policies on identical bid books — showing how the
// per-cycle gaps of Fig. 3/5 compound into the yearly bottom line.
//
//   $ ./multi_cycle --cycles 6 --requests 120 --growth 0.15
//
// Pass --telemetry-json <path> to dump the run's telemetry registry
// (per-phase spans, decide-latency histogram) as JSON.
#include <fstream>
#include <iostream>

#include "sim/simulator.h"
#include "util/args.h"
#include "util/table.h"
#include "util/telemetry.h"

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  sim::SimulationConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = args.get_int("requests", 120);
  config.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  config.cycles = args.get_int("cycles", 6);
  config.demand_growth = args.get_double("growth", 0.15);
  config.checkpoint_every = args.get_int("checkpoint-every", 0);
  config.checkpoint_path = args.get("checkpoint-path", "");
  config.resume_path = args.get("resume", "");
  const std::string telemetry_path = args.get("telemetry-json", "");
  if (args.help_requested()) {
    std::cout << args.usage(
        "multi_cycle: cumulative profit over billing cycles; "
        "--checkpoint-every/--checkpoint-path snapshot the cycle grid, "
        "--resume restarts from a snapshot");
    return 0;
  }
  args.finish();

  const sim::BillingCycleSimulator simulator(config);
  const auto outcomes = simulator.run(sim::standard_policies());

  std::cout << "Billing cycles: " << config.cycles << ", demand growth "
            << config.demand_growth * 100 << "% per cycle, starting at "
            << config.base.num_requests << " requests\n\n";

  TablePrinter per_cycle({"cycle", "offered", "policy", "accepted", "revenue",
                          "cost", "profit", "ms"});
  for (int cycle = 0; cycle < config.cycles; ++cycle) {
    for (const auto& outcome : outcomes) {
      const auto& co = outcome.cycles.at(cycle);
      per_cycle.add_row({static_cast<long long>(cycle),
                         static_cast<long long>(co.offered_requests),
                         outcome.policy,
                         static_cast<long long>(co.result.accepted),
                         co.result.revenue, co.result.cost, co.result.profit,
                         co.decide_ms});
    }
  }
  per_cycle.print(std::cout);

  TablePrinter totals({"policy", "total profit", "total revenue", "total cost",
                       "accepted/offered"});
  for (const auto& outcome : outcomes) {
    totals.add_row({outcome.policy, outcome.total_profit, outcome.total_revenue,
                    outcome.total_cost,
                    std::to_string(outcome.total_accepted) + "/" +
                        std::to_string(outcome.total_offered)});
  }
  std::cout << "--- cumulative over the year ---\n";
  totals.print(std::cout);

  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    telemetry::Registry::global().write_json(out);
    out << '\n';
  }
  return 0;
}
