// Online admission: the streaming counterpart of quickstart.
//
//   1. Draw a within-cycle arrival stream (timestamped requests).
//   2. Queue arrivals into batches (count and/or deadline triggered).
//   3. Re-decide each batch with incremental Metis: accepted requests stay
//      accepted, and the LP warm-starts from the previous batch's basis.
//   4. Compare the committed decision against the offline oracle that saw
//      the whole bid book at once.
//
//   $ ./online_admission --requests 60 --batch 8 --delay 0.5 --seed 1
#include <iostream>

#include "sim/online.h"
#include "sim/validate.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  sim::OnlineConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = args.get_int("requests", 60);
  config.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.batch_size = args.get_int("batch", 8);
  config.max_batch_delay = args.get_double("delay", 0.5);
  config.checkpoint_every = args.get_int("checkpoint-every", 0);
  config.checkpoint_path = args.get("checkpoint-path", "");
  config.resume_path = args.get("resume", "");
  if (args.help_requested()) {
    std::cout << args.usage(
        "online_admission: stream one cycle's requests through batched "
        "incremental Metis re-decides; --checkpoint-every/--checkpoint-path "
        "write periodic snapshots, --resume restarts from one");
    return 0;
  }
  args.finish();

  const sim::OnlineAdmissionSimulator simulator(config);
  const auto stream = simulator.arrivals();
  std::cout << "Stream: " << stream.size() << " arrivals over "
            << config.base.instance.num_slots << " slots; batches of "
            << config.batch_size << " or " << config.max_batch_delay
            << " slots of queueing, whichever first\n\n";

  const sim::OnlineResult online = simulator.run();

  TablePrinter batches({"batch", "flush t", "arrivals", "accepted",
                        "running profit", "LP iters", "decide ms"});
  for (const sim::BatchRecord& rec : online.batches) {
    batches.add_row({static_cast<long long>(rec.batch), rec.flush_time,
                     static_cast<long long>(rec.arrivals),
                     static_cast<long long>(rec.accepted), rec.profit,
                     static_cast<long long>(rec.lp_stats.iterations),
                     rec.decide_ms});
  }
  batches.print(std::cout);

  // The committed decision must be feasible like any offline one.
  if (online.total_arrivals > 0) {
    std::vector<workload::Request> book;
    for (const auto& a : stream) book.push_back(a.request);
    const core::SpmInstance instance(sim::make_network(config.base),
                                     std::move(book), config.base.instance);
    const auto violations =
        sim::check_schedule(instance, online.schedule, online.plan);
    if (!violations.empty()) {
      std::cerr << "BUG: infeasible committed decision: " << violations.front()
                << '\n';
      return 1;
    }
  }

  const core::MetisResult offline = simulator.offline_oracle();
  std::cout << "\nOnline:  profit " << online.profit.profit << " ("
            << online.total_accepted << "/" << online.total_arrivals
            << " accepted, " << online.lp_stats.iterations
            << " simplex iterations, " << online.path_cache_hits
            << " path-cache hits)\n";
  std::cout << "Offline: profit " << offline.best.profit << " ("
            << offline.best.accepted << "/" << online.total_arrivals
            << " accepted, " << offline.lp_stats.iterations
            << " simplex iterations)\n";
  if (offline.best.profit > 0) {
    std::cout << "Price of commitment: online keeps "
              << 100.0 * online.profit.profit / offline.best.profit
              << "% of the offline profit\n";
  }
  return 0;
}
