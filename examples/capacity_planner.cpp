// capacity_planner: what-if analysis for a provider with *already purchased*
// bandwidth (the BL-SPM side of the paper).
//
// Given a WAN whose links all carry a fixed number of purchased units, how
// much revenue can the provider still book, and where is the knee?  The
// planner sweeps the uniform capacity, runs TAA at each level, and reports
// revenue, acceptance and the marginal value of one more unit everywhere —
// the numbers a capacity-planning team would take to their ISP negotiation.
//
//   $ ./capacity_planner --requests 300 --max-units 12
#include <algorithm>
#include <iostream>

#include "core/lp_builder.h"
#include "core/taa.h"
#include "lp/simplex.h"
#include "sim/scenario.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  const int requests = args.get_int("requests", 300);
  const int max_units = args.get_int("max-units", 12);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  if (args.help_requested()) {
    std::cout << args.usage("capacity_planner: revenue vs purchased bandwidth");
    return 0;
  }
  args.finish();

  sim::Scenario scenario;
  scenario.network = sim::Network::B4;
  scenario.num_requests = requests;
  scenario.seed = seed;
  const core::SpmInstance instance = sim::make_instance(scenario);

  double total_value = 0;
  for (const auto& r : instance.requests()) total_value += r.value;
  std::cout << "Demand book: " << requests << " requests worth " << total_value
            << " in total\n\n";

  TablePrinter table({"units/link", "revenue", "accepted", "unsold demand",
                      "marginal revenue/unit"});
  double previous_revenue = 0;
  int last_binding_units = 1;  // largest level where capacity still binds
  for (int units = 1; units <= max_units; ++units) {
    core::ChargingPlan caps;
    caps.units.assign(instance.num_edges(), units);
    const core::TaaResult taa = core::run_taa(instance, caps);
    if (!taa.ok()) {
      std::cerr << "TAA failed at " << units << " units\n";
      return 1;
    }
    const double marginal = units == 1
                                ? taa.revenue
                                : (taa.revenue - previous_revenue);
    table.add_row({static_cast<long long>(units), taa.revenue,
                   static_cast<long long>(taa.schedule.num_accepted()),
                   total_value - taa.revenue, marginal});
    previous_revenue = taa.revenue;
    if (taa.schedule.num_accepted() < instance.num_requests()) {
      last_binding_units = units;
    }
    if (taa.schedule.num_accepted() == instance.num_requests()) {
      std::cout << "All demand fits at " << units << " units per link.\n\n";
      break;
    }
  }
  table.print(std::cout);
  std::cout << "Read the knee off the marginal column: units beyond it no\n"
               "longer pay for themselves at current bandwidth prices.\n\n";

  // Shadow prices: the BL-SPM LP duals tell the planner which individual
  // links are worth upgrading.  Summing an edge's per-slot duals estimates
  // the marginal revenue of one more unit on that edge for a whole cycle.
  // The LP relaxation only produces nonzero duals where fractional routing
  // itself is capacity-bound, so walk down from the last binding level until
  // shadow prices appear.
  for (int probe_units = last_binding_units; probe_units >= 1; --probe_units) {
    core::ChargingPlan caps;
    caps.units.assign(instance.num_edges(), probe_units);
    const core::SpmModel model = core::build_bl_spm(instance, caps);
    const lp::LpSolution relaxed = lp::SimplexSolver().solve(model.problem);
    if (!relaxed.ok()) break;
    std::vector<std::pair<double, net::EdgeId>> marginal;
    for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
      double total = 0;
      for (int t = 0; t < instance.num_slots(); ++t) {
        const int row = model.cap_row[e][t];
        if (row >= 0) total += std::abs(relaxed.duals[row]);
      }
      if (total > 1e-6) marginal.emplace_back(total, e);
    }
    if (marginal.empty()) continue;  // not binding yet: tighten further
    std::sort(marginal.rbegin(), marginal.rend());
    std::cout << "Most valuable upgrades at " << probe_units
              << " units/link (LP shadow prices):\n";
    TablePrinter shadows({"link", "marginal revenue/unit", "link price"});
    for (std::size_t i = 0; i < std::min<std::size_t>(5, marginal.size()); ++i) {
      const auto& edge = instance.topology().edge(marginal[i].second);
      shadows.add_row({std::string("DC") + std::to_string(edge.src) + "->DC" +
                           std::to_string(edge.dst),
                       marginal[i].first, edge.price});
    }
    shadows.print(std::cout);
    break;
  }
  return 0;
}
