// auction_sim: the paper's cloud operational model in action.
//
// Section I motivates SPM with the first-price sealed-bid auction: customers
// submit transfer requirements and bids *simultaneously*, and the provider
// evaluates the whole book at once, accepting the subset that maximizes its
// service profit.  This example simulates several auction rounds and
// contrasts three provider policies on the same bid book:
//
//   accept-all  — today's service mode (serve everyone, buy whatever WAN
//                 bandwidth that takes);
//   greedy      — EcoFlow-style one-by-one profit test;
//   Metis       — the paper's alternate optimization.
//
//   $ ./auction_sim --rounds 3 --bidders 120 --seed 42
#include <iostream>

#include "baselines/ecoflow.h"
#include "core/maa.h"
#include "core/metis.h"
#include "sim/scenario.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  const int rounds = args.get_int("rounds", 3);
  const int bidders = args.get_int("bidders", 120);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (args.help_requested()) {
    std::cout << args.usage("auction_sim: sealed-bid bandwidth auctions");
    return 0;
  }
  args.finish();

  TablePrinter table({"round", "policy", "winners", "revenue", "cost",
                      "profit"});
  for (int round = 0; round < rounds; ++round) {
    sim::Scenario scenario;
    scenario.network = sim::Network::B4;
    scenario.num_requests = bidders;
    scenario.seed = seed + round;
    const core::SpmInstance instance = sim::make_instance(scenario);

    // Policy 1: accept-all (the current service mode).  Route as cheaply as
    // MAA can and pay whatever it costs.
    Rng rng(seed * 31 + round);
    core::MaaOptions maa_options;
    maa_options.rounding_trials = 8;
    const core::MaaResult all = core::run_maa(instance, {}, rng, maa_options);
    if (all.ok()) {
      const auto pb = core::evaluate_with_plan(instance, all.schedule, all.plan);
      table.add_row({static_cast<long long>(round), std::string("accept-all"),
                     static_cast<long long>(pb.accepted), pb.revenue, pb.cost,
                     pb.profit});
    }

    // Policy 2: greedy one-by-one profit test (EcoFlow-style).
    const baselines::EcoFlowResult greedy = baselines::run_ecoflow(instance);
    table.add_row({static_cast<long long>(round), std::string("greedy"),
                   static_cast<long long>(greedy.accepted), greedy.revenue,
                   greedy.cost, greedy.profit});

    // Policy 3: Metis.
    core::MetisOptions options;
    options.theta = 24;
    const core::MetisResult metis = core::run_metis(instance, rng, options);
    table.add_row({static_cast<long long>(round), std::string("Metis"),
                   static_cast<long long>(metis.best.accepted),
                   metis.best.revenue, metis.best.cost, metis.best.profit});
  }

  std::cout << "Sealed-bid auction: " << bidders
            << " bidders per round, B4 WAN\n\n";
  table.print(std::cout);
  std::cout << "The auction winner set differs per policy; Metis's selective\n"
               "acceptance converts the same bid book into higher profit.\n";
  return 0;
}
