// Quickstart: the 60-second tour of the library.
//
//   1. Build a WAN (Google's B4, bundled).
//   2. Generate a synthetic billing cycle of reservation requests.
//   3. Run Metis to decide which requests to accept, how to route them and
//      how much bandwidth to purchase.
//   4. Inspect the decisions and the profit breakdown.
//
//   $ ./quickstart --requests 150 --seed 7 --theta 16
#include <iostream>

#include "core/metis.h"
#include "sim/scenario.h"
#include "sim/validate.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  sim::Scenario scenario;
  scenario.network = sim::Network::B4;
  scenario.num_requests = args.get_int("requests", 150);
  scenario.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  core::MetisOptions options;
  options.theta = args.get_int("theta", 16);
  if (args.help_requested()) {
    std::cout << args.usage("quickstart: run Metis on a synthetic B4 cycle");
    return 0;
  }
  args.finish();

  // 1-2. Topology + workload (deterministic for the seed).
  const core::SpmInstance instance = sim::make_instance(scenario);
  std::cout << "Network: B4 (" << instance.topology().num_nodes()
            << " DCs, " << instance.topology().num_edges()
            << " directed links), cycle of " << instance.num_slots()
            << " slots, " << instance.num_requests() << " requests\n\n";

  // 3. Metis.
  Rng rng(scenario.seed);
  const core::MetisResult result = core::run_metis(instance, rng, options);

  // The decisions are feasible by construction; double-check anyway.
  const auto violations =
      sim::check_schedule(instance, result.schedule, result.plan);
  if (!violations.empty()) {
    std::cerr << "BUG: infeasible decision: " << violations.front() << '\n';
    return 1;
  }

  // 4. Report.
  std::cout << "Acceptance decision: " << result.best.accepted << " of "
            << instance.num_requests() << " requests accepted\n";
  std::cout << "Bandwidth purchase:  " << result.plan.total_units()
            << " units (1 unit = 10 Gbps)\n\n";
  TablePrinter table({"metric", "value"});
  table.add_row({std::string("service revenue"), result.best.revenue});
  table.add_row({std::string("bandwidth cost"), result.best.cost});
  table.add_row({std::string("service profit"), result.best.profit});
  table.print(std::cout);

  std::cout << "First requests and their routes:\n";
  for (int i = 0; i < std::min(8, instance.num_requests()); ++i) {
    const auto& r = instance.request(i);
    std::cout << "  request " << i << ": DC" << r.src << " -> DC" << r.dst
              << ", slots [" << r.start_slot << "," << r.end_slot << "], "
              << r.rate * 10 << " Gbps, bid " << r.value << ": ";
    const int j = result.schedule.path_choice[i];
    if (j == core::kDeclined) {
      std::cout << "DECLINED\n";
      continue;
    }
    std::cout << "via";
    for (net::EdgeId e : instance.paths(i)[j].edges) {
      std::cout << " DC" << instance.topology().edge(e).src << "->DC"
                << instance.topology().edge(e).dst;
    }
    std::cout << '\n';
  }
  return 0;
}
