// Fault tolerance: online admission while the WAN is failing underneath.
//
//   1. Run the streaming admission pipeline fault-free (the baseline).
//   2. Replay the same arrival stream with a seeded fault stream injected:
//      link failures, capacity degradations, DC outages, price shocks and
//      demand surges, repaired per --repair-policy (drop | reroute).
//   3. Print the fault timeline, the repair accounting, and the
//      profit-retention curve (net profit / fault-free profit) for both
//      policies across a small rate sweep.
//
//   $ ./fault_tolerance --requests 36 --fault-rate 0.5 --repair-policy reroute
#include <iostream>
#include <vector>

#include "sim/faults.h"
#include "sim/online.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  sim::OnlineConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = args.get_int("requests", 36);
  config.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.batch_size = args.get_int("batch", 6);
  const double fault_rate = args.get_double("fault-rate", 0.5);
  const std::string policy_name = args.get("repair-policy", "reroute");
  if (args.help_requested()) {
    std::cout << args.usage(
        "fault_tolerance: online admission under injected WAN faults, with "
        "drop-vs-reroute repair and the profit-retention curve");
    return 0;
  }
  args.finish();
  const sim::RepairPolicy policy = sim::parse_repair_policy(policy_name);

  // 1. Fault-free baseline on the identical arrival stream.
  const sim::OnlineResult baseline = sim::OnlineAdmissionSimulator(config).run();
  std::cout << "Fault-free: profit " << baseline.profit.profit << " ("
            << baseline.total_accepted << "/" << baseline.total_arrivals
            << " accepted)\n\n";

  // 2. Same stream, faults on.
  config.faults.rate = fault_rate;
  config.repair_policy = policy;
  const sim::OnlineResult faulty = sim::OnlineAdmissionSimulator(config).run();

  std::cout << "Fault timeline (rate " << fault_rate << ", policy "
            << to_string(policy) << "):\n";
  TablePrinter timeline({"time", "kind", "target", "magnitude", "surge"});
  for (const sim::FaultEvent& e : faulty.fault_events) {
    timeline.add_row({e.time, to_string(e.kind),
                      static_cast<long long>(e.target), e.magnitude,
                      static_cast<long long>(e.surge_arrivals)});
  }
  timeline.print(std::cout);

  const sim::FaultStats& stats = faulty.fault_stats;
  std::cout << "\nRepairs: " << stats.repairs << " re-decides, "
            << stats.victims << " victims (" << stats.rerouted
            << " rerouted, " << stats.dropped << " dropped), "
            << stats.surge_arrivals << " surge arrivals, "
            << stats.shed_rounds << " shed rounds\n";
  std::cout << "Banked:  gross " << faulty.profit.profit << " - refunds "
            << faulty.refunds << " = net " << faulty.net_profit << '\n';
  if (baseline.profit.profit > 0) {
    std::cout << "Retention: "
              << 100.0 * faulty.net_profit / baseline.profit.profit
              << "% of the fault-free profit\n";
  }

  // 3. The retention curve: both policies, a small rate sweep.  Every cell
  // replays the identical arrival + fault streams; only the repair policy
  // differs, so the gap between the columns is the value of rerouting.
  std::cout << "\nProfit-retention curve (net profit / fault-free profit):\n";
  TablePrinter curve({"rate", "retention drop", "retention reroute"});
  for (double rate : std::vector<double>{0.25, 0.5, 1.0}) {
    double retention[2] = {0, 0};
    for (const sim::RepairPolicy p :
         {sim::RepairPolicy::DropAffected, sim::RepairPolicy::Reroute}) {
      config.faults.rate = rate;
      config.repair_policy = p;
      const sim::OnlineResult result = sim::OnlineAdmissionSimulator(config).run();
      retention[p == sim::RepairPolicy::Reroute] =
          baseline.profit.profit > 0
              ? result.net_profit / baseline.profit.profit
              : 0.0;
    }
    curve.add_row({rate, retention[0], retention[1]});
  }
  curve.print(std::cout);
  return 0;
}
