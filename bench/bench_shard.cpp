// Extension — sharded decomposition (core/shard.h, core/coordinate.h):
// profit parity and wall-clock of the dual-price coordinated solve vs the
// monolithic alternation on the Fig-5 workload (B4, theta 32), swept over
// shard counts K in {1, 2, 4}.
//
// Invariant (checked, exit 1 on violation): at every swept size, each
// sharded solve's profit is within `--tolerance` (default 1%) of the
// monolithic profit — the ISSUE's acceptance bound.  Profit, acceptance,
// rounds and duality gap are deterministic for any `--threads` value;
// wall-clock columns are machine-dependent and excluded from the
// regression gate (tools/check_bench_regression.py, docs/TUNING.md).
//
//   $ ./bench_shard --csv
//   $ ./bench_shard --threads 8 --baseline-json ../bench/shard_baseline.json
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/metis.h"
#include "sim/scenario.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/telemetry.h"

namespace {

using namespace metis;

struct SweepRow {
  int requests = 0;
  int shards = 0;  ///< 1 = the monolithic anchor
  core::MetisResult result;
  double wall_ms = 0;
  double speedup = 1.0;  ///< monolithic wall / this wall (same requests)
};

SweepRow run_point(const core::SpmInstance& instance, int requests, int shards,
                   int theta, int threads, int max_rounds, std::uint64_t seed) {
  SweepRow row;
  row.requests = requests;
  row.shards = shards;
  core::MetisOptions options;
  options.theta = theta;
  options.shards = shards;
  options.shard.threads = threads;
  if (max_rounds > 0) options.shard.max_rounds = max_rounds;
  Rng rng(seed);
  const telemetry::Stopwatch timer;
  row.result = core::run_metis(instance, rng, options);
  row.wall_ms = timer.ms();
  return row;
}

void write_baseline_json(const std::string& path, const sim::Scenario& scenario,
                         int theta, int threads,
                         const std::vector<SweepRow>& rows) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open baseline output: " + path);
  os << std::setprecision(15);
  os << "{\n";
  os << "  \"bench\": \"shard\",\n";
  os << "  \"scenario\": {\"network\": "
     << bench::json_str(to_string(scenario.network))
     << ", \"seed\": " << scenario.seed << ", \"theta\": " << theta
     << "},\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const core::ShardInfo& shard = row.result.shard;
    os << "    {\"requests\": " << row.requests
       << ", \"shards\": " << row.shards
       << ", \"profit\": " << row.result.best.profit
       << ", \"accepted\": " << row.result.best.accepted
       << ", \"rounds\": " << shard.rounds
       << ", \"duality_gap\": " << shard.duality_gap
       << ", \"cut_fraction\": " << shard.cut_fraction
       << ", \"fell_back\": " << (shard.fell_back ? "true" : "false")
       << ", \"wall_ms\": " << row.wall_ms
       << ", \"speedup\": " << row.speedup << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const std::string telemetry_path = args.get("telemetry-json", "");
  const std::string baseline_path = args.get("baseline-json", "");
  const int requests_arg = args.get_int("requests", 0);  // 0 = full sweep
  const int theta = args.get_int("theta", 32);
  const int threads = args.get_int("threads", 0);
  const int max_rounds = args.get_int("max-rounds", 0);  // 0 = library default
  const double tolerance = args.get_double("tolerance", 0.01);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.help_requested()) {
    std::cout << args.usage(
        "bench_shard: profit parity and wall-clock of the dual-price "
        "coordinated solve (K in {2,4}) vs the monolithic Metis alternation "
        "on the Fig-5 workload");
    return 0;
  }
  args.finish();

  const std::vector<int> request_counts =
      requests_arg > 0 ? std::vector<int>{requests_arg}
                       : std::vector<int>{150, 300};
  const std::vector<int> shard_counts = {1, 2, 4};

  std::cout << "=== Extension: sharded decomposition on B4 (theta " << theta
            << ", seed " << seed << ") ===\n\n";

  std::vector<SweepRow> rows;
  bool ok = true;
  for (int requests : request_counts) {
    sim::Scenario scenario;
    scenario.network = sim::Network::B4;
    scenario.num_requests = requests;
    scenario.seed = seed;
    const core::SpmInstance instance = sim::make_instance(scenario);
    double mono_wall = 0;
    double mono_profit = 0;
    for (int shards : shard_counts) {
      SweepRow row =
          run_point(instance, requests, shards, theta, threads, max_rounds, seed);
      if (shards == 1) {
        mono_wall = row.wall_ms;
        mono_profit = row.result.best.profit;
      }
      row.speedup = row.wall_ms > 0 ? mono_wall / row.wall_ms : 0.0;
      // One-sided: a coordinated solve that out-earns the monolithic one
      // (cross-shard repairs can) is a win, not a deviation.
      if (shards > 1 && mono_profit > 0 &&
          row.result.best.profit < (1.0 - tolerance) * mono_profit) {
        std::cerr << "BUG: K=" << shards << " profit "
                  << row.result.best.profit << " falls more than "
                  << tolerance * 100 << "% short of monolithic " << mono_profit
                  << " at " << requests << " requests\n";
        ok = false;
      }
      rows.push_back(std::move(row));
    }
  }

  TablePrinter table({"requests", "shards", "profit", "vs mono", "accepted",
                      "rounds", "gap", "cut", "fell back", "wall ms",
                      "speedup"});
  for (const SweepRow& row : rows) {
    double mono_profit = 0;
    for (const SweepRow& other : rows) {
      if (other.requests == row.requests && other.shards == 1) {
        mono_profit = other.result.best.profit;
      }
    }
    table.add_row({static_cast<long long>(row.requests),
                   static_cast<long long>(row.shards), row.result.best.profit,
                   mono_profit != 0 ? row.result.best.profit / mono_profit : 0.0,
                   static_cast<long long>(row.result.best.accepted),
                   static_cast<long long>(row.result.shard.rounds),
                   row.result.shard.duality_gap, row.result.shard.cut_fraction,
                   std::string(row.result.shard.fell_back ? "yes" : "no"),
                   row.wall_ms, row.speedup});
  }
  bench::emit(table, csv, "sharded vs monolithic Metis");

  if (!ok) return 1;
  if (!baseline_path.empty()) {
    sim::Scenario scenario;
    scenario.seed = seed;
    write_baseline_json(baseline_path, scenario, theta, threads, rows);
    std::cout << "baseline written to " << baseline_path << '\n';
  }
  bench::write_telemetry(telemetry_path);
  return 0;
}
