// Ablation — the theta knob ("Cloud providers can set tau and theta based on
// their actual needs", Section II.C): profit and runtime as the number of
// alternation loops grows.  This is the paper's "easy-to-control" trade-off
// between profit performance and computing time.
#include <iostream>

#include "core/metis.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "bench_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  sim::Scenario scenario;
  scenario.network = sim::Network::B4;
  scenario.num_requests = 200;
  scenario.seed = 1;
  const core::SpmInstance instance = sim::make_instance(scenario);

  std::cout << "=== Ablation: Metis theta (B4, K=200) ===\n\n";
  TablePrinter table({"theta", "profit (guards on)", "profit (guards off)",
                      "accepted (on)", "ms (on)"});
  for (int theta : {1, 2, 4, 8, 16, 32, 64}) {
    core::MetisOptions with;
    with.theta = theta;
    core::MetisOptions without = with;
    without.prune = false;
    without.local_search = false;
    without.maa.rounding_trials = 1;
    Rng rng_with(7), rng_without(7);
    const telemetry::Stopwatch timer;
    const core::MetisResult r_with = core::run_metis(instance, rng_with, with);
    const double with_ms = timer.ms();
    const core::MetisResult r_without =
        core::run_metis(instance, rng_without, without);
    table.add_row({static_cast<long long>(theta), r_with.best.profit,
                   r_without.best.profit,
                   static_cast<long long>(r_with.best.accepted), with_ms});
  }
  bench::emit(table, csv, "");
  std::cout << "Guards = SP-updater cleanups (reroute local search + profit\n"
               "pruning + best-of-8 rounding).  Without them profit depends\n"
               "on theta sweeping bandwidth down; with them one loop is\n"
               "already strong and theta refines the capacity trade.\n\n";

  std::cout << "=== Ablation: BW-limiter trim amount (rule tau), theta=16 "
               "===\n\n";
  TablePrinter trim_table({"trim units/loop", "profit", "accepted", "ms"});
  for (int trim : {1, 2, 4, 8}) {
    core::MetisOptions options;
    options.theta = 16;
    options.trim_units = trim;
    Rng rng(7);
    const telemetry::Stopwatch timer;
    const core::MetisResult result = core::run_metis(instance, rng, options);
    trim_table.add_row({static_cast<long long>(trim), result.best.profit,
                        static_cast<long long>(result.best.accepted),
                        timer.ms()});
  }
  bench::emit(trim_table, csv, "");
  bench::write_telemetry(telemetry_path);
  return 0;
}
