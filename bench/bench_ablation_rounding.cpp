// Ablation — MAA rounding trials: Algorithm 1 uses a single randomized
// rounding; keeping the cheapest of N roundings tames its variance at the
// cost of N load computations.  Quantifies what Fig. 4b implies.
#include <iostream>

#include "core/maa.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/telemetry.h"
#include "bench_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  sim::Scenario scenario;
  scenario.network = sim::Network::B4;
  scenario.num_requests = 200;
  scenario.seed = 1;
  const core::SpmInstance instance = sim::make_instance(scenario);

  std::cout << "=== Ablation: MAA rounding trials (B4, K=200, 5 runs each) "
               "===\n\n";
  TablePrinter table({"trials", "cost mean", "cost min", "cost max",
                      "cost/LP bound", "ms/run"});
  for (int trials : {1, 2, 4, 16, 64}) {
    core::MaaOptions options;
    options.rounding_trials = trials;
    Accumulator costs;
    double lp_cost = 0;
    double elapsed_ms = 0;
    for (int run = 0; run < 5; ++run) {
      Rng rng(100 + run);
      const telemetry::Stopwatch timer;
      const core::MaaResult result = core::run_maa(instance, {}, rng, options);
      elapsed_ms += timer.ms();
      costs.add(result.cost);
      lp_cost = result.lp_cost;
    }
    table.add_row({static_cast<long long>(trials), costs.mean(), costs.min(),
                   costs.max(), costs.mean() / lp_cost, elapsed_ms / 5});
  }
  bench::emit(table, csv, "");
  bench::write_telemetry(telemetry_path);
  return 0;
}
