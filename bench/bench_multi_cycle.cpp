// Extension — long-run operation: cumulative profit over consecutive
// billing cycles with compounding demand growth (BillingCycleSimulator).
// The paper decides one cycle in isolation; this table shows how its
// per-cycle gaps (Fig. 3/5) compound over a year of operation.
//
// Checkpointing (src/persist/): `--checkpoint-every N --checkpoint-path P`
// snapshots the finished cycle grid after every N cycles; `--resume P`
// restarts from a snapshot and replays only the remaining cycles, with
// totals byte-identical to the uninterrupted run.
#include <iostream>
#include <string>

#include "core/metis.h"
#include "sim/simulator.h"
#include "bench_util.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const std::string telemetry_path = args.get("telemetry-json", "");
  // `--shards N` routes the Metis policy through the sharded decomposition
  // (core/coordinate.h); 1 (default) is the monolithic solve, bit for bit.
  const int shards = args.get_int("shards", 1);
  sim::SimulationConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = args.get_int("requests", 150);
  config.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.cycles = args.get_int("cycles", 6);
  config.demand_growth = 0.15;
  config.threads = args.get_int("threads", 0);
  config.checkpoint_every = args.get_int("checkpoint-every", 0);
  config.checkpoint_path = args.get("checkpoint-path", "");
  config.resume_path = args.get("resume", "");
  if (args.help_requested()) {
    std::cout << args.usage(
        "bench_multi_cycle: cumulative profit over consecutive billing "
        "cycles; --checkpoint-every/--checkpoint-path snapshot the cycle "
        "grid, --resume restarts from a snapshot");
    return 0;
  }
  args.finish();

  std::cout << "=== Extension: cumulative profit over " << config.cycles
            << " billing cycles (B4, demand +15%/cycle"
            << (shards > 1 ? ", Metis sharded K=" + std::to_string(shards) : "")
            << (config.resume_path.empty()
                    ? ""
                    : ", resumed from " + config.resume_path)
            << ") ===\n\n";
  core::MetisOptions metis_options;
  metis_options.shards = shards;
  const sim::BillingCycleSimulator simulator(config);
  const auto outcomes = simulator.run(sim::standard_policies(metis_options));

  TablePrinter cycles({"cycle", "offered", "accept-all", "EcoFlow", "Metis"});
  for (int cycle = 0; cycle < config.cycles; ++cycle) {
    std::vector<Cell> row;
    row.emplace_back(static_cast<long long>(cycle));
    row.emplace_back(
        static_cast<long long>(outcomes[0].cycles[cycle].offered_requests));
    for (const auto& outcome : outcomes) {
      row.emplace_back(outcome.cycles[cycle].result.profit);
    }
    cycles.add_row(std::move(row));
  }
    bench::emit(cycles, csv, "per-cycle profit");

  TablePrinter totals({"policy", "total profit", "total revenue", "total cost",
                       "accepted/offered", "vs accept-all"});
  const double base = outcomes[0].total_profit;
  for (const auto& outcome : outcomes) {
    totals.add_row({outcome.policy, outcome.total_profit, outcome.total_revenue,
                    outcome.total_cost,
                    std::to_string(outcome.total_accepted) + "/" +
                        std::to_string(outcome.total_offered),
                    base != 0 ? outcome.total_profit / base : 0.0});
  }
    bench::emit(totals, csv, "cumulative");
  bench::write_telemetry(telemetry_path);
  return 0;
}
