// Extension — streaming admission (sim/online.h): profit and decide latency
// as a function of batch size, from pure online admission (batch size 1) to
// the paper's offline regime (one batch covering the whole stream), plus
// warm-vs-cold simplex iteration counts measuring the cross-batch
// basis-lifting payoff (lp/basis_lift.h).
//
// Every row replays the same arrival stream twice — once with cross-batch
// warm starts, once cold — so the two iteration columns are directly
// comparable.  Decisions are identical between the two replays (warm starts
// change work, never results); profit therefore appears once per row.
//
//   $ ./bench_online_admission --requests 48 --seed 1 --csv
//   $ ./bench_online_admission --baseline-json ../bench/online_admission_baseline.json
#include <fstream>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/online.h"
#include "util/args.h"
#include "util/table.h"

namespace {

struct SweepRow {
  int batch_size = 0;
  metis::sim::OnlineResult warm;
  metis::sim::OnlineResult cold;
};

void write_baseline_json(const std::string& path,
                         const metis::sim::OnlineConfig& config,
                         const metis::core::MetisResult& offline,
                         int stream_len, const std::vector<SweepRow>& rows) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open baseline output: " + path);
  os << std::setprecision(15);
  os << "{\n";
  os << "  \"scenario\": {\"network\": \"" << to_string(config.base.network)
     << "\", \"expected_requests\": " << config.base.num_requests
     << ", \"arrivals\": " << stream_len
     << ", \"seed\": " << config.base.seed << "},\n";
  os << "  \"offline\": {\"profit\": " << offline.best.profit
     << ", \"accepted\": " << offline.best.accepted
     << ", \"simplex_iterations\": " << offline.lp_stats.iterations << "},\n";
  os << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const double ratio = offline.best.profit != 0
                             ? row.warm.profit.profit / offline.best.profit
                             : 0.0;
    os << "    {\"batch_size\": " << row.batch_size
       << ", \"batches\": " << row.warm.batches.size()
       << ", \"profit\": " << row.warm.profit.profit
       << ", \"profit_ratio_vs_offline\": " << ratio
       << ", \"accepted\": " << row.warm.total_accepted << ",\n";
    os << "     \"warm\": {\"simplex_iterations\": "
       << row.warm.lp_stats.iterations
       << ", \"warm_starts\": " << row.warm.lp_stats.warm_starts
       << ", \"cold_starts\": " << row.warm.lp_stats.cold_starts << "},\n";
    os << "     \"cold\": {\"simplex_iterations\": "
       << row.cold.lp_stats.iterations
       << ", \"warm_starts\": " << row.cold.lp_stats.warm_starts
       << ", \"cold_starts\": " << row.cold.lp_stats.cold_starts << "},\n";
    os << "     \"per_batch\": [";
    for (std::size_t b = 0; b < row.warm.batches.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"arrivals\": " << row.warm.batches[b].arrivals
         << ", \"iterations_warm\": " << row.warm.batches[b].lp_stats.iterations
         << ", \"iterations_cold\": " << row.cold.batches[b].lp_stats.iterations
         << "}";
    }
    os << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const std::string telemetry_path = args.get("telemetry-json", "");
  const std::string baseline_path = args.get("baseline-json", "");
  sim::OnlineConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = args.get_int("requests", 48);
  config.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.metis.maa.threads = args.get_int("threads", 0);
  if (args.help_requested()) {
    std::cout << args.usage(
        "bench_online_admission: batch-size sweep of the streaming "
        "admission pipeline vs the offline oracle");
    return 0;
  }
  args.finish();

  const sim::OnlineAdmissionSimulator probe(config);
  const int stream_len = static_cast<int>(probe.arrivals().size());
  const core::MetisResult offline = probe.offline_oracle();
  std::cout << "=== Extension: online admission on "
            << to_string(config.base.network) << ", " << stream_len
            << " arrivals (seed " << config.base.seed << ") ===\n"
            << "offline oracle: profit " << offline.best.profit << ", "
            << offline.best.accepted << " accepted, "
            << offline.lp_stats.iterations << " simplex iterations\n\n";

  std::vector<int> batch_sizes;
  for (int b : {1, 2, 4, 8, 16, 32}) {
    if (b < stream_len) batch_sizes.push_back(b);
  }
  batch_sizes.push_back(std::max(1, stream_len));  // the offline regime

  std::vector<SweepRow> rows;
  for (int batch_size : batch_sizes) {
    SweepRow row;
    row.batch_size = batch_size;
    config.batch_size = batch_size;
    config.cross_batch_warm_start = true;
    row.warm = sim::OnlineAdmissionSimulator(config).run();
    config.cross_batch_warm_start = false;
    row.cold = sim::OnlineAdmissionSimulator(config).run();
    if (row.warm.profit.profit != row.cold.profit.profit) {
      std::cerr << "BUG: warm starts changed the decision at batch size "
                << batch_size << "\n";
      return 1;
    }
    rows.push_back(std::move(row));
  }

  TablePrinter table({"batch", "batches", "profit", "vs offline", "accepted",
                      "iters warm", "iters cold", "warm starts", "cold starts",
                      "avg decide ms"});
  for (const SweepRow& row : rows) {
    double decide_ms = 0;
    for (const auto& b : row.warm.batches) decide_ms += b.decide_ms;
    if (!row.warm.batches.empty()) decide_ms /= row.warm.batches.size();
    table.add_row(
        {static_cast<long long>(row.batch_size),
         static_cast<long long>(row.warm.batches.size()),
         row.warm.profit.profit,
         offline.best.profit != 0
             ? row.warm.profit.profit / offline.best.profit
             : 0.0,
         static_cast<long long>(row.warm.total_accepted),
         static_cast<long long>(row.warm.lp_stats.iterations),
         static_cast<long long>(row.cold.lp_stats.iterations),
         static_cast<long long>(row.warm.lp_stats.warm_starts),
         static_cast<long long>(row.warm.lp_stats.cold_starts), decide_ms});
  }
  bench::emit(table, csv, "profit and LP work vs batch size");

  if (!baseline_path.empty()) {
    write_baseline_json(baseline_path, config, offline, stream_len, rows);
    std::cout << "baseline written to " << baseline_path << '\n';
  }
  bench::write_telemetry(telemetry_path);
  return 0;
}
