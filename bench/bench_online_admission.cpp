// Extension — streaming admission (sim/online.h): profit and decide latency
// as a function of batch size, from pure online admission (batch size 1) to
// the paper's offline regime (one batch covering the whole stream), plus
// warm-vs-cold simplex iteration counts measuring the cross-batch
// basis-lifting payoff (lp/basis_lift.h).
//
// Every row replays the same arrival stream twice — once with cross-batch
// warm starts, once cold — so the two iteration columns are directly
// comparable.  Decisions are identical between the two replays (warm starts
// change work, never results); profit therefore appears once per row.
//
// The binary doubles as the checkpoint/restore driver (src/persist/):
// `--checkpoint-every N --checkpoint-path P` makes a single replay write
// periodic snapshots, `--resume P` restarts one from a snapshot, and
// `--check-resume` runs the kill-at-every-slot-boundary parity harness —
// resume from each boundary must reproduce the uninterrupted run's profit,
// schedule and decision counters byte for byte (exit 1 on any divergence).
//
//   $ ./bench_online_admission --requests 48 --seed 1 --csv
//   $ ./bench_online_admission --baseline-json ../bench/online_admission_baseline.json
//   $ ./bench_online_admission --check-resume --fault-rate 0.5
#include <fstream>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/online.h"
#include "util/args.h"
#include "util/table.h"
#include "util/telemetry.h"

namespace {

struct SweepRow {
  int batch_size = 0;
  metis::sim::OnlineResult warm;
  metis::sim::OnlineResult cold;
};

bool same_lp_stats(const metis::lp::SolveStats& a,
                   const metis::lp::SolveStats& b) {
  // Every field but the wall clock.
  return a.iterations == b.iterations && a.factorizations == b.factorizations &&
         a.presolve_removed_rows == b.presolve_removed_rows &&
         a.presolve_removed_cols == b.presolve_removed_cols &&
         a.warm_starts == b.warm_starts && a.cold_starts == b.cold_starts &&
         a.pricing_passes == b.pricing_passes &&
         a.partial_hits == b.partial_hits &&
         a.full_fallbacks == b.full_fallbacks &&
         a.basis_repairs == b.basis_repairs;
}

/// Every deterministic field of two replays' results; returns the first
/// few mismatch descriptions (empty = byte-identical).
std::vector<std::string> diff_results(const metis::sim::OnlineResult& a,
                                      const metis::sim::OnlineResult& b) {
  std::vector<std::string> diffs;
  const auto check = [&](bool ok, const std::string& what) {
    if (!ok) diffs.push_back(what);
  };
  check(a.total_arrivals == b.total_arrivals, "total_arrivals");
  check(a.total_accepted == b.total_accepted, "total_accepted");
  check(a.profit.revenue == b.profit.revenue, "profit.revenue");
  check(a.profit.cost == b.profit.cost, "profit.cost");
  check(a.profit.profit == b.profit.profit, "profit.profit");
  check(a.refunds == b.refunds, "refunds");
  check(a.net_profit == b.net_profit, "net_profit");
  check(a.schedule.path_choice == b.schedule.path_choice, "schedule");
  check(a.plan.units == b.plan.units, "plan");
  check(same_lp_stats(a.lp_stats, b.lp_stats), "lp_stats");
  check(a.batches.size() == b.batches.size(), "batch count");
  for (std::size_t i = 0;
       i < a.batches.size() && i < b.batches.size() && diffs.size() < 8; ++i) {
    const auto& ba = a.batches[i];
    const auto& bb = b.batches[i];
    check(ba.batch == bb.batch && ba.arrivals == bb.arrivals &&
              ba.flush_time == bb.flush_time && ba.accepted == bb.accepted &&
              ba.profit == bb.profit && same_lp_stats(ba.lp_stats, bb.lp_stats),
          "batch " + std::to_string(i));
  }
  check(a.fault_paths == b.fault_paths, "fault_paths");
  check(a.fault_stats.injected == b.fault_stats.injected &&
            a.fault_stats.repairs == b.fault_stats.repairs &&
            a.fault_stats.dropped == b.fault_stats.dropped &&
            a.fault_stats.rerouted == b.fault_stats.rerouted &&
            a.fault_stats.surge_arrivals == b.fault_stats.surge_arrivals,
        "fault_stats");
  return diffs;
}

/// The registry's decision counters: everything except persist.* (the
/// checkpointing run records extra save/load events by design).
std::vector<std::pair<std::string, std::int64_t>> decision_counters() {
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, value] :
       metis::telemetry::Registry::global().snapshot().counters) {
    if (name.rfind("persist.", 0) != 0) out.emplace_back(name, value);
  }
  return out;
}

void reset_registry() {
  metis::telemetry::Registry::global().restore(
      metis::telemetry::MetricsSnapshot{});
}

/// Kill/restore parity harness: replays the stream once uninterrupted, once
/// writing a snapshot at every slot boundary, then resumes from each
/// boundary and diffs every deterministic output field plus the decision
/// counters.  Returns the number of diverging boundaries.
int run_resume_parity(metis::sim::OnlineConfig config,
                      const std::string& ckpt_path) {
  using metis::sim::OnlineAdmissionSimulator;
  using metis::sim::OnlineResult;
  config.checkpoint_every = 0;
  config.checkpoint_path.clear();
  config.checkpoint_keep_all = false;
  config.resume_path.clear();

  reset_registry();
  const OnlineResult reference = OnlineAdmissionSimulator(config).run();
  const auto ref_counters = decision_counters();

  metis::sim::OnlineConfig writer = config;
  writer.checkpoint_every = 1;
  writer.checkpoint_path = ckpt_path;
  writer.checkpoint_keep_all = true;
  reset_registry();
  const OnlineResult uninterrupted = OnlineAdmissionSimulator(writer).run();
  int failures = 0;
  {
    const auto diffs = diff_results(reference, uninterrupted);
    const bool counters_ok = decision_counters() == ref_counters;
    if (!diffs.empty() || !counters_ok) {
      ++failures;
      std::cout << "FAIL checkpointing run diverged from plain run:";
      for (const auto& d : diffs) std::cout << ' ' << d;
      if (!counters_ok) std::cout << " decision_counters";
      std::cout << '\n';
    }
  }

  const int num_slots = config.base.instance.num_slots;
  for (int boundary = 1; boundary < num_slots; ++boundary) {
    metis::sim::OnlineConfig resumed = config;
    resumed.resume_path = ckpt_path + ".slot" + std::to_string(boundary);
    reset_registry();
    const OnlineResult result = OnlineAdmissionSimulator(resumed).run();
    const auto diffs = diff_results(reference, result);
    const bool counters_ok = decision_counters() == ref_counters;
    if (diffs.empty() && counters_ok) {
      std::cout << "ok   kill at slot " << boundary << ", resume: identical\n";
    } else {
      ++failures;
      std::cout << "FAIL kill at slot " << boundary << ", resume diverged:";
      for (const auto& d : diffs) std::cout << ' ' << d;
      if (!counters_ok) std::cout << " decision_counters";
      std::cout << '\n';
    }
  }
  return failures;
}

void write_baseline_json(const std::string& path,
                         const metis::sim::OnlineConfig& config,
                         const metis::core::MetisResult& offline,
                         int stream_len, const std::vector<SweepRow>& rows) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open baseline output: " + path);
  os << std::setprecision(15);
  os << "{\n";
  os << "  \"scenario\": {\"network\": "
     << metis::bench::json_str(to_string(config.base.network))
     << ", \"expected_requests\": " << config.base.num_requests
     << ", \"arrivals\": " << stream_len
     << ", \"seed\": " << config.base.seed << "},\n";
  os << "  \"offline\": {\"profit\": " << offline.best.profit
     << ", \"accepted\": " << offline.best.accepted
     << ", \"simplex_iterations\": " << offline.lp_stats.iterations << "},\n";
  os << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const double ratio = offline.best.profit != 0
                             ? row.warm.profit.profit / offline.best.profit
                             : 0.0;
    os << "    {\"batch_size\": " << row.batch_size
       << ", \"batches\": " << row.warm.batches.size()
       << ", \"profit\": " << row.warm.profit.profit
       << ", \"profit_ratio_vs_offline\": " << ratio
       << ", \"accepted\": " << row.warm.total_accepted << ",\n";
    os << "     \"warm\": {\"simplex_iterations\": "
       << row.warm.lp_stats.iterations
       << ", \"warm_starts\": " << row.warm.lp_stats.warm_starts
       << ", \"cold_starts\": " << row.warm.lp_stats.cold_starts << "},\n";
    os << "     \"cold\": {\"simplex_iterations\": "
       << row.cold.lp_stats.iterations
       << ", \"warm_starts\": " << row.cold.lp_stats.warm_starts
       << ", \"cold_starts\": " << row.cold.lp_stats.cold_starts << "},\n";
    os << "     \"per_batch\": [";
    for (std::size_t b = 0; b < row.warm.batches.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"arrivals\": " << row.warm.batches[b].arrivals
         << ", \"iterations_warm\": " << row.warm.batches[b].lp_stats.iterations
         << ", \"iterations_cold\": " << row.cold.batches[b].lp_stats.iterations
         << "}";
    }
    os << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metis;
  ArgParser args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const std::string telemetry_path = args.get("telemetry-json", "");
  const std::string baseline_path = args.get("baseline-json", "");
  sim::OnlineConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = args.get_int("requests", 48);
  config.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.metis.maa.threads = args.get_int("threads", 0);
  config.faults.rate = args.get_double("fault-rate", 0);
  const int flag_batch_size = args.get_int("batch-size", 8);
  config.checkpoint_every = args.get_int("checkpoint-every", 0);
  config.checkpoint_path = args.get("checkpoint-path", "");
  config.resume_path = args.get("resume", "");
  const bool check_resume = args.get_bool("check-resume", false);
  const std::string parity_path =
      args.get("check-resume-path", "online_parity.ckpt");
  if (args.help_requested()) {
    std::cout << args.usage(
        "bench_online_admission: batch-size sweep of the streaming "
        "admission pipeline vs the offline oracle; also the "
        "checkpoint/restore driver (--checkpoint-every/--checkpoint-path/"
        "--resume run a single replay; --check-resume runs the "
        "kill-at-every-boundary parity harness)");
    return 0;
  }
  args.finish();

  if (check_resume) {
    config.batch_size = flag_batch_size;
    std::cout << "=== checkpoint/restore parity: "
              << to_string(config.base.network) << ", seed "
              << config.base.seed << ", batch size " << config.batch_size
              << ", fault rate " << config.faults.rate << " ===\n";
    const int failures = run_resume_parity(config, parity_path);
    if (failures > 0) {
      std::cout << failures << " diverging boundaries\n";
      return 1;
    }
    std::cout << "all boundaries resume byte-identically\n";
    bench::write_telemetry(telemetry_path);
    return 0;
  }

  if (config.checkpoint_every > 0 || !config.resume_path.empty()) {
    // Operational single-replay mode: one configured replay, with periodic
    // snapshots and/or resumed from one.  The sweep is skipped — its rows
    // would each overwrite the other's checkpoint file.
    config.batch_size = flag_batch_size;
    const sim::OnlineAdmissionSimulator simulator(config);
    const sim::OnlineResult result = simulator.run();
    std::cout << "=== online replay ("
              << (config.resume_path.empty()
                      ? "from the start"
                      : "resumed from " + config.resume_path)
              << ") ===\n"
              << "batches " << result.batches.size() << ", accepted "
              << result.total_accepted << "/" << result.total_arrivals
              << ", net profit " << result.net_profit << ", refunds "
              << result.refunds << "\n";
    bench::write_telemetry(telemetry_path);
    return 0;
  }

  const sim::OnlineAdmissionSimulator probe(config);
  const int stream_len = static_cast<int>(probe.arrivals().size());
  const core::MetisResult offline = probe.offline_oracle();
  std::cout << "=== Extension: online admission on "
            << to_string(config.base.network) << ", " << stream_len
            << " arrivals (seed " << config.base.seed << ") ===\n"
            << "offline oracle: profit " << offline.best.profit << ", "
            << offline.best.accepted << " accepted, "
            << offline.lp_stats.iterations << " simplex iterations\n\n";

  std::vector<int> batch_sizes;
  for (int b : {1, 2, 4, 8, 16, 32}) {
    if (b < stream_len) batch_sizes.push_back(b);
  }
  batch_sizes.push_back(std::max(1, stream_len));  // the offline regime

  std::vector<SweepRow> rows;
  for (int batch_size : batch_sizes) {
    SweepRow row;
    row.batch_size = batch_size;
    config.batch_size = batch_size;
    config.cross_batch_warm_start = true;
    row.warm = sim::OnlineAdmissionSimulator(config).run();
    config.cross_batch_warm_start = false;
    row.cold = sim::OnlineAdmissionSimulator(config).run();
    if (row.warm.profit.profit != row.cold.profit.profit) {
      std::cerr << "BUG: warm starts changed the decision at batch size "
                << batch_size << "\n";
      return 1;
    }
    rows.push_back(std::move(row));
  }

  TablePrinter table({"batch", "batches", "profit", "vs offline", "accepted",
                      "iters warm", "iters cold", "warm starts", "cold starts",
                      "avg decide ms"});
  for (const SweepRow& row : rows) {
    double decide_ms = 0;
    for (const auto& b : row.warm.batches) decide_ms += b.decide_ms;
    if (!row.warm.batches.empty()) decide_ms /= row.warm.batches.size();
    table.add_row(
        {static_cast<long long>(row.batch_size),
         static_cast<long long>(row.warm.batches.size()),
         row.warm.profit.profit,
         offline.best.profit != 0
             ? row.warm.profit.profit / offline.best.profit
             : 0.0,
         static_cast<long long>(row.warm.total_accepted),
         static_cast<long long>(row.warm.lp_stats.iterations),
         static_cast<long long>(row.cold.lp_stats.iterations),
         static_cast<long long>(row.warm.lp_stats.warm_starts),
         static_cast<long long>(row.warm.lp_stats.cold_starts), decide_ms});
  }
  bench::emit(table, csv, "profit and LP work vs batch size");

  if (!baseline_path.empty()) {
    write_baseline_json(baseline_path, config, offline, stream_len, rows);
    std::cout << "baseline written to " << baseline_path << '\n';
  }
  bench::write_telemetry(telemetry_path);
  return 0;
}
