// Ablation — TAA engineering guards and the Amoeba comparator strength:
//   * TAA with and without the greedy augmentation pass (DESIGN.md);
//   * Amoeba with single-path (paper's comparator) vs multipath first-fit.
#include <iostream>

#include "baselines/amoeba.h"
#include "core/taa.h"
#include "sim/scenario.h"
#include "bench_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  std::cout << "=== Ablation: TAA augmentation & Amoeba path diversity (B4) "
               "===\n\n";
  TablePrinter table({"requests", "caps", "TAA bare rev", "TAA+augment rev",
                      "Amoeba 1-path rev", "Amoeba multipath rev",
                      "splittable opt"});
  for (int caps_units : {2, 3}) {
    for (int k : {150, 300}) {
      sim::Scenario scenario;
      scenario.network = sim::Network::B4;
      scenario.num_requests = k;
      scenario.seed = 1;
      scenario.uniform_capacity = caps_units;
      const core::SpmInstance instance = sim::make_instance(scenario);
      core::ChargingPlan caps;
      caps.units.assign(instance.num_edges(), caps_units);

      core::TaaOptions bare;
      bare.augment = false;
      const core::TaaResult taa_bare = core::run_taa(instance, caps, {}, bare);
      const core::TaaResult taa_full = core::run_taa(instance, caps);

      baselines::AmoebaOptions single, multi;
      multi.multipath = true;
      const auto amoeba_single = baselines::run_amoeba(instance, caps, single);
      const auto amoeba_multi = baselines::run_amoeba(instance, caps, multi);

      // The splittable optimum (LP) shows what unsplittability costs.
      const core::SplittableResult split =
          core::run_splittable_bl_spm(instance, caps);

      table.add_row({static_cast<long long>(k),
                     static_cast<long long>(caps_units), taa_bare.revenue,
                     taa_full.revenue, amoeba_single.revenue,
                     amoeba_multi.revenue, split.revenue});
    }
  }
  bench::emit(table, csv, "");
  bench::write_telemetry(telemetry_path);
  return 0;
}
