// Runtime comparison (google-benchmark) backing the Section V.B.1 claim:
// "it takes more than 1000 seconds to get the optimal request schedule while
// Metis uses only several hundreds of milliseconds".
//
// We time Metis, its two inner solvers, and budget-capped OPT(SPM) on
// SUB-B4 instances of growing size.  The absolute numbers differ from the
// paper's Gurobi testbed; the *separation* (OPT orders of magnitude slower,
// exploding with K) is the reproduced result.
#include <benchmark/benchmark.h>

#include "baselines/opt.h"
#include "bench_util.h"
#include "core/maa.h"
#include "core/metis.h"
#include "core/taa.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace {

using namespace metis;

// `--shards N` (stripped in main before benchmark::Initialize): shard count
// applied to the Metis benchmarks below; 1 = the monolithic solve.
int g_shards = 1;

core::SpmInstance instance_for(int k, sim::Network net) {
  sim::Scenario s;
  s.network = net;
  s.num_requests = k;
  s.seed = 1;
  return sim::make_instance(s);
}

void BM_Metis_SubB4(benchmark::State& state) {
  const auto instance = instance_for(static_cast<int>(state.range(0)),
                                     sim::Network::SubB4);
  core::MetisOptions options;
  options.theta = 24;
  options.shards = g_shards;
  lp::SolveStats stats;
  for (auto _ : state) {
    Rng rng(7);
    const auto result = core::run_metis(instance, rng, options);
    benchmark::DoNotOptimize(result.best.profit);
    stats = result.lp_stats;
  }
  state.counters["simplex_iters"] = static_cast<double>(stats.iterations);
  state.counters["factorizations"] = stats.factorizations;
  state.counters["warm_starts"] = stats.warm_starts;
  state.counters["cold_starts"] = stats.cold_starts;
}
BENCHMARK(BM_Metis_SubB4)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

// The sharded decomposition at fixed instance size over a shard-count sweep
// (range(0) = requests, range(1) = K; K = 1 is the monolithic anchor).
void BM_MetisSharded_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  core::MetisOptions options;
  options.shards = static_cast<int>(state.range(1));
  int rounds = 0;
  int fell_back = 0;
  for (auto _ : state) {
    Rng rng(7);
    const auto result = core::run_metis(instance, rng, options);
    benchmark::DoNotOptimize(result.best.profit);
    rounds = result.shard.rounds;
    fell_back = result.shard.fell_back ? 1 : 0;
  }
  state.counters["rounds"] = rounds;
  state.counters["fell_back"] = fell_back;
}
BENCHMARK(BM_MetisSharded_B4)
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({200, 4})
    ->Unit(benchmark::kMillisecond);

void BM_OptSpm_SubB4(benchmark::State& state) {
  const auto instance = instance_for(static_cast<int>(state.range(0)),
                                     sim::Network::SubB4);
  lp::MipOptions options;
  options.max_nodes = 20000;
  options.time_limit_seconds = 10;  // budget cap; the paper's OPT ran 1000s+
  for (auto _ : state) {
    const auto result = baselines::run_opt_spm(instance, options);
    benchmark::DoNotOptimize(result.breakdown.profit);
  }
}
BENCHMARK(BM_OptSpm_SubB4)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Maa_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  lp::SolveStats stats;
  for (auto _ : state) {
    Rng rng(7);
    const auto result = core::run_maa(instance, rng);
    benchmark::DoNotOptimize(result.cost);
    stats = result.lp_stats;
  }
  state.counters["simplex_iters"] = static_cast<double>(stats.iterations);
}
BENCHMARK(BM_Maa_B4)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_Taa_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  core::ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 10);
  lp::SolveStats stats;
  for (auto _ : state) {
    const auto result = core::run_taa(instance, caps);
    benchmark::DoNotOptimize(result.revenue);
    stats = result.lp_stats;
  }
  state.counters["simplex_iters"] = static_cast<double>(stats.iterations);
}
BENCHMARK(BM_Taa_B4)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (instead of benchmark_main): `--telemetry-json` and
// `--shards` must be stripped before benchmark::Initialize, which rejects
// unknown flags.
int main(int argc, char** argv) {
  const std::string telemetry_path =
      metis::bench::take_telemetry_json_arg(argc, argv);
  g_shards = metis::bench::take_shards_arg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  metis::bench::write_telemetry(telemetry_path);
  return 0;
}
