// Fig. 4a — "Service cost: MAA vs MinCost with different requests on B4".
//
// The paper reports MinCost paying up to 21.1% more than MAA to satisfy the
// same request set, with the gap growing in the request count.  We print the
// sweep for the paper's verbatim algorithm (one randomized rounding) and for
// a best-of-4 variant that tames rounding variance.
#include <iostream>

#include "bench_util.h"
#include "sim/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  for (int trials : {1, 4}) {
    sim::Fig4aConfig config;
    config.sweep.request_counts = {100, 200, 300, 400};
    config.sweep.seed = 1;
    config.sweep.repetitions = 3;
    config.rounding_trials = trials;

    std::cout << "=== Fig. 4a: MAA vs MinCost service cost, B4 (rounding "
                 "trials = "
              << trials << ") ===\n\n";
    const auto rows = sim::run_fig4a(config);
    TablePrinter table({"requests", "MAA cost", "MinCost cost", "LP bound",
                        "MinCost/MAA"});
    for (const auto& r : rows) {
      table.add_row({static_cast<long long>(r.num_requests), r.maa_cost,
                     r.mincost_cost, r.lp_lower_bound, r.mincost_over_maa});
    }
    bench::emit(table, csv, "");
  }
  bench::write_telemetry(telemetry_path);
  return 0;
}
