// Fig. 5 — "Performance of Metis on B4" vs EcoFlow.
//
//   5a: service profit (paper: Metis up to 32.6% higher);
//   5b: accepted requests (paper: EcoFlow up to 43.1% fewer);
//   5c: average link utilization (paper: Metis up to 38% higher).
#include <iostream>

#include "bench_util.h"
#include "sim/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  sim::Fig5Config config;
  config.sweep.request_counts = {100, 150, 200, 250, 300};
  config.sweep.seed = 1;
  config.sweep.repetitions = 2;
  config.theta = 32;

  std::cout << "=== Fig. 5: Metis vs EcoFlow, B4 ===\n\n";
  const auto rows = sim::run_fig5(config);

  TablePrinter profit({"requests", "Metis profit", "EcoFlow profit",
                       "Metis/EcoFlow"});
  for (const auto& r : rows) {
    profit.add_row({static_cast<long long>(r.num_requests),
                    r.metis.breakdown.profit, r.ecoflow.breakdown.profit,
                    r.ecoflow.breakdown.profit > 0
                        ? r.metis.breakdown.profit / r.ecoflow.breakdown.profit
                        : 0.0});
  }
    bench::emit(profit, csv, "Fig. 5a: service profit");

  TablePrinter accepted({"requests", "Metis accepted", "EcoFlow accepted",
                         "EcoFlow/Metis"});
  for (const auto& r : rows) {
    accepted.add_row(
        {static_cast<long long>(r.num_requests),
         static_cast<long long>(r.metis.breakdown.accepted),
         static_cast<long long>(r.ecoflow.breakdown.accepted),
         r.metis.breakdown.accepted > 0
             ? static_cast<double>(r.ecoflow.breakdown.accepted) /
                   r.metis.breakdown.accepted
             : 0.0});
  }
    bench::emit(accepted, csv, "Fig. 5b: accepted requests");

  TablePrinter util({"requests", "Metis avg util", "EcoFlow avg util",
                     "Metis/EcoFlow"});
  for (const auto& r : rows) {
    util.add_row({static_cast<long long>(r.num_requests), r.metis.utilization.mean,
                  r.ecoflow.utilization.mean,
                  r.ecoflow.utilization.mean > 0
                      ? r.metis.utilization.mean / r.ecoflow.utilization.mean
                      : 0.0});
  }
    bench::emit(util, csv, "Fig. 5c: average link utilization");
  bench::write_telemetry(telemetry_path);
  return 0;
}
