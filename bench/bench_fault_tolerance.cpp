// Extension — fault injection & graceful degradation (sim/faults.h): how
// much of the fault-free profit each repair policy retains as the fault
// rate grows.
//
// One offline Metis decision is committed into a CommittedBook, then the
// same seeded fault streams (link failures, capacity degradations, DC
// outages, price shocks, demand surges) are replayed against it once per
// repair policy.  Both policies face bit-identical events and surge
// request draws, so the retention gap is attributable to the repair
// strategy alone.  Retention = net profit (gross minus SLA refunds)
// divided by the fault-free profit; surges can push it above 1.
//
// Invariant (checked, exit 1 on violation): on B4's well-connected mesh
// reroute repair must retain at least as much as the drop baseline at
// every swept rate.
//
//   $ ./bench_fault_tolerance --requests 40 --seed 13 --csv
//   $ ./bench_fault_tolerance --baseline-json ../bench/fault_tolerance_baseline.json
#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/metis.h"
#include "sim/faults.h"
#include "sim/scenario.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/telemetry.h"
#include "workload/generator.h"

namespace {

using namespace metis;

struct PolicyCell {
  double net_profit = 0;   ///< mean over trials
  double refunds = 0;      ///< mean over trials
  double retention = 0;    ///< net_profit / fault-free profit
  double repair_ms = 0;    ///< mean wall-clock of the whole replay
  sim::FaultStats stats;   ///< summed over trials
};

struct SweepRow {
  double rate = 0;
  PolicyCell cell[2];  ///< indexed by policy == Reroute
};

/// Replays `trials` independent fault streams against the adopted decision
/// under one repair policy.  Streams and surge draws are seeded by (seed,
/// trial) only, so both policies see identical faults.
PolicyCell replay(const core::SpmInstance& instance,
                  const core::MetisResult& decision, sim::RepairPolicy policy,
                  double rate, std::uint64_t seed, int trials,
                  double fault_free_profit) {
  PolicyCell cell;
  const int num_slots = instance.config().num_slots;
  const workload::RequestGenerator generator(instance.topology(), {});
  for (int trial = 0; trial < trials; ++trial) {
    sim::RepairConfig repair;
    repair.policy = policy;
    sim::CommittedBook book(instance.topology(), instance.config(), repair);
    book.adopt(instance, decision.schedule);
    sim::FaultConfig faults;
    faults.rate = rate;
    const auto events = sim::generate_fault_events(
        faults, book.topology(), num_slots,
        Rng(seed + 1000 * static_cast<std::uint64_t>(trial + 1)));
    Rng repair_rng(seed * 7 + static_cast<std::uint64_t>(trial) * 13 + 5);
    Rng surge_rng(seed * 11 + static_cast<std::uint64_t>(trial) * 17 + 3);
    telemetry::Stopwatch watch;
    for (const sim::FaultEvent& event : events) {
      book.inject(event, repair_rng);
      if (event.kind == sim::FaultKind::DemandSurge) {
        const int slot = std::min(static_cast<int>(event.time), num_slots - 1);
        for (const workload::Request& r :
             generator.generate_at(slot, event.surge_arrivals, surge_rng)) {
          book.add_pending(r);
        }
        if (book.pending_count() > 0) book.decide_pending(repair_rng);
      }
    }
    cell.repair_ms += watch.ms();
    const auto errors = book.validate();
    if (!errors.empty()) {
      throw std::runtime_error("repaired book failed validation (rate " +
                               std::to_string(rate) + "): " + errors.front());
    }
    cell.net_profit += book.net_profit();
    cell.refunds += book.refunds();
    const sim::FaultStats& s = book.stats();
    cell.stats.injected += s.injected;
    cell.stats.network_changes += s.network_changes;
    cell.stats.repairs += s.repairs;
    cell.stats.victims += s.victims;
    cell.stats.dropped += s.dropped;
    cell.stats.rerouted += s.rerouted;
    cell.stats.shed_rounds += s.shed_rounds;
    cell.stats.surge_arrivals += s.surge_arrivals;
  }
  cell.net_profit /= trials;
  cell.refunds /= trials;
  cell.repair_ms /= trials;
  cell.retention =
      fault_free_profit != 0 ? cell.net_profit / fault_free_profit : 0.0;
  return cell;
}

void write_baseline_json(const std::string& path, const sim::Scenario& scenario,
                         const core::MetisResult& decision, int trials,
                         const std::vector<SweepRow>& rows) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open baseline output: " + path);
  os << std::setprecision(15);
  os << "{\n";
  os << "  \"scenario\": {\"network\": "
     << bench::json_str(to_string(scenario.network))
     << ", \"requests\": " << scenario.num_requests
     << ", \"seed\": " << scenario.seed << ", \"trials\": " << trials
     << "},\n";
  os << "  \"fault_free\": {\"profit\": " << decision.best.profit
     << ", \"accepted\": " << decision.best.accepted << "},\n";
  os << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    os << "    {\"rate\": " << row.rate;
    for (int p = 0; p < 2; ++p) {
      const PolicyCell& cell = row.cell[p];
      os << ",\n     "
         << bench::json_str(to_string(p ? sim::RepairPolicy::Reroute
                                        : sim::RepairPolicy::DropAffected))
         << ": {\"net_profit\": " << cell.net_profit
         << ", \"retention\": " << cell.retention
         << ", \"refunds\": " << cell.refunds
         << ", \"victims\": " << cell.stats.victims
         << ", \"rerouted\": " << cell.stats.rerouted
         << ", \"dropped\": " << cell.stats.dropped
         << ", \"repairs\": " << cell.stats.repairs
         << ", \"shed_rounds\": " << cell.stats.shed_rounds << "}";
    }
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const std::string telemetry_path = args.get("telemetry-json", "");
  const std::string baseline_path = args.get("baseline-json", "");
  sim::Scenario scenario;
  scenario.network = sim::Network::B4;
  scenario.num_requests = args.get_int("requests", 40);
  scenario.seed = static_cast<std::uint64_t>(args.get_int("seed", 13));
  const int trials = args.get_int("trials", 3);
  if (args.help_requested()) {
    std::cout << args.usage(
        "bench_fault_tolerance: profit retention of the drop vs reroute "
        "repair policies under a sweep of fault rates");
    return 0;
  }
  args.finish();
  if (trials < 1) {
    std::cerr << "--trials must be >= 1\n";
    return 1;
  }

  const core::SpmInstance instance = sim::make_instance(scenario);
  Rng decide_rng(scenario.seed * 31 + 1);
  const core::MetisResult decision = core::run_metis(instance, decide_rng);
  std::cout << "=== Extension: fault tolerance on "
            << to_string(scenario.network) << ", "
            << instance.num_requests() << " requests (seed " << scenario.seed
            << ", " << trials << " fault trials/rate) ===\n"
            << "fault-free decision: profit " << decision.best.profit << ", "
            << decision.best.accepted << " accepted\n\n";
  if (decision.best.accepted == 0) {
    std::cerr << "BUG: fault-free decision accepted nothing; pick another "
                 "seed (--seed)\n";
    return 1;
  }

  const std::vector<double> rates = {0.0, 0.25, 0.5, 1.0, 2.0};
  std::vector<SweepRow> rows;
  for (double rate : rates) {
    SweepRow row;
    row.rate = rate;
    for (const sim::RepairPolicy policy :
         {sim::RepairPolicy::DropAffected, sim::RepairPolicy::Reroute}) {
      row.cell[policy == sim::RepairPolicy::Reroute] =
          replay(instance, decision, policy, rate, scenario.seed, trials,
                 decision.best.profit);
    }
    rows.push_back(row);
  }

  TablePrinter table({"rate", "policy", "net profit", "retention", "refunds",
                      "victims", "rerouted", "dropped", "repairs",
                      "shed rounds", "replay ms"});
  for (const SweepRow& row : rows) {
    for (int p = 0; p < 2; ++p) {
      const PolicyCell& cell = row.cell[p];
      table.add_row({row.rate,
                     to_string(p ? sim::RepairPolicy::Reroute
                                 : sim::RepairPolicy::DropAffected),
                     cell.net_profit, cell.retention, cell.refunds,
                     static_cast<long long>(cell.stats.victims),
                     static_cast<long long>(cell.stats.rerouted),
                     static_cast<long long>(cell.stats.dropped),
                     static_cast<long long>(cell.stats.repairs),
                     static_cast<long long>(cell.stats.shed_rounds),
                     cell.repair_ms});
    }
  }
  metis::bench::emit(table, csv, "profit retention vs fault rate");

  // Acceptance invariants: the fault-free row retains everything exactly,
  // and reroute repair never banks less than the drop baseline.
  for (const SweepRow& row : rows) {
    const double drop = row.cell[0].retention;
    const double reroute = row.cell[1].retention;
    if (row.rate == 0.0 && (drop != 1.0 || reroute != 1.0)) {
      std::cerr << "BUG: rate 0 must retain the fault-free profit exactly "
                << "(drop " << drop << ", reroute " << reroute << ")\n";
      return 1;
    }
    if (reroute + 1e-9 < drop) {
      std::cerr << "BUG: reroute retained " << reroute << " < drop " << drop
                << " at fault rate " << row.rate << "\n";
      return 1;
    }
  }

  if (!baseline_path.empty()) {
    write_baseline_json(baseline_path, scenario, decision, trials, rows);
    std::cout << "baseline written to " << baseline_path << '\n';
  }
  metis::bench::write_telemetry(telemetry_path);
  return 0;
}
