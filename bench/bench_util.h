// Shared helpers for the figure-reproduction bench binaries.
//
// Every table bench accepts an optional `--csv` flag that switches output
// from aligned ASCII tables to RFC-4180 CSV (for plotting scripts), and the
// parallelized benches accept `--threads N` (0 = all hardware threads,
// 1 = serial; output is byte-identical for every value).
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "util/table.h"

namespace metis::bench {

inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

/// Parses `--threads N` / `--threads=N`; returns 0 (all hardware threads)
/// when absent.  Thread count is a wall-clock knob only — the determinism
/// contract (util/parallel.h) guarantees identical output for every value.
inline int threads_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
  }
  return 0;
}

/// Prints the table in the selected format.  In CSV mode `title` becomes a
/// comment line so multiple tables in one output stay distinguishable.
inline void emit(const TablePrinter& table, bool csv, const std::string& title) {
  if (csv) {
    if (!title.empty()) std::cout << "# " << title << '\n';
    std::cout << table.to_csv() << '\n';
  } else {
    if (!title.empty()) std::cout << "--- " << title << " ---\n";
    table.print(std::cout);
  }
}

}  // namespace metis::bench
