// Shared helpers for the figure-reproduction bench binaries.
//
// Every table bench accepts an optional `--csv` flag that switches output
// from aligned ASCII tables to RFC-4180 CSV (for plotting scripts), and the
// parallelized benches accept `--threads N` (0 = all hardware threads,
// 1 = serial; output is byte-identical for every value).  All benches
// accept `--telemetry-json <path>` to dump the global telemetry registry
// (counters, gauges, histograms, span tree) as JSON on exit.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/table.h"
#include "util/telemetry.h"

namespace metis::bench {

/// Quoted, escaped JSON string — the same escaper the telemetry export
/// uses (util/json.h), so baseline writers never emit malformed JSON when
/// a policy or network name grows a quote or backslash.
inline std::string json_str(std::string_view s) { return json::escaped(s); }

inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

/// Parses `--threads N` / `--threads=N`; returns 0 (all hardware threads)
/// when absent.  Thread count is a wall-clock knob only — the determinism
/// contract (util/parallel.h) guarantees identical output for every value.
inline int threads_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
  }
  return 0;
}

/// Parses and REMOVES `--shards N` / `--shards=N` from argv; returns 1
/// (monolithic) when absent.  Removal matters for the google-benchmark
/// drivers, whose Initialize() rejects unknown flags; the table benches
/// parse the same flag through ArgParser instead.
inline int take_shards_arg(int& argc, char** argv) {
  int shards = 1;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return shards > 0 ? shards : 1;
}

/// Parses and REMOVES `--telemetry-json <path>` / `--telemetry-json=<path>`
/// from argv; returns the path, or "" when absent.  Removal matters for the
/// google-benchmark drivers, whose Initialize() rejects unknown flags.
inline std::string take_telemetry_json_arg(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--telemetry-json=", 17) == 0) {
      path = argv[i] + 17;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

/// Writes the global telemetry registry to `path` as JSON.  No-op when
/// `path` is empty.  With METIS_TELEMETRY=OFF this still writes valid JSON
/// ({"telemetry": false}), so plotting scripts never see a missing file.
inline void write_telemetry(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open telemetry output: " + path);
  telemetry::Registry::global().write_json(out);
  out << '\n';
}

/// Prints the table in the selected format.  In CSV mode `title` becomes a
/// comment line so multiple tables in one output stay distinguishable.
inline void emit(const TablePrinter& table, bool csv, const std::string& title) {
  if (csv) {
    if (!title.empty()) std::cout << "# " << title << '\n';
    std::cout << table.to_csv() << '\n';
  } else {
    if (!title.empty()) std::cout << "--- " << title << " ---\n";
    table.print(std::cout);
  }
}

}  // namespace metis::bench
