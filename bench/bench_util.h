// Shared helpers for the figure-reproduction bench binaries.
//
// Every table bench accepts an optional `--csv` flag that switches output
// from aligned ASCII tables to RFC-4180 CSV (for plotting scripts).
#pragma once

#include <cstring>
#include <iostream>
#include <string>

#include "util/table.h"

namespace metis::bench {

inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

/// Prints the table in the selected format.  In CSV mode `title` becomes a
/// comment line so multiple tables in one output stay distinguishable.
inline void emit(const TablePrinter& table, bool csv, const std::string& title) {
  if (csv) {
    if (!title.empty()) std::cout << "# " << title << '\n';
    std::cout << table.to_csv() << '\n';
  } else {
    if (!title.empty()) std::cout << "--- " << title << " ---\n";
    table.print(std::cout);
  }
}

}  // namespace metis::bench
