// Microbenchmarks of the LP substrate (google-benchmark): the simplex
// solver on the RL-SPM / BL-SPM relaxations that dominate Metis's runtime,
// and the branch & bound solver on small exact instances.  These quantify
// the substitution of Gurobi by our own solver (DESIGN.md section 2).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/lp_builder.h"
#include "core/metis.h"
#include "lp/mip.h"
#include "lp/presolve.h"
#include "lp/simplex.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace {

using namespace metis;

core::SpmInstance instance_for(int k, sim::Network net) {
  sim::Scenario s;
  s.network = net;
  s.num_requests = k;
  s.seed = 1;
  return sim::make_instance(s);
}

void BM_RlSpmRelaxation_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  const auto model = core::build_rl_spm(instance);
  const lp::SimplexSolver solver;
  lp::SolveStats stats;
  for (auto _ : state) {
    const auto sol = solver.solve(model.problem);
    benchmark::DoNotOptimize(sol.objective);
    stats = sol.stats;
  }
  state.counters["rows"] = model.problem.num_rows();
  state.counters["cols"] = model.problem.num_variables();
  state.counters["simplex_iters"] = static_cast<double>(stats.iterations);
  state.counters["factorizations"] = stats.factorizations;
  state.counters["presolve_rm_rows"] = stats.presolve_removed_rows;
  state.counters["presolve_rm_cols"] = stats.presolve_removed_cols;
}
BENCHMARK(BM_RlSpmRelaxation_B4)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_BlSpmRelaxation_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  core::ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 10);
  const auto model = core::build_bl_spm(instance, caps);
  const lp::SimplexSolver solver;
  lp::SolveStats stats;
  for (auto _ : state) {
    const auto sol = solver.solve(model.problem);
    benchmark::DoNotOptimize(sol.objective);
    stats = sol.stats;
  }
  state.counters["simplex_iters"] = static_cast<double>(stats.iterations);
  state.counters["factorizations"] = stats.factorizations;
}
BENCHMARK(BM_BlSpmRelaxation_B4)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_ModelBuild_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  for (auto _ : state) {
    const auto model = core::build_rl_spm(instance);
    benchmark::DoNotOptimize(model.problem.num_rows());
  }
}
BENCHMARK(BM_ModelBuild_B4)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_Presolve_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  const auto model = core::build_rl_spm(instance);
  for (auto _ : state) {
    const auto pr = lp::presolve(model.problem);
    benchmark::DoNotOptimize(pr.reduced.num_rows());
  }
  const auto pr = lp::presolve(model.problem);
  state.counters["removed_rows"] = pr.removed_rows;
  state.counters["removed_cols"] = pr.removed_columns;
}
BENCHMARK(BM_Presolve_B4)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_RlSpmPresolvedSolve_B4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  const auto model = core::build_rl_spm(instance);
  const auto pr = lp::presolve(model.problem);
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    const auto sol = solver.solve(pr.reduced);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_RlSpmPresolvedSolve_B4)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_MipExact_SubB4(benchmark::State& state) {
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::SubB4);
  const auto model = core::build_spm(instance);
  lp::MipOptions options;
  options.max_nodes = 20000;
  options.time_limit_seconds = 10;
  const lp::MipSolver solver(options);
  for (auto _ : state) {
    const auto result = solver.solve(model.problem, model.integer_columns());
    benchmark::DoNotOptimize(result.objective);
    state.counters["nodes"] = static_cast<double>(result.nodes);
  }
}
BENCHMARK(BM_MipExact_SubB4)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The headline comparison for the warm-start work: the full Metis
// alternation LP sequence solved with warm starts + presolve (arg1 = 1)
// against the cold dense baseline (arg1 = 0: every relaxation solved from
// the slack basis on the unreduced problem, the pre-sparse behaviour).
// Convergence mode (theta = 0) runs the loop until the accepted set is
// stable, the regime basis reuse targets: once acceptance stops changing,
// every re-solve keeps its LP shape and warm-starts.  Compare the
// `simplex_iters` counters between the two variants — the accelerated run
// must need >= 3x fewer total iterations while `profit` agrees within 1e-6
// relative (see bench/lp_solver_baseline.json for the recorded numbers).
void BM_MetisAlternation_B4(benchmark::State& state) {
  const bool accelerated = state.range(1) != 0;
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  core::MetisOptions options;
  options.theta = 0;
  options.warm_start = accelerated;
  options.maa.lp.presolve = accelerated;
  options.taa.lp.presolve = accelerated;
  core::MetisResult result;
  for (auto _ : state) {
    Rng rng(7);
    result = core::run_metis(instance, rng, options);
    benchmark::ClobberMemory();
  }
  state.counters["simplex_iters"] =
      static_cast<double>(result.lp_stats.iterations);
  state.counters["factorizations"] = result.lp_stats.factorizations;
  state.counters["warm_starts"] = result.lp_stats.warm_starts;
  state.counters["cold_starts"] = result.lp_stats.cold_starts;
  state.counters["profit"] = result.best.profit;
}
BENCHMARK(BM_MetisAlternation_B4)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Unit(benchmark::kMillisecond);

// Pricing-rule sweep (arg1: 0 = Dantzig full scan, 1 = devex partial
// pricing) on the same convergence-mode alternation workload, with warm
// starts and presolve on in both variants so the pricing rule is the only
// lever.  Compare `simplex_iters` and wall-clock between the two rows and
// against bench/lp_solver_baseline.json.  The honest contract (measured,
// see EXPERIMENTS.md §pricing): on these small, well-scaled path-packing
// LPs Dantzig's profit-greedy entering choice is already near-optimal, so
// devex runs at ~1.05x the Dantzig iteration count — the win is per-pass
// pricing work, where `partial_hits` (passes satisfied inside a rotating
// candidate window) must dominate `full_fallbacks` (passes that walked the
// whole nonbasic ring).  `profit` must agree with Dantzig's to within the
// alternate-optimum wobble of the rounding pipeline (the two rules stop at
// different vertices of the same optimal face, so accepted sets may differ
// while every LP objective matches exactly).
void BM_MetisPricing_B4(benchmark::State& state) {
  const lp::PricingRule rule = state.range(1) != 0 ? lp::PricingRule::Devex
                                                   : lp::PricingRule::Dantzig;
  const auto instance =
      instance_for(static_cast<int>(state.range(0)), sim::Network::B4);
  core::MetisOptions options;
  options.theta = 0;
  options.maa.lp.pricing = rule;
  options.taa.lp.pricing = rule;
  core::MetisResult result;
  for (auto _ : state) {
    Rng rng(7);
    result = core::run_metis(instance, rng, options);
    benchmark::ClobberMemory();
  }
  int accepted = 0;
  for (int choice : result.schedule.path_choice) {
    if (choice != core::kDeclined) ++accepted;
  }
  state.counters["simplex_iters"] =
      static_cast<double>(result.lp_stats.iterations);
  state.counters["pricing_passes"] =
      static_cast<double>(result.lp_stats.pricing_passes);
  state.counters["partial_hits"] =
      static_cast<double>(result.lp_stats.partial_hits);
  state.counters["full_fallbacks"] =
      static_cast<double>(result.lp_stats.full_fallbacks);
  state.counters["profit"] = result.best.profit;
  state.counters["accepted"] = accepted;
}
BENCHMARK(BM_MetisPricing_B4)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (instead of benchmark_main): `--telemetry-json` must be
// stripped before benchmark::Initialize, which rejects unknown flags.
int main(int argc, char** argv) {
  const std::string telemetry_path =
      metis::bench::take_telemetry_json_arg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  metis::bench::write_telemetry(telemetry_path);
  return 0;
}
