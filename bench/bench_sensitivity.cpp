// Extension — sensitivity of the headline comparison to the synthetic value
// model.  The paper does not publish its value distribution; DESIGN.md §2
// documents ours (volume-proportional bids with a bargain segment).  This
// bench sweeps the two calibration knobs and shows that the *ordering*
// Metis >= accept-all and Metis vs EcoFlow is not an artifact of one
// parameter choice:
//   * bargain fraction 0 -> accepting everything becomes near-optimal and
//     all selective policies converge to it;
//   * larger bargain fractions / lower market prices widen the gap in the
//     selective policies' favour.
//
// Every (sweep point, repetition) cell is independent — own instance, own
// deterministically seeded Rng — so the whole grid runs through
// parallel_map; pass `--threads N` to pin the worker count (output is
// byte-identical for every value).
#include <iostream>
#include <vector>

#include "baselines/ecoflow.h"
#include "core/maa.h"
#include "core/metis.h"
#include "bench_util.h"
#include "sim/scenario.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

constexpr int kReps = 2;

struct Point {
  double accept_all = 0;
  double ecoflow = 0;
  double metis = 0;
};

/// One repetition of one sweep point.
Point run_cell(metis::sim::Scenario scenario, int rep) {
  using namespace metis;
  Point point;
  scenario.seed = 1 + rep;
  const core::SpmInstance instance = sim::make_instance(scenario);
  Rng rng(11 + rep);
  core::MaaOptions maa_options;
  maa_options.rounding_trials = 8;
  const core::MaaResult maa = core::run_maa(instance, {}, rng, maa_options);
  if (maa.ok()) {
    point.accept_all =
        core::evaluate_with_plan(instance, maa.schedule, maa.plan).profit;
  }
  point.ecoflow = baselines::run_ecoflow(instance).profit;
  const core::MetisResult m = core::run_metis(instance, rng);
  point.metis = m.best.profit;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  const int threads = bench::threads_arg(argc, argv);

  const std::vector<double> fractions = {0.0, 0.1, 0.25, 0.4};
  const std::vector<double> prices = {1.5, 2.0, 2.5, 3.5};

  // Both sweeps' scenarios as one flat work list for better load balance.
  std::vector<sim::Scenario> scenarios;
  for (double fraction : fractions) {
    sim::Scenario scenario;
    scenario.network = sim::Network::B4;
    scenario.num_requests = 200;
    scenario.workload.low_value_fraction = fraction;
    scenarios.push_back(scenario);
  }
  for (double vps : prices) {
    sim::Scenario scenario;
    scenario.network = sim::Network::B4;
    scenario.num_requests = 200;
    scenario.workload.value_per_unit_slot = vps;
    scenarios.push_back(scenario);
  }

  const std::vector<Point> cells = parallel_map(
      static_cast<int>(scenarios.size()) * kReps,
      [&](int index) {
        return run_cell(scenarios[index / kReps], index % kReps);
      },
      threads);

  // Serial reduction in cell order: repetitions of each point average in
  // the same sequence the historical serial loop used.
  std::vector<Point> points(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (int rep = 0; rep < kReps; ++rep) {
      const Point& cell = cells[s * kReps + rep];
      points[s].accept_all += cell.accept_all;
      points[s].ecoflow += cell.ecoflow;
      points[s].metis += cell.metis;
    }
    points[s].accept_all /= kReps;
    points[s].ecoflow /= kReps;
    points[s].metis /= kReps;
  }

  std::cout << "=== Sensitivity: bargain-bidder fraction (B4, K=200) ===\n\n";
  TablePrinter bargain({"low-value fraction", "accept-all", "EcoFlow", "Metis",
                        "Metis/accept-all"});
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const Point& p = points[i];
    bargain.add_row({fractions[i], p.accept_all, p.ecoflow, p.metis,
                     p.accept_all != 0 ? p.metis / p.accept_all : 0.0});
  }
  bench::emit(bargain, csv, "");

  std::cout << "=== Sensitivity: market price level (B4, K=200) ===\n\n";
  TablePrinter price({"value per unit-slot", "accept-all", "EcoFlow", "Metis",
                      "Metis/accept-all"});
  for (std::size_t i = 0; i < prices.size(); ++i) {
    const Point& p = points[fractions.size() + i];
    price.add_row({prices[i], p.accept_all, p.ecoflow, p.metis,
                   p.accept_all != 0 ? p.metis / p.accept_all : 0.0});
  }
  bench::emit(price, csv, "");
  std::cout << "Metis dominates accept-all across the sweep; the margin\n"
               "shrinks to ~1x only when no bargain segment exists (every\n"
               "bid profitable) and grows as declining matters more.\n";
  bench::write_telemetry(telemetry_path);
  return 0;
}
