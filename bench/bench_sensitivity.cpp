// Extension — sensitivity of the headline comparison to the synthetic value
// model.  The paper does not publish its value distribution; DESIGN.md §2
// documents ours (volume-proportional bids with a bargain segment).  This
// bench sweeps the two calibration knobs and shows that the *ordering*
// Metis >= accept-all and Metis vs EcoFlow is not an artifact of one
// parameter choice:
//   * bargain fraction 0 -> accepting everything becomes near-optimal and
//     all selective policies converge to it;
//   * larger bargain fractions / lower market prices widen the gap in the
//     selective policies' favour.
#include <iostream>

#include "baselines/ecoflow.h"
#include "core/maa.h"
#include "core/metis.h"
#include "bench_util.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

struct Point {
  double accept_all = 0;
  double ecoflow = 0;
  double metis = 0;
};

Point run_point(metis::sim::Scenario scenario) {
  using namespace metis;
  Point point;
  const int reps = 2;
  for (int rep = 0; rep < reps; ++rep) {
    scenario.seed = 1 + rep;
    const core::SpmInstance instance = sim::make_instance(scenario);
    Rng rng(11 + rep);
    core::MaaOptions maa_options;
    maa_options.rounding_trials = 8;
    const core::MaaResult maa = core::run_maa(instance, {}, rng, maa_options);
    if (maa.ok()) {
      point.accept_all +=
          core::evaluate_with_plan(instance, maa.schedule, maa.plan).profit;
    }
    point.ecoflow += baselines::run_ecoflow(instance).profit;
    const core::MetisResult m = core::run_metis(instance, rng);
    point.metis += m.best.profit;
  }
  point.accept_all /= reps;
  point.ecoflow /= reps;
  point.metis /= reps;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);

  std::cout << "=== Sensitivity: bargain-bidder fraction (B4, K=200) ===\n\n";
  TablePrinter bargain({"low-value fraction", "accept-all", "EcoFlow", "Metis",
                        "Metis/accept-all"});
  for (double fraction : {0.0, 0.1, 0.25, 0.4}) {
    sim::Scenario scenario;
    scenario.network = sim::Network::B4;
    scenario.num_requests = 200;
    scenario.workload.low_value_fraction = fraction;
    const Point p = run_point(scenario);
    bargain.add_row({fraction, p.accept_all, p.ecoflow, p.metis,
                     p.accept_all != 0 ? p.metis / p.accept_all : 0.0});
  }
  bench::emit(bargain, csv, "");

  std::cout << "=== Sensitivity: market price level (B4, K=200) ===\n\n";
  TablePrinter price({"value per unit-slot", "accept-all", "EcoFlow", "Metis",
                      "Metis/accept-all"});
  for (double vps : {1.5, 2.0, 2.5, 3.5}) {
    sim::Scenario scenario;
    scenario.network = sim::Network::B4;
    scenario.num_requests = 200;
    scenario.workload.value_per_unit_slot = vps;
    const Point p = run_point(scenario);
    price.add_row({vps, p.accept_all, p.ecoflow, p.metis,
                   p.accept_all != 0 ? p.metis / p.accept_all : 0.0});
  }
  bench::emit(price, csv, "");
  std::cout << "Metis dominates accept-all across the sweep; the margin\n"
               "shrinks to ~1x only when no bargain segment exists (every\n"
               "bid profitable) and grows as declining matters more.\n";
  return 0;
}
