// Fig. 4c/4d — "TAA vs Amoeba" under fixed uniform bandwidth.
//
// Following the paper's setup ("we set the bandwidth of links in the B4
// network to 100Gbps, i.e., 10 units of bandwidth"), every link gets 10
// units and the request count sweeps until capacity binds.  Fig. 4c is the
// service revenue, Fig. 4d the number of accepted requests; the paper
// reports TAA up to 50.4% more revenue and up to 33% more acceptances.
#include <iostream>

#include "bench_util.h"
#include "sim/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  sim::Fig4cdConfig config;
  config.sweep.request_counts = {200, 400, 600, 800, 1000};
  config.sweep.seed = 1;
  config.sweep.repetitions = 2;
  config.uniform_capacity = 10;

  std::cout << "=== Fig. 4c/4d: TAA vs Amoeba, B4 with 100 Gbps links ===\n\n";
  const auto rows = sim::run_fig4cd(config);

  TablePrinter revenue({"requests", "TAA revenue", "Amoeba revenue",
                        "TAA/Amoeba", "LP bound"});
  for (const auto& r : rows) {
    revenue.add_row({static_cast<long long>(r.num_requests), r.taa_revenue,
                     r.amoeba_revenue,
                     r.amoeba_revenue > 0 ? r.taa_revenue / r.amoeba_revenue : 0.0,
                     r.lp_revenue_bound});
  }
    bench::emit(revenue, csv, "Fig. 4c: service revenue");

  TablePrinter accepted({"requests", "TAA accepted", "Amoeba accepted",
                         "TAA/Amoeba"});
  for (const auto& r : rows) {
    accepted.add_row({static_cast<long long>(r.num_requests), r.taa_accepted,
                      r.amoeba_accepted,
                      r.amoeba_accepted > 0 ? r.taa_accepted / r.amoeba_accepted
                                            : 0.0});
  }
    bench::emit(accepted, csv, "Fig. 4d: accepted requests");
  bench::write_telemetry(telemetry_path);
  return 0;
}
