// Fig. 3 — "Metis vs. Optimal solution on SUB-B4" (paper Section V.B.1).
//
// Reproduces all three panels on the SUB-B4 network:
//   3a: service profit of Metis, OPT(SPM) and OPT(RL-SPM);
//   3b: number of accepted requests;
//   3c: link utilization (min / avg / max across purchased links);
// plus the wall-clock comparison quoted in the text (OPT needs orders of
// magnitude longer than Metis).
//
// OPT columns are produced by branch & bound with a per-solve budget,
// warm-started as described in DESIGN.md; the `exact` column reports whether
// the optimum was proven within the budget.
#include <iostream>

#include "bench_util.h"
#include "sim/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  sim::Fig3Config config;
  config.sweep.request_counts = {20, 40, 60, 80, 100, 150, 200};
  config.sweep.seed = 1;
  config.sweep.repetitions = 2;
  config.theta = 24;
  config.mip.max_nodes = 60000;
  config.mip.time_limit_seconds = 8;

  std::cout << "=== Fig. 3: Metis vs OPT(SPM) vs OPT(RL-SPM), SUB-B4 ===\n\n";
  const auto rows = sim::run_fig3(config);

  TablePrinter profit({"requests", "Metis", "OPT(SPM)", "OPT(RL-SPM)",
                       "Metis/RL", "OPT/Metis", "exact"});
  for (const auto& r : rows) {
    profit.add_row({static_cast<long long>(r.num_requests),
                    r.metis.breakdown.profit, r.opt_spm.breakdown.profit,
                    r.opt_rl_spm.breakdown.profit,
                    r.opt_rl_spm.breakdown.profit != 0
                        ? r.metis.breakdown.profit / r.opt_rl_spm.breakdown.profit
                        : 0.0,
                    r.metis.breakdown.profit != 0
                        ? r.opt_spm.breakdown.profit / r.metis.breakdown.profit
                        : 0.0,
                    std::string(r.opt_exact ? "yes" : "no")});
  }
    bench::emit(profit, csv, "Fig. 3a: service profit");

  TablePrinter accepted({"requests", "Metis", "OPT(SPM)", "OPT(RL-SPM)"});
  for (const auto& r : rows) {
    accepted.add_row({static_cast<long long>(r.num_requests),
                      static_cast<long long>(r.metis.breakdown.accepted),
                      static_cast<long long>(r.opt_spm.breakdown.accepted),
                      static_cast<long long>(r.opt_rl_spm.breakdown.accepted)});
  }
    bench::emit(accepted, csv, "Fig. 3b: accepted requests");

  TablePrinter util({"requests", "Metis min/avg/max", "OPT(SPM) min/avg/max",
                     "OPT(RL-SPM) min/avg/max"});
  const auto fmt = [](const Summary& s) {
    char buffer[64];
    snprintf(buffer, sizeof(buffer), "%.2f / %.2f / %.2f", s.min, s.mean, s.max);
    return std::string(buffer);
  };
  for (const auto& r : rows) {
    util.add_row({static_cast<long long>(r.num_requests),
                  fmt(r.metis.utilization), fmt(r.opt_spm.utilization),
                  fmt(r.opt_rl_spm.utilization)});
  }
    bench::emit(util, csv, "Fig. 3c: link utilization");

  TablePrinter timing({"requests", "Metis ms", "OPT(SPM) ms", "OPT(RL-SPM) ms"});
  for (const auto& r : rows) {
    timing.add_row({static_cast<long long>(r.num_requests), r.metis_ms,
                    r.opt_spm_ms, r.opt_rl_spm_ms});
  }
    bench::emit(timing, csv, "Section V.B.1 runtime note (OPT >> Metis)");
  bench::write_telemetry(telemetry_path);
  return 0;
}
