// Fig. 4b — "the ratio of bandwidth cost with randomized rounding to that of
// the optimal scheduling in different network settings".
//
// Protocol follows the paper: solve the relaxed RL-SPM once, repeat the
// randomized rounding 1000 times, and compare the rounded cost against the
// optimal schedule.  The true optimum is bracketed: the LP relaxation cost
// is a lower bound (so "vs LP" over-states the ratio) and the warm-started
// branch & bound incumbent is an upper bound (so "vs ILP" under-states it
// unless `exact` is yes).  The paper reports the ratio staying below ~1.2 at
// its operating scale (hundreds of requests).
//
// The 1000 roundings per row run through parallel_map on index-addressed
// RNG streams; pass `--threads N` to pin the worker count.  Every column
// except the ILP reference is byte-identical across thread counts — the
// warm-started branch & bound runs under a wall-clock budget, so its
// incumbent (the upper bracket) can differ between any two runs, serial or
// not.  For a fully reproducible table set `ilp_reference = false`.
#include <iostream>

#include "bench_util.h"
#include "sim/experiments.h"
#include "util/table.h"

namespace {

void run(metis::sim::Fig4bConfig config, metis::TablePrinter& table) {
  for (const auto& r : metis::sim::run_fig4b(config)) {
    table.add_row({std::string(metis::sim::to_string(r.network)),
                   static_cast<long long>(r.num_requests),
                   static_cast<long long>(r.trials),
                   std::string(r.ilp_cost > 0
                                   ? (r.ilp_exact ? "ILP (exact)" : "ILP (best)")
                                   : "LP only"),
                   r.ratio_mean_vs_ilp, r.ratio_p95_vs_ilp, r.ratio_max_vs_ilp,
                   r.ratio_mean_vs_lp});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metis;
  const bool csv = bench::csv_mode(argc, argv);
  const std::string telemetry_path = bench::take_telemetry_json_arg(argc, argv);
  const int threads = bench::threads_arg(argc, argv);
  TablePrinter table({"network", "requests", "trials", "reference",
                      "mean vs ILP", "p95 vs ILP", "max vs ILP",
                      "mean vs LP bound"});
  {
    sim::Fig4bConfig config;
    config.network = sim::Network::SubB4;
    config.request_counts = {60, 100, 140};
    config.trials = 1000;
    config.seed = 1;
    config.threads = threads;
    config.mip.time_limit_seconds = 15;
    config.mip.max_nodes = 200000;
    run(config, table);
  }
  {
    sim::Fig4bConfig config;
    config.network = sim::Network::B4;
    config.request_counts = {200, 300, 400};
    config.trials = 1000;
    config.seed = 1;
    config.threads = threads;
    config.mip.time_limit_seconds = 15;
    config.mip.max_nodes = 100000;
    run(config, table);
  }

  std::cout << "=== Fig. 4b: randomized-rounding cost ratio (paper: < 1.2) "
               "===\n\n";
  bench::emit(table, csv, "");
  std::cout << "The true rounding/optimal ratio lies between the ILP and LP\n"
               "columns (equal to the ILP column when reference is exact).\n";
  bench::write_telemetry(telemetry_path);
  return 0;
}
