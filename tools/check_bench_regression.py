#!/usr/bin/env python3
"""Compare a bench baseline JSON against a freshly generated one.

The bench drivers (bench_shard, bench_online_admission, ...) emit
machine-readable baselines with --baseline-json; the blessed copies live in
bench/*_baseline.json.  This checker re-runs a bench (or takes a
pre-generated file) and verifies that every DETERMINISTIC field still
matches the blessed baseline:

  * timing fields (wall_ms, speedup, anything *_ms) are machine-dependent
    and only sanity-checked: finite, and strictly positive where the
    baseline is positive;
  * every other number must match within a tight relative tolerance
    (default 1e-9 — the values are deterministic, the tolerance only
    absorbs printf round-tripping);
  * strings/bools must match exactly.

Arrays of objects are joined on their identifying keys (requests, shards,
rate, batch_size, ...) rather than by position, so reordering is not a
diff.  With --allow-subset the current run may cover only some of the
baseline's rows (e.g. a quick `--requests 150` slice in CI) — extra
baseline rows are then skipped, but every row the current run DID produce
must still match.

Usage (standalone, from the repo root):

  # compare a pre-generated file
  tools/check_bench_regression.py --baseline bench/shard_baseline.json \
      --current /tmp/shard_now.json

  # or let the checker drive the bench itself
  tools/check_bench_regression.py --baseline bench/shard_baseline.json \
      --bench build/bench/bench_shard --bench-args="--requests 150" \
      --allow-subset

Registered as the `bench`-labeled ctest (see the top-level CMakeLists.txt);
documented in docs/TUNING.md.
"""

import argparse
import json
import math
import shlex
import subprocess
import sys
import tempfile

# Keys that identify a row inside an array of objects, in priority order.
ID_KEYS = ("requests", "shards", "rate", "batch_size", "arrivals", "name")

# Fields whose values depend on the machine and load, not the algorithm.
TIMING_SUFFIXES = ("_ms", "_seconds", "_sec")
TIMING_KEYS = {"speedup", "wall_ms", "threads"}


def is_timing_key(key: str) -> bool:
    return key in TIMING_KEYS or key.endswith(TIMING_SUFFIXES)


def row_key(obj: dict):
    return tuple((k, obj[k]) for k in ID_KEYS if k in obj)


class Comparator:
    def __init__(self, rel_tol: float, allow_subset: bool):
        self.rel_tol = rel_tol
        self.allow_subset = allow_subset
        self.errors = []
        self.checked = 0
        self.skipped_rows = 0

    def fail(self, path: str, message: str) -> None:
        self.errors.append(f"{path}: {message}")

    def compare(self, path: str, baseline, current) -> None:
        if isinstance(baseline, dict) and isinstance(current, dict):
            self.compare_dict(path, baseline, current)
        elif isinstance(baseline, list) and isinstance(current, list):
            self.compare_list(path, baseline, current)
        elif isinstance(baseline, bool) or isinstance(current, bool):
            # bool is an int subclass: handle before the numeric branch.
            self.checked += 1
            if baseline is not current:
                self.fail(path, f"expected {baseline}, got {current}")
        elif isinstance(baseline, (int, float)) and isinstance(current, (int, float)):
            self.compare_number(path, float(baseline), float(current))
        else:
            self.checked += 1
            if baseline != current:
                self.fail(path, f"expected {baseline!r}, got {current!r}")

    def compare_number(self, path: str, baseline: float, current: float) -> None:
        self.checked += 1
        key = path.rsplit(".", 1)[-1]
        if is_timing_key(key):
            if not math.isfinite(current) or (baseline > 0 and current <= 0):
                self.fail(path, f"timing value {current} fails the sanity check")
            return
        if not math.isclose(baseline, current, rel_tol=self.rel_tol, abs_tol=self.rel_tol):
            self.fail(path, f"expected {baseline!r}, got {current!r}")

    def compare_dict(self, path: str, baseline: dict, current: dict) -> None:
        for key, base_value in baseline.items():
            if key not in current:
                self.fail(f"{path}.{key}", "missing from current run")
                continue
            self.compare(f"{path}.{key}", base_value, current[key])
        for key in current:
            if key not in baseline:
                self.fail(f"{path}.{key}", "not present in the baseline "
                          "(regenerate the blessed file to add fields)")

    def compare_list(self, path: str, baseline: list, current: list) -> None:
        keyed = (baseline and current
                 and all(isinstance(x, dict) and row_key(x) for x in baseline)
                 and all(isinstance(x, dict) and row_key(x) for x in current))
        if not keyed:
            # Positional comparison (per_batch traces and scalar arrays).
            if len(baseline) != len(current):
                self.fail(path, f"length {len(baseline)} vs {len(current)}")
                return
            for i, (b, c) in enumerate(zip(baseline, current)):
                self.compare(f"{path}[{i}]", b, c)
            return
        current_by_key = {row_key(x): x for x in current}
        for row in baseline:
            key = row_key(row)
            label = ",".join(f"{k}={v}" for k, v in key)
            if key not in current_by_key:
                if self.allow_subset:
                    self.skipped_rows += 1
                    continue
                self.fail(f"{path}[{label}]", "row missing from current run "
                          "(use --allow-subset for partial sweeps)")
                continue
            self.compare(f"{path}[{label}]", row, current_by_key.pop(key))
        for key in current_by_key:
            label = ",".join(f"{k}={v}" for k, v in key)
            self.fail(f"{path}[{label}]", "row not present in the baseline")


def load_json(path: str, role: str):
    """Reads one input; a missing or malformed file is a usage error (a
    clean diagnostic and exit code 2), never a traceback."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.stderr.write(
            f"check_bench_regression: cannot read {role} file: {e}\n")
    except json.JSONDecodeError as e:
        sys.stderr.write(
            f"check_bench_regression: {role} file {path} is not valid "
            f"JSON: {e}\n")
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="blessed baseline JSON (bench/*_baseline.json)")
    parser.add_argument("--current",
                        help="pre-generated JSON from the same bench")
    parser.add_argument("--bench",
                        help="bench binary to run (writes --current itself)")
    parser.add_argument("--bench-args", default="",
                        help="extra flags for --bench, one shell-quoted string")
    parser.add_argument("--allow-subset", action="store_true",
                        help="current may cover only some baseline rows")
    parser.add_argument("--rel-tol", type=float, default=1e-9,
                        help="relative tolerance for deterministic numbers")
    args = parser.parse_args()
    if bool(args.current) == bool(args.bench):
        parser.error("exactly one of --current / --bench is required")

    current_path = args.current
    if args.bench:
        current_path = tempfile.mktemp(suffix=".json", prefix="bench_current_")
        cmd = [args.bench, *shlex.split(args.bench_args),
               "--baseline-json", current_path]
        print("running:", " ".join(cmd), flush=True)
        run = subprocess.run(cmd, stdout=subprocess.PIPE,
                             stderr=subprocess.STDOUT, text=True)
        if run.returncode != 0:
            sys.stderr.write(run.stdout)
            sys.stderr.write(f"bench exited with {run.returncode}\n")
            return 1

    baseline = load_json(args.baseline, "baseline")
    if baseline is None:
        return 2
    current = load_json(current_path, "current")
    if current is None:
        return 2

    comparator = Comparator(args.rel_tol, args.allow_subset)
    comparator.compare("$", baseline, current)
    for error in comparator.errors:
        sys.stderr.write(f"REGRESSION: {error}\n")
    if comparator.errors:
        sys.stderr.write(f"check_bench_regression: FAILED "
                         f"({len(comparator.errors)} mismatches, "
                         f"{comparator.checked} fields checked)\n")
        return 1
    subset = (f", {comparator.skipped_rows} baseline rows skipped"
              if comparator.skipped_rows else "")
    print(f"check_bench_regression: OK "
          f"({comparator.checked} fields checked{subset})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
