#!/bin/sh
# Markdown link checker: every intra-repo link target named in the
# documentation set must exist on disk.  External links (http/https/mailto)
# are out of scope — no network in CI.  Registered as the `docs`-labeled
# ctest (see the top-level CMakeLists.txt); also runnable standalone from
# the repo root:  tools/check_docs.sh [file.md ...]
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root" || exit 1

if [ "$#" -gt 0 ]; then
  files="$*"
else
  # The curated documentation set: top-level *.md plus docs/.  SNIPPETS.md
  # and PAPERS.md quote external material verbatim and are excluded.
  files="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md docs/*.md"
fi

fail=0
checked=0

check_target() {
  # $1 = markdown file containing the link, $2 = raw link target
  target=$2
  case $target in
    http://*|https://*|mailto:*|\#*) return 0 ;;  # external or same-page
  esac
  target=${target%%#*}                  # strip fragment
  [ -n "$target" ] || return 0
  case $target in
    /*) resolved=".$target" ;;          # repo-absolute
    *)  resolved="$(dirname -- "$1")/$target" ;;
  esac
  checked=$((checked + 1))
  if [ ! -e "$resolved" ]; then
    echo "DEAD LINK: $1 -> $2 (resolved: $resolved)" >&2
    fail=1
  fi
}

for f in $files; do
  [ -f "$f" ] || continue
  # Inline links [text](target) — possibly several per line.
  grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//' | while IFS= read -r t; do
    echo "$t"
  done > /tmp/check_docs_targets.$$ || true
  while IFS= read -r t; do
    check_target "$f" "$t"
  done < /tmp/check_docs_targets.$$
  rm -f /tmp/check_docs_targets.$$

  # Bare file references in prose: `path/file.md` style mentions of repo
  # documents (DESIGN.md §N, docs/ALGORITHMS.md, ...).
  grep -o '\(docs\|tools\|bench\|src\|tests\|examples\)/[A-Za-z0-9_./-]*\.\(md\|sh\|json\|h\|cpp\)' "$f" \
      | sort -u | while IFS= read -r t; do echo "$t"; done \
      > /tmp/check_docs_bare.$$ || true
  while IFS= read -r t; do
    checked=$((checked + 1))
    if [ ! -e "$t" ]; then
      echo "DEAD REFERENCE: $f -> $t" >&2
      fail=1
    fi
  done < /tmp/check_docs_bare.$$
  rm -f /tmp/check_docs_bare.$$
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK ($checked targets checked)"
exit 0
