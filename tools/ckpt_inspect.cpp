// ckpt_inspect: CLI for the checkpoint container format (src/persist/).
//
//   ckpt_inspect validate <file>     parse + fully decode; exit 0 iff clean
//   ckpt_inspect dump <file>         JSON debug export of the container
//   ckpt_inspect diff <a> <b>        per-section comparison; names the first
//                                    diverging section and the byte offset
//                                    where its payloads split
//
// `diff` is the divergence bisector of the kill/restore contract: when a
// resumed run's checkpoint differs from the uninterrupted run's at the same
// boundary, the first diverging section (meta cursors? LP warm-start state?
// path cache?) localizes which subsystem broke determinism.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "persist/checkpoint.h"
#include "persist/snapshot.h"

namespace {

using metis::persist::SnapshotError;
using metis::persist::SnapshotReader;

int usage() {
  std::cerr << "usage: ckpt_inspect validate <file>\n"
               "       ckpt_inspect dump <file>\n"
               "       ckpt_inspect diff <a> <b>\n";
  return 2;
}

int cmd_validate(const std::string& path) {
  const SnapshotReader reader = SnapshotReader::from_file(path);
  // Container framing is clean; now force a full payload decode so a
  // malformed section body (not just a flipped CRC) is also caught.
  const metis::persist::CheckpointKind kind = metis::persist::kind_of(reader);
  std::string kind_name;
  switch (kind) {
    case metis::persist::CheckpointKind::Online: {
      const auto ckpt = metis::persist::decode_online(reader);
      kind_name = "online";
      std::cout << "valid online checkpoint: boundary " << ckpt.boundary_time
                << ", " << ckpt.batches.size() << " batches, "
                << ckpt.total_accepted << "/" << ckpt.total_arrivals
                << " accepted\n";
      break;
    }
    case metis::persist::CheckpointKind::MultiCycle: {
      const auto ckpt = metis::persist::decode_multi_cycle(reader);
      kind_name = "multi-cycle";
      std::cout << "valid multi-cycle checkpoint: " << ckpt.cycles_done
                << " cycles done, " << ckpt.num_policies << " policies, "
                << ckpt.cells.size() << " cells\n";
      break;
    }
  }
  std::cout << reader.section_ids().size() << " sections:";
  for (std::uint32_t id : reader.section_ids()) {
    std::cout << ' ' << metis::persist::section_name(id) << '('
              << reader.section(id).size() << "B)";
  }
  std::cout << '\n';
  return 0;
}

int cmd_dump(const std::string& path) {
  const SnapshotReader reader = SnapshotReader::from_file(path);
  metis::persist::write_debug_json(reader, std::cout);
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const SnapshotReader a = SnapshotReader::from_file(path_a);
  const SnapshotReader b = SnapshotReader::from_file(path_b);

  const std::vector<std::uint32_t> ids_a = a.section_ids();
  const std::vector<std::uint32_t> ids_b = b.section_ids();
  if (ids_a != ids_b) {
    std::cout << "section lists differ:\n  " << path_a << ":";
    for (std::uint32_t id : ids_a)
      std::cout << ' ' << metis::persist::section_name(id);
    std::cout << "\n  " << path_b << ":";
    for (std::uint32_t id : ids_b)
      std::cout << ' ' << metis::persist::section_name(id);
    std::cout << '\n';
    return 1;
  }

  bool diverged = false;
  for (std::uint32_t id : ids_a) {
    const std::vector<std::uint8_t>& pa = a.section(id);
    const std::vector<std::uint8_t>& pb = b.section(id);
    if (pa == pb) {
      std::cout << "  " << metis::persist::section_name(id) << ": identical ("
                << pa.size() << " bytes)\n";
      continue;
    }
    // Bisect: first byte offset where the payloads split.
    std::size_t offset = 0;
    const std::size_t common = std::min(pa.size(), pb.size());
    while (offset < common && pa[offset] == pb[offset]) ++offset;
    std::cout << "  " << metis::persist::section_name(id) << ": DIFFERS ("
              << pa.size() << " vs " << pb.size()
              << " bytes, first divergence at payload offset " << offset
              << ")\n";
    if (!diverged) {
      diverged = true;
      std::cout << "first diverging section: "
                << metis::persist::section_name(id) << '\n';
    }
  }
  if (!diverged) {
    std::cout << "checkpoints are byte-identical\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "validate" && argc == 3) return cmd_validate(argv[2]);
    if (cmd == "dump" && argc == 3) return cmd_dump(argv[2]);
    if (cmd == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::cerr << "ckpt_inspect: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
