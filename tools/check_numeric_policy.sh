#!/usr/bin/env bash
# Numeric-policy gate (ctest label: numeric).
#
# The solver and algorithm layers must not carry inline numeric-literal
# epsilons: every tolerance is a named constant in src/util/numeric.h so the
# feasibility/optimality contract lives in exactly one place (see DESIGN.md,
# "Numerical contract").  This gate fails on any float literal with a
# negative exponent inside the gated directories — including comments, which
# have a way of becoming code.
set -u
cd "$(dirname "$0")/.."

# src/lp covers the simplex pricing/ratio-test/factorization code; the
# simulation, network and baseline layers ride along now that they are
# clean too.
GATED_DIRS="src/lp src/core src/sim src/net src/workload src/baselines"

matches=$(grep -rnE '[0-9][eE]-[0-9]' $GATED_DIRS || true)
if [ -n "$matches" ]; then
  echo "ERROR: inline epsilon literals in gated directories." >&2
  echo "Route them through named constants in src/util/numeric.h:" >&2
  echo "$matches" >&2
  exit 1
fi
echo "numeric policy: $GATED_DIRS clean"
