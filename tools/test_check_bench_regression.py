#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py.

Runs the checker as a subprocess (the same way ctest and CI invoke it) and
asserts on exit codes and diagnostics: a missing or malformed input file is
a clean usage error (exit 2, no traceback), a field mismatch or an extra
key is a regression (exit 1), --allow-subset skips absent rows but still
checks the rows that are present.

Registered as the `tooling`-labeled ctest (see the top-level
CMakeLists.txt): ctest -L tooling.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_regression.py")

BASELINE = {
    "bench": "shard",
    "rows": [
        {"requests": 100, "profit": 10.5, "accepted": 42, "wall_ms": 12.0},
        {"requests": 200, "profit": 21.25, "accepted": 77, "wall_ms": 30.0},
    ],
}


def run_checker(*args):
    return subprocess.run([sys.executable, CHECKER, *args],
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                          text=True)


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def test_identical_files_pass(self):
        baseline = self.write("baseline.json", BASELINE)
        current = self.write("current.json", BASELINE)
        run = run_checker("--baseline", baseline, "--current", current)
        self.assertEqual(run.returncode, 0, run.stderr)
        self.assertIn("OK", run.stdout)

    def test_missing_baseline_file_is_clean_usage_error(self):
        current = self.write("current.json", BASELINE)
        missing = os.path.join(self.dir.name, "no_such_baseline.json")
        run = run_checker("--baseline", missing, "--current", current)
        self.assertEqual(run.returncode, 2)
        self.assertIn("cannot read baseline file", run.stderr)
        self.assertNotIn("Traceback", run.stderr)

    def test_missing_current_file_is_clean_usage_error(self):
        baseline = self.write("baseline.json", BASELINE)
        missing = os.path.join(self.dir.name, "no_such_current.json")
        run = run_checker("--baseline", baseline, "--current", missing)
        self.assertEqual(run.returncode, 2)
        self.assertIn("cannot read current file", run.stderr)
        self.assertNotIn("Traceback", run.stderr)

    def test_malformed_json_is_clean_usage_error(self):
        baseline = self.write("baseline.json", "{not json")
        current = self.write("current.json", BASELINE)
        run = run_checker("--baseline", baseline, "--current", current)
        self.assertEqual(run.returncode, 2)
        self.assertIn("not valid JSON", run.stderr)
        self.assertNotIn("Traceback", run.stderr)

    def test_extra_key_in_current_fails(self):
        baseline = self.write("baseline.json", BASELINE)
        mutated = json.loads(json.dumps(BASELINE))
        mutated["surprise"] = 1
        current = self.write("current.json", mutated)
        run = run_checker("--baseline", baseline, "--current", current)
        self.assertEqual(run.returncode, 1)
        self.assertIn("not present in the baseline", run.stderr)

    def test_deterministic_field_mismatch_fails(self):
        baseline = self.write("baseline.json", BASELINE)
        mutated = json.loads(json.dumps(BASELINE))
        mutated["rows"][0]["profit"] = 10.6
        current = self.write("current.json", mutated)
        run = run_checker("--baseline", baseline, "--current", current)
        self.assertEqual(run.returncode, 1)
        self.assertIn("REGRESSION", run.stderr)
        self.assertIn("profit", run.stderr)

    def test_timing_fields_are_only_sanity_checked(self):
        baseline = self.write("baseline.json", BASELINE)
        mutated = json.loads(json.dumps(BASELINE))
        mutated["rows"][0]["wall_ms"] = 999.0  # machine-dependent: tolerated
        current = self.write("current.json", mutated)
        run = run_checker("--baseline", baseline, "--current", current)
        self.assertEqual(run.returncode, 0, run.stderr)

    def test_missing_row_fails_without_allow_subset(self):
        baseline = self.write("baseline.json", BASELINE)
        subset = json.loads(json.dumps(BASELINE))
        del subset["rows"][1]
        current = self.write("current.json", subset)
        run = run_checker("--baseline", baseline, "--current", current)
        self.assertEqual(run.returncode, 1)
        self.assertIn("row missing from current run", run.stderr)

    def test_allow_subset_skips_missing_rows_but_checks_present_ones(self):
        baseline = self.write("baseline.json", BASELINE)
        subset = json.loads(json.dumps(BASELINE))
        del subset["rows"][1]
        current = self.write("current.json", subset)
        run = run_checker("--baseline", baseline, "--current", current,
                          "--allow-subset")
        self.assertEqual(run.returncode, 0, run.stderr)
        self.assertIn("1 baseline rows skipped", run.stdout)

        # A mismatch in a row the subset DID produce still fails.
        subset["rows"][0]["accepted"] = 43
        current = self.write("current2.json", subset)
        run = run_checker("--baseline", baseline, "--current", current,
                          "--allow-subset")
        self.assertEqual(run.returncode, 1)
        self.assertIn("accepted", run.stderr)

    def test_rows_join_on_id_keys_not_position(self):
        baseline = self.write("baseline.json", BASELINE)
        reordered = json.loads(json.dumps(BASELINE))
        reordered["rows"].reverse()
        current = self.write("current.json", reordered)
        run = run_checker("--baseline", baseline, "--current", current)
        self.assertEqual(run.returncode, 0, run.stderr)

    def test_requires_exactly_one_input_source(self):
        baseline = self.write("baseline.json", BASELINE)
        run = run_checker("--baseline", baseline)
        self.assertEqual(run.returncode, 2)
        self.assertIn("exactly one of --current / --bench", run.stderr)


if __name__ == "__main__":
    unittest.main()
