// Fault injection & graceful degradation — the survivability layer.
//
// The paper's evaluation assumes the WAN never fails mid-cycle.  A real
// geo-distributed provider loses links, whole datacenters, and price
// stability while commitments are outstanding, and its realized profit
// depends on how gracefully the committed schedule degrades.  This module
// supplies:
//
//  * a deterministic, seeded fault-event stream (generate_fault_events):
//    link failures, link capacity degradation, DC outages, price shocks and
//    demand surges, drawn from index-addressed Rng::split sub-streams so the
//    same seed always yields the bit-identical stream;
//  * CommittedBook — the repair engine.  It owns the (mutable) topology and
//    the ledger of every request ever admitted, replays fault events against
//    the committed schedule, and repairs via core::run_metis_incremental:
//    survivors stay pinned on their reserved paths, victims on dead/shrunk
//    edges are rerouted or dropped (policy), drops are refunded
//    (core::RefundLedger), and infeasible repairs retry with bounded
//    exponential backoff, shedding the lowest-value commitments first.
//
// Everything here is deterministic in (seed, config) and independent of
// thread count; with an empty fault stream the simulators never construct a
// CommittedBook and their output is byte-identical to the fault-free build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/accounting.h"
#include "core/metis.h"
#include "net/paths.h"
#include "net/topology.h"
#include "persist/checkpoint.h"
#include "util/rng.h"
#include "workload/request.h"

namespace metis::sim {

enum class FaultKind {
  LinkFailure,   ///< a directed edge goes down for the rest of the cycle
  LinkDegrade,   ///< an edge's capacity shrinks to a fraction of its base
  NodeOutage,    ///< a DC dies: every incident edge goes down
  PriceShock,    ///< an ISP reprices an edge (affects future purchases)
  DemandSurge,   ///< a burst of extra requests hits the admission queue
};

std::string to_string(FaultKind kind);

struct FaultEvent {
  double time = 0;        ///< cycle time in slot units, in [0, T)
  FaultKind kind = FaultKind::LinkFailure;
  int target = -1;        ///< edge id (node id for NodeOutage; unused: surge)
  /// LinkDegrade: fraction of the base capacity kept (0,1).
  /// PriceShock: price multiplier (> 1).
  double magnitude = 1.0;
  int surge_arrivals = 0;  ///< DemandSurge only: extra requests injected

  bool operator==(const FaultEvent&) const = default;
};

struct FaultConfig {
  /// Mean fault events per slot (Poisson).  0 disables injection entirely —
  /// the simulators then run their historical fault-free code paths.
  double rate = 0;
  /// Relative weights of the five fault kinds (need not sum to 1).
  double weight_link_failure = 0.35;
  double weight_link_degrade = 0.25;
  double weight_node_outage = 0.10;
  double weight_price_shock = 0.20;
  double weight_demand_surge = 0.10;
  /// LinkDegrade keeps U(keep_min, keep_max) of the base capacity.
  double degrade_keep_min = 0.25;
  double degrade_keep_max = 0.75;
  /// PriceShock multiplies the edge price by U(shock_min, shock_max).
  double price_shock_min = 1.25;
  double price_shock_max = 3.0;
  /// Mean extra arrivals of one DemandSurge event (Poisson; 0 = empty surge).
  double surge_mean = 4.0;
  /// Rng::split stream id the event stream draws from — decoupled from the
  /// workload streams so enabling faults never perturbs the arrival draw.
  std::uint64_t stream = 0x0fa1;
};

/// The seeded fault stream for one cycle: slot s's events are drawn from
/// `base.split(config.stream).split(s)`, so the stream is bit-identical for
/// the same (base seed, config, topology shape) regardless of thread count
/// or draw order elsewhere.  Events are returned sorted by time.  Targets
/// are sampled uniformly over edges (nodes for outages).
std::vector<FaultEvent> generate_fault_events(const FaultConfig& config,
                                              const net::Topology& topo,
                                              int num_slots, const Rng& base);

/// What to do with commitments whose reserved path a fault killed/shrank.
enum class RepairPolicy {
  /// Naive baseline: drop every victim immediately (refund each).
  DropAffected,
  /// Re-enter victims into a repair re-decide (run_metis_incremental with
  /// survivors pinned): rerouted if a profitable live path exists, dropped
  /// with refund otherwise.
  Reroute,
};

std::string to_string(RepairPolicy policy);
/// Parses "drop" / "reroute" (the --repair-policy flag values).
RepairPolicy parse_repair_policy(const std::string& name);

struct RepairConfig {
  RepairPolicy policy = RepairPolicy::Reroute;
  /// Refund paid for a revoked commitment, as a fraction of its bid.
  double refund_factor = 1.0;
  /// Bound on the exponential-backoff shed loop: an infeasible repair sheds
  /// the 1, 2, 4, ... lowest-value commitments and re-solves, at most this
  /// many rounds.
  int max_shed_rounds = 4;
  /// Options of every repair / batch re-decide (edge_capacity is filled in
  /// by the book from the mutated topology; leave it null here).
  core::MetisOptions metis;
};

struct FaultStats {
  int injected = 0;         ///< fault events replayed
  int network_changes = 0;  ///< events that actually mutated the topology
  int repairs = 0;          ///< repair re-decides run
  int victims = 0;          ///< commitments hit by a fault
  int dropped = 0;          ///< commitments revoked (each refunded)
  int rerouted = 0;         ///< victims saved onto a live path
  int shed_rounds = 0;      ///< backoff rounds forced by infeasible repairs
  int surge_arrivals = 0;   ///< extra requests injected by demand surges
};

/// The fault-aware committed book: every request ever admitted, its current
/// decision (pending / accepted on a concrete reserved path / declined),
/// the mutable topology the cycle is running on, and the refund ledger.
///
/// Lifecycle: add_pending() arrivals, decide_pending() on batch flushes,
/// inject() on fault events (applies the mutation, sheds/reroutes victims,
/// runs the repair re-decide).  All entry points are deterministic in their
/// Rng argument.  The final book is validated by validate(): the accepted
/// schedule must pass sim::check_schedule and the purchase must physically
/// fit the mutated network.
class CommittedBook {
 public:
  CommittedBook(net::Topology topo, core::InstanceConfig config,
                RepairConfig repair);

  const net::Topology& topology() const { return topo_; }

  /// Queues one arrival; returns its book index.
  int add_pending(const workload::Request& request);
  int pending_count() const;

  /// Adopts a whole-cycle offline decision (multi-cycle simulator): every
  /// accepted request is committed on its concrete path, declined ones are
  /// final.  `schedule` must be feasible for `instance`, whose topology
  /// must equal this book's (same edges, same epoch).
  void adopt(const core::SpmInstance& instance, const core::Schedule& schedule);

  /// Decides every pending request with run_metis_incremental (survivors
  /// pinned on their reserved paths, via SpmInstance require_paths).
  /// Pending requests whose endpoints the mutated WAN can no longer connect
  /// are auto-declined (refunded if they were previously committed).  An
  /// infeasible solve triggers the bounded exponential-backoff shed loop.
  /// After the solve, a deterministic shed pass enforces the mutated
  /// network's capacities exactly (randomized rounding may overshoot the
  /// LP's caps).  Newly accepted decisions become commitments.
  core::MetisResult decide_pending(Rng& rng);

  /// Replays one fault event: mutates the topology, marks victims
  /// (dropping or re-queuing them per the repair policy) and — when the
  /// network changed and there is anything to re-decide — runs the repair
  /// re-decide.  DemandSurge events only update stats; the caller expands
  /// them into add_pending()+decide_pending() (it owns the generator).
  /// Returns true if the event mutated the network.
  bool inject(const FaultEvent& event, Rng& rng);

  // --- results ---------------------------------------------------------
  int size() const { return static_cast<int>(entries_.size()); }
  int accepted_count() const;
  /// Gross revenue/cost/profit of the current book at current prices (cost
  /// of the ceiled peak loads of the accepted schedule).
  core::ProfitBreakdown evaluate() const;
  /// Gross profit minus refunds paid — the number a provider banks.
  double net_profit() const;
  double refunds() const { return refunds_.refunded; }
  const FaultStats& stats() const { return stats_; }
  const lp::SolveStats& lp_stats() const { return lp_stats_; }
  std::size_t path_cache_hits() const { return cache_.hits(); }
  std::size_t path_cache_misses() const { return cache_.misses(); }
  std::size_t path_cache_stale() const { return cache_.stale(); }

  /// All requests in admission order / their reserved paths (empty path =
  /// pending or declined).
  std::vector<workload::Request> requests() const;
  std::vector<net::Path> reserved_paths() const;
  /// The purchase implied by the accepted schedule (ceiled peak loads).
  core::ChargingPlan plan() const;

  /// Feasibility oracle over the final state: rebuilds the compact accepted
  /// instance (reserved paths required), checks sim::check_schedule, plan
  /// coverage, capacity conformance against the mutated topology, and that
  /// no reservation crosses a disabled edge.  Empty = clean.
  std::vector<std::string> validate() const;

  // --- checkpoint/restore (src/persist/) -------------------------------
  /// Copies the book's full mutable state — entries, mutated topology,
  /// refund ledger, fault/LP counters, warm-start snapshots, path cache —
  /// into the checkpoint's fault-mode fields.
  void export_state(persist::OnlineCheckpoint& ckpt) const;
  /// Rehydrates the book from a checkpoint taken by export_state against
  /// the same pristine topology (shape pinned by the config fingerprint).
  /// The topology is restored through the epoch-preserving setters, so the
  /// reloaded PathCache image stays valid.
  void restore_state(const persist::OnlineCheckpoint& ckpt);

 private:
  enum class Status { Pending, Accepted, Declined };
  struct Entry {
    workload::Request request;
    Status status = Status::Pending;
    net::Path path;              ///< reserved concrete path when Accepted
    bool was_committed = false;  ///< a past decide accepted it (refund on drop)
  };

  core::LoadMatrix accepted_loads() const;
  std::vector<int> effective_caps() const;
  /// Drops entry `idx` (with refund if it was committed).
  void drop_entry(std::size_t idx);
  /// Sheds up to `count` lowest-value committed acceptances; returns the
  /// number shed.
  int shed_lowest_value(int count);
  /// Post-solve hard guarantee: sheds accepted requests (lowest value
  /// first) from every edge whose charged load exceeds the mutated
  /// capacity or that is disabled, until the book physically fits.
  void enforce_capacity();
  /// One unrepaired solve attempt over survivors + pending.
  struct Attempt {
    core::MetisResult result;
    std::vector<std::size_t> entry_of;   ///< instance index -> book index
    std::vector<net::Path> chosen_path;  ///< instance index -> decided path
    int num_committed = 0;               ///< pinned prefix length
  };
  Attempt attempt_decide(Rng& rng);

  net::Topology topo_;
  core::InstanceConfig config_;
  RepairConfig repair_;
  net::PathCache cache_;
  std::vector<Entry> entries_;
  core::IncrementalState state_;  ///< carries LP basis snapshots across decides
  core::RefundLedger refunds_;
  FaultStats stats_;
  lp::SolveStats lp_stats_;
};

}  // namespace metis::sim
