// BillingCycleSimulator: the long-run operational view of the paper's model.
//
// ISPs charge per billing cycle; the paper's evaluation decides one cycle in
// isolation.  This simulator plays *several consecutive cycles* — demand can
// grow cycle over cycle — and accounts each policy's cumulative profit on
// identical workloads, so the per-cycle gaps of Fig. 3/5 compound into the
// yearly revenue difference a provider would actually see.
//
// Every decision is validated (capacity + purchase coverage) before it is
// accounted; an infeasible decision is a bug and throws.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/faults.h"
#include "sim/metrics.h"
#include "sim/policy.h"
#include "sim/scenario.h"

namespace metis::sim {

struct SimulationConfig {
  /// Template for every cycle; `seed` is advanced per cycle, and
  /// `num_requests` grows by `demand_growth` per cycle (compounded).
  Scenario base;
  /// Number of consecutive billing cycles to play.
  int cycles = 6;
  /// Fractional request-count growth per cycle (0.15 = +15% per cycle).
  double demand_growth = 0;
  /// Worker threads for the (cycle x policy) grid (0 = all hardware
  /// threads, 1 = serial).  Every cell owns an independently seeded Rng and
  /// a per-cycle instance, so outcomes are byte-identical for every thread
  /// count — and identical to the historical serial run.  `decide_ms`
  /// readings naturally vary with machine load.
  int threads = 0;
  /// Fault injection (sim/faults.h).  faults.rate == 0 — the default —
  /// keeps the historical fault-free accounting, byte for byte.  With a
  /// positive rate, each cycle's decision is adopted into a CommittedBook
  /// and the cycle's seeded fault stream is replayed against it.  The
  /// stream is seeded by the cycle alone, so every policy faces identical
  /// faults — a fair degradation comparison.
  FaultConfig faults;
  RepairPolicy repair_policy = RepairPolicy::Reroute;
  /// Refund paid per revoked commitment, as a fraction of its bid.
  double refund_factor = 1.0;
  /// Backoff bound of the infeasible-repair shed loop.
  int max_shed_rounds = 4;

  // --- checkpoint/restore (src/persist/) -------------------------------
  /// Checkpoint cadence in cycles: with N > 0 and a checkpoint_path, run()
  /// executes the (cycle x policy) grid in blocks of N cycles and writes a
  /// checkpoint after each completed block still strictly inside the run.
  /// Cells are share-nothing (each seeds its Rng from its absolute
  /// (cycle, policy) index), so block-wise execution is byte-identical to
  /// the one-shot grid.  0 disables.
  int checkpoint_every = 0;
  /// Target file of the block checkpoint (overwritten atomically).
  std::string checkpoint_path;
  /// Also keep every block's snapshot as checkpoint_path + ".cycle<k>".
  bool checkpoint_keep_all = false;
  /// Resume: restore this snapshot and run only the remaining cycles.  The
  /// snapshot's config fingerprint (which covers the policy roster given to
  /// run()) must match exactly.
  std::string resume_path;
};

struct CycleOutcome {
  int cycle = 0;                  ///< 0-based cycle index
  int offered_requests = 0;       ///< size of the cycle's bid book
  /// The policy's decision, evaluated.  In fault mode: the *surviving*
  /// book after the cycle's fault replay, at post-shock prices (gross —
  /// refunds are separate).
  core::ProfitBreakdown result;
  double decide_ms = 0;           ///< wall-clock of Policy::decide
  // --- fault mode extras (zero in fault-free runs) ----------------------
  double refunds = 0;             ///< SLA refunds paid this cycle
  double net_profit = 0;          ///< result.profit − refunds
  FaultStats fault_stats;         ///< the cycle's injection/repair counters
};

/// One policy's whole run: per-cycle outcomes plus their sums (money in the
/// workload's value scale, counts in requests).
struct PolicyOutcome {
  std::string policy;                ///< Policy::name()
  std::vector<CycleOutcome> cycles;  ///< in cycle order
  double total_profit = 0;           ///< Σ cycle (gross) profit
  double total_revenue = 0;          ///< Σ cycle revenue
  double total_cost = 0;             ///< Σ cycle bandwidth cost
  int total_accepted = 0;            ///< Σ accepted requests
  int total_offered = 0;             ///< Σ offered requests
  double total_refunds = 0;          ///< Σ cycle refunds (fault mode)
  /// Σ cycle net profit — equals total_profit in fault-free runs.
  double total_net_profit = 0;
};

class BillingCycleSimulator {
 public:
  explicit BillingCycleSimulator(SimulationConfig config);

  /// Runs every policy over the same sequence of cycle workloads.
  /// Policies see identical instances; each gets an independent,
  /// deterministically seeded RNG.
  std::vector<PolicyOutcome> run(const std::vector<std::unique_ptr<Policy>>& policies) const;

  /// The instance a given cycle uses (exposed for tests/examples).
  core::SpmInstance cycle_instance(int cycle) const;

  /// Request count offered in a given cycle (after growth compounding).
  int cycle_requests(int cycle) const;

  /// FNV-1a fingerprint of every determinism-relevant config field plus the
  /// policy roster (names, in order).  Stored in each checkpoint; a resume
  /// whose fingerprint differs is rejected.  `threads` is excluded —
  /// outcomes are thread-count invariant by construction.
  std::uint64_t config_fingerprint(
      const std::vector<std::unique_ptr<Policy>>& policies) const;

 private:
  /// Adopts the cell's decision into a CommittedBook and replays the
  /// cycle's fault stream against it, rewriting `co`'s result/refund
  /// fields.  `rng` is the cell's RNG (repairs continue its sequence).
  void replay_faults(const core::SpmInstance& instance,
                     const Decision& decision, int cycle, Rng& rng,
                     CycleOutcome& co) const;

  SimulationConfig config_;
};

}  // namespace metis::sim
