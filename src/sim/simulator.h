// BillingCycleSimulator: the long-run operational view of the paper's model.
//
// ISPs charge per billing cycle; the paper's evaluation decides one cycle in
// isolation.  This simulator plays *several consecutive cycles* — demand can
// grow cycle over cycle — and accounts each policy's cumulative profit on
// identical workloads, so the per-cycle gaps of Fig. 3/5 compound into the
// yearly revenue difference a provider would actually see.
//
// Every decision is validated (capacity + purchase coverage) before it is
// accounted; an infeasible decision is a bug and throws.
#pragma once

#include <vector>

#include "sim/metrics.h"
#include "sim/policy.h"
#include "sim/scenario.h"

namespace metis::sim {

struct SimulationConfig {
  /// Template for every cycle; `seed` is advanced per cycle, and
  /// `num_requests` grows by `demand_growth` per cycle (compounded).
  Scenario base;
  /// Number of consecutive billing cycles to play.
  int cycles = 6;
  /// Fractional request-count growth per cycle (0.15 = +15% per cycle).
  double demand_growth = 0;
  /// Worker threads for the (cycle x policy) grid (0 = all hardware
  /// threads, 1 = serial).  Every cell owns an independently seeded Rng and
  /// a per-cycle instance, so outcomes are byte-identical for every thread
  /// count — and identical to the historical serial run.  `decide_ms`
  /// readings naturally vary with machine load.
  int threads = 0;
};

struct CycleOutcome {
  int cycle = 0;                  ///< 0-based cycle index
  int offered_requests = 0;       ///< size of the cycle's bid book
  core::ProfitBreakdown result;   ///< the policy's decision, evaluated
  double decide_ms = 0;           ///< wall-clock of Policy::decide
};

/// One policy's whole run: per-cycle outcomes plus their sums (money in the
/// workload's value scale, counts in requests).
struct PolicyOutcome {
  std::string policy;                ///< Policy::name()
  std::vector<CycleOutcome> cycles;  ///< in cycle order
  double total_profit = 0;           ///< Σ cycle profit
  double total_revenue = 0;          ///< Σ cycle revenue
  double total_cost = 0;             ///< Σ cycle bandwidth cost
  int total_accepted = 0;            ///< Σ accepted requests
  int total_offered = 0;             ///< Σ offered requests
};

class BillingCycleSimulator {
 public:
  explicit BillingCycleSimulator(SimulationConfig config);

  /// Runs every policy over the same sequence of cycle workloads.
  /// Policies see identical instances; each gets an independent,
  /// deterministically seeded RNG.
  std::vector<PolicyOutcome> run(const std::vector<std::unique_ptr<Policy>>& policies) const;

  /// The instance a given cycle uses (exposed for tests/examples).
  core::SpmInstance cycle_instance(int cycle) const;

  /// Request count offered in a given cycle (after growth compounding).
  int cycle_requests(int cycle) const;

 private:
  SimulationConfig config_;
};

}  // namespace metis::sim
