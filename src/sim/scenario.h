// Scenario: a named, seeded experiment configuration that deterministically
// expands into an SpmInstance.  Every bench and integration test builds its
// inputs through this one funnel so runs are reproducible and comparable.
#pragma once

#include <cstdint>
#include <string>

#include "core/instance.h"
#include "workload/generator.h"

namespace metis::sim {

enum class Network { B4, SubB4 };

std::string to_string(Network network);

struct Scenario {
  Network network = Network::B4;   ///< topology preset
  int num_requests = 100;          ///< bid-book size K (expected, if Poisson)
  std::uint64_t seed = 1;          ///< workload RNG seed
  core::InstanceConfig instance;   ///< num_slots (T), max_paths (L_i cap)
  workload::GeneratorConfig workload;  ///< rates/values model knobs
  /// If > 0, every link gets this uniform capacity (the Fig. 4c/4d setup);
  /// 0 leaves links uncapacitated.
  int uniform_capacity = 0;
  /// false: exactly num_requests requests with uniform start slots.
  /// true: per-slot arrival counts are Poisson with mean
  /// num_requests / num_slots, so the *expected* total is num_requests
  /// (the paper's "arrivals follow Poisson distribution" form).
  bool poisson_arrivals = false;
};

/// Builds the topology for `network` (with uniform capacity applied).
net::Topology make_network(const Scenario& scenario);

/// Expands the scenario into a ready instance (topology + generated
/// workload + candidate paths).
core::SpmInstance make_instance(const Scenario& scenario);

}  // namespace metis::sim
