#include "sim/validate.h"

#include <cmath>
#include <sstream>

#include "util/numeric.h"

namespace metis::sim {

std::vector<std::string> check_schedule(const core::SpmInstance& instance,
                                        const core::Schedule& schedule,
                                        const core::ChargingPlan& plan) {
  std::vector<std::string> violations;
  if (static_cast<int>(schedule.path_choice.size()) != instance.num_requests()) {
    violations.push_back("schedule size mismatch");
    return violations;
  }
  if (static_cast<int>(plan.units.size()) != instance.num_edges()) {
    violations.push_back("plan size mismatch");
    return violations;
  }
  for (int i = 0; i < instance.num_requests(); ++i) {
    const int j = schedule.path_choice[i];
    if (j == core::kDeclined) continue;
    if (j < 0 || j >= instance.num_paths(i)) {
      std::ostringstream os;
      os << "request " << i << ": path index " << j << " out of range";
      violations.push_back(os.str());
    }
  }
  if (!violations.empty()) return violations;

  const core::LoadMatrix loads = core::compute_loads(instance, schedule);
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    for (int t = 0; t < instance.num_slots(); ++t) {
      // Relative tolerance scaled by the purchased capacity: an absolute
      // slack that is negligible on a 1-unit edge would hide real
      // oversubscription on a large one, and vice versa.
      if (!num::approx_le(loads.at(e, t), plan.units[e], plan.units[e],
                          num::kOptTol)) {
        std::ostringstream os;
        os << "edge " << e << " slot " << t << ": load " << loads.at(e, t)
           << " exceeds capacity " << plan.units[e];
        violations.push_back(os.str());
      }
    }
  }
  return violations;
}

std::vector<std::string> check_plan_covers_schedule(
    const core::SpmInstance& instance, const core::Schedule& schedule,
    const core::ChargingPlan& plan) {
  std::vector<std::string> violations;
  const core::ChargingPlan needed =
      core::charging_from_loads(core::compute_loads(instance, schedule));
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    if (plan.units[e] < needed.units[e]) {
      std::ostringstream os;
      os << "edge " << e << ": purchased " << plan.units[e]
         << " units but schedule needs " << needed.units[e];
      violations.push_back(os.str());
    }
  }
  return violations;
}

std::vector<std::string> check_plan_within_capacity(
    const net::Topology& topology, const core::ChargingPlan& plan) {
  std::vector<std::string> violations;
  if (static_cast<int>(plan.units.size()) != topology.num_edges()) {
    violations.push_back("plan size mismatch");
    return violations;
  }
  for (net::EdgeId e = 0; e < topology.num_edges(); ++e) {
    if (plan.units[e] <= 0) continue;
    if (!topology.edge_enabled(e)) {
      std::ostringstream os;
      os << "edge " << e << ": purchased " << plan.units[e]
         << " units on a disabled edge";
      violations.push_back(os.str());
      continue;
    }
    const int cap = topology.edge(e).capacity_units;
    if (cap > 0 && plan.units[e] > cap) {
      std::ostringstream os;
      os << "edge " << e << ": purchased " << plan.units[e]
         << " units above link capacity " << cap;
      violations.push_back(os.str());
    }
  }
  return violations;
}

}  // namespace metis::sim
