#include "sim/policy.h"

#include <stdexcept>

#include "baselines/ecoflow.h"
#include "baselines/mincost.h"
#include "baselines/opt.h"
#include "core/accounting.h"

namespace metis::sim {

Decision MetisPolicy::decide(const core::SpmInstance& instance, Rng& rng) const {
  const core::MetisResult result = core::run_metis(instance, rng, options_);
  return Decision{result.schedule, result.plan};
}

Decision AcceptAllPolicy::decide(const core::SpmInstance& instance,
                                 Rng& rng) const {
  const core::MaaResult result = core::run_maa(instance, {}, rng, options_);
  if (!result.ok()) {
    throw std::runtime_error("AcceptAllPolicy: MAA failed with status " +
                             lp::to_string(result.status));
  }
  return Decision{result.schedule, result.plan};
}

Decision MinCostPolicy::decide(const core::SpmInstance& instance,
                               Rng& /*rng*/) const {
  const baselines::MinCostResult result = baselines::run_mincost(instance);
  return Decision{result.schedule, result.plan};
}

Decision EcoFlowPolicy::decide(const core::SpmInstance& instance,
                               Rng& /*rng*/) const {
  const baselines::EcoFlowResult result = baselines::run_ecoflow(instance);
  return Decision{result.schedule, result.plan};
}

Decision OptPolicy::decide(const core::SpmInstance& instance, Rng& rng) const {
  // Warm-start branch & bound from Metis so a budget can only improve.
  const core::MetisResult seed = core::run_metis(instance, rng);
  const baselines::OptResult result =
      baselines::run_opt_spm(instance, options_, &seed.schedule);
  if (!result.ok()) {
    throw std::runtime_error("OptPolicy: no incumbent found");
  }
  return Decision{result.schedule, result.plan};
}

std::vector<std::unique_ptr<Policy>> standard_policies() {
  return standard_policies(core::MetisOptions{});
}

std::vector<std::unique_ptr<Policy>> standard_policies(
    const core::MetisOptions& metis_options) {
  std::vector<std::unique_ptr<Policy>> policies;
  policies.push_back(std::make_unique<AcceptAllPolicy>());
  policies.push_back(std::make_unique<EcoFlowPolicy>());
  policies.push_back(std::make_unique<MetisPolicy>(metis_options));
  return policies;
}

}  // namespace metis::sim
