#include "sim/metrics.h"

namespace metis::sim {

SolutionMetrics measure(const core::SpmInstance& instance,
                        const core::Schedule& schedule) {
  const core::ChargingPlan plan =
      core::charging_from_loads(core::compute_loads(instance, schedule));
  return measure_with_plan(instance, schedule, plan);
}

SolutionMetrics measure_with_plan(const core::SpmInstance& instance,
                                  const core::Schedule& schedule,
                                  const core::ChargingPlan& plan) {
  SolutionMetrics metrics;
  metrics.breakdown = core::evaluate_with_plan(instance, schedule, plan);
  metrics.utilization = core::utilization_summary(instance, schedule, plan);
  return metrics;
}

}  // namespace metis::sim
