#include "sim/online.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/telemetry.h"

namespace metis::sim {
namespace {

// Rng::split stream ids of the fault replay's extra draw sequences,
// disjoint from the per-batch decide streams (small indices) and the fault
// event stream (FaultConfig::stream).
constexpr std::uint64_t kRepairStream = 0x0fa2;
constexpr std::uint64_t kSurgeStream = 0x0fa3;

}  // namespace

OnlineAdmissionSimulator::OnlineAdmissionSimulator(OnlineConfig config)
    : config_(std::move(config)) {
  if (config_.batch_size < 1) {
    throw std::invalid_argument("OnlineConfig: batch_size must be >= 1");
  }
  if (config_.max_batch_delay < 0) {
    throw std::invalid_argument("OnlineConfig: max_batch_delay must be >= 0");
  }
  if (config_.arrivals_per_slot < 0) {
    throw std::invalid_argument("OnlineConfig: arrivals_per_slot must be >= 0");
  }
  if (config_.refund_factor < 0) {
    throw std::invalid_argument("OnlineConfig: refund_factor must be >= 0");
  }
}

double OnlineAdmissionSimulator::arrival_rate() const {
  if (config_.arrivals_per_slot > 0) return config_.arrivals_per_slot;
  return static_cast<double>(config_.base.num_requests) /
         config_.base.instance.num_slots;
}

std::vector<workload::Arrival> OnlineAdmissionSimulator::arrivals() const {
  const net::Topology topo = make_network(config_.base);
  workload::GeneratorConfig wconfig = config_.base.workload;
  wconfig.num_slots = config_.base.instance.num_slots;
  const workload::RequestGenerator generator(topo, wconfig);
  Rng rng(config_.base.seed);
  return generator.generate_arrivals(arrival_rate(), rng);
}

core::MetisResult OnlineAdmissionSimulator::offline_oracle() const {
  std::vector<workload::Request> book;
  for (const workload::Arrival& a : arrivals()) book.push_back(a.request);
  core::SpmInstance instance(make_network(config_.base), std::move(book),
                             config_.base.instance);
  // Same stream id the replay gives its first batch: with one batch the
  // two runs draw identically, which is what makes them bit-identical.
  Rng rng = Rng(config_.base.seed).split(0);
  return core::run_metis(instance, rng, config_.metis);
}

OnlineResult OnlineAdmissionSimulator::run() const {
  // Fault-free replay stays byte-identical to the pre-fault-layer code: the
  // fault path is a separate function entered only on a positive rate.
  if (config_.faults.rate > 0) return run_with_faults();
  METIS_SPAN("online.run");
  const net::Topology topo = make_network(config_.base);
  const std::vector<workload::Arrival> stream = arrivals();

  net::PathCache cache(topo);
  net::PathCache* cache_ptr = config_.reuse_path_cache ? &cache : nullptr;

  OnlineResult result;
  result.total_arrivals = static_cast<int>(stream.size());
  result.schedule = core::Schedule::all_declined(0);
  result.plan = core::ChargingPlan::none(topo.num_edges());

  std::vector<workload::Request> book;  // every arrival so far, in order
  book.reserve(stream.size());
  core::IncrementalState state;

  const auto flush = [&](double flush_time) {
    METIS_SPAN("online.batch");
    const int batch_index = static_cast<int>(result.batches.size());
    const int committed_before = static_cast<int>(state.committed.size());
    BatchRecord rec;
    rec.batch = batch_index;
    rec.arrivals = static_cast<int>(book.size()) - committed_before;
    rec.flush_time = flush_time;

    const telemetry::Stopwatch decide_timer;
    core::SpmInstance instance(topo, book, config_.base.instance, cache_ptr);
    if (!config_.cross_batch_warm_start) {
      state.maa.clear();
      state.taa.clear();
    }
    // Index-addressed per-batch stream: the draw sequence of batch b does
    // not depend on how many batches preceded it, so the sweep over batch
    // sizes stays deterministic for any thread count.
    Rng rng = Rng(config_.base.seed).split(static_cast<std::uint64_t>(batch_index));
    const core::MetisResult decided =
        core::run_metis_incremental(instance, state, rng, config_.metis);
    rec.decide_ms = decide_timer.ms();
    telemetry::observe("online.decide_ms", rec.decide_ms);

    // Commit this batch's decisions: accepted stays accepted, declined is
    // final.  The committed prefix then covers the whole book.
    for (int i = committed_before; i < static_cast<int>(book.size()); ++i) {
      const int choice = decided.schedule.path_choice[i];
      state.committed.push_back(choice);
      if (choice != core::kDeclined) ++rec.accepted;
    }
    result.total_accepted += rec.accepted;
    rec.profit = decided.best.profit;
    rec.lp_stats = decided.lp_stats;
    result.lp_stats += decided.lp_stats;
    result.schedule = decided.schedule;
    result.plan = decided.plan;
    result.profit = decided.best;
    telemetry::count("online.batches");
    telemetry::gauge_set("online.profit", rec.profit);
    result.batches.push_back(std::move(rec));
  };

  // Arrival-ordered replay.  Deadline flushes happen *before* the arrival
  // that reveals time has passed the oldest queued request's deadline —
  // the simulator only advances its clock on events.
  double oldest_queued = 0;
  for (const workload::Arrival& a : stream) {
    const bool pending = book.size() > state.committed.size();
    if (pending && config_.max_batch_delay > 0 &&
        a.arrival_time > oldest_queued + config_.max_batch_delay) {
      flush(oldest_queued + config_.max_batch_delay);
    }
    if (book.size() == state.committed.size()) oldest_queued = a.arrival_time;
    book.push_back(a.request);
    if (static_cast<int>(book.size()) - static_cast<int>(state.committed.size()) >=
        config_.batch_size) {
      flush(a.arrival_time);
    }
  }
  // End of cycle: whatever is still queued gets decided at the cycle edge.
  if (book.size() > state.committed.size()) {
    flush(static_cast<double>(config_.base.instance.num_slots));
  }

  result.path_cache_hits = cache.hits();
  result.path_cache_misses = cache.misses();
  result.net_profit = result.profit.profit;  // no faults, nothing refunded
  return result;
}

OnlineResult OnlineAdmissionSimulator::run_with_faults() const {
  METIS_SPAN("online.run");
  const net::Topology topo = make_network(config_.base);
  const std::vector<workload::Arrival> stream = arrivals();
  const int num_slots = config_.base.instance.num_slots;
  const std::vector<FaultEvent> events = generate_fault_events(
      config_.faults, topo, num_slots, Rng(config_.base.seed));

  // Surge arrivals are sampled from the healthy topology's generator (the
  // same endpoint-pair universe as the base stream); requests whose
  // endpoints a fault later killed are auto-declined by the book.
  workload::GeneratorConfig wconfig = config_.base.workload;
  wconfig.num_slots = num_slots;
  const workload::RequestGenerator generator(topo, wconfig);

  RepairConfig repair;
  repair.policy = config_.repair_policy;
  repair.refund_factor = config_.refund_factor;
  repair.max_shed_rounds = config_.max_shed_rounds;
  repair.metis = config_.metis;
  CommittedBook book(topo, config_.base.instance, repair);

  OnlineResult result;
  result.fault_events = events;
  result.total_arrivals = static_cast<int>(stream.size());

  const auto flush = [&](double flush_time) {
    METIS_SPAN("online.batch");
    const int batch_index = static_cast<int>(result.batches.size());
    BatchRecord rec;
    rec.batch = batch_index;
    rec.arrivals = book.pending_count();
    rec.flush_time = flush_time;
    const int accepted_before = book.accepted_count();

    const telemetry::Stopwatch decide_timer;
    // Same per-batch stream ids as the fault-free replay.
    Rng rng =
        Rng(config_.base.seed).split(static_cast<std::uint64_t>(batch_index));
    const core::MetisResult decided = book.decide_pending(rng);
    rec.decide_ms = decide_timer.ms();
    telemetry::observe("online.decide_ms", rec.decide_ms);

    // Net change: a repair shed inside the decide can make this negative.
    rec.accepted = book.accepted_count() - accepted_before;
    rec.profit = book.net_profit();
    rec.lp_stats = decided.lp_stats;
    telemetry::count("online.batches");
    telemetry::gauge_set("online.profit", rec.profit);
    result.batches.push_back(std::move(rec));
  };

  // Merged replay: both arrivals and fault events advance the clock, and a
  // deadline flush fires before whichever event reveals the deadline has
  // passed (as in the fault-free replay, the clock only moves on events).
  double oldest_queued = 0;
  const auto deadline_flush_before = [&](double time) {
    if (book.pending_count() > 0 && config_.max_batch_delay > 0 &&
        time > oldest_queued + config_.max_batch_delay) {
      flush(oldest_queued + config_.max_batch_delay);
    }
  };
  std::size_t next_event = 0;
  int repair_index = 0;
  int surge_index = 0;
  const auto fire = [&](const FaultEvent& event) {
    if (event.kind == FaultKind::DemandSurge) {
      Rng surge_rng = Rng(config_.base.seed)
                          .split(kSurgeStream)
                          .split(static_cast<std::uint64_t>(surge_index++));
      book.inject(event, surge_rng);  // stats only; no topology change
      if (event.surge_arrivals <= 0) return;
      const int slot =
          std::min(static_cast<int>(std::floor(event.time)), num_slots - 1);
      const std::vector<workload::Request> extra =
          generator.generate_at(slot, event.surge_arrivals, surge_rng);
      if (book.pending_count() == 0) oldest_queued = event.time;
      for (const workload::Request& r : extra) book.add_pending(r);
      result.total_arrivals += static_cast<int>(extra.size());
      if (book.pending_count() >= config_.batch_size) flush(event.time);
      return;
    }
    // One repair stream index per network event whether or not a repair
    // decide runs — index-addressed, so later draws never shift.
    Rng repair_rng = Rng(config_.base.seed)
                         .split(kRepairStream)
                         .split(static_cast<std::uint64_t>(repair_index++));
    book.inject(event, repair_rng);
  };
  const auto advance_to = [&](double time) {
    while (next_event < events.size() && events[next_event].time <= time) {
      deadline_flush_before(events[next_event].time);
      fire(events[next_event]);
      ++next_event;
    }
    deadline_flush_before(time);
  };

  for (const workload::Arrival& a : stream) {
    advance_to(a.arrival_time);
    if (book.pending_count() == 0) oldest_queued = a.arrival_time;
    book.add_pending(a.request);
    if (book.pending_count() >= config_.batch_size) flush(a.arrival_time);
  }
  advance_to(static_cast<double>(num_slots));
  if (book.pending_count() > 0) flush(static_cast<double>(num_slots));

  // The survivability contract: the final book must be feasible on the
  // mutated network — reservations only on live edges, purchases within
  // shrunken capacities, schedule covered by the plan.
  const std::vector<std::string> violations = book.validate();
  if (!violations.empty()) {
    throw std::runtime_error("online fault replay: repaired book invalid: " +
                             violations.front());
  }

  result.total_accepted = book.accepted_count();
  result.fault_book = book.requests();
  result.fault_paths = book.reserved_paths();
  result.schedule = core::Schedule::all_declined(book.size());
  for (std::size_t i = 0; i < result.fault_paths.size(); ++i) {
    if (!result.fault_paths[i].empty()) result.schedule.path_choice[i] = 0;
  }
  result.plan = book.plan();
  result.profit = book.evaluate();
  result.refunds = book.refunds();
  result.net_profit = book.net_profit();
  result.fault_stats = book.stats();
  result.lp_stats = book.lp_stats();
  result.path_cache_hits = book.path_cache_hits();
  result.path_cache_misses = book.path_cache_misses();
  result.path_cache_stale = book.path_cache_stale();
  telemetry::gauge_set("online.profit", result.net_profit);
  return result;
}

}  // namespace metis::sim
