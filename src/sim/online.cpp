#include "sim/online.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <utility>

#include "persist/checkpoint.h"
#include "util/serialize.h"
#include "util/telemetry.h"

namespace metis::sim {
namespace {

// Rng::split stream ids of the fault replay's extra draw sequences,
// disjoint from the per-batch decide streams (small indices) and the fault
// event stream (FaultConfig::stream).
constexpr std::uint64_t kRepairStream = 0x0fa2;
constexpr std::uint64_t kSurgeStream = 0x0fa3;

/// Batch mechanics shared by the fault-free and fault replay loops: the
/// max_batch_delay deadline clock and the per-flush frame — batch index,
/// index-addressed per-batch RNG stream, decide timing and telemetry.  The
/// decide itself is the caller's lambda, which fills rec.accepted /
/// rec.profit / rec.lp_stats.  The two loops used to duplicate all of this
/// with drifted emptiness predicates (`book.size() == committed.size()` vs
/// `pending_count() == 0`); one helper keeps the replay-clock contract —
/// deadline flushes fire *before* the event that reveals the deadline
/// passed, since the clock only advances on events — in a single place.
class BatchReplay {
 public:
  BatchReplay(std::uint64_t seed, double max_batch_delay,
              std::vector<BatchRecord>& batches, std::function<int()> pending,
              std::function<void(Rng&, BatchRecord&)> decide)
      : seed_(seed),
        max_delay_(max_batch_delay),
        batches_(batches),
        pending_(std::move(pending)),
        decide_(std::move(decide)) {}

  /// Decides everything queued, appending one BatchRecord.
  void flush(double flush_time) {
    METIS_SPAN("online.batch");
    BatchRecord rec;
    rec.batch = static_cast<int>(batches_.size());
    rec.arrivals = pending_();
    rec.flush_time = flush_time;
    const telemetry::Stopwatch decide_timer;
    // Index-addressed per-batch stream: the draw sequence of batch b does
    // not depend on how many batches preceded it, so sweeps over batch
    // sizes stay deterministic for any thread count.
    Rng rng = Rng(seed_).split(static_cast<std::uint64_t>(rec.batch));
    decide_(rng, rec);
    rec.decide_ms = decide_timer.ms();
    telemetry::observe("online.decide_ms", rec.decide_ms);
    telemetry::count("online.batches");
    telemetry::gauge_set("online.profit", rec.profit);
    batches_.push_back(std::move(rec));
  }

  /// Fires the deadline flush owed before an event at `time` advances the
  /// clock: the oldest queued request must not wait past max_batch_delay.
  void deadline_flush_before(double time) {
    if (pending_() > 0 && max_delay_ > 0 &&
        time > oldest_queued_ + max_delay_) {
      flush(oldest_queued_ + max_delay_);
    }
  }

  /// Notes an arrival at `time` about to join the queue (call before
  /// enqueueing): a previously empty queue restarts the deadline clock.
  void note_arrival(double time) {
    if (pending_() == 0) oldest_queued_ = time;
  }

  /// The deadline clock, saved into checkpoints: together with the queued
  /// requests it is all the state a resumed replay needs to refire an owed
  /// deadline flush at the identical flush time and batch index.
  double oldest_queued() const { return oldest_queued_; }
  void restore_oldest_queued(double t) { oldest_queued_ = t; }

 private:
  std::uint64_t seed_;
  double max_delay_;
  std::vector<BatchRecord>& batches_;
  std::function<int()> pending_;
  std::function<void(Rng&, BatchRecord&)> decide_;
  double oldest_queued_ = 0;
};

// --- checkpoint plumbing --------------------------------------------------

std::vector<persist::BatchState> to_batch_states(
    const std::vector<BatchRecord>& batches) {
  std::vector<persist::BatchState> states;
  states.reserve(batches.size());
  for (const BatchRecord& b : batches) {
    states.push_back(persist::BatchState{b.batch, b.arrivals, b.flush_time,
                                         b.accepted, b.profit, b.decide_ms,
                                         b.lp_stats});
  }
  return states;
}

std::vector<BatchRecord> from_batch_states(
    const std::vector<persist::BatchState>& states) {
  std::vector<BatchRecord> batches;
  batches.reserve(states.size());
  for (const persist::BatchState& s : states) {
    batches.push_back(BatchRecord{s.batch, s.arrivals, s.flush_time,
                                  s.accepted, s.profit, s.decide_ms,
                                  s.lp_stats});
  }
  return batches;
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// Loads and vets a resume snapshot: the config fingerprint must match
/// (the arrival/fault streams are derived from the config, so a different
/// config would silently diverge, not resume) and the snapshot must come
/// from the same replay mode this run is about to execute.
persist::OnlineCheckpoint load_resume(const std::string& path,
                                      std::uint64_t fingerprint,
                                      bool fault_mode) {
  persist::OnlineCheckpoint ckpt = persist::load_online(path);
  if (ckpt.config_fingerprint != fingerprint) {
    throw std::runtime_error(
        "online resume: config fingerprint mismatch (snapshot " +
        hex_fingerprint(ckpt.config_fingerprint) + ", current config " +
        hex_fingerprint(fingerprint) +
        "): '" + path + "' was taken under a different configuration");
  }
  if (ckpt.fault_mode != fault_mode) {
    throw std::runtime_error(
        std::string("online resume: snapshot '") + path + "' is from a " +
        (ckpt.fault_mode ? "fault-mode" : "fault-free") +
        " replay but the current config selects the " +
        (fault_mode ? "fault-mode" : "fault-free") + " replay");
  }
  telemetry::Registry::global().restore(ckpt.metrics);
  return ckpt;
}

/// Writes the boundary's snapshot: the latest-complete file, plus the
/// per-boundary copy when keep_all is on (the kill-anywhere test harness).
void write_checkpoint(const OnlineConfig& config,
                      persist::OnlineCheckpoint& ckpt, int boundary) {
  ckpt.boundary_time = boundary;
  // Snapshot the registry last so the image carries everything recorded up
  // to this boundary (the save's own persist.* metrics land after).
  ckpt.metrics = telemetry::Registry::global().snapshot();
  persist::save(ckpt, config.checkpoint_path);
  if (config.checkpoint_keep_all) {
    persist::save(ckpt,
                  config.checkpoint_path + ".slot" + std::to_string(boundary));
  }
}

}  // namespace

std::uint64_t OnlineAdmissionSimulator::config_fingerprint() const {
  serialize::Fingerprint fp;
  const Scenario& base = config_.base;
  fp.mix(to_string(base.network));
  fp.mix(base.num_requests);
  fp.mix(base.seed);
  fp.mix(base.instance.num_slots);
  fp.mix(base.instance.max_paths);
  fp.mix(base.uniform_capacity);
  fp.mix(base.poisson_arrivals);
  const workload::GeneratorConfig& w = base.workload;
  fp.mix(w.num_slots);
  fp.mix(w.min_rate);
  fp.mix(w.max_rate);
  fp.mix(w.value_per_unit_slot);
  fp.mix(w.value_noise);
  fp.mix(w.low_value_fraction);
  fp.mix(w.low_value_min);
  fp.mix(w.low_value_max);
  fp.mix(config_.arrivals_per_slot);
  fp.mix(config_.batch_size);
  fp.mix(config_.max_batch_delay);
  fp.mix(config_.cross_batch_warm_start);
  fp.mix(config_.reuse_path_cache);
  const core::MetisOptions& m = config_.metis;
  fp.mix(m.theta);
  fp.mix(m.trim_units);
  fp.mix(m.prune);
  fp.mix(m.local_search);
  fp.mix(m.warm_start);
  fp.mix(m.maa.rounding_trials);
  fp.mix(m.maa.deterministic);
  fp.mix(m.taa.augment);
  fp.mix(m.taa.fallback_mu);
  fp.mix(m.taa.cost_weight);
  fp.mix(m.shards);
  const FaultConfig& f = config_.faults;
  fp.mix(f.rate);
  fp.mix(f.weight_link_failure);
  fp.mix(f.weight_link_degrade);
  fp.mix(f.weight_node_outage);
  fp.mix(f.weight_price_shock);
  fp.mix(f.weight_demand_surge);
  fp.mix(f.degrade_keep_min);
  fp.mix(f.degrade_keep_max);
  fp.mix(f.price_shock_min);
  fp.mix(f.price_shock_max);
  fp.mix(f.surge_mean);
  fp.mix(f.stream);
  fp.mix(to_string(config_.repair_policy));
  fp.mix(config_.refund_factor);
  fp.mix(config_.max_shed_rounds);
  return fp.value();
}

OnlineAdmissionSimulator::OnlineAdmissionSimulator(OnlineConfig config)
    : config_(std::move(config)) {
  if (config_.batch_size < 1) {
    throw std::invalid_argument("OnlineConfig: batch_size must be >= 1");
  }
  if (config_.max_batch_delay < 0) {
    throw std::invalid_argument("OnlineConfig: max_batch_delay must be >= 0");
  }
  if (config_.arrivals_per_slot < 0) {
    throw std::invalid_argument("OnlineConfig: arrivals_per_slot must be >= 0");
  }
  if (config_.refund_factor < 0) {
    throw std::invalid_argument("OnlineConfig: refund_factor must be >= 0");
  }
}

double OnlineAdmissionSimulator::arrival_rate() const {
  if (config_.arrivals_per_slot > 0) return config_.arrivals_per_slot;
  return static_cast<double>(config_.base.num_requests) /
         config_.base.instance.num_slots;
}

std::vector<workload::Arrival> OnlineAdmissionSimulator::arrivals() const {
  const net::Topology topo = make_network(config_.base);
  workload::GeneratorConfig wconfig = config_.base.workload;
  wconfig.num_slots = config_.base.instance.num_slots;
  const workload::RequestGenerator generator(topo, wconfig);
  Rng rng(config_.base.seed);
  return generator.generate_arrivals(arrival_rate(), rng);
}

core::MetisResult OnlineAdmissionSimulator::offline_oracle() const {
  std::vector<workload::Request> book;
  for (const workload::Arrival& a : arrivals()) book.push_back(a.request);
  core::SpmInstance instance(make_network(config_.base), std::move(book),
                             config_.base.instance);
  // Same stream id the replay gives its first batch: with one batch the
  // two runs draw identically, which is what makes them bit-identical.
  Rng rng = Rng(config_.base.seed).split(0);
  return core::run_metis(instance, rng, config_.metis);
}

OnlineResult OnlineAdmissionSimulator::run() const {
  // Fault-free replay stays byte-identical to the pre-fault-layer code: the
  // fault path is a separate function entered only on a positive rate.
  if (config_.faults.rate > 0) return run_with_faults();
  METIS_SPAN("online.run");
  const net::Topology topo = make_network(config_.base);
  const std::vector<workload::Arrival> stream = arrivals();

  net::PathCache cache(topo);
  net::PathCache* cache_ptr = config_.reuse_path_cache ? &cache : nullptr;

  OnlineResult result;
  result.total_arrivals = static_cast<int>(stream.size());
  result.schedule = core::Schedule::all_declined(0);
  result.plan = core::ChargingPlan::none(topo.num_edges());

  std::vector<workload::Request> book;  // every arrival so far, in order
  book.reserve(stream.size());
  core::IncrementalState state;

  const auto pending = [&] {
    return static_cast<int>(book.size()) -
           static_cast<int>(state.committed.size());
  };
  BatchReplay replay(
      config_.base.seed, config_.max_batch_delay, result.batches, pending,
      [&](Rng& rng, BatchRecord& rec) {
        const int committed_before = static_cast<int>(state.committed.size());
        core::SpmInstance instance(topo, book, config_.base.instance,
                                   cache_ptr);
        if (!config_.cross_batch_warm_start) {
          state.maa.clear();
          state.taa.clear();
        }
        const core::MetisResult decided =
            core::run_metis_incremental(instance, state, rng, config_.metis);

        // Commit this batch's decisions: accepted stays accepted, declined
        // is final.  The committed prefix then covers the whole book.
        for (int i = committed_before; i < static_cast<int>(book.size());
             ++i) {
          const int choice = decided.schedule.path_choice[i];
          state.committed.push_back(choice);
          if (choice != core::kDeclined) ++rec.accepted;
        }
        result.total_accepted += rec.accepted;
        rec.profit = decided.best.profit;
        rec.lp_stats = decided.lp_stats;
        result.lp_stats += decided.lp_stats;
        result.schedule = decided.schedule;
        result.plan = decided.plan;
        result.profit = decided.best;
      });

  // --- checkpoint/resume ------------------------------------------------
  const std::uint64_t fingerprint = config_fingerprint();
  std::size_t start_arrival = 0;
  double resumed_boundary = 0;
  if (!config_.resume_path.empty()) {
    const persist::OnlineCheckpoint ckpt =
        load_resume(config_.resume_path, fingerprint, /*fault_mode=*/false);
    if (ckpt.next_arrival > stream.size()) {
      throw std::runtime_error(
          "online resume: snapshot claims " +
          std::to_string(ckpt.next_arrival) +
          " arrivals consumed but the stream has only " +
          std::to_string(stream.size()));
    }
    book = ckpt.book;
    state = ckpt.inc;
    result.batches = from_batch_states(ckpt.batches);
    result.total_accepted = ckpt.total_accepted;
    result.schedule = ckpt.schedule;
    result.plan = ckpt.plan;
    result.profit = ckpt.profit;
    result.lp_stats = ckpt.lp_stats;
    replay.restore_oldest_queued(ckpt.oldest_queued);
    cache.restore(ckpt.cache);
    start_arrival = static_cast<std::size_t>(ckpt.next_arrival);
    resumed_boundary = ckpt.boundary_time;
  }
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();
  int next_boundary = config_.checkpoint_every;
  while (checkpointing && next_boundary <= resumed_boundary) {
    next_boundary += config_.checkpoint_every;
  }
  std::size_t arrivals_consumed = start_arrival;
  // Writes every boundary <= `upcoming` still owed.  Called *before* the
  // item at `upcoming` is processed — and before any deadline flush it
  // reveals — so the snapshot holds exactly the items with time < boundary
  // (an owed flush refires identically after resume: the queue and the
  // deadline clock are both in the snapshot).
  const auto maybe_checkpoint = [&](double upcoming) {
    if (!checkpointing) return;
    while (next_boundary < config_.base.instance.num_slots &&
           upcoming >= next_boundary) {
      persist::OnlineCheckpoint ckpt;
      ckpt.config_fingerprint = fingerprint;
      ckpt.fault_mode = false;
      ckpt.next_arrival = arrivals_consumed;
      ckpt.oldest_queued = replay.oldest_queued();
      ckpt.total_arrivals = result.total_arrivals;
      ckpt.total_accepted = result.total_accepted;
      ckpt.batches = to_batch_states(result.batches);
      ckpt.book = book;
      ckpt.inc = state;
      ckpt.schedule = result.schedule;
      ckpt.plan = result.plan;
      ckpt.profit = result.profit;
      ckpt.lp_stats = result.lp_stats;
      ckpt.cache = cache.dump();
      write_checkpoint(config_, ckpt, next_boundary);
      next_boundary += config_.checkpoint_every;
    }
  };

  // Arrival-ordered replay: only arrivals advance the clock here.
  for (std::size_t i = start_arrival; i < stream.size(); ++i) {
    const workload::Arrival& a = stream[i];
    maybe_checkpoint(a.arrival_time);
    replay.deadline_flush_before(a.arrival_time);
    replay.note_arrival(a.arrival_time);
    book.push_back(a.request);
    arrivals_consumed = i + 1;
    if (pending() >= config_.batch_size) replay.flush(a.arrival_time);
  }
  maybe_checkpoint(static_cast<double>(config_.base.instance.num_slots));
  // End of cycle: whatever is still queued gets decided at the cycle edge.
  if (pending() > 0) {
    replay.flush(static_cast<double>(config_.base.instance.num_slots));
  }

  result.path_cache_hits = cache.hits();
  result.path_cache_misses = cache.misses();
  result.net_profit = result.profit.profit;  // no faults, nothing refunded
  return result;
}

OnlineResult OnlineAdmissionSimulator::run_with_faults() const {
  METIS_SPAN("online.run");
  const net::Topology topo = make_network(config_.base);
  const std::vector<workload::Arrival> stream = arrivals();
  const int num_slots = config_.base.instance.num_slots;
  const std::vector<FaultEvent> events = generate_fault_events(
      config_.faults, topo, num_slots, Rng(config_.base.seed));

  // Surge arrivals are sampled from the healthy topology's generator (the
  // same endpoint-pair universe as the base stream); requests whose
  // endpoints a fault later killed are auto-declined by the book.
  workload::GeneratorConfig wconfig = config_.base.workload;
  wconfig.num_slots = num_slots;
  const workload::RequestGenerator generator(topo, wconfig);

  RepairConfig repair;
  repair.policy = config_.repair_policy;
  repair.refund_factor = config_.refund_factor;
  repair.max_shed_rounds = config_.max_shed_rounds;
  repair.metis = config_.metis;
  CommittedBook book(topo, config_.base.instance, repair);

  OnlineResult result;
  result.fault_events = events;
  result.total_arrivals = static_cast<int>(stream.size());

  // Same per-batch stream ids and deadline clock as the fault-free replay.
  BatchReplay replay(
      config_.base.seed, config_.max_batch_delay, result.batches,
      [&] { return book.pending_count(); },
      [&](Rng& rng, BatchRecord& rec) {
        const int accepted_before = book.accepted_count();
        const core::MetisResult decided = book.decide_pending(rng);
        // Net change: a repair shed inside the decide can make this
        // negative.
        rec.accepted = book.accepted_count() - accepted_before;
        rec.profit = book.net_profit();
        rec.lp_stats = decided.lp_stats;
      });

  // Merged replay: both arrivals and fault events advance the clock.
  std::size_t next_event = 0;
  int repair_index = 0;
  int surge_index = 0;

  // --- checkpoint/resume ------------------------------------------------
  const std::uint64_t fingerprint = config_fingerprint();
  std::size_t start_arrival = 0;
  double resumed_boundary = 0;
  if (!config_.resume_path.empty()) {
    const persist::OnlineCheckpoint ckpt =
        load_resume(config_.resume_path, fingerprint, /*fault_mode=*/true);
    if (ckpt.next_arrival > stream.size() ||
        ckpt.next_fault_event > events.size()) {
      throw std::runtime_error(
          "online resume: snapshot cursors exceed the derived streams (" +
          std::to_string(ckpt.next_arrival) + "/" +
          std::to_string(stream.size()) + " arrivals, " +
          std::to_string(ckpt.next_fault_event) + "/" +
          std::to_string(events.size()) + " fault events)");
    }
    book.restore_state(ckpt);
    result.batches = from_batch_states(ckpt.batches);
    result.total_arrivals = ckpt.total_arrivals;  // includes surge extras
    next_event = static_cast<std::size_t>(ckpt.next_fault_event);
    repair_index = static_cast<int>(ckpt.repair_index);
    surge_index = static_cast<int>(ckpt.surge_index);
    replay.restore_oldest_queued(ckpt.oldest_queued);
    start_arrival = static_cast<std::size_t>(ckpt.next_arrival);
    resumed_boundary = ckpt.boundary_time;
  }
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();
  int next_boundary = config_.checkpoint_every;
  while (checkpointing && next_boundary <= resumed_boundary) {
    next_boundary += config_.checkpoint_every;
  }
  std::size_t arrivals_consumed = start_arrival;
  // Same placement contract as the fault-free replay: called before the
  // item (arrival *or* fault event) at `upcoming` fires, and before the
  // deadline flush that item reveals.
  const auto maybe_checkpoint = [&](double upcoming) {
    if (!checkpointing) return;
    while (next_boundary < num_slots && upcoming >= next_boundary) {
      persist::OnlineCheckpoint ckpt;
      ckpt.config_fingerprint = fingerprint;
      ckpt.fault_mode = true;
      ckpt.next_arrival = arrivals_consumed;
      ckpt.next_fault_event = next_event;
      ckpt.repair_index = repair_index;
      ckpt.surge_index = surge_index;
      ckpt.oldest_queued = replay.oldest_queued();
      ckpt.total_arrivals = result.total_arrivals;
      ckpt.total_accepted = book.accepted_count();
      ckpt.batches = to_batch_states(result.batches);
      book.export_state(ckpt);
      write_checkpoint(config_, ckpt, next_boundary);
      next_boundary += config_.checkpoint_every;
    }
  };

  const auto fire = [&](const FaultEvent& event) {
    if (event.kind == FaultKind::DemandSurge) {
      Rng surge_rng = Rng(config_.base.seed)
                          .split(kSurgeStream)
                          .split(static_cast<std::uint64_t>(surge_index++));
      book.inject(event, surge_rng);  // stats only; no topology change
      if (event.surge_arrivals <= 0) return;
      const int slot =
          std::min(static_cast<int>(std::floor(event.time)), num_slots - 1);
      const std::vector<workload::Request> extra =
          generator.generate_at(slot, event.surge_arrivals, surge_rng);
      replay.note_arrival(event.time);
      for (const workload::Request& r : extra) book.add_pending(r);
      result.total_arrivals += static_cast<int>(extra.size());
      if (book.pending_count() >= config_.batch_size) replay.flush(event.time);
      return;
    }
    // One repair stream index per network event whether or not a repair
    // decide runs — index-addressed, so later draws never shift.
    Rng repair_rng = Rng(config_.base.seed)
                         .split(kRepairStream)
                         .split(static_cast<std::uint64_t>(repair_index++));
    book.inject(event, repair_rng);
  };
  const auto advance_to = [&](double time) {
    while (next_event < events.size() && events[next_event].time <= time) {
      maybe_checkpoint(events[next_event].time);
      replay.deadline_flush_before(events[next_event].time);
      fire(events[next_event]);
      ++next_event;
    }
    maybe_checkpoint(time);
    replay.deadline_flush_before(time);
  };

  for (std::size_t i = start_arrival; i < stream.size(); ++i) {
    const workload::Arrival& a = stream[i];
    advance_to(a.arrival_time);
    replay.note_arrival(a.arrival_time);
    book.add_pending(a.request);
    arrivals_consumed = i + 1;
    if (book.pending_count() >= config_.batch_size) replay.flush(a.arrival_time);
  }
  advance_to(static_cast<double>(num_slots));
  if (book.pending_count() > 0) replay.flush(static_cast<double>(num_slots));

  // The survivability contract: the final book must be feasible on the
  // mutated network — reservations only on live edges, purchases within
  // shrunken capacities, schedule covered by the plan.
  const std::vector<std::string> violations = book.validate();
  if (!violations.empty()) {
    throw std::runtime_error("online fault replay: repaired book invalid: " +
                             violations.front());
  }

  result.total_accepted = book.accepted_count();
  result.fault_book = book.requests();
  result.fault_paths = book.reserved_paths();
  result.schedule = core::Schedule::all_declined(book.size());
  for (std::size_t i = 0; i < result.fault_paths.size(); ++i) {
    if (!result.fault_paths[i].empty()) result.schedule.path_choice[i] = 0;
  }
  result.plan = book.plan();
  result.profit = book.evaluate();
  result.refunds = book.refunds();
  result.net_profit = book.net_profit();
  result.fault_stats = book.stats();
  result.lp_stats = book.lp_stats();
  result.path_cache_hits = book.path_cache_hits();
  result.path_cache_misses = book.path_cache_misses();
  result.path_cache_stale = book.path_cache_stale();
  telemetry::gauge_set("online.profit", result.net_profit);
  return result;
}

}  // namespace metis::sim
