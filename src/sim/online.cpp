#include "sim/online.h"

#include <stdexcept>
#include <utility>

#include "util/telemetry.h"

namespace metis::sim {

OnlineAdmissionSimulator::OnlineAdmissionSimulator(OnlineConfig config)
    : config_(std::move(config)) {
  if (config_.batch_size < 1) {
    throw std::invalid_argument("OnlineConfig: batch_size must be >= 1");
  }
  if (config_.max_batch_delay < 0) {
    throw std::invalid_argument("OnlineConfig: max_batch_delay must be >= 0");
  }
  if (config_.arrivals_per_slot < 0) {
    throw std::invalid_argument("OnlineConfig: arrivals_per_slot must be >= 0");
  }
}

double OnlineAdmissionSimulator::arrival_rate() const {
  if (config_.arrivals_per_slot > 0) return config_.arrivals_per_slot;
  return static_cast<double>(config_.base.num_requests) /
         config_.base.instance.num_slots;
}

std::vector<workload::Arrival> OnlineAdmissionSimulator::arrivals() const {
  const net::Topology topo = make_network(config_.base);
  workload::GeneratorConfig wconfig = config_.base.workload;
  wconfig.num_slots = config_.base.instance.num_slots;
  const workload::RequestGenerator generator(topo, wconfig);
  Rng rng(config_.base.seed);
  return generator.generate_arrivals(arrival_rate(), rng);
}

core::MetisResult OnlineAdmissionSimulator::offline_oracle() const {
  std::vector<workload::Request> book;
  for (const workload::Arrival& a : arrivals()) book.push_back(a.request);
  core::SpmInstance instance(make_network(config_.base), std::move(book),
                             config_.base.instance);
  // Same stream id the replay gives its first batch: with one batch the
  // two runs draw identically, which is what makes them bit-identical.
  Rng rng = Rng(config_.base.seed).split(0);
  return core::run_metis(instance, rng, config_.metis);
}

OnlineResult OnlineAdmissionSimulator::run() const {
  METIS_SPAN("online.run");
  const net::Topology topo = make_network(config_.base);
  const std::vector<workload::Arrival> stream = arrivals();

  net::PathCache cache(topo);
  net::PathCache* cache_ptr = config_.reuse_path_cache ? &cache : nullptr;

  OnlineResult result;
  result.total_arrivals = static_cast<int>(stream.size());
  result.schedule = core::Schedule::all_declined(0);
  result.plan = core::ChargingPlan::none(topo.num_edges());

  std::vector<workload::Request> book;  // every arrival so far, in order
  book.reserve(stream.size());
  core::IncrementalState state;

  const auto flush = [&](double flush_time) {
    METIS_SPAN("online.batch");
    const int batch_index = static_cast<int>(result.batches.size());
    const int committed_before = static_cast<int>(state.committed.size());
    BatchRecord rec;
    rec.batch = batch_index;
    rec.arrivals = static_cast<int>(book.size()) - committed_before;
    rec.flush_time = flush_time;

    const telemetry::Stopwatch decide_timer;
    core::SpmInstance instance(topo, book, config_.base.instance, cache_ptr);
    if (!config_.cross_batch_warm_start) {
      state.maa.clear();
      state.taa.clear();
    }
    // Index-addressed per-batch stream: the draw sequence of batch b does
    // not depend on how many batches preceded it, so the sweep over batch
    // sizes stays deterministic for any thread count.
    Rng rng = Rng(config_.base.seed).split(static_cast<std::uint64_t>(batch_index));
    const core::MetisResult decided =
        core::run_metis_incremental(instance, state, rng, config_.metis);
    rec.decide_ms = decide_timer.ms();
    telemetry::observe("online.decide_ms", rec.decide_ms);

    // Commit this batch's decisions: accepted stays accepted, declined is
    // final.  The committed prefix then covers the whole book.
    for (int i = committed_before; i < static_cast<int>(book.size()); ++i) {
      const int choice = decided.schedule.path_choice[i];
      state.committed.push_back(choice);
      if (choice != core::kDeclined) ++rec.accepted;
    }
    result.total_accepted += rec.accepted;
    rec.profit = decided.best.profit;
    rec.lp_stats = decided.lp_stats;
    result.lp_stats += decided.lp_stats;
    result.schedule = decided.schedule;
    result.plan = decided.plan;
    result.profit = decided.best;
    telemetry::count("online.batches");
    telemetry::gauge_set("online.profit", rec.profit);
    result.batches.push_back(std::move(rec));
  };

  // Arrival-ordered replay.  Deadline flushes happen *before* the arrival
  // that reveals time has passed the oldest queued request's deadline —
  // the simulator only advances its clock on events.
  double oldest_queued = 0;
  for (const workload::Arrival& a : stream) {
    const bool pending = book.size() > state.committed.size();
    if (pending && config_.max_batch_delay > 0 &&
        a.arrival_time > oldest_queued + config_.max_batch_delay) {
      flush(oldest_queued + config_.max_batch_delay);
    }
    if (book.size() == state.committed.size()) oldest_queued = a.arrival_time;
    book.push_back(a.request);
    if (static_cast<int>(book.size()) - static_cast<int>(state.committed.size()) >=
        config_.batch_size) {
      flush(a.arrival_time);
    }
  }
  // End of cycle: whatever is still queued gets decided at the cycle edge.
  if (book.size() > state.committed.size()) {
    flush(static_cast<double>(config_.base.instance.num_slots));
  }

  result.path_cache_hits = cache.hits();
  result.path_cache_misses = cache.misses();
  return result;
}

}  // namespace metis::sim
