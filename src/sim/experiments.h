// Experiment drivers: one function per figure of the paper's evaluation
// (Section V).  Each driver runs every solution on the same seeded
// instances, validates feasibility, and returns one row per x-axis point
// averaged over `repetitions` independent workloads.  The bench binaries
// print these rows; the integration tests assert the paper's shape
// relations on small configurations.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/mip.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace metis::sim {

struct SweepConfig {
  std::vector<int> request_counts;  ///< x-axis points (K per cycle)
  std::uint64_t seed = 1;           ///< base seed; each cell derives its own
  int repetitions = 3;              ///< independent workloads averaged per point
  /// Worker threads for the (request-count x repetition) cell grid (0 = all
  /// hardware threads, 1 = serial).  Every cell already owns an
  /// independently seeded Rng, so results are identical for every thread
  /// count; per-cell wall-clock readings naturally vary with load.
  int threads = 0;
};

// ---- Fig. 3: Metis vs OPT(SPM) vs OPT(RL-SPM) on SUB-B4 ----------------

struct Fig3Row {
  int num_requests = 0;        ///< K at this x-axis point
  SolutionMetrics metis;       ///< mean over repetitions
  SolutionMetrics opt_spm;     ///< exact (or budget-capped) OPT(SPM)
  SolutionMetrics opt_rl_spm;  ///< accept-all optimum
  bool opt_exact = true;       ///< OPT(SPM) proven optimal on every rep
  double metis_ms = 0;         ///< mean wall-clock per run
  double opt_spm_ms = 0;
  double opt_rl_spm_ms = 0;
};

struct Fig3Config {
  SweepConfig sweep;
  int theta = 24;  ///< Metis alternation loops
  /// Node/time budget for the exact baselines.  Both OPT solvers are
  /// warm-started (OPT(SPM) from Metis's decision, OPT(RL-SPM) from a
  /// best-of-32 MAA rounding), so with a finite budget they report "best
  /// found, at least as good as the heuristic seed" plus a proven bound.
  lp::MipOptions mip;
};

std::vector<Fig3Row> run_fig3(const Fig3Config& config);

// ---- Fig. 4a: MAA vs MinCost service cost on B4 -------------------------

struct Fig4aRow {
  int num_requests = 0;         ///< K at this x-axis point
  double maa_cost = 0;          ///< mean MAA service cost (Σ u_e c_e)
  double mincost_cost = 0;      ///< mean fixed-rule MinCost service cost
  double lp_lower_bound = 0;    ///< relaxation cost (floor for both)
  double mincost_over_maa = 0;  ///< the paper's "up to 21.1%" ratio
};

struct Fig4aConfig {
  SweepConfig sweep;
  /// Roundings per MAA run (1 = the paper's Algorithm 1 verbatim).
  int rounding_trials = 1;
};

std::vector<Fig4aRow> run_fig4a(const Fig4aConfig& config);

// ---- Fig. 4b: randomized-rounding cost ratio ----------------------------

/// The true rounding-vs-optimal ratio is bracketed: the LP relaxation cost
/// under-states the optimum (so ratio_*_vs_lp over-states the ratio) while
/// the best ILP incumbent over-states it (so ratio_*_vs_ilp under-states);
/// when `ilp_exact` is true the ILP column *is* the paper's ratio.
struct Fig4bRow {
  Network network = Network::B4;  ///< topology of this row
  int num_requests = 0;           ///< K at this x-axis point
  int trials = 0;                 ///< rounding repetitions measured
  double lp_bound_cost = 0;    ///< LP relaxation objective
  double ilp_cost = 0;         ///< best ILP incumbent (0 when disabled)
  bool ilp_exact = false;      ///< ILP proven optimal within budget
  double ratio_mean_vs_lp = 0;   ///< mean trial cost / LP bound (over-states)
  double ratio_mean_vs_ilp = 0;  ///< mean trial cost / ILP incumbent
  double ratio_p95_vs_ilp = 0;   ///< empirical 95th percentile of the ratio
  double ratio_max_vs_ilp = 0;   ///< worst trial
};

struct Fig4bConfig {
  std::vector<int> request_counts;
  std::uint64_t seed = 1;
  int trials = 1000;
  Network network = Network::SubB4;
  /// Compute the ILP reference (warm-started branch & bound).  Disable on
  /// instances where even finding an incumbent is out of budget.
  bool ilp_reference = true;
  /// Worker threads for the rounding-trial loop (0 = all hardware threads,
  /// 1 = serial).  Trial t draws from `Rng::split(t)` and the ratio
  /// statistics are accumulated serially in trial order, so every row is
  /// byte-identical across thread counts.
  int threads = 0;
  lp::MipOptions mip;
};

std::vector<Fig4bRow> run_fig4b(const Fig4bConfig& config);

// ---- Fig. 4c/4d: TAA vs Amoeba under uniform 100 Gbps links -------------

struct Fig4cdRow {
  int num_requests = 0;         ///< K at this x-axis point
  double taa_revenue = 0;       ///< mean accepted value under TAA
  double amoeba_revenue = 0;    ///< mean accepted value under Amoeba
  double taa_accepted = 0;      ///< mean accepted request count (TAA)
  double amoeba_accepted = 0;   ///< mean accepted request count (Amoeba)
  double lp_revenue_bound = 0;  ///< BL-SPM relaxation objective (ceiling)
};

struct Fig4cdConfig {
  SweepConfig sweep;
  int uniform_capacity = 10;  ///< units: 10 x 10 Gbps = 100 Gbps per link
};

std::vector<Fig4cdRow> run_fig4cd(const Fig4cdConfig& config);

// ---- Fig. 5: Metis vs EcoFlow on B4 --------------------------------------

struct Fig5Row {
  int num_requests = 0;     ///< K at this x-axis point
  SolutionMetrics metis;    ///< mean over repetitions
  SolutionMetrics ecoflow;  ///< mean over repetitions
};

struct Fig5Config {
  SweepConfig sweep;
  int theta = 32;  ///< Metis alternation loops
};

std::vector<Fig5Row> run_fig5(const Fig5Config& config);

}  // namespace metis::sim
