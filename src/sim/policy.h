// Policy: a uniform interface over every scheduling solution in the repo
// (Metis, the baselines, and the exact OPT), so simulators, benches and
// downstream users can treat "a way of deciding a billing cycle" as a value.
//
// A policy consumes one SpmInstance (the cycle's WAN + request book) and
// returns the full decision: acceptance/routing plus the bandwidth purchase.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/maa.h"
#include "core/metis.h"
#include "core/schedule.h"
#include "core/taa.h"
#include "lp/mip.h"
#include "util/rng.h"

namespace metis::sim {

struct Decision {
  core::Schedule schedule;   ///< per-request path choice or kDeclined
  core::ChargingPlan plan;   ///< integer units purchased per edge (10 Gbps each)
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  /// Decides one billing cycle.  `rng` provides all randomness; a policy
  /// must be deterministic given (instance, rng state).
  virtual Decision decide(const core::SpmInstance& instance, Rng& rng) const = 0;
};

/// Metis (the paper's framework).
class MetisPolicy : public Policy {
 public:
  explicit MetisPolicy(core::MetisOptions options = {}) : options_(options) {}
  std::string name() const override { return "Metis"; }
  Decision decide(const core::SpmInstance& instance, Rng& rng) const override;

 private:
  core::MetisOptions options_;
};

/// Today's service mode: accept every request, route with MAA.
class AcceptAllPolicy : public Policy {
 public:
  explicit AcceptAllPolicy(core::MaaOptions options = make_default_options())
      : options_(options) {}
  std::string name() const override { return "accept-all"; }
  Decision decide(const core::SpmInstance& instance, Rng& rng) const override;

 private:
  static core::MaaOptions make_default_options() {
    core::MaaOptions options;
    options.rounding_trials = 8;
    return options;
  }
  core::MaaOptions options_;
};

/// Fixed-rule MinCost (cheapest path per request, accept everything).
class MinCostPolicy : public Policy {
 public:
  std::string name() const override { return "MinCost"; }
  Decision decide(const core::SpmInstance& instance, Rng& rng) const override;
};

/// Greedy EcoFlow-style profit filter.
class EcoFlowPolicy : public Policy {
 public:
  std::string name() const override { return "EcoFlow"; }
  Decision decide(const core::SpmInstance& instance, Rng& rng) const override;
};

/// Exact OPT(SPM) under a branch & bound budget (warm-started from Metis).
class OptPolicy : public Policy {
 public:
  explicit OptPolicy(lp::MipOptions options = {}) : options_(options) {}
  std::string name() const override { return "OPT(SPM)"; }
  Decision decide(const core::SpmInstance& instance, Rng& rng) const override;

 private:
  lp::MipOptions options_;
};

/// The standard comparison set used by the multi-cycle simulator and the
/// examples: accept-all, EcoFlow, Metis (in that order).
std::vector<std::unique_ptr<Policy>> standard_policies();

/// As above with explicit Metis options — how the bench drivers thread
/// `--shards N` (and any other MetisOptions knob) into the comparison set
/// without touching the baseline policies.
std::vector<std::unique_ptr<Policy>> standard_policies(
    const core::MetisOptions& metis_options);

}  // namespace metis::sim
