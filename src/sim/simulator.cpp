#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "persist/checkpoint.h"
#include "sim/validate.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/telemetry.h"

namespace metis::sim {
namespace {

persist::FaultStatsImage to_image(const FaultStats& s) {
  return persist::FaultStatsImage{s.injected,  s.network_changes, s.repairs,
                                  s.victims,   s.dropped,         s.rerouted,
                                  s.shed_rounds, s.surge_arrivals};
}

FaultStats from_image(const persist::FaultStatsImage& s) {
  return FaultStats{s.injected,  s.network_changes, s.repairs,
                    s.victims,   s.dropped,         s.rerouted,
                    s.shed_rounds, s.surge_arrivals};
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

BillingCycleSimulator::BillingCycleSimulator(SimulationConfig config)
    : config_(std::move(config)) {
  if (config_.cycles <= 0) {
    throw std::invalid_argument("SimulationConfig: cycles must be positive");
  }
  if (config_.demand_growth < -1) {
    throw std::invalid_argument("SimulationConfig: growth below -100%");
  }
}

int BillingCycleSimulator::cycle_requests(int cycle) const {
  const double grown = config_.base.num_requests *
                       std::pow(1.0 + config_.demand_growth, cycle);
  return std::max(1, static_cast<int>(std::llround(grown)));
}

core::SpmInstance BillingCycleSimulator::cycle_instance(int cycle) const {
  if (cycle < 0 || cycle >= config_.cycles) {
    throw std::invalid_argument("cycle_instance: cycle out of range");
  }
  Scenario scenario = config_.base;
  scenario.seed = config_.base.seed + static_cast<std::uint64_t>(cycle) * 7919;
  scenario.num_requests = cycle_requests(cycle);
  return make_instance(scenario);
}

void BillingCycleSimulator::replay_faults(const core::SpmInstance& instance,
                                          const Decision& decision, int cycle,
                                          Rng& rng, CycleOutcome& co) const {
  METIS_SPAN("cycle_faults");
  const int num_slots = instance.num_slots();
  // The stream is seeded by the cycle alone (same expression as the cycle's
  // scenario seed), never by the policy index: every policy of a cycle
  // faces the identical fault sequence.
  const std::vector<FaultEvent> events = generate_fault_events(
      config_.faults, instance.topology(), num_slots,
      Rng(config_.base.seed + static_cast<std::uint64_t>(cycle) * 7919));
  if (events.empty()) return;

  RepairConfig repair;
  repair.policy = config_.repair_policy;
  repair.refund_factor = config_.refund_factor;
  repair.max_shed_rounds = config_.max_shed_rounds;
  CommittedBook book(instance.topology(), instance.config(), repair);
  book.adopt(instance, decision.schedule);

  // Surge arrivals come from the healthy topology's generator (same
  // endpoint universe as the cycle's book); the book auto-declines any
  // the mutated WAN cannot connect.
  workload::GeneratorConfig wconfig = config_.base.workload;
  wconfig.num_slots = num_slots;
  const workload::RequestGenerator generator(instance.topology(), wconfig);

  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::DemandSurge) {
      book.inject(event, rng);  // stats only; no topology change
      if (event.surge_arrivals <= 0) continue;
      const int slot =
          std::min(static_cast<int>(std::floor(event.time)), num_slots - 1);
      for (const workload::Request& r :
           generator.generate_at(slot, event.surge_arrivals, rng)) {
        book.add_pending(r);
      }
      co.offered_requests += event.surge_arrivals;
      // The offline regime has no batching: a surge is decided on arrival.
      book.decide_pending(rng);
      continue;
    }
    book.inject(event, rng);
  }

  const auto violations = book.validate();
  if (!violations.empty()) {
    throw std::runtime_error("simulator: fault replay left an invalid book: " +
                             violations.front());
  }

  co.result = book.evaluate();
  co.refunds = book.refunds();
  co.net_profit = book.net_profit();
  co.fault_stats = book.stats();
}

std::uint64_t BillingCycleSimulator::config_fingerprint(
    const std::vector<std::unique_ptr<Policy>>& policies) const {
  serialize::Fingerprint fp;
  const Scenario& base = config_.base;
  fp.mix(to_string(base.network));
  fp.mix(base.num_requests);
  fp.mix(base.seed);
  fp.mix(base.instance.num_slots);
  fp.mix(base.instance.max_paths);
  fp.mix(base.uniform_capacity);
  fp.mix(base.poisson_arrivals);
  const workload::GeneratorConfig& w = base.workload;
  fp.mix(w.num_slots);
  fp.mix(w.min_rate);
  fp.mix(w.max_rate);
  fp.mix(w.value_per_unit_slot);
  fp.mix(w.value_noise);
  fp.mix(w.low_value_fraction);
  fp.mix(w.low_value_min);
  fp.mix(w.low_value_max);
  fp.mix(config_.cycles);
  fp.mix(config_.demand_growth);
  const FaultConfig& f = config_.faults;
  fp.mix(f.rate);
  fp.mix(f.weight_link_failure);
  fp.mix(f.weight_link_degrade);
  fp.mix(f.weight_node_outage);
  fp.mix(f.weight_price_shock);
  fp.mix(f.weight_demand_surge);
  fp.mix(f.degrade_keep_min);
  fp.mix(f.degrade_keep_max);
  fp.mix(f.price_shock_min);
  fp.mix(f.price_shock_max);
  fp.mix(f.surge_mean);
  fp.mix(f.stream);
  fp.mix(to_string(config_.repair_policy));
  fp.mix(config_.refund_factor);
  fp.mix(config_.max_shed_rounds);
  fp.mix(static_cast<int>(policies.size()));
  for (const auto& policy : policies) fp.mix(policy->name());
  return fp.value();
}

std::vector<PolicyOutcome> BillingCycleSimulator::run(
    const std::vector<std::unique_ptr<Policy>>& policies) const {
  std::vector<PolicyOutcome> outcomes;
  outcomes.reserve(policies.size());
  for (const auto& policy : policies) {
    PolicyOutcome outcome;
    outcome.policy = policy->name();
    outcomes.push_back(std::move(outcome));
  }
  const int num_policies = static_cast<int>(policies.size());

  // --- checkpoint/resume ------------------------------------------------
  const std::uint64_t fingerprint = config_fingerprint(policies);
  std::vector<CycleOutcome> cells(
      static_cast<std::size_t>(config_.cycles) * num_policies);
  int cycles_done = 0;
  if (!config_.resume_path.empty()) {
    const persist::MultiCycleCheckpoint ckpt =
        persist::load_multi_cycle(config_.resume_path);
    if (ckpt.config_fingerprint != fingerprint) {
      throw std::runtime_error(
          "simulator resume: config fingerprint mismatch (snapshot " +
          hex_fingerprint(ckpt.config_fingerprint) + ", current run " +
          hex_fingerprint(fingerprint) + "): '" + config_.resume_path +
          "' was taken under a different configuration or policy roster");
    }
    if (ckpt.num_policies != num_policies || ckpt.cycles_done < 0 ||
        ckpt.cycles_done > config_.cycles ||
        ckpt.cells.size() !=
            static_cast<std::size_t>(ckpt.cycles_done) * num_policies) {
      throw std::runtime_error(
          "simulator resume: snapshot cell grid is inconsistent with the "
          "current run ('" +
          config_.resume_path + "')");
    }
    for (const persist::CycleCellState& cell : ckpt.cells) {
      if (cell.cycle < 0 || cell.cycle >= ckpt.cycles_done ||
          cell.policy < 0 || cell.policy >= num_policies) {
        throw std::runtime_error(
            "simulator resume: snapshot cell index out of range ('" +
            config_.resume_path + "')");
      }
      CycleOutcome co;
      co.cycle = cell.cycle;
      co.offered_requests = cell.offered_requests;
      co.result = cell.result;
      co.decide_ms = cell.decide_ms;
      co.refunds = cell.refunds;
      co.net_profit = cell.net_profit;
      co.fault_stats = from_image(cell.fault_stats);
      cells[static_cast<std::size_t>(cell.cycle) * num_policies +
            cell.policy] = std::move(co);
    }
    cycles_done = ckpt.cycles_done;
    telemetry::Registry::global().restore(ckpt.metrics);
  }
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();

  // One cell per (cycle, policy): the cell's Rng seed depends only on the
  // absolute (cycle, p) and the instance only on the cycle, so the grid
  // parallelizes with no cross-cell state — and running it block-by-block
  // (the checkpoint cadence) is byte-identical to the one-shot grid.  Each
  // cell rebuilds its cycle's instance — cheap relative to a decide() — to
  // stay share-nothing.
  while (cycles_done < config_.cycles) {
    const int block_cycles =
        checkpointing
            ? std::min(config_.checkpoint_every, config_.cycles - cycles_done)
            : config_.cycles - cycles_done;
    const int first_cell = cycles_done * num_policies;
    const std::vector<CycleOutcome> block = parallel_map(
        block_cycles * num_policies,
        [&](int local) {
          const int index = first_cell + local;
          const int cycle = index / num_policies;
          const std::size_t p = static_cast<std::size_t>(index % num_policies);
          const core::SpmInstance instance = cycle_instance(cycle);
          Rng rng(config_.base.seed * 104729 + cycle * 31 + p * 7 + 1);
          const telemetry::Stopwatch decide_timer;
          const Decision decision = [&] {
            METIS_SPAN("cycle_decide");
            return policies[p]->decide(instance, rng);
          }();
          const double decide_ms = decide_timer.ms();

          const auto violations =
              check_schedule(instance, decision.schedule, decision.plan);
          if (!violations.empty()) {
            throw std::runtime_error("simulator: policy '" +
                                     policies[p]->name() +
                                     "' produced an infeasible decision: " +
                                     violations.front());
          }
          const auto coverage = check_plan_covers_schedule(
              instance, decision.schedule, decision.plan);
          if (!coverage.empty()) {
            throw std::runtime_error("simulator: policy '" +
                                     policies[p]->name() +
                                     "' under-purchased: " + coverage.front());
          }

          CycleOutcome co;
          co.cycle = cycle;
          co.offered_requests = instance.num_requests();
          co.result = core::evaluate_with_plan(instance, decision.schedule,
                                               decision.plan);
          co.decide_ms = decide_ms;
          co.net_profit = co.result.profit;
          if (config_.faults.rate > 0) {
            replay_faults(instance, decision, cycle, rng, co);
          }
          telemetry::observe("sim.decide_ms", co.decide_ms);
          telemetry::count("sim.cycle_cells");
          return co;
        },
        config_.threads);
    std::copy(block.begin(), block.end(),
              cells.begin() + first_cell);
    cycles_done += block_cycles;

    if (checkpointing && cycles_done < config_.cycles) {
      persist::MultiCycleCheckpoint ckpt;
      ckpt.config_fingerprint = fingerprint;
      ckpt.cycles_done = cycles_done;
      ckpt.num_policies = num_policies;
      ckpt.cells.reserve(static_cast<std::size_t>(cycles_done) *
                         num_policies);
      for (int cycle = 0; cycle < cycles_done; ++cycle) {
        for (int p = 0; p < num_policies; ++p) {
          const CycleOutcome& co =
              cells[static_cast<std::size_t>(cycle) * num_policies + p];
          persist::CycleCellState cell;
          cell.cycle = cycle;
          cell.policy = p;
          cell.offered_requests = co.offered_requests;
          cell.result = co.result;
          cell.decide_ms = co.decide_ms;
          cell.refunds = co.refunds;
          cell.net_profit = co.net_profit;
          cell.fault_stats = to_image(co.fault_stats);
          ckpt.cells.push_back(std::move(cell));
        }
      }
      ckpt.metrics = telemetry::Registry::global().snapshot();
      persist::save(ckpt, config_.checkpoint_path);
      if (config_.checkpoint_keep_all) {
        persist::save(ckpt, config_.checkpoint_path + ".cycle" +
                                std::to_string(cycles_done));
      }
    }
  }

  // Serial reduction in (cycle, policy) order: per-policy totals accumulate
  // cycle-by-cycle exactly as the historical nested loop did.
  for (int cycle = 0; cycle < config_.cycles; ++cycle) {
    for (int p = 0; p < num_policies; ++p) {
      CycleOutcome co = cells[cycle * num_policies + p];
      PolicyOutcome& outcome = outcomes[p];
      outcome.total_profit += co.result.profit;
      outcome.total_revenue += co.result.revenue;
      outcome.total_cost += co.result.cost;
      outcome.total_accepted += co.result.accepted;
      outcome.total_offered += co.offered_requests;
      outcome.total_refunds += co.refunds;
      outcome.total_net_profit += co.net_profit;
      outcome.cycles.push_back(std::move(co));
    }
  }
  return outcomes;
}

}  // namespace metis::sim
