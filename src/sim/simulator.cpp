#include "sim/simulator.h"

#include <cmath>
#include <stdexcept>

#include "sim/validate.h"
#include "util/parallel.h"
#include "util/telemetry.h"

namespace metis::sim {

BillingCycleSimulator::BillingCycleSimulator(SimulationConfig config)
    : config_(std::move(config)) {
  if (config_.cycles <= 0) {
    throw std::invalid_argument("SimulationConfig: cycles must be positive");
  }
  if (config_.demand_growth < -1) {
    throw std::invalid_argument("SimulationConfig: growth below -100%");
  }
}

int BillingCycleSimulator::cycle_requests(int cycle) const {
  const double grown = config_.base.num_requests *
                       std::pow(1.0 + config_.demand_growth, cycle);
  return std::max(1, static_cast<int>(std::llround(grown)));
}

core::SpmInstance BillingCycleSimulator::cycle_instance(int cycle) const {
  if (cycle < 0 || cycle >= config_.cycles) {
    throw std::invalid_argument("cycle_instance: cycle out of range");
  }
  Scenario scenario = config_.base;
  scenario.seed = config_.base.seed + static_cast<std::uint64_t>(cycle) * 7919;
  scenario.num_requests = cycle_requests(cycle);
  return make_instance(scenario);
}

std::vector<PolicyOutcome> BillingCycleSimulator::run(
    const std::vector<std::unique_ptr<Policy>>& policies) const {
  std::vector<PolicyOutcome> outcomes;
  outcomes.reserve(policies.size());
  for (const auto& policy : policies) {
    PolicyOutcome outcome;
    outcome.policy = policy->name();
    outcomes.push_back(std::move(outcome));
  }

  // One cell per (cycle, policy): the cell's Rng seed depends only on
  // (cycle, p) and the instance only on the cycle, so the grid parallelizes
  // with no cross-cell state.  Each cell rebuilds its cycle's instance —
  // cheap relative to a decide() — to stay share-nothing.
  const int num_policies = static_cast<int>(policies.size());
  const std::vector<CycleOutcome> cells = parallel_map(
      config_.cycles * num_policies,
      [&](int index) {
        const int cycle = index / num_policies;
        const std::size_t p = static_cast<std::size_t>(index % num_policies);
        const core::SpmInstance instance = cycle_instance(cycle);
        Rng rng(config_.base.seed * 104729 + cycle * 31 + p * 7 + 1);
        const telemetry::Stopwatch decide_timer;
        const Decision decision = [&] {
          METIS_SPAN("cycle_decide");
          return policies[p]->decide(instance, rng);
        }();
        const double decide_ms = decide_timer.ms();

        const auto violations =
            check_schedule(instance, decision.schedule, decision.plan);
        if (!violations.empty()) {
          throw std::runtime_error("simulator: policy '" + policies[p]->name() +
                                   "' produced an infeasible decision: " +
                                   violations.front());
        }
        const auto coverage =
            check_plan_covers_schedule(instance, decision.schedule, decision.plan);
        if (!coverage.empty()) {
          throw std::runtime_error("simulator: policy '" + policies[p]->name() +
                                   "' under-purchased: " + coverage.front());
        }

        CycleOutcome co;
        co.cycle = cycle;
        co.offered_requests = instance.num_requests();
        co.result = core::evaluate_with_plan(instance, decision.schedule,
                                             decision.plan);
        co.decide_ms = decide_ms;
        telemetry::observe("sim.decide_ms", co.decide_ms);
        telemetry::count("sim.cycle_cells");
        return co;
      },
      config_.threads);

  // Serial reduction in (cycle, policy) order: per-policy totals accumulate
  // cycle-by-cycle exactly as the historical nested loop did.
  for (int cycle = 0; cycle < config_.cycles; ++cycle) {
    for (int p = 0; p < num_policies; ++p) {
      CycleOutcome co = cells[cycle * num_policies + p];
      PolicyOutcome& outcome = outcomes[p];
      outcome.total_profit += co.result.profit;
      outcome.total_revenue += co.result.revenue;
      outcome.total_cost += co.result.cost;
      outcome.total_accepted += co.result.accepted;
      outcome.total_offered += co.offered_requests;
      outcome.cycles.push_back(std::move(co));
    }
  }
  return outcomes;
}

}  // namespace metis::sim
