#include "sim/simulator.h"

#include <cmath>
#include <stdexcept>

#include "sim/validate.h"
#include "util/parallel.h"
#include "util/telemetry.h"

namespace metis::sim {

BillingCycleSimulator::BillingCycleSimulator(SimulationConfig config)
    : config_(std::move(config)) {
  if (config_.cycles <= 0) {
    throw std::invalid_argument("SimulationConfig: cycles must be positive");
  }
  if (config_.demand_growth < -1) {
    throw std::invalid_argument("SimulationConfig: growth below -100%");
  }
}

int BillingCycleSimulator::cycle_requests(int cycle) const {
  const double grown = config_.base.num_requests *
                       std::pow(1.0 + config_.demand_growth, cycle);
  return std::max(1, static_cast<int>(std::llround(grown)));
}

core::SpmInstance BillingCycleSimulator::cycle_instance(int cycle) const {
  if (cycle < 0 || cycle >= config_.cycles) {
    throw std::invalid_argument("cycle_instance: cycle out of range");
  }
  Scenario scenario = config_.base;
  scenario.seed = config_.base.seed + static_cast<std::uint64_t>(cycle) * 7919;
  scenario.num_requests = cycle_requests(cycle);
  return make_instance(scenario);
}

void BillingCycleSimulator::replay_faults(const core::SpmInstance& instance,
                                          const Decision& decision, int cycle,
                                          Rng& rng, CycleOutcome& co) const {
  METIS_SPAN("cycle_faults");
  const int num_slots = instance.num_slots();
  // The stream is seeded by the cycle alone (same expression as the cycle's
  // scenario seed), never by the policy index: every policy of a cycle
  // faces the identical fault sequence.
  const std::vector<FaultEvent> events = generate_fault_events(
      config_.faults, instance.topology(), num_slots,
      Rng(config_.base.seed + static_cast<std::uint64_t>(cycle) * 7919));
  if (events.empty()) return;

  RepairConfig repair;
  repair.policy = config_.repair_policy;
  repair.refund_factor = config_.refund_factor;
  repair.max_shed_rounds = config_.max_shed_rounds;
  CommittedBook book(instance.topology(), instance.config(), repair);
  book.adopt(instance, decision.schedule);

  // Surge arrivals come from the healthy topology's generator (same
  // endpoint universe as the cycle's book); the book auto-declines any
  // the mutated WAN cannot connect.
  workload::GeneratorConfig wconfig = config_.base.workload;
  wconfig.num_slots = num_slots;
  const workload::RequestGenerator generator(instance.topology(), wconfig);

  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::DemandSurge) {
      book.inject(event, rng);  // stats only; no topology change
      if (event.surge_arrivals <= 0) continue;
      const int slot =
          std::min(static_cast<int>(std::floor(event.time)), num_slots - 1);
      for (const workload::Request& r :
           generator.generate_at(slot, event.surge_arrivals, rng)) {
        book.add_pending(r);
      }
      co.offered_requests += event.surge_arrivals;
      // The offline regime has no batching: a surge is decided on arrival.
      book.decide_pending(rng);
      continue;
    }
    book.inject(event, rng);
  }

  const auto violations = book.validate();
  if (!violations.empty()) {
    throw std::runtime_error("simulator: fault replay left an invalid book: " +
                             violations.front());
  }

  co.result = book.evaluate();
  co.refunds = book.refunds();
  co.net_profit = book.net_profit();
  co.fault_stats = book.stats();
}

std::vector<PolicyOutcome> BillingCycleSimulator::run(
    const std::vector<std::unique_ptr<Policy>>& policies) const {
  std::vector<PolicyOutcome> outcomes;
  outcomes.reserve(policies.size());
  for (const auto& policy : policies) {
    PolicyOutcome outcome;
    outcome.policy = policy->name();
    outcomes.push_back(std::move(outcome));
  }

  // One cell per (cycle, policy): the cell's Rng seed depends only on
  // (cycle, p) and the instance only on the cycle, so the grid parallelizes
  // with no cross-cell state.  Each cell rebuilds its cycle's instance —
  // cheap relative to a decide() — to stay share-nothing.
  const int num_policies = static_cast<int>(policies.size());
  const std::vector<CycleOutcome> cells = parallel_map(
      config_.cycles * num_policies,
      [&](int index) {
        const int cycle = index / num_policies;
        const std::size_t p = static_cast<std::size_t>(index % num_policies);
        const core::SpmInstance instance = cycle_instance(cycle);
        Rng rng(config_.base.seed * 104729 + cycle * 31 + p * 7 + 1);
        const telemetry::Stopwatch decide_timer;
        const Decision decision = [&] {
          METIS_SPAN("cycle_decide");
          return policies[p]->decide(instance, rng);
        }();
        const double decide_ms = decide_timer.ms();

        const auto violations =
            check_schedule(instance, decision.schedule, decision.plan);
        if (!violations.empty()) {
          throw std::runtime_error("simulator: policy '" + policies[p]->name() +
                                   "' produced an infeasible decision: " +
                                   violations.front());
        }
        const auto coverage =
            check_plan_covers_schedule(instance, decision.schedule, decision.plan);
        if (!coverage.empty()) {
          throw std::runtime_error("simulator: policy '" + policies[p]->name() +
                                   "' under-purchased: " + coverage.front());
        }

        CycleOutcome co;
        co.cycle = cycle;
        co.offered_requests = instance.num_requests();
        co.result = core::evaluate_with_plan(instance, decision.schedule,
                                             decision.plan);
        co.decide_ms = decide_ms;
        co.net_profit = co.result.profit;
        if (config_.faults.rate > 0) {
          replay_faults(instance, decision, cycle, rng, co);
        }
        telemetry::observe("sim.decide_ms", co.decide_ms);
        telemetry::count("sim.cycle_cells");
        return co;
      },
      config_.threads);

  // Serial reduction in (cycle, policy) order: per-policy totals accumulate
  // cycle-by-cycle exactly as the historical nested loop did.
  for (int cycle = 0; cycle < config_.cycles; ++cycle) {
    for (int p = 0; p < num_policies; ++p) {
      CycleOutcome co = cells[cycle * num_policies + p];
      PolicyOutcome& outcome = outcomes[p];
      outcome.total_profit += co.result.profit;
      outcome.total_revenue += co.result.revenue;
      outcome.total_cost += co.result.cost;
      outcome.total_accepted += co.result.accepted;
      outcome.total_offered += co.offered_requests;
      outcome.total_refunds += co.refunds;
      outcome.total_net_profit += co.net_profit;
      outcome.cycles.push_back(std::move(co));
    }
  }
  return outcomes;
}

}  // namespace metis::sim
