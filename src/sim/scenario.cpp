#include "sim/scenario.h"

#include "net/topologies.h"
#include "util/rng.h"

namespace metis::sim {

std::string to_string(Network network) {
  switch (network) {
    case Network::B4: return "B4";
    case Network::SubB4: return "SUB-B4";
  }
  return "Unknown";
}

net::Topology make_network(const Scenario& scenario) {
  net::Topology topo = scenario.network == Network::B4 ? net::make_b4()
                                                       : net::make_sub_b4();
  if (scenario.uniform_capacity > 0) {
    topo.set_uniform_capacity(scenario.uniform_capacity);
  }
  return topo;
}

core::SpmInstance make_instance(const Scenario& scenario) {
  net::Topology topo = make_network(scenario);
  workload::GeneratorConfig config = scenario.workload;
  config.num_slots = scenario.instance.num_slots;
  const workload::RequestGenerator generator(topo, config);
  Rng rng(scenario.seed);
  auto requests =
      scenario.poisson_arrivals
          ? generator.generate_poisson(
                static_cast<double>(scenario.num_requests) / config.num_slots,
                rng)
          : generator.generate(scenario.num_requests, rng);
  return core::SpmInstance(std::move(topo), std::move(requests),
                           scenario.instance);
}

}  // namespace metis::sim
