#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/validate.h"
#include "util/telemetry.h"
#include "workload/request.h"

namespace metis::sim {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::LinkFailure: return "link_failure";
    case FaultKind::LinkDegrade: return "link_degrade";
    case FaultKind::NodeOutage: return "node_outage";
    case FaultKind::PriceShock: return "price_shock";
    case FaultKind::DemandSurge: return "demand_surge";
  }
  return "unknown";
}

std::string to_string(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::DropAffected: return "drop";
    case RepairPolicy::Reroute: return "reroute";
  }
  return "unknown";
}

RepairPolicy parse_repair_policy(const std::string& name) {
  if (name == "drop") return RepairPolicy::DropAffected;
  if (name == "reroute") return RepairPolicy::Reroute;
  throw std::invalid_argument("unknown repair policy: " + name +
                              " (expected drop|reroute)");
}

std::vector<FaultEvent> generate_fault_events(const FaultConfig& config,
                                              const net::Topology& topo,
                                              int num_slots, const Rng& base) {
  if (config.rate < 0) {
    throw std::invalid_argument("FaultConfig: rate must be >= 0");
  }
  if (config.weight_link_failure < 0 || config.weight_link_degrade < 0 ||
      config.weight_node_outage < 0 || config.weight_price_shock < 0 ||
      config.weight_demand_surge < 0) {
    throw std::invalid_argument("FaultConfig: negative kind weight");
  }
  if (config.degrade_keep_min <= 0 ||
      config.degrade_keep_min > config.degrade_keep_max ||
      config.degrade_keep_max >= 1) {
    throw std::invalid_argument(
        "FaultConfig: degrade keep range must satisfy 0 < min <= max < 1");
  }
  if (config.price_shock_min < 1 ||
      config.price_shock_min > config.price_shock_max) {
    throw std::invalid_argument(
        "FaultConfig: price shock range must satisfy 1 <= min <= max");
  }
  if (config.surge_mean < 0) {
    throw std::invalid_argument("FaultConfig: surge_mean must be >= 0");
  }
  if (num_slots <= 0) {
    throw std::invalid_argument("generate_fault_events: num_slots must be > 0");
  }
  if (config.rate == 0) return {};
  const double weights[] = {config.weight_link_failure,
                            config.weight_link_degrade,
                            config.weight_node_outage,
                            config.weight_price_shock,
                            config.weight_demand_surge};
  double weight_sum = 0;
  for (double w : weights) weight_sum += w;
  if (weight_sum <= 0) {
    throw std::invalid_argument("FaultConfig: kind weights sum to zero");
  }
  if (topo.num_edges() == 0) {
    throw std::invalid_argument("generate_fault_events: topology has no edges");
  }

  std::vector<FaultEvent> out;
  const Rng stream = base.split(config.stream);
  for (int slot = 0; slot < num_slots; ++slot) {
    // Index-addressed per-slot sub-stream: slot s's events never depend on
    // how many events earlier slots produced.
    Rng slot_rng = stream.split(static_cast<std::uint64_t>(slot));
    const int count = slot_rng.poisson(config.rate);
    for (int i = 0; i < count; ++i) {
      FaultEvent event;
      event.time = slot + slot_rng.uniform(0.0, 1.0);
      event.kind = static_cast<FaultKind>(slot_rng.weighted_index(weights));
      switch (event.kind) {
        case FaultKind::LinkFailure:
          event.target = slot_rng.uniform_int(0, topo.num_edges() - 1);
          break;
        case FaultKind::LinkDegrade:
          event.target = slot_rng.uniform_int(0, topo.num_edges() - 1);
          event.magnitude =
              slot_rng.uniform(config.degrade_keep_min, config.degrade_keep_max);
          break;
        case FaultKind::NodeOutage:
          event.target = slot_rng.uniform_int(0, topo.num_nodes() - 1);
          break;
        case FaultKind::PriceShock:
          event.target = slot_rng.uniform_int(0, topo.num_edges() - 1);
          event.magnitude =
              slot_rng.uniform(config.price_shock_min, config.price_shock_max);
          break;
        case FaultKind::DemandSurge:
          event.surge_arrivals =
              config.surge_mean > 0 ? slot_rng.poisson(config.surge_mean) : 0;
          break;
      }
      out.push_back(event);
    }
  }
  // Within a slot timestamps are i.i.d. uniform; stable_sort keeps the
  // generation order on ties, so the stream is fully deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

CommittedBook::CommittedBook(net::Topology topo, core::InstanceConfig config,
                             RepairConfig repair)
    : topo_(std::move(topo)),
      config_(config),
      repair_(std::move(repair)),
      cache_(topo_) {
  if (repair_.refund_factor < 0) {
    throw std::invalid_argument("RepairConfig: refund_factor must be >= 0");
  }
  if (repair_.max_shed_rounds < 0) {
    throw std::invalid_argument("RepairConfig: max_shed_rounds must be >= 0");
  }
  if (repair_.metis.edge_capacity != nullptr) {
    throw std::invalid_argument(
        "RepairConfig: metis.edge_capacity is owned by the book; leave null");
  }
}

int CommittedBook::add_pending(const workload::Request& request) {
  workload::validate_request(request, topo_.num_nodes(), config_.num_slots);
  Entry entry;
  entry.request = request;
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

int CommittedBook::pending_count() const {
  int pending = 0;
  for (const Entry& e : entries_) pending += e.status == Status::Pending;
  return pending;
}

int CommittedBook::accepted_count() const {
  int accepted = 0;
  for (const Entry& e : entries_) accepted += e.status == Status::Accepted;
  return accepted;
}

void CommittedBook::adopt(const core::SpmInstance& instance,
                          const core::Schedule& schedule) {
  if (!entries_.empty()) {
    throw std::logic_error("CommittedBook::adopt: book is not empty");
  }
  core::validate_shape(instance, schedule);
  entries_.reserve(instance.num_requests());
  for (int i = 0; i < instance.num_requests(); ++i) {
    Entry entry;
    entry.request = instance.request(i);
    const int j = schedule.path_choice[i];
    if (j != core::kDeclined) {
      entry.status = Status::Accepted;
      entry.path = instance.paths(i)[j];
      entry.was_committed = true;
    } else {
      entry.status = Status::Declined;
    }
    entries_.push_back(std::move(entry));
  }
}

core::LoadMatrix CommittedBook::accepted_loads() const {
  core::LoadMatrix loads(topo_.num_edges(), config_.num_slots);
  for (const Entry& e : entries_) {
    if (e.status != Status::Accepted) continue;
    for (net::EdgeId edge : e.path.edges) {
      for (int t = e.request.start_slot; t <= e.request.end_slot; ++t) {
        loads.add(edge, t, e.request.rate);
      }
    }
  }
  return loads;
}

std::vector<int> CommittedBook::effective_caps() const {
  std::vector<int> caps(topo_.num_edges(), -1);
  for (net::EdgeId e = 0; e < topo_.num_edges(); ++e) {
    if (!topo_.edge_enabled(e)) {
      caps[e] = 0;  // a dead link sells zero units
    } else if (topo_.edge(e).capacity_units > 0) {
      caps[e] = topo_.edge(e).capacity_units;
    }
  }
  return caps;
}

void CommittedBook::drop_entry(std::size_t idx) {
  Entry& entry = entries_.at(idx);
  if (entry.status == Status::Declined) return;
  if (entry.was_committed) {
    // Revoking a commitment breaches the SLA: pay the refund.
    refunds_.charge(entry.request.value, repair_.refund_factor);
    ++stats_.dropped;
    telemetry::count("fault.drops");
  }
  entry.status = Status::Declined;
  entry.path.edges.clear();
}

int CommittedBook::shed_lowest_value(int count) {
  int shed = 0;
  while (shed < count) {
    std::size_t worst = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].status != Status::Accepted) continue;
      if (worst == entries_.size() ||
          entries_[i].request.value < entries_[worst].request.value) {
        worst = i;
      }
    }
    if (worst == entries_.size()) break;  // nothing left to shed
    drop_entry(worst);
    ++shed;
  }
  return shed;
}

void CommittedBook::enforce_capacity() {
  // Hard guarantee behind the LP caps: randomized rounding may overshoot
  // the relaxation's purchase ceilings, so after every decide the book is
  // shed (lowest value first, deterministic index tie-break) until its
  // charged load physically fits the mutated network.
  bool changed = true;
  while (changed) {
    changed = false;
    const core::LoadMatrix loads = accepted_loads();
    for (net::EdgeId e = 0; e < topo_.num_edges() && !changed; ++e) {
      const int charged = core::charged_units(loads.peak(e));
      if (charged <= 0) continue;
      const int cap = topo_.edge(e).capacity_units;
      const bool violated =
          !topo_.edge_enabled(e) || (cap > 0 && charged > cap);
      if (!violated) continue;
      std::size_t worst = entries_.size();
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& entry = entries_[i];
        if (entry.status != Status::Accepted) continue;
        if (std::find(entry.path.edges.begin(), entry.path.edges.end(), e) ==
            entry.path.edges.end()) {
          continue;
        }
        if (worst == entries_.size() ||
            entry.request.value < entries_[worst].request.value) {
          worst = i;
        }
      }
      if (worst == entries_.size()) break;  // defensive: no user found
      drop_entry(worst);
      changed = true;  // loads changed; recompute from scratch
    }
  }
}

CommittedBook::Attempt CommittedBook::attempt_decide(Rng& rng) {
  Attempt attempt;
  std::vector<workload::Request> book;
  std::vector<net::Path> require;
  // Pinned prefix: committed survivors, each with its reserved path forced
  // into the candidate set (Yen over the mutated topology may rank — or
  // miss — it).
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].status != Status::Accepted) continue;
    attempt.entry_of.push_back(i);
    book.push_back(entries_[i].request);
    require.push_back(entries_[i].path);
  }
  attempt.num_committed = static_cast<int>(book.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].status != Status::Pending) continue;
    attempt.entry_of.push_back(i);
    book.push_back(entries_[i].request);
    require.emplace_back();
  }

  core::SpmInstance instance(topo_, book, config_, &cache_, &require);
  state_.committed.clear();
  for (int c = 0; c < attempt.num_committed; ++c) {
    const std::vector<net::Path>& candidates = instance.paths(c);
    const auto it = std::find(candidates.begin(), candidates.end(), require[c]);
    // require_paths guarantees presence.
    state_.committed.push_back(static_cast<int>(it - candidates.begin()));
  }

  const std::vector<int> caps = effective_caps();
  core::MetisOptions options = repair_.metis;
  options.edge_capacity = &caps;
  attempt.result = core::run_metis_incremental(instance, state_, rng, options);
  lp_stats_ += attempt.result.lp_stats;

  attempt.chosen_path.resize(book.size());
  for (std::size_t k = 0; k < book.size(); ++k) {
    const int j = attempt.result.schedule.path_choice[k];
    if (j != core::kDeclined) attempt.chosen_path[k] = instance.paths(k)[j];
  }
  return attempt;
}

core::MetisResult CommittedBook::decide_pending(Rng& rng) {
  // Pending requests the mutated WAN can no longer connect are declined
  // up-front (SpmInstance would reject the whole book otherwise); a victim
  // that became unreachable is a drop with refund.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.status != Status::Pending) continue;
    const bool connected =
        topo_.node_enabled(entry.request.src) &&
        topo_.node_enabled(entry.request.dst) &&
        net::shortest_path(topo_, entry.request.src, entry.request.dst)
            .has_value();
    if (!connected) drop_entry(i);
  }

  Attempt attempt = attempt_decide(rng);
  // Infeasible repair: bounded exponential backoff — shed the 1, 2, 4, ...
  // lowest-value commitments and re-solve.  Shedding strictly shrinks the
  // pinned load, so a feasible point is reached (at the latest with an
  // empty pinned set) or the round bound trips.
  int shed = 1;
  for (int round = 0; round < repair_.max_shed_rounds; ++round) {
    const bool infeasible =
        attempt.result.maa_status == lp::SolveStatus::Infeasible ||
        attempt.result.taa_status == lp::SolveStatus::Infeasible;
    if (!infeasible) break;
    if (shed_lowest_value(shed) == 0) break;
    ++stats_.shed_rounds;
    telemetry::count("fault.shed_rounds");
    shed *= 2;
    attempt = attempt_decide(rng);
  }

  // Finalize the free decisions: accepted joins the committed book on its
  // concrete path, declined is final (a declined victim is a drop).
  for (std::size_t k = attempt.num_committed; k < attempt.entry_of.size();
       ++k) {
    Entry& entry = entries_[attempt.entry_of[k]];
    if (!attempt.chosen_path[k].empty()) {
      entry.status = Status::Accepted;
      entry.path = attempt.chosen_path[k];
      if (entry.was_committed) ++stats_.rerouted;
    } else {
      drop_entry(attempt.entry_of[k]);
    }
  }
  enforce_capacity();
  for (Entry& entry : entries_) {
    if (entry.status == Status::Accepted) entry.was_committed = true;
  }
  return std::move(attempt.result);
}

bool CommittedBook::inject(const FaultEvent& event, Rng& rng) {
  METIS_SPAN("fault.inject");
  ++stats_.injected;
  telemetry::count("fault.events");

  if (event.kind == FaultKind::DemandSurge) {
    // The caller owns the workload generator and expands the surge into
    // add_pending() + decide_pending(); the book only keeps score.
    stats_.surge_arrivals += event.surge_arrivals;
    return false;
  }

  const auto require_edge = [&](int target) {
    if (target < 0 || target >= topo_.num_edges()) {
      throw std::invalid_argument("FaultEvent: edge target out of range");
    }
  };

  bool changed = false;
  std::vector<std::size_t> victims;
  const auto users_of = [&](net::EdgeId e, std::vector<std::size_t>& out) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = entries_[i];
      if (entry.status != Status::Accepted) continue;
      if (std::find(entry.path.edges.begin(), entry.path.edges.end(), e) !=
          entry.path.edges.end()) {
        if (std::find(out.begin(), out.end(), i) == out.end()) out.push_back(i);
      }
    }
  };

  switch (event.kind) {
    case FaultKind::LinkFailure: {
      require_edge(event.target);
      if (topo_.edge_enabled(event.target)) {
        users_of(event.target, victims);
        topo_.disable_edge(event.target);
        changed = true;
      }
      break;
    }
    case FaultKind::NodeOutage: {
      if (!topo_.valid_node(event.target)) {
        throw std::invalid_argument("FaultEvent: node target out of range");
      }
      if (topo_.node_enabled(event.target)) {
        for (net::EdgeId e = 0; e < topo_.num_edges(); ++e) {
          const net::Edge& edge = topo_.edge(e);
          if (edge.enabled &&
              (edge.src == event.target || edge.dst == event.target)) {
            users_of(e, victims);
          }
        }
        topo_.disable_node(event.target);
        changed = true;
      }
      break;
    }
    case FaultKind::LinkDegrade: {
      require_edge(event.target);
      if (!topo_.edge_enabled(event.target)) break;
      const net::EdgeId e = event.target;
      const int committed =
          core::charged_units(accepted_loads().peak(e));
      // Base for the shrink: the configured link capacity, or — on an
      // uncapacitated link — the capacity the committed load implies.  An
      // idle uncapacitated link has no observable base and nothing to
      // degrade.
      const int base =
          topo_.edge(e).capacity_units > 0 ? topo_.edge(e).capacity_units
                                           : committed;
      if (base <= 0) break;
      const int new_cap = std::max(
          1, static_cast<int>(std::floor(base * event.magnitude)));
      if (topo_.edge(e).capacity_units > 0 &&
          new_cap >= topo_.edge(e).capacity_units) {
        break;  // rounding left nothing to shrink
      }
      topo_.override_capacity(e, new_cap);
      changed = true;
      // Victims: lowest-value users of the shrunk edge until the committed
      // charge fits the new capacity.
      while (core::charged_units(accepted_loads().peak(e)) > new_cap) {
        std::vector<std::size_t> users;
        users_of(e, users);
        if (users.empty()) break;
        std::size_t worst = users.front();
        for (std::size_t i : users) {
          if (entries_[i].request.value < entries_[worst].request.value) {
            worst = i;
          }
        }
        victims.push_back(worst);
        // Take the victim off the edge now so the loop converges; the
        // policy pass below decides drop vs re-queue.
        entries_[worst].status = Status::Pending;
        entries_[worst].path.edges.clear();
      }
      break;
    }
    case FaultKind::PriceShock: {
      require_edge(event.target);
      topo_.set_price(event.target,
                      topo_.edge(event.target).price * event.magnitude);
      changed = true;  // future purchases are repriced; nothing to shed
      break;
    }
    case FaultKind::DemandSurge:
      break;  // handled above
  }

  if (!changed) return false;
  ++stats_.network_changes;

  // Victim disposition: the naive policy refunds everyone immediately; the
  // reroute policy re-queues victims into the repair decide (a victim whose
  // endpoint DC died can never reroute and is dropped either way).
  stats_.victims += static_cast<int>(victims.size());
  for (std::size_t idx : victims) {
    Entry& entry = entries_[idx];
    const bool endpoint_dead = !topo_.node_enabled(entry.request.src) ||
                               !topo_.node_enabled(entry.request.dst);
    if (repair_.policy == RepairPolicy::DropAffected || endpoint_dead) {
      drop_entry(idx);
    } else {
      entry.status = Status::Pending;
      entry.path.edges.clear();
    }
  }

  // Repair re-decide: only needed when something is waiting for a decision
  // (re-queued victims or pending arrivals); pinned survivors and the
  // derived purchase plan adjust by themselves.
  if (pending_count() > 0) {
    METIS_SPAN("fault.repair");
    const telemetry::Stopwatch repair_timer;
    ++stats_.repairs;
    decide_pending(rng);
    telemetry::observe("fault.repair_ms", repair_timer.ms());
  } else {
    enforce_capacity();
  }
  telemetry::gauge_set("fault.refunds", refunds_.refunded);
  telemetry::gauge_set("fault.dropped", stats_.dropped);
  telemetry::gauge_set("fault.rerouted", stats_.rerouted);
  return true;
}

core::ProfitBreakdown CommittedBook::evaluate() const {
  core::ProfitBreakdown pb;
  for (const Entry& entry : entries_) {
    if (entry.status != Status::Accepted) continue;
    pb.revenue += entry.request.value;
    ++pb.accepted;
  }
  pb.cost = core::cost(topo_, plan());
  pb.profit = pb.revenue - pb.cost;
  return pb;
}

double CommittedBook::net_profit() const {
  return evaluate().profit - refunds_.refunded;
}

std::vector<workload::Request> CommittedBook::requests() const {
  std::vector<workload::Request> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.request);
  return out;
}

std::vector<net::Path> CommittedBook::reserved_paths() const {
  std::vector<net::Path> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.push_back(entry.status == Status::Accepted ? entry.path : net::Path{});
  }
  return out;
}

core::ChargingPlan CommittedBook::plan() const {
  return core::charging_from_loads(accepted_loads());
}

std::vector<std::string> CommittedBook::validate() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.status != Status::Accepted) continue;
    for (net::EdgeId e : entry.path.edges) {
      if (!topo_.edge_enabled(e)) {
        out.push_back("request " + std::to_string(i) +
                      ": reserved path crosses disabled edge " +
                      std::to_string(e));
      }
    }
  }
  const core::ChargingPlan purchase = plan();
  for (std::string& v : check_plan_within_capacity(topo_, purchase)) {
    out.push_back(std::move(v));
  }
  if (!out.empty()) return out;

  // Rebuild the compact accepted instance and run the standard oracles:
  // the repaired schedule must pass check_schedule under the mutated
  // topology, and the purchase must cover it.
  std::vector<workload::Request> book;
  std::vector<net::Path> require;
  for (const Entry& entry : entries_) {
    if (entry.status != Status::Accepted) continue;
    book.push_back(entry.request);
    require.push_back(entry.path);
  }
  if (book.empty()) return out;
  const core::SpmInstance instance(topo_, book, config_, nullptr, &require);
  core::Schedule schedule =
      core::Schedule::all_declined(static_cast<int>(book.size()));
  for (std::size_t k = 0; k < book.size(); ++k) {
    const std::vector<net::Path>& candidates =
        instance.paths(static_cast<int>(k));
    const auto it = std::find(candidates.begin(), candidates.end(), require[k]);
    schedule.path_choice[k] = static_cast<int>(it - candidates.begin());
  }
  for (std::string& v : check_schedule(instance, schedule, purchase)) {
    out.push_back(std::move(v));
  }
  for (std::string& v :
       check_plan_covers_schedule(instance, schedule, purchase)) {
    out.push_back(std::move(v));
  }
  return out;
}

void CommittedBook::export_state(persist::OnlineCheckpoint& ckpt) const {
  ckpt.entries.clear();
  ckpt.entries.reserve(entries_.size());
  for (const Entry& e : entries_) {
    persist::BookEntryState image;
    image.request = e.request;
    image.status = static_cast<int>(e.status);
    image.path = e.path;
    image.was_committed = e.was_committed;
    ckpt.entries.push_back(std::move(image));
  }
  persist::TopologyState& t = ckpt.topology;
  t.price.clear();
  t.capacity_units.clear();
  t.edge_enabled.clear();
  for (const net::Edge& edge : topo_.edges()) {
    t.price.push_back(edge.price);
    t.capacity_units.push_back(edge.capacity_units);
    t.edge_enabled.push_back(edge.enabled ? 1 : 0);
  }
  t.node_enabled.clear();
  for (net::NodeId node = 0; node < topo_.num_nodes(); ++node) {
    t.node_enabled.push_back(topo_.node_enabled(node) ? 1 : 0);
  }
  t.epoch = topo_.epoch();
  ckpt.inc = state_;
  ckpt.refunds = refunds_;
  ckpt.fault_stats = {stats_.injected,  stats_.network_changes,
                      stats_.repairs,   stats_.victims,
                      stats_.dropped,   stats_.rerouted,
                      stats_.shed_rounds, stats_.surge_arrivals};
  ckpt.book_lp_stats = lp_stats_;
  ckpt.cache = cache_.dump();
}

void CommittedBook::restore_state(const persist::OnlineCheckpoint& ckpt) {
  const persist::TopologyState& t = ckpt.topology;
  if (static_cast<int>(t.price.size()) != topo_.num_edges() ||
      static_cast<int>(t.node_enabled.size()) != topo_.num_nodes()) {
    throw std::invalid_argument(
        "CommittedBook::restore_state: topology image shape (" +
        std::to_string(t.price.size()) + " edges, " +
        std::to_string(t.node_enabled.size()) +
        " nodes) does not match this book's topology");
  }
  for (net::EdgeId e = 0; e < topo_.num_edges(); ++e) {
    topo_.restore_edge_state(e, t.price[e], t.capacity_units[e],
                             t.edge_enabled[e] != 0);
  }
  for (net::NodeId node = 0; node < topo_.num_nodes(); ++node) {
    topo_.restore_node_state(node, t.node_enabled[node] != 0);
  }
  topo_.restore_epoch(t.epoch);

  entries_.clear();
  entries_.reserve(ckpt.entries.size());
  for (const persist::BookEntryState& image : ckpt.entries) {
    Entry e;
    e.request = image.request;
    if (image.status < 0 || image.status > 2) {
      throw std::invalid_argument(
          "CommittedBook::restore_state: entry status out of range");
    }
    e.status = static_cast<Status>(image.status);
    e.path = image.path;
    e.was_committed = image.was_committed;
    entries_.push_back(std::move(e));
  }
  state_ = ckpt.inc;
  refunds_ = ckpt.refunds;
  stats_ = FaultStats{ckpt.fault_stats.injected,
                      ckpt.fault_stats.network_changes,
                      ckpt.fault_stats.repairs,
                      ckpt.fault_stats.victims,
                      ckpt.fault_stats.dropped,
                      ckpt.fault_stats.rerouted,
                      ckpt.fault_stats.shed_rounds,
                      ckpt.fault_stats.surge_arrivals};
  lp_stats_ = ckpt.book_lp_stats;
  cache_.restore(ckpt.cache);
}

}  // namespace metis::sim
