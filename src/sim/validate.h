// Schedule validators — the feasibility oracles used by tests and asserted
// by the experiment drivers before any metric is reported.
#pragma once

#include <string>
#include <vector>

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace metis::sim {

/// Returns human-readable violations of the schedule against `plan` used as
/// capacities: bad shapes, and any (edge, slot) where the reserved load
/// exceeds plan.units[e].  Empty vector = feasible.
std::vector<std::string> check_schedule(const core::SpmInstance& instance,
                                        const core::Schedule& schedule,
                                        const core::ChargingPlan& plan);

/// Checks that `plan` purchases at least the ceiled peak load of the
/// schedule on every edge (i.e. the provider actually paid for what it
/// reserved).  Empty vector = consistent.
std::vector<std::string> check_plan_covers_schedule(
    const core::SpmInstance& instance, const core::Schedule& schedule,
    const core::ChargingPlan& plan);

/// Checks `plan` against the (possibly fault-mutated) topology: purchasing
/// on a disabled edge, or above a finite link capacity, is a violation.
/// Empty vector = the purchase physically fits the network.
std::vector<std::string> check_plan_within_capacity(
    const net::Topology& topology, const core::ChargingPlan& plan);

}  // namespace metis::sim
