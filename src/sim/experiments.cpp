#include "sim/experiments.h"

#include <stdexcept>

#include "baselines/amoeba.h"
#include "baselines/ecoflow.h"
#include "baselines/mincost.h"
#include "baselines/opt.h"
#include "core/lp_builder.h"
#include "core/maa.h"
#include "core/metis.h"
#include "core/taa.h"
#include "sim/validate.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/telemetry.h"

namespace metis::sim {

namespace {

/// Throws if the schedule over-uses its own purchase (every driver calls
/// this before reporting, so no figure can be produced from an infeasible
/// schedule).
void assert_feasible(const core::SpmInstance& instance,
                     const core::Schedule& schedule,
                     const core::ChargingPlan& plan, const char* who) {
  const auto violations = check_schedule(instance, schedule, plan);
  if (!violations.empty()) {
    throw std::runtime_error(std::string("infeasible schedule from ") + who +
                             ": " + violations.front());
  }
}

/// Averages `sample` into `acc` component-wise (utilization summaries are
/// averaged on min/mean/max).
struct MetricsAverager {
  double revenue = 0, cost = 0, profit = 0, accepted = 0;
  double util_min = 0, util_mean = 0, util_max = 0;
  int n = 0;

  void add(const SolutionMetrics& m) {
    revenue += m.breakdown.revenue;
    cost += m.breakdown.cost;
    profit += m.breakdown.profit;
    accepted += m.breakdown.accepted;
    util_min += m.utilization.min;
    util_mean += m.utilization.mean;
    util_max += m.utilization.max;
    ++n;
  }
  SolutionMetrics mean() const {
    SolutionMetrics m;
    if (n == 0) return m;
    m.breakdown.revenue = revenue / n;
    m.breakdown.cost = cost / n;
    m.breakdown.profit = profit / n;
    m.breakdown.accepted = static_cast<int>(accepted / n);
    m.utilization.min = util_min / n;
    m.utilization.mean = util_mean / n;
    m.utilization.max = util_max / n;
    m.utilization.count = static_cast<std::size_t>(n);
    return m;
  }
};

Scenario base_scenario(Network network, int num_requests, std::uint64_t seed) {
  Scenario s;
  s.network = network;
  s.num_requests = num_requests;
  s.seed = seed;
  return s;
}

}  // namespace

std::vector<Fig3Row> run_fig3(const Fig3Config& config) {
  const int reps = config.sweep.repetitions;
  const int num_k = static_cast<int>(config.sweep.request_counts.size());

  struct Cell {
    SolutionMetrics metis, opt_spm, opt_rl_spm;
    bool opt_exact = true;
    double metis_ms = 0, opt_ms = 0, rl_ms = 0;
  };
  // One cell per (request count, repetition).  Each cell seeds its own Rng
  // from (sweep seed, rep) and reads only the config, so the grid
  // parallelizes as-is; results are identical for every thread count (the
  // wall-clock columns naturally vary with machine load).
  const std::vector<Cell> cells = parallel_map(
      num_k * reps,
      [&](int index) {
        const int k = config.sweep.request_counts[index / reps];
        const int rep = index % reps;
        const Scenario scenario =
            base_scenario(Network::SubB4, k, config.sweep.seed + rep);
        const core::SpmInstance instance = make_instance(scenario);
        Rng rng(scenario.seed * 7919 + 17);
        Cell cell;

        telemetry::Stopwatch timer;
        core::MetisOptions mopt;
        mopt.theta = config.theta;
        const core::MetisResult metis = core::run_metis(instance, rng, mopt);
        cell.metis_ms = timer.ms();
        assert_feasible(instance, metis.schedule, metis.plan, "Metis");
        cell.metis = measure_with_plan(instance, metis.schedule, metis.plan);

        // OPT(SPM), warm-started from Metis's decision so that a node/time
        // budget can only improve on the heuristic, never fall below it.
        timer.reset();
        const baselines::OptResult opt =
            baselines::run_opt_spm(instance, config.mip, &metis.schedule);
        cell.opt_ms = timer.ms();
        if (!opt.ok()) throw std::runtime_error("fig3: OPT(SPM) found no incumbent");
        cell.opt_exact = opt.exact;
        assert_feasible(instance, opt.schedule, opt.plan, "OPT(SPM)");
        cell.opt_spm = measure_with_plan(instance, opt.schedule, opt.plan);

        // OPT(RL-SPM), warm-started from a best-of-32 MAA rounding.
        timer.reset();
        core::MaaOptions maa_opt;
        maa_opt.rounding_trials = 32;
        Rng maa_rng(scenario.seed * 13 + 5);
        const core::MaaResult maa = core::run_maa(instance, {}, maa_rng, maa_opt);
        const baselines::OptResult rl =
            maa.ok() ? baselines::run_opt_rl_spm(instance, config.mip, &maa.schedule)
                     : baselines::run_opt_rl_spm(instance, config.mip);
        cell.rl_ms = timer.ms();
        if (!rl.ok()) throw std::runtime_error("fig3: OPT(RL-SPM) found no incumbent");
        assert_feasible(instance, rl.schedule, rl.plan, "OPT(RL-SPM)");
        cell.opt_rl_spm = measure_with_plan(instance, rl.schedule, rl.plan);
        return cell;
      },
      config.sweep.threads);

  // Serial reduction in cell-index order: float sums match the historical
  // nested loop bit-for-bit.
  std::vector<Fig3Row> rows;
  for (int ki = 0; ki < num_k; ++ki) {
    Fig3Row row;
    row.num_requests = config.sweep.request_counts[ki];
    MetricsAverager metis_avg, opt_avg, rl_avg;
    double metis_ms = 0, opt_ms = 0, rl_ms = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const Cell& cell = cells[ki * reps + rep];
      metis_avg.add(cell.metis);
      opt_avg.add(cell.opt_spm);
      rl_avg.add(cell.opt_rl_spm);
      row.opt_exact = row.opt_exact && cell.opt_exact;
      metis_ms += cell.metis_ms;
      opt_ms += cell.opt_ms;
      rl_ms += cell.rl_ms;
    }
    row.metis = metis_avg.mean();
    row.opt_spm = opt_avg.mean();
    row.opt_rl_spm = rl_avg.mean();
    row.metis_ms = metis_ms / reps;
    row.opt_spm_ms = opt_ms / reps;
    row.opt_rl_spm_ms = rl_ms / reps;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig4aRow> run_fig4a(const Fig4aConfig& config) {
  const SweepConfig& sweep = config.sweep;
  const int reps = sweep.repetitions;
  const int num_k = static_cast<int>(sweep.request_counts.size());

  struct Cell {
    double maa_cost = 0, lp_cost = 0, mincost_cost = 0;
  };
  const std::vector<Cell> cells = parallel_map(
      num_k * reps,
      [&](int index) {
        const int k = sweep.request_counts[index / reps];
        const int rep = index % reps;
        const Scenario scenario = base_scenario(Network::B4, k, sweep.seed + rep);
        const core::SpmInstance instance = make_instance(scenario);
        Rng rng(scenario.seed * 104729 + 3);
        Cell cell;

        core::MaaOptions maa_options;
        maa_options.rounding_trials = config.rounding_trials;
        const core::MaaResult maa = core::run_maa(instance, {}, rng, maa_options);
        if (!maa.ok()) throw std::runtime_error("fig4a: MAA LP failed");
        assert_feasible(instance, maa.schedule, maa.plan, "MAA");
        cell.maa_cost = maa.cost;
        cell.lp_cost = maa.lp_cost;

        const baselines::MinCostResult mc = baselines::run_mincost(instance);
        assert_feasible(instance, mc.schedule, mc.plan, "MinCost");
        cell.mincost_cost = mc.cost;
        return cell;
      },
      sweep.threads);

  std::vector<Fig4aRow> rows;
  for (int ki = 0; ki < num_k; ++ki) {
    Fig4aRow row;
    row.num_requests = sweep.request_counts[ki];
    double maa_cost = 0, mincost_cost = 0, lp_cost = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const Cell& cell = cells[ki * reps + rep];
      maa_cost += cell.maa_cost;
      lp_cost += cell.lp_cost;
      mincost_cost += cell.mincost_cost;
    }
    row.maa_cost = maa_cost / reps;
    row.mincost_cost = mincost_cost / reps;
    row.lp_lower_bound = lp_cost / reps;
    row.mincost_over_maa = row.maa_cost > 0 ? row.mincost_cost / row.maa_cost : 0;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig4bRow> run_fig4b(const Fig4bConfig& config) {
  std::vector<Fig4bRow> rows;
  for (int k : config.request_counts) {
    Fig4bRow row;
    row.network = config.network;
    row.num_requests = k;
    row.trials = config.trials;
    const Scenario scenario = base_scenario(config.network, k, config.seed);
    const core::SpmInstance instance = make_instance(scenario);
    Rng rng(config.seed * 65537 + 11);

    // One LP solve shared by all roundings (the Fig. 4b protocol: "we
    // repeat the randomized rounding procedure for 1000 times").
    const core::SpmModel model = core::build_rl_spm(instance);
    const lp::LpSolution relaxed = lp::SimplexSolver().solve(model.problem);
    if (!relaxed.ok()) throw std::runtime_error("fig4b: LP relaxation failed");
    row.lp_bound_cost = relaxed.objective;

    // ILP reference, warm-started from a best-of-64 MAA rounding.
    if (config.ilp_reference) {
      core::MaaOptions maa_options;
      maa_options.rounding_trials = 64;
      Rng maa_rng(config.seed * 131 + 9);
      const core::MaaResult maa = core::run_maa(instance, {}, maa_rng, maa_options);
      const baselines::OptResult rl =
          maa.ok() ? baselines::run_opt_rl_spm(instance, config.mip, &maa.schedule)
                   : baselines::run_opt_rl_spm(instance, config.mip);
      if (rl.ok()) {
        row.ilp_cost = rl.breakdown.cost;
        row.ilp_exact = rl.exact;
      }
    }

    // Trial t rounds with the index-addressed stream rng.split(t): the
    // 1000-trial loop parallelizes freely while each trial's draws — and
    // therefore every ratio statistic below — stay byte-identical for any
    // thread count.
    const std::vector<double> trial_costs = parallel_map(
        config.trials,
        [&](int trial) {
          Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
          core::Schedule schedule =
              core::Schedule::all_declined(instance.num_requests());
          std::vector<double> weights;
          for (int i = 0; i < instance.num_requests(); ++i) {
            weights.clear();
            for (int j = 0; j < instance.num_paths(i); ++j) {
              weights.push_back(relaxed.x.at(model.x_var[i][j]));
            }
            schedule.path_choice[i] =
                static_cast<int>(trial_rng.weighted_index(weights));
          }
          const core::ChargingPlan plan =
              core::charging_from_loads(core::compute_loads(instance, schedule));
          return core::cost(instance.topology(), plan);
        },
        config.threads);

    Accumulator ratios;  // vs the ILP reference (or LP when disabled)
    const double reference = row.ilp_cost > 0 ? row.ilp_cost : row.lp_bound_cost;
    Accumulator lp_ratios;
    std::vector<double> ratio_values;
    ratio_values.reserve(trial_costs.size());
    // Serial reduction in trial order keeps the float sums deterministic.
    for (const double rounded_cost : trial_costs) {
      ratios.add(rounded_cost / reference);
      ratio_values.push_back(rounded_cost / reference);
      lp_ratios.add(rounded_cost / row.lp_bound_cost);
    }
    row.ratio_mean_vs_ilp = ratios.mean();
    row.ratio_max_vs_ilp = ratios.max();
    // Empirical 95th percentile over the trial ratios.  The ratio
    // distribution is right-skewed at these trial counts, so the earlier
    // normal approximation (mean + 1.645*stddev) over-reported the tail.
    row.ratio_p95_vs_ilp = percentile(ratio_values, 95);
    row.ratio_mean_vs_lp = lp_ratios.mean();
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig4cdRow> run_fig4cd(const Fig4cdConfig& config) {
  const int reps = config.sweep.repetitions;
  const int num_k = static_cast<int>(config.sweep.request_counts.size());

  struct Cell {
    double taa_revenue = 0, taa_accepted = 0, lp_revenue_bound = 0;
    double amoeba_revenue = 0, amoeba_accepted = 0;
  };
  const std::vector<Cell> cells = parallel_map(
      num_k * reps,
      [&](int index) {
        const int k = config.sweep.request_counts[index / reps];
        const int rep = index % reps;
        Scenario scenario = base_scenario(Network::B4, k, config.sweep.seed + rep);
        scenario.uniform_capacity = config.uniform_capacity;
        const core::SpmInstance instance = make_instance(scenario);
        core::ChargingPlan capacities;
        capacities.units.assign(instance.num_edges(), config.uniform_capacity);
        Cell cell;

        const core::TaaResult taa = core::run_taa(instance, capacities);
        if (!taa.ok()) throw std::runtime_error("fig4cd: TAA LP failed");
        assert_feasible(instance, taa.schedule, capacities, "TAA");
        cell.taa_revenue = taa.revenue;
        cell.taa_accepted = taa.schedule.num_accepted();
        cell.lp_revenue_bound = taa.lp_revenue;

        const baselines::AmoebaResult amoeba = baselines::run_amoeba(instance, capacities);
        assert_feasible(instance, amoeba.schedule, capacities, "Amoeba");
        cell.amoeba_revenue = amoeba.revenue;
        cell.amoeba_accepted = amoeba.accepted;
        return cell;
      },
      config.sweep.threads);

  std::vector<Fig4cdRow> rows;
  for (int ki = 0; ki < num_k; ++ki) {
    Fig4cdRow row;
    row.num_requests = config.sweep.request_counts[ki];
    for (int rep = 0; rep < reps; ++rep) {
      const Cell& cell = cells[ki * reps + rep];
      row.taa_revenue += cell.taa_revenue;
      row.taa_accepted += cell.taa_accepted;
      row.lp_revenue_bound += cell.lp_revenue_bound;
      row.amoeba_revenue += cell.amoeba_revenue;
      row.amoeba_accepted += cell.amoeba_accepted;
    }
    row.taa_revenue /= reps;
    row.amoeba_revenue /= reps;
    row.taa_accepted /= reps;
    row.amoeba_accepted /= reps;
    row.lp_revenue_bound /= reps;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig5Row> run_fig5(const Fig5Config& config) {
  const int reps = config.sweep.repetitions;
  const int num_k = static_cast<int>(config.sweep.request_counts.size());

  struct Cell {
    SolutionMetrics metis, ecoflow;
  };
  const std::vector<Cell> cells = parallel_map(
      num_k * reps,
      [&](int index) {
        const int k = config.sweep.request_counts[index / reps];
        const int rep = index % reps;
        const Scenario scenario = base_scenario(Network::B4, k, config.sweep.seed + rep);
        const core::SpmInstance instance = make_instance(scenario);
        Rng rng(scenario.seed * 9973 + 7);
        Cell cell;

        core::MetisOptions mopt;
        mopt.theta = config.theta;
        const core::MetisResult metis = core::run_metis(instance, rng, mopt);
        assert_feasible(instance, metis.schedule, metis.plan, "Metis");
        cell.metis = measure_with_plan(instance, metis.schedule, metis.plan);

        const baselines::EcoFlowResult eco = baselines::run_ecoflow(instance);
        assert_feasible(instance, eco.schedule, eco.plan, "EcoFlow");
        cell.ecoflow = measure_with_plan(instance, eco.schedule, eco.plan);
        return cell;
      },
      config.sweep.threads);

  std::vector<Fig5Row> rows;
  for (int ki = 0; ki < num_k; ++ki) {
    Fig5Row row;
    row.num_requests = config.sweep.request_counts[ki];
    MetricsAverager metis_avg, eco_avg;
    for (int rep = 0; rep < reps; ++rep) {
      metis_avg.add(cells[ki * reps + rep].metis);
      eco_avg.add(cells[ki * reps + rep].ecoflow);
    }
    row.metis = metis_avg.mean();
    row.ecoflow = eco_avg.mean();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace metis::sim
