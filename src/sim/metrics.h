// SolutionMetrics: the bundle of numbers every figure reports for one
// solution — profit breakdown, acceptance and link utilization.
#pragma once

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "util/stats.h"

namespace metis::sim {

struct SolutionMetrics {
  core::ProfitBreakdown breakdown;  ///< revenue / cost / profit / accepted
  /// min/avg/max across purchased links of their time-averaged utilization.
  Summary utilization;
};

/// Evaluates a schedule with a plan derived from its own loads.
SolutionMetrics measure(const core::SpmInstance& instance,
                        const core::Schedule& schedule);

/// Evaluates a schedule against an explicit purchase plan.
SolutionMetrics measure_with_plan(const core::SpmInstance& instance,
                                  const core::Schedule& schedule,
                                  const core::ChargingPlan& plan);

}  // namespace metis::sim
