// OnlineAdmissionSimulator: event-driven (arrival-ordered) replay of one
// billing cycle for the streaming admission regime.
//
// The paper decides a whole cycle's bid book at once; a production provider
// sees a *stream* of requests and must answer each within a bounded delay,
// with accepted requests staying accepted.  This simulator:
//
//   1. draws a within-cycle arrival stream (workload::Arrival, timestamped),
//   2. queues arrivals into batches — flushed when `batch_size` requests
//      are waiting or the oldest has waited `max_batch_delay` slots,
//   3. re-decides each batch with core::run_metis_incremental, pinning all
//      previously committed requests (the core::IncrementalState carries
//      the acceptance set, path choices, and the last optimal LP bases for
//      cross-batch warm starts via lp/basis_lift.h),
//   4. reuses one net::PathCache across all batch instances.
//
// batch_size >= the whole stream collapses to a single batch whose decision
// is bit-identical to the offline run_metis over the same book — the
// `offline_oracle()` below; batch_size = 1 is pure online admission.  The
// batch-size sweep between the two measures the price of commitment
// (bench/bench_online_admission.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/metis.h"
#include "sim/faults.h"
#include "sim/scenario.h"
#include "workload/generator.h"

namespace metis::sim {

struct OnlineConfig {
  /// Template for the cycle: network, seed, workload shape, instance
  /// config.  `base.num_requests` sets the *expected* stream length (the
  /// Poisson rate is num_requests / num_slots unless overridden below).
  Scenario base;
  /// Mean arrivals per slot of the Poisson stream; 0 (the default) derives
  /// it from base.num_requests so Scenario presets carry over.
  double arrivals_per_slot = 0;
  /// Flush a batch as soon as this many requests are queued (>= 1).
  int batch_size = 8;
  /// Also flush when the oldest queued request has waited this many slots
  /// (fractional allowed); 0 disables the deadline — count-only batching.
  double max_batch_delay = 0;
  /// Options for every incremental Metis re-decide.
  core::MetisOptions metis;
  /// Lift the previous batch's optimal LP bases into the next batch's
  /// first RL-SPM/BL-SPM solves (lp/basis_lift.h).  Off = every batch
  /// cold-starts its first solves — the ablation the bench reports as
  /// warm-vs-cold simplex iterations.  Decisions are identical either way;
  /// only the iteration counts move.
  bool cross_batch_warm_start = true;
  /// Share one net::PathCache across batch instances (identical paths,
  /// fewer Yen runs).
  bool reuse_path_cache = true;
  /// Fault injection (sim/faults.h).  faults.rate == 0 — the default —
  /// disables injection entirely: run() then executes the historical
  /// fault-free replay, byte-identical to builds without the fault layer.
  /// With a positive rate the replay interleaves the seeded fault stream
  /// with the arrival stream and repairs through a CommittedBook.
  FaultConfig faults;
  /// Victim disposition of the fault replay (drop vs reroute).
  RepairPolicy repair_policy = RepairPolicy::Reroute;
  /// Refund paid per revoked commitment, as a fraction of its bid.
  double refund_factor = 1.0;
  /// Backoff bound of the infeasible-repair shed loop.
  int max_shed_rounds = 4;

  // --- checkpoint/restore (src/persist/) -------------------------------
  /// Checkpoint cadence in slots: with N > 0 and a checkpoint_path, the
  /// replay writes a checkpoint at every slot boundary that is a positive
  /// multiple of N strictly inside the cycle.  A checkpoint at boundary s
  /// captures the state after every item (arrival or fault event) with
  /// time < s and before any item with time >= s.  0 disables.
  int checkpoint_every = 0;
  /// Target file of the periodic checkpoint (overwritten atomically at
  /// each boundary; the file always holds the latest complete snapshot).
  std::string checkpoint_path;
  /// Also keep every boundary's snapshot as checkpoint_path + ".slot<k>"
  /// (the kill-at-any-boundary test harness; off by default).
  bool checkpoint_keep_all = false;
  /// Resume: restore this snapshot, then replay only the remaining stream.
  /// The snapshot's config fingerprint must match this config exactly.
  std::string resume_path;
};

/// One batch re-decide, in flush order.
struct BatchRecord {
  int batch = 0;          ///< 0-based flush index
  int arrivals = 0;       ///< requests decided in this batch
  double flush_time = 0;  ///< slot time at which the batch was decided
  int accepted = 0;       ///< newly accepted (of this batch's arrivals)
  double profit = 0;      ///< committed-book profit after this batch
  double decide_ms = 0;   ///< wall clock of the re-decide (not deterministic)
  lp::SolveStats lp_stats;  ///< simplex work, incl. warm/cold start counts
};

struct OnlineResult {
  std::vector<BatchRecord> batches;
  int total_arrivals = 0;
  int total_accepted = 0;
  /// Final committed decision over the whole stream (arrival order) and
  /// its evaluation — comparable to a MetisResult on the same book.  In
  /// fault mode candidate-path indices are not meaningful (the topology
  /// mutated mid-cycle): path_choice[i] is 0 for an accepted request —
  /// whose concrete reserved path is fault_paths[i] — and kDeclined
  /// otherwise.
  core::Schedule schedule;
  core::ChargingPlan plan;
  core::ProfitBreakdown profit;
  /// Aggregate LP work across every batch (sum of batch lp_stats).
  lp::SolveStats lp_stats;
  std::size_t path_cache_hits = 0;
  std::size_t path_cache_misses = 0;
  /// Entries flushed by topology mutations (fault mode only).
  std::size_t path_cache_stale = 0;
  // --- fault mode extras (empty / zero in fault-free runs) --------------
  /// The injected fault stream, in replay order.
  std::vector<FaultEvent> fault_events;
  FaultStats fault_stats;
  /// SLA refunds paid for revoked commitments.
  double refunds = 0;
  /// profit.profit − refunds: what the provider banks.  Equals
  /// profit.profit in fault-free runs.
  double net_profit = 0;
  /// Every request of the stream (arrivals + surge extras, decision order)
  /// and the reserved path of each accepted one (empty = declined).
  std::vector<workload::Request> fault_book;
  std::vector<net::Path> fault_paths;
};

class OnlineAdmissionSimulator {
 public:
  explicit OnlineAdmissionSimulator(OnlineConfig config);

  /// Replays the cycle: deterministic in config (thread-count independent —
  /// everything runs on the caller's thread except Metis's own
  /// deterministic rounding pool).  Emits telemetry spans ("online.batch")
  /// and the "online.decide_ms" histogram per batch.  With
  /// config.faults.rate > 0 the seeded fault stream is interleaved with the
  /// arrivals: faults mutate the topology, victims are repaired per the
  /// repair policy, surges add extra arrivals, and the final book is
  /// validated against the mutated network (throws on any violation).
  OnlineResult run() const;

  /// The full arrival stream the replay will see (deterministic in
  /// base.seed; exposed for tests and the bench).
  std::vector<workload::Arrival> arrivals() const;

  /// Offline oracle: one plain run_metis over the entire stream's book —
  /// the paper's regime, equal bit for bit to run() with a single batch
  /// (batch_size >= stream length and no deadline).
  core::MetisResult offline_oracle() const;

  const OnlineConfig& config() const { return config_; }

  /// FNV-1a fingerprint of every determinism-relevant config field.  Stored
  /// in each checkpoint; a resume whose config fingerprint differs is
  /// rejected (replaying a stream the snapshot was not taken from would
  /// silently diverge instead of resuming).
  std::uint64_t config_fingerprint() const;

 private:
  double arrival_rate() const;
  /// The fault-mode replay (run() dispatches here when faults.rate > 0).
  OnlineResult run_with_faults() const;

  OnlineConfig config_;
};

}  // namespace metis::sim
