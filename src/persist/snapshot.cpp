#include "persist/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

namespace metis::persist {

using serialize::ByteReader;
using serialize::ByteWriter;
using serialize::crc32;

void SnapshotWriter::section(std::uint32_t id,
                             std::vector<std::uint8_t> payload) {
  if (!sections_.empty() && id <= sections_.back().id) {
    throw SnapshotError("SnapshotWriter: section ids must strictly increase (" +
                        std::to_string(id) + " after " +
                        std::to_string(sections_.back().id) + ")");
  }
  sections_.push_back(Section{id, std::move(payload)});
}

std::vector<std::uint8_t> SnapshotWriter::to_bytes() const {
  ByteWriter header;
  header.raw(reinterpret_cast<const std::uint8_t*>(kSnapshotMagic),
             sizeof(kSnapshotMagic));
  header.u32(kSnapshotVersion);
  header.u32(static_cast<std::uint32_t>(sections_.size()));
  ByteWriter out;
  out.raw(header.bytes().data(), header.size());
  out.u32(crc32(header.bytes()));
  for (const Section& s : sections_) {
    out.u32(s.id);
    out.u64(s.payload.size());
    out.u32(crc32(s.payload));
    out.raw(s.payload.data(), s.payload.size());
  }
  return std::move(out).take();
}

void SnapshotWriter::write_file(const std::string& path) const {
  write_bytes_atomic(to_bytes(), path);
}

void write_bytes_atomic(const std::vector<std::uint8_t>& bytes,
                        const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError("cannot open '" + tmp + "' for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw SnapshotError("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes,
                               std::string source)
    : source_(std::move(source)) {
  const auto fail = [&](const std::string& message) -> void {
    throw SnapshotError("snapshot '" + source_ + "': " + message);
  };
  try {
    ByteReader r(bytes, "container");
    if (r.remaining() < 20) {
      fail("truncated header: " + std::to_string(r.remaining()) +
           " bytes, need at least 20");
    }
    const std::uint32_t header_crc = crc32(bytes.data(), 16);
    char magic[8];
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (!std::equal(magic, magic + 8, kSnapshotMagic)) {
      fail("bad magic (not a metis checkpoint)");
    }
    const std::uint32_t version = r.u32();
    const std::uint32_t count = r.u32();
    if (r.u32() != header_crc) {
      fail("header CRC mismatch (corrupted prologue)");
    }
    if (version != kSnapshotVersion) {
      fail("unsupported snapshot version " + std::to_string(version) +
           " (this build reads version " + std::to_string(kSnapshotVersion) +
           ")");
    }
    for (std::uint32_t s = 0; s < count; ++s) {
      const std::uint32_t id = r.u32();
      if (!sections_.empty() && id <= sections_.back().first) {
        fail("section " + std::to_string(id) + " out of order after " +
             std::to_string(sections_.back().first) +
             " (sections were reordered or the framing is corrupt)");
      }
      const std::uint64_t declared_length = r.u64();
      const std::uint32_t expected_crc = r.u32();
      // Validate the length only now: length() checks against remaining(),
      // which must not include the CRC word just consumed, or a snapshot
      // truncated inside the CRC passes validation and the payload slice
      // below reads past the buffer.
      const std::uint64_t length = r.length(declared_length);
      std::vector<std::uint8_t> payload(
          bytes.begin() + static_cast<std::ptrdiff_t>(r.position()),
          bytes.begin() + static_cast<std::ptrdiff_t>(r.position() + length));
      for (std::uint64_t skip = 0; skip < length; ++skip) r.u8();
      if (crc32(payload) != expected_crc) {
        fail("section " + std::to_string(id) +
             " CRC mismatch (payload corrupted)");
      }
      sections_.emplace_back(id, std::move(payload));
    }
    r.expect_done();
  } catch (const serialize::SerializeError& e) {
    fail(e.what());
  }
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot open snapshot '" + path + "'");
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw SnapshotError("read error on snapshot '" + path + "'");
  }
  return SnapshotReader(std::move(bytes), path);
}

const std::vector<std::uint8_t>& SnapshotReader::section(
    std::uint32_t id) const {
  for (const auto& [sid, payload] : sections_) {
    if (sid == id) return payload;
  }
  throw SnapshotError("snapshot '" + source_ + "': missing section " +
                      std::to_string(id));
}

bool SnapshotReader::has_section(std::uint32_t id) const {
  for (const auto& [sid, payload] : sections_) {
    if (sid == id) return true;
  }
  return false;
}

std::vector<std::uint32_t> SnapshotReader::section_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(sections_.size());
  for (const auto& [sid, payload] : sections_) ids.push_back(sid);
  return ids;
}

}  // namespace metis::persist
