// The checkpoint container format: a versioned, sectioned, CRC-guarded
// binary file.
//
// Layout (all integers little-endian, written via util/serialize.h):
//
//   magic      8 bytes  "METISCKP"
//   version    u32      kSnapshotVersion (readers reject anything else)
//   sections   u32      number of sections
//   header_crc u32      CRC-32 of the 16 bytes above
//   then per section, in strictly increasing id order:
//     id       u32      section id (persist/checkpoint.h names them)
//     length   u64      payload byte count
//     crc      u32      CRC-32 of the payload bytes
//     payload  length bytes
//
// Every byte of the file is covered by a checksum — the 16-byte prologue by
// header_crc, each payload by its section crc, and the section framing
// implicitly (a corrupted id breaks the ordering invariant, a corrupted
// length either fails the bounds check or shears the following section's
// framing).  A reader therefore either loads a bit-exact snapshot or throws
// SnapshotError with a diagnostic; it never half-restores.  Writers go
// through a temp file + rename so a crash mid-write can't leave a torn
// checkpoint at the target path.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/serialize.h"

namespace metis::persist {

inline constexpr char kSnapshotMagic[8] = {'M', 'E', 'T', 'I',
                                           'S', 'C', 'K', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Any malformed container: bad magic, unsupported version, CRC mismatch,
/// truncation, out-of-order or duplicate sections, trailing bytes.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Accumulates sections and emits the container.
class SnapshotWriter {
 public:
  /// Appends one section.  Ids must be added in strictly increasing order
  /// (readers enforce the same, which is what makes reordering detectable).
  void section(std::uint32_t id, std::vector<std::uint8_t> payload);

  /// The full container as bytes.
  std::vector<std::uint8_t> to_bytes() const;

  /// Writes the container to `path` atomically (temp file in the same
  /// directory, then std::rename).  Throws SnapshotError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Section {
    std::uint32_t id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections_;
};

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// flushed, then std::rename over the target.  A crash mid-write leaves the
/// previous checkpoint (if any) intact.  Throws SnapshotError on failure.
void write_bytes_atomic(const std::vector<std::uint8_t>& bytes,
                        const std::string& path);

/// Parses and validates a container; sections are then available by id.
class SnapshotReader {
 public:
  /// Parses `bytes` (fully validating magic, version, every CRC and the
  /// section ordering).  `source` tags diagnostics (a file name).
  SnapshotReader(std::vector<std::uint8_t> bytes, std::string source);

  /// Reads and parses `path`.
  static SnapshotReader from_file(const std::string& path);

  /// Payload of section `id`; throws SnapshotError if absent.
  const std::vector<std::uint8_t>& section(std::uint32_t id) const;
  bool has_section(std::uint32_t id) const;
  /// All section ids, in file order (strictly increasing).
  std::vector<std::uint32_t> section_ids() const;
  const std::string& source() const { return source_; }

 private:
  std::string source_;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> sections_;
};

}  // namespace metis::persist
