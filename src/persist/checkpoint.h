// Checkpoint images and their codecs: the plain-data mirrors of everything
// the simulators need to resume bit-identically, plus save/load over the
// sectioned container of persist/snapshot.h.
//
// Layering: persist sits below sim, so the simulators' private state
// (CommittedBook entries, BatchRecord lists) is mirrored here as plain
// structs; sim/online.cpp and sim/simulator.cpp convert through them.
// Types that already live at or below core — workload::Request,
// core::IncrementalState, core::Schedule, lp::SolveStats,
// net::PathCache::Dump, telemetry::MetricsSnapshot — are serialized
// directly.
//
// What makes a resume byte-identical (the kill/restore contract of
// tests/test_persist.cpp):
//
//  * all RNG streams are index-addressed (Rng::split is keyed off the seed
//    and a stream id, never off draw position), so the "RNG cursors" are
//    just counters: the batch index, the fault-repair index, the surge
//    index, and the arrival/fault-event cursors into their deterministic
//    streams;
//  * the LP warm-start state (core::IncrementalState's ModelSnapshots,
//    basis included) is saved, so even simplex iteration counts continue
//    exactly;
//  * the mutated Topology is restored through the epoch-preserving
//    restore_* setters and the PathCache image is reloaded against the
//    identical epoch, so post-resume lookups hit and miss exactly as the
//    uninterrupted run's would.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/accounting.h"
#include "core/metis.h"
#include "core/schedule.h"
#include "net/paths.h"
#include "persist/snapshot.h"
#include "util/telemetry.h"
#include "workload/request.h"

namespace metis::persist {

/// Section ids of the container (strictly increasing in every file).
enum SectionId : std::uint32_t {
  kSectionMeta = 1,         ///< kind, fingerprint, replay cursors
  kSectionBatches = 2,      ///< per-batch records (online)
  kSectionBook = 3,         ///< arrival book (online, fault-free)
  kSectionIncremental = 4,  ///< committed prefix + LP warm-start snapshots
  kSectionResult = 5,       ///< running schedule/plan/profit/lp aggregate
  kSectionEntries = 6,      ///< CommittedBook entries (online, fault mode)
  kSectionTopology = 7,     ///< mutated topology state + epoch
  kSectionFaults = 8,       ///< refund ledger + fault stats + book lp stats
  kSectionPathCache = 9,    ///< PathCache image
  kSectionTelemetry = 10,   ///< metrics registry snapshot
  kSectionCells = 11,       ///< finished (cycle x policy) cells (multi-cycle)
};

/// Checkpoint kinds (the first byte of kSectionMeta).
enum class CheckpointKind : std::uint8_t {
  Online = 1,      ///< OnlineAdmissionSimulator, one cycle
  MultiCycle = 2,  ///< BillingCycleSimulator, cycle-granular
};

std::string section_name(std::uint32_t id);

/// Mirror of sim::BatchRecord.
struct BatchState {
  int batch = 0;
  int arrivals = 0;
  double flush_time = 0;
  int accepted = 0;
  double profit = 0;
  double decide_ms = 0;
  lp::SolveStats lp_stats;
};

/// Mirror of one sim::CommittedBook entry (fault mode).
struct BookEntryState {
  workload::Request request;
  int status = 0;  ///< 0 = pending, 1 = accepted, 2 = declined
  net::Path path;
  bool was_committed = false;
};

/// Mirror of sim::FaultStats.
struct FaultStatsImage {
  int injected = 0;
  int network_changes = 0;
  int repairs = 0;
  int victims = 0;
  int dropped = 0;
  int rerouted = 0;
  int shed_rounds = 0;
  int surge_arrivals = 0;
};

/// Per-edge/per-node mutable state of a net::Topology (prices, capacities,
/// enable flags) plus the mutation epoch.  The graph *shape* (node count,
/// edge endpoints) is not saved — it is derived from the scenario config,
/// which the fingerprint pins.
struct TopologyState {
  std::vector<double> price;
  std::vector<int> capacity_units;
  std::vector<std::uint8_t> edge_enabled;
  std::vector<std::uint8_t> node_enabled;
  std::uint64_t epoch = 0;
};

/// Full resumable state of one OnlineAdmissionSimulator replay, taken at a
/// slot boundary: every item (arrival or fault event) with time < boundary
/// has been processed, none at or after it has.
struct OnlineCheckpoint {
  // --- meta / replay cursors -------------------------------------------
  std::uint64_t config_fingerprint = 0;  ///< OnlineAdmissionSimulator::config_fingerprint()
  bool fault_mode = false;               ///< faults.rate > 0 replay
  double boundary_time = 0;              ///< the slot boundary (informational)
  std::uint64_t next_arrival = 0;        ///< arrivals consumed from the stream
  std::uint64_t next_fault_event = 0;    ///< fault events fired
  std::int64_t repair_index = 0;         ///< kRepairStream draws taken
  std::int64_t surge_index = 0;          ///< kSurgeStream draws taken
  double oldest_queued = 0;              ///< deadline clock of the batch queue
  int total_arrivals = 0;
  int total_accepted = 0;

  std::vector<BatchState> batches;

  // --- fault-free state -------------------------------------------------
  std::vector<workload::Request> book;  ///< every arrival so far, in order

  core::IncrementalState inc;  ///< committed prefix + LP warm-start bases

  // --- running result ---------------------------------------------------
  core::Schedule schedule;
  core::ChargingPlan plan;
  core::ProfitBreakdown profit;
  lp::SolveStats lp_stats;

  // --- fault-mode state -------------------------------------------------
  std::vector<BookEntryState> entries;
  TopologyState topology;
  core::RefundLedger refunds;
  FaultStatsImage fault_stats;
  lp::SolveStats book_lp_stats;

  net::PathCache::Dump cache;
  telemetry::MetricsSnapshot metrics;
};

/// One finished (cycle, policy) cell of a BillingCycleSimulator run —
/// mirror of sim::CycleOutcome plus its policy index.
struct CycleCellState {
  int cycle = 0;
  int policy = 0;
  int offered_requests = 0;
  core::ProfitBreakdown result;
  double decide_ms = 0;
  double refunds = 0;
  double net_profit = 0;
  FaultStatsImage fault_stats;
};

/// Resumable state of a BillingCycleSimulator run: cells of all completed
/// cycle blocks.  Cells are share-nothing (each derives its RNG from its
/// absolute (cycle, policy) index), so cycle granularity loses nothing.
struct MultiCycleCheckpoint {
  std::uint64_t config_fingerprint = 0;
  int cycles_done = 0;  ///< cells cover cycles [0, cycles_done)
  int num_policies = 0;
  std::vector<CycleCellState> cells;
  telemetry::MetricsSnapshot metrics;
};

// --- codecs ---------------------------------------------------------------
// encode_* produce the full container bytes; decode_* parse a validated
// SnapshotReader back (throwing SnapshotError on a kind mismatch or any
// malformed payload).  save_* / load_* add the file I/O, the
// persist.save/persist.load telemetry spans and the persist.bytes /
// persist.save_ms / persist.load_ms metrics.

std::vector<std::uint8_t> encode(const OnlineCheckpoint& ckpt);
OnlineCheckpoint decode_online(const SnapshotReader& reader);
void save(const OnlineCheckpoint& ckpt, const std::string& path);
OnlineCheckpoint load_online(const std::string& path);

std::vector<std::uint8_t> encode(const MultiCycleCheckpoint& ckpt);
MultiCycleCheckpoint decode_multi_cycle(const SnapshotReader& reader);
void save(const MultiCycleCheckpoint& ckpt, const std::string& path);
MultiCycleCheckpoint load_multi_cycle(const std::string& path);

/// Kind of a parsed container (reads the first byte of kSectionMeta).
CheckpointKind kind_of(const SnapshotReader& reader);

/// Human-readable JSON rendering of any checkpoint container: meta fields,
/// section ids/sizes/CRCs and the decoded headline numbers (profit,
/// accepted counts).  The debug export of the format — `ckpt_inspect dump`.
void write_debug_json(const SnapshotReader& reader, std::ostream& os);

}  // namespace metis::persist
