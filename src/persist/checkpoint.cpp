#include "persist/checkpoint.h"

#include <cstdio>
#include <ostream>

#include "util/json.h"

namespace metis::persist {

namespace {

using serialize::ByteReader;
using serialize::ByteWriter;

// --- primitive vector helpers --------------------------------------------
// Every get_* validates the element count against the bytes remaining
// before allocating, so a corrupted length prefix can never trigger a huge
// allocation (ByteReader::length's contract).

void put_i32_vec(ByteWriter& w, const std::vector<int>& v) {
  w.u64(v.size());
  for (int x : v) w.i32(x);
}

std::vector<int> get_i32_vec(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64());
  std::vector<int> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.i32());
  return v;
}

void put_f64_vec(ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (double x : v) w.f64(x);
}

std::vector<double> get_f64_vec(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64());
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

void put_u8_vec(ByteWriter& w, const std::vector<std::uint8_t>& v) {
  w.u64(v.size());
  for (std::uint8_t x : v) w.u8(x);
}

std::vector<std::uint8_t> get_u8_vec(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64());
  std::vector<std::uint8_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u8());
  return v;
}

// --- domain type codecs ---------------------------------------------------

void put_request(ByteWriter& w, const workload::Request& q) {
  w.i32(q.src);
  w.i32(q.dst);
  w.i32(q.start_slot);
  w.i32(q.end_slot);
  w.f64(q.rate);
  w.f64(q.value);
}

workload::Request get_request(ByteReader& r) {
  workload::Request q;
  q.src = r.i32();
  q.dst = r.i32();
  q.start_slot = r.i32();
  q.end_slot = r.i32();
  q.rate = r.f64();
  q.value = r.f64();
  return q;
}

void put_path(ByteWriter& w, const net::Path& p) { put_i32_vec(w, p.edges); }

net::Path get_path(ByteReader& r) { return net::Path{get_i32_vec(r)}; }

void put_basis(ByteWriter& w, const lp::Basis& b) {
  w.u64(b.status.size());
  for (lp::BasisStatus s : b.status) w.u8(static_cast<std::uint8_t>(s));
}

lp::Basis get_basis(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64());
  lp::Basis b;
  b.status.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(lp::BasisStatus::Free)) {
      r.fail("basis status byte " + std::to_string(s) + " out of range");
    }
    b.status.push_back(static_cast<lp::BasisStatus>(s));
  }
  return b;
}

void put_model_snapshot(ByteWriter& w, const core::ModelSnapshot& m) {
  put_basis(w, m.basis);
  w.i32(m.num_variables);
  w.i32(m.num_rows);
  put_i32_vec(w, m.c_col);
  w.u64(m.cap_row.size());
  for (const std::vector<int>& row : m.cap_row) put_i32_vec(w, row);
}

core::ModelSnapshot get_model_snapshot(ByteReader& r) {
  core::ModelSnapshot m;
  m.basis = get_basis(r);
  m.num_variables = r.i32();
  m.num_rows = r.i32();
  m.c_col = get_i32_vec(r);
  const std::uint64_t rows = r.length(r.u64());
  m.cap_row.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows; ++i) m.cap_row.push_back(get_i32_vec(r));
  return m;
}

void put_solve_stats(ByteWriter& w, const lp::SolveStats& s) {
  w.i64(s.iterations);
  w.i32(s.factorizations);
  w.i32(s.presolve_removed_rows);
  w.i32(s.presolve_removed_cols);
  w.i32(s.warm_starts);
  w.i32(s.cold_starts);
  w.i64(s.pricing_passes);
  w.i64(s.partial_hits);
  w.i64(s.full_fallbacks);
  w.i32(s.basis_repairs);
  w.f64(s.solve_seconds);
}

lp::SolveStats get_solve_stats(ByteReader& r) {
  lp::SolveStats s;
  s.iterations = r.i64();
  s.factorizations = r.i32();
  s.presolve_removed_rows = r.i32();
  s.presolve_removed_cols = r.i32();
  s.warm_starts = r.i32();
  s.cold_starts = r.i32();
  s.pricing_passes = r.i64();
  s.partial_hits = r.i64();
  s.full_fallbacks = r.i64();
  s.basis_repairs = r.i32();
  s.solve_seconds = r.f64();
  return s;
}

void put_profit(ByteWriter& w, const core::ProfitBreakdown& p) {
  w.f64(p.revenue);
  w.f64(p.cost);
  w.f64(p.profit);
  w.i32(p.accepted);
}

core::ProfitBreakdown get_profit(ByteReader& r) {
  core::ProfitBreakdown p;
  p.revenue = r.f64();
  p.cost = r.f64();
  p.profit = r.f64();
  p.accepted = r.i32();
  return p;
}

void put_fault_stats(ByteWriter& w, const FaultStatsImage& s) {
  w.i32(s.injected);
  w.i32(s.network_changes);
  w.i32(s.repairs);
  w.i32(s.victims);
  w.i32(s.dropped);
  w.i32(s.rerouted);
  w.i32(s.shed_rounds);
  w.i32(s.surge_arrivals);
}

FaultStatsImage get_fault_stats(ByteReader& r) {
  FaultStatsImage s;
  s.injected = r.i32();
  s.network_changes = r.i32();
  s.repairs = r.i32();
  s.victims = r.i32();
  s.dropped = r.i32();
  s.rerouted = r.i32();
  s.shed_rounds = r.i32();
  s.surge_arrivals = r.i32();
  return s;
}

void put_metrics(ByteWriter& w, const telemetry::MetricsSnapshot& m) {
  w.u64(m.counters.size());
  for (const auto& [name, v] : m.counters) {
    w.str(name);
    w.i64(v);
  }
  w.u64(m.gauges.size());
  for (const auto& [name, v] : m.gauges) {
    w.str(name);
    w.f64(v);
  }
  w.u64(m.histograms.size());
  for (const auto& h : m.histograms) {
    w.str(h.name);
    put_f64_vec(w, h.bounds);
    put_f64_vec(w, h.samples);
  }
  w.u64(m.spans.size());
  for (const auto& [path, s] : m.spans) {
    w.str(path);
    w.u64(s.count);
    w.f64(s.total_seconds);
    w.f64(s.min_seconds);
    w.f64(s.max_seconds);
  }
}

telemetry::MetricsSnapshot get_metrics(ByteReader& r) {
  telemetry::MetricsSnapshot m;
  std::uint64_t n = r.length(r.u64());
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    m.counters.emplace_back(std::move(name), r.i64());
  }
  n = r.length(r.u64());
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    m.gauges.emplace_back(std::move(name), r.f64());
  }
  n = r.length(r.u64());
  for (std::uint64_t i = 0; i < n; ++i) {
    telemetry::MetricsSnapshot::HistogramImage h;
    h.name = r.str();
    h.bounds = get_f64_vec(r);
    h.samples = get_f64_vec(r);
    m.histograms.push_back(std::move(h));
  }
  n = r.length(r.u64());
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string path = r.str();
    telemetry::SpanStats s;
    s.count = r.u64();
    s.total_seconds = r.f64();
    s.min_seconds = r.f64();
    s.max_seconds = r.f64();
    m.spans.emplace_back(std::move(path), s);
  }
  return m;
}

void put_cache(ByteWriter& w, const net::PathCache::Dump& d) {
  w.u64(d.entries.size());
  for (const auto& e : d.entries) {
    w.i32(e.src);
    w.i32(e.dst);
    w.i32(e.k);
    w.i32(e.metric);
    w.u64(e.paths.size());
    for (const net::Path& p : e.paths) put_path(w, p);
  }
  w.u64(d.epoch);
  w.u64(d.hits);
  w.u64(d.misses);
  w.u64(d.stale);
}

net::PathCache::Dump get_cache(ByteReader& r) {
  net::PathCache::Dump d;
  const std::uint64_t n = r.length(r.u64());
  d.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    net::PathCache::Dump::Entry e;
    e.src = r.i32();
    e.dst = r.i32();
    e.k = r.i32();
    e.metric = r.i32();
    const std::uint64_t paths = r.length(r.u64());
    e.paths.reserve(static_cast<std::size_t>(paths));
    for (std::uint64_t p = 0; p < paths; ++p) e.paths.push_back(get_path(r));
    d.entries.push_back(std::move(e));
  }
  d.epoch = r.u64();
  d.hits = r.u64();
  d.misses = r.u64();
  d.stale = r.u64();
  return d;
}

void put_topology(ByteWriter& w, const TopologyState& t) {
  put_f64_vec(w, t.price);
  put_i32_vec(w, t.capacity_units);
  put_u8_vec(w, t.edge_enabled);
  put_u8_vec(w, t.node_enabled);
  w.u64(t.epoch);
}

TopologyState get_topology(ByteReader& r) {
  TopologyState t;
  t.price = get_f64_vec(r);
  t.capacity_units = get_i32_vec(r);
  t.edge_enabled = get_u8_vec(r);
  t.node_enabled = get_u8_vec(r);
  t.epoch = r.u64();
  return t;
}

ByteReader section_reader(const SnapshotReader& reader, std::uint32_t id) {
  const std::vector<std::uint8_t>& payload = reader.section(id);
  return ByteReader(payload.data(), payload.size(),
                    "section " + std::to_string(id) + " (" + section_name(id) +
                        ")");
}

CheckpointKind meta_kind(const SnapshotReader& reader) {
  ByteReader r = section_reader(reader, kSectionMeta);
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(CheckpointKind::Online) &&
      kind != static_cast<std::uint8_t>(CheckpointKind::MultiCycle)) {
    throw SnapshotError("snapshot '" + reader.source() +
                        "': unknown checkpoint kind " + std::to_string(kind));
  }
  return static_cast<CheckpointKind>(kind);
}

void require_kind(const SnapshotReader& reader, CheckpointKind expected) {
  const CheckpointKind kind = meta_kind(reader);
  if (kind != expected) {
    const auto name = [](CheckpointKind k) {
      return k == CheckpointKind::Online ? "online" : "multi-cycle";
    };
    throw SnapshotError("snapshot '" + reader.source() + "' is a " +
                        name(kind) + " checkpoint, expected " +
                        name(expected));
  }
}

}  // namespace

std::string section_name(std::uint32_t id) {
  switch (id) {
    case kSectionMeta: return "meta";
    case kSectionBatches: return "batches";
    case kSectionBook: return "book";
    case kSectionIncremental: return "incremental";
    case kSectionResult: return "result";
    case kSectionEntries: return "entries";
    case kSectionTopology: return "topology";
    case kSectionFaults: return "faults";
    case kSectionPathCache: return "path_cache";
    case kSectionTelemetry: return "telemetry";
    case kSectionCells: return "cells";
    default: return "unknown";
  }
}

std::vector<std::uint8_t> encode(const OnlineCheckpoint& ckpt) {
  SnapshotWriter writer;
  {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(CheckpointKind::Online));
    w.u64(ckpt.config_fingerprint);
    w.boolean(ckpt.fault_mode);
    w.f64(ckpt.boundary_time);
    w.u64(ckpt.next_arrival);
    w.u64(ckpt.next_fault_event);
    w.i64(ckpt.repair_index);
    w.i64(ckpt.surge_index);
    w.f64(ckpt.oldest_queued);
    w.i32(ckpt.total_arrivals);
    w.i32(ckpt.total_accepted);
    writer.section(kSectionMeta, std::move(w).take());
  }
  {
    ByteWriter w;
    w.u64(ckpt.batches.size());
    for (const BatchState& b : ckpt.batches) {
      w.i32(b.batch);
      w.i32(b.arrivals);
      w.f64(b.flush_time);
      w.i32(b.accepted);
      w.f64(b.profit);
      w.f64(b.decide_ms);
      put_solve_stats(w, b.lp_stats);
    }
    writer.section(kSectionBatches, std::move(w).take());
  }
  {
    ByteWriter w;
    w.u64(ckpt.book.size());
    for (const workload::Request& q : ckpt.book) put_request(w, q);
    writer.section(kSectionBook, std::move(w).take());
  }
  {
    ByteWriter w;
    put_i32_vec(w, ckpt.inc.committed);
    put_model_snapshot(w, ckpt.inc.maa);
    put_model_snapshot(w, ckpt.inc.taa);
    writer.section(kSectionIncremental, std::move(w).take());
  }
  {
    ByteWriter w;
    put_i32_vec(w, ckpt.schedule.path_choice);
    put_i32_vec(w, ckpt.plan.units);
    put_profit(w, ckpt.profit);
    put_solve_stats(w, ckpt.lp_stats);
    writer.section(kSectionResult, std::move(w).take());
  }
  {
    ByteWriter w;
    w.u64(ckpt.entries.size());
    for (const BookEntryState& e : ckpt.entries) {
      put_request(w, e.request);
      w.u8(static_cast<std::uint8_t>(e.status));
      put_path(w, e.path);
      w.boolean(e.was_committed);
    }
    writer.section(kSectionEntries, std::move(w).take());
  }
  {
    ByteWriter w;
    put_topology(w, ckpt.topology);
    writer.section(kSectionTopology, std::move(w).take());
  }
  {
    ByteWriter w;
    w.f64(ckpt.refunds.refunded);
    w.i32(ckpt.refunds.drops);
    put_fault_stats(w, ckpt.fault_stats);
    put_solve_stats(w, ckpt.book_lp_stats);
    writer.section(kSectionFaults, std::move(w).take());
  }
  {
    ByteWriter w;
    put_cache(w, ckpt.cache);
    writer.section(kSectionPathCache, std::move(w).take());
  }
  {
    ByteWriter w;
    put_metrics(w, ckpt.metrics);
    writer.section(kSectionTelemetry, std::move(w).take());
  }
  return writer.to_bytes();
}

OnlineCheckpoint decode_online(const SnapshotReader& reader) {
  require_kind(reader, CheckpointKind::Online);
  OnlineCheckpoint ckpt;
  {
    ByteReader r = section_reader(reader, kSectionMeta);
    r.u8();  // kind, checked above
    ckpt.config_fingerprint = r.u64();
    ckpt.fault_mode = r.boolean();
    ckpt.boundary_time = r.f64();
    ckpt.next_arrival = r.u64();
    ckpt.next_fault_event = r.u64();
    ckpt.repair_index = r.i64();
    ckpt.surge_index = r.i64();
    ckpt.oldest_queued = r.f64();
    ckpt.total_arrivals = r.i32();
    ckpt.total_accepted = r.i32();
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionBatches);
    const std::uint64_t n = r.length(r.u64());
    ckpt.batches.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      BatchState b;
      b.batch = r.i32();
      b.arrivals = r.i32();
      b.flush_time = r.f64();
      b.accepted = r.i32();
      b.profit = r.f64();
      b.decide_ms = r.f64();
      b.lp_stats = get_solve_stats(r);
      ckpt.batches.push_back(std::move(b));
    }
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionBook);
    const std::uint64_t n = r.length(r.u64());
    ckpt.book.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) ckpt.book.push_back(get_request(r));
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionIncremental);
    ckpt.inc.committed = get_i32_vec(r);
    ckpt.inc.maa = get_model_snapshot(r);
    ckpt.inc.taa = get_model_snapshot(r);
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionResult);
    ckpt.schedule.path_choice = get_i32_vec(r);
    ckpt.plan.units = get_i32_vec(r);
    ckpt.profit = get_profit(r);
    ckpt.lp_stats = get_solve_stats(r);
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionEntries);
    const std::uint64_t n = r.length(r.u64());
    ckpt.entries.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      BookEntryState e;
      e.request = get_request(r);
      const std::uint8_t status = r.u8();
      if (status > 2) {
        r.fail("book entry status byte " + std::to_string(status) +
               " out of range");
      }
      e.status = status;
      e.path = get_path(r);
      e.was_committed = r.boolean();
      ckpt.entries.push_back(std::move(e));
    }
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionTopology);
    ckpt.topology = get_topology(r);
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionFaults);
    ckpt.refunds.refunded = r.f64();
    ckpt.refunds.drops = r.i32();
    ckpt.fault_stats = get_fault_stats(r);
    ckpt.book_lp_stats = get_solve_stats(r);
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionPathCache);
    ckpt.cache = get_cache(r);
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionTelemetry);
    ckpt.metrics = get_metrics(r);
    r.expect_done();
  }
  return ckpt;
}

std::vector<std::uint8_t> encode(const MultiCycleCheckpoint& ckpt) {
  SnapshotWriter writer;
  {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(CheckpointKind::MultiCycle));
    w.u64(ckpt.config_fingerprint);
    w.i32(ckpt.cycles_done);
    w.i32(ckpt.num_policies);
    writer.section(kSectionMeta, std::move(w).take());
  }
  {
    ByteWriter w;
    put_metrics(w, ckpt.metrics);
    writer.section(kSectionTelemetry, std::move(w).take());
  }
  {
    ByteWriter w;
    w.u64(ckpt.cells.size());
    for (const CycleCellState& c : ckpt.cells) {
      w.i32(c.cycle);
      w.i32(c.policy);
      w.i32(c.offered_requests);
      put_profit(w, c.result);
      w.f64(c.decide_ms);
      w.f64(c.refunds);
      w.f64(c.net_profit);
      put_fault_stats(w, c.fault_stats);
    }
    writer.section(kSectionCells, std::move(w).take());
  }
  return writer.to_bytes();
}

MultiCycleCheckpoint decode_multi_cycle(const SnapshotReader& reader) {
  require_kind(reader, CheckpointKind::MultiCycle);
  MultiCycleCheckpoint ckpt;
  {
    ByteReader r = section_reader(reader, kSectionMeta);
    r.u8();  // kind, checked above
    ckpt.config_fingerprint = r.u64();
    ckpt.cycles_done = r.i32();
    ckpt.num_policies = r.i32();
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionTelemetry);
    ckpt.metrics = get_metrics(r);
    r.expect_done();
  }
  {
    ByteReader r = section_reader(reader, kSectionCells);
    const std::uint64_t n = r.length(r.u64());
    ckpt.cells.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      CycleCellState c;
      c.cycle = r.i32();
      c.policy = r.i32();
      c.offered_requests = r.i32();
      c.result = get_profit(r);
      c.decide_ms = r.f64();
      c.refunds = r.f64();
      c.net_profit = r.f64();
      c.fault_stats = get_fault_stats(r);
      ckpt.cells.push_back(c);
    }
    r.expect_done();
  }
  return ckpt;
}

namespace {

template <typename Checkpoint>
void save_impl(const Checkpoint& ckpt, const std::string& path) {
  METIS_SPAN("persist.save");
  const telemetry::Stopwatch timer;
  const std::vector<std::uint8_t> bytes = encode(ckpt);
  write_bytes_atomic(bytes, path);
  telemetry::count("persist.saves");
  telemetry::count("persist.bytes", static_cast<std::int64_t>(bytes.size()));
  telemetry::observe("persist.save_ms", timer.ms());
}

}  // namespace

void save(const OnlineCheckpoint& ckpt, const std::string& path) {
  save_impl(ckpt, path);
}

void save(const MultiCycleCheckpoint& ckpt, const std::string& path) {
  save_impl(ckpt, path);
}

OnlineCheckpoint load_online(const std::string& path) {
  METIS_SPAN("persist.load");
  const telemetry::Stopwatch timer;
  const SnapshotReader reader = SnapshotReader::from_file(path);
  OnlineCheckpoint ckpt = decode_online(reader);
  telemetry::count("persist.loads");
  telemetry::observe("persist.load_ms", timer.ms());
  return ckpt;
}

MultiCycleCheckpoint load_multi_cycle(const std::string& path) {
  METIS_SPAN("persist.load");
  const telemetry::Stopwatch timer;
  const SnapshotReader reader = SnapshotReader::from_file(path);
  MultiCycleCheckpoint ckpt = decode_multi_cycle(reader);
  telemetry::count("persist.loads");
  telemetry::observe("persist.load_ms", timer.ms());
  return ckpt;
}

CheckpointKind kind_of(const SnapshotReader& reader) {
  return meta_kind(reader);
}

void write_debug_json(const SnapshotReader& reader, std::ostream& os) {
  const CheckpointKind kind = meta_kind(reader);
  os << "{\"kind\":"
     << (kind == CheckpointKind::Online ? "\"online\"" : "\"multi_cycle\"")
     << ",\"version\":" << kSnapshotVersion << ",\"sections\":[";
  bool first = true;
  for (std::uint32_t id : reader.section_ids()) {
    if (!first) os << ',';
    first = false;
    const std::vector<std::uint8_t>& payload = reader.section(id);
    os << "{\"id\":" << id << ",\"name\":";
    json::write_escaped(os, section_name(id));
    os << ",\"bytes\":" << payload.size() << ",\"crc32\":"
       << serialize::crc32(payload) << '}';
  }
  os << "],";
  char fp[32];
  if (kind == CheckpointKind::Online) {
    const OnlineCheckpoint ckpt = decode_online(reader);
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(ckpt.config_fingerprint));
    os << "\"meta\":{\"config_fingerprint\":\"" << fp
       << "\",\"fault_mode\":" << (ckpt.fault_mode ? "true" : "false")
       << ",\"boundary_time\":";
    json::write_number(os, ckpt.boundary_time);
    os << ",\"next_arrival\":" << ckpt.next_arrival
       << ",\"next_fault_event\":" << ckpt.next_fault_event
       << ",\"repair_index\":" << ckpt.repair_index
       << ",\"surge_index\":" << ckpt.surge_index << ",\"oldest_queued\":";
    json::write_number(os, ckpt.oldest_queued);
    os << ",\"total_arrivals\":" << ckpt.total_arrivals
       << ",\"total_accepted\":" << ckpt.total_accepted << '}';
    os << ",\"batches\":" << ckpt.batches.size()
       << ",\"book_requests\":" << ckpt.book.size()
       << ",\"committed\":" << ckpt.inc.committed.size()
       << ",\"entries\":" << ckpt.entries.size() << ",\"profit\":";
    json::write_number(os, ckpt.profit.profit);
    os << ",\"refunds\":";
    json::write_number(os, ckpt.refunds.refunded);
    os << ",\"lp_iterations\":" << (ckpt.lp_stats.iterations +
                                    ckpt.book_lp_stats.iterations)
       << ",\"cache_entries\":" << ckpt.cache.entries.size()
       << ",\"topology_epoch\":" << ckpt.topology.epoch
       << ",\"telemetry_counters\":" << ckpt.metrics.counters.size();
  } else {
    const MultiCycleCheckpoint ckpt = decode_multi_cycle(reader);
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(ckpt.config_fingerprint));
    double net = 0;
    for (const CycleCellState& c : ckpt.cells) net += c.net_profit;
    os << "\"meta\":{\"config_fingerprint\":\"" << fp
       << "\",\"cycles_done\":" << ckpt.cycles_done
       << ",\"num_policies\":" << ckpt.num_policies << '}'
       << ",\"cells\":" << ckpt.cells.size() << ",\"net_profit_sum\":";
    json::write_number(os, net);
    os << ",\"telemetry_counters\":" << ckpt.metrics.counters.size();
  }
  os << '}';
}

}  // namespace metis::persist
