#include "baselines/mincost.h"

namespace metis::baselines {

MinCostResult run_mincost(const core::SpmInstance& instance) {
  MinCostResult result;
  result.schedule = core::Schedule::all_declined(instance.num_requests());
  for (int i = 0; i < instance.num_requests(); ++i) {
    // Candidate paths come from Yen's algorithm in nondecreasing price
    // order, so index 0 is the min-price path.
    int cheapest = 0;
    double best = net::path_weight(instance.topology(), instance.paths(i)[0],
                                   net::PathMetric::Price);
    for (int j = 1; j < instance.num_paths(i); ++j) {
      const double w = net::path_weight(instance.topology(), instance.paths(i)[j],
                                        net::PathMetric::Price);
      if (w < best) {
        best = w;
        cheapest = j;
      }
    }
    result.schedule.path_choice[i] = cheapest;
  }
  result.plan = core::charging_from_loads(
      core::compute_loads(instance, result.schedule));
  result.cost = core::cost(instance.topology(), result.plan);
  return result;
}

}  // namespace metis::baselines
