#include "baselines/ecoflow.h"

#include <cmath>

#include "core/accounting.h"

namespace metis::baselines {

namespace {

/// Increase in total charged cost if request i were routed on path j, given
/// the committed loads.
double incremental_cost(const core::SpmInstance& instance,
                        const core::LoadMatrix& loads, int i, int j) {
  const workload::Request& r = instance.request(i);
  double delta = 0;
  for (net::EdgeId e : instance.paths(i)[j].edges) {
    double peak_before = loads.peak(e);
    // Peak after adding r over the request's window on this edge.
    double peak_after = peak_before;
    for (int t = r.start_slot; t <= r.end_slot; ++t) {
      peak_after = std::max(peak_after, loads.at(e, t) + r.rate);
    }
    // Shared ceiling guard (core::charged_units) so this estimate matches the
    // bill charged by charging_from_loads exactly.
    const int units_before = core::charged_units(peak_before);
    const int units_after = core::charged_units(peak_after);
    delta += instance.topology().edge(e).price * (units_after - units_before);
  }
  return delta;
}

}  // namespace

EcoFlowResult run_ecoflow(const core::SpmInstance& instance) {
  EcoFlowResult result;
  result.schedule = core::Schedule::all_declined(instance.num_requests());
  core::LoadMatrix loads(instance.num_edges(), instance.num_slots());

  for (int i = 0; i < instance.num_requests(); ++i) {
    const workload::Request& r = instance.request(i);
    int best_path = -1;
    double best_delta = 0;
    for (int j = 0; j < instance.num_paths(i); ++j) {
      const double delta = incremental_cost(instance, loads, i, j);
      if (best_path < 0 || delta < best_delta) {
        best_delta = delta;
        best_path = j;
      }
    }
    // Greedy profit test: accept only if the bid covers the extra cost.
    if (best_path >= 0 && r.value > best_delta) {
      result.schedule.path_choice[i] = best_path;
      for (net::EdgeId e : instance.paths(i)[best_path].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) loads.add(e, t, r.rate);
      }
    }
  }
  result.plan = core::charging_from_loads(core::compute_loads(instance, result.schedule));
  const core::ProfitBreakdown pb =
      core::evaluate_with_plan(instance, result.schedule, result.plan);
  result.revenue = pb.revenue;
  result.cost = pb.cost;
  result.profit = pb.profit;
  result.accepted = pb.accepted;
  return result;
}

}  // namespace metis::baselines
