#include "baselines/opt.h"

#include "core/lp_builder.h"

namespace metis::baselines {

namespace {

OptResult solve_model(const core::SpmInstance& instance, const core::SpmModel& model,
                      const lp::MipOptions& options,
                      const core::Schedule* warm_start) {
  OptResult result;
  const lp::MipSolver solver(options);
  lp::MipResult mip;
  if (warm_start != nullptr) {
    const std::vector<double> seed =
        core::columns_from_decision(instance, model, *warm_start);
    mip = solver.solve(model.problem, model.integer_columns(), &seed);
  } else {
    mip = solver.solve(model.problem, model.integer_columns());
  }
  result.status = mip.status;
  result.best_bound = mip.best_bound;
  result.nodes = mip.nodes;
  result.exact = mip.status == lp::SolveStatus::Optimal;
  if (!mip.has_incumbent) return result;
  result.schedule = core::schedule_from_solution(instance, model, mip.x);
  // Derive the purchase from the schedule itself: the ILP's c variables are
  // optimal, but re-ceiling the actual loads guards against any slack the
  // solver left (it can only reduce cost).
  result.plan =
      core::charging_from_loads(core::compute_loads(instance, result.schedule));
  result.breakdown =
      core::evaluate_with_plan(instance, result.schedule, result.plan);
  return result;
}

}  // namespace

OptResult run_opt_spm(const core::SpmInstance& instance,
                      const lp::MipOptions& options,
                      const core::Schedule* warm_start) {
  return solve_model(instance, core::build_spm(instance), options, warm_start);
}

OptResult run_opt_rl_spm(const core::SpmInstance& instance,
                         const lp::MipOptions& options,
                         const core::Schedule* warm_start) {
  return solve_model(instance, core::build_rl_spm(instance), options, warm_start);
}

}  // namespace metis::baselines
