// Exact baselines solved by branch & bound:
//
//   OPT(SPM)    — the optimal profit schedule (Fig. 3's "OPT(SPM)").
//   OPT(RL-SPM) — the optimal min-cost schedule with *all* requests
//                 accepted (Fig. 3's "OPT(RL-SPM)", the current service
//                 mode where providers never decline).
//
// Both accept MipOptions so large instances can run with node/time budgets;
// `exact` reports whether the tree was exhausted (proven optimal).
#pragma once

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "lp/mip.h"

namespace metis::baselines {

struct OptResult {
  lp::SolveStatus status = lp::SolveStatus::NotSolved;
  core::Schedule schedule;
  core::ChargingPlan plan;
  core::ProfitBreakdown breakdown;
  double best_bound = 0;  ///< proven bound on the optimum objective
  bool exact = false;     ///< true when proven optimal (within gap)
  long nodes = 0;

  bool ok() const { return status != lp::SolveStatus::NotSolved &&
                           status != lp::SolveStatus::Infeasible &&
                           !schedule.path_choice.empty(); }
};

/// Solves SPM exactly: max revenue - cost, free acceptance.
/// `warm_start` (optional) seeds branch & bound with a known feasible
/// decision (e.g. Metis's output), guaranteeing OPT >= that decision even
/// under node/time budgets.
OptResult run_opt_spm(const core::SpmInstance& instance,
                      const lp::MipOptions& options = {},
                      const core::Schedule* warm_start = nullptr);

/// Solves RL-SPM exactly with every request accepted: min cost.
/// `warm_start`, if provided, must accept every request.
OptResult run_opt_rl_spm(const core::SpmInstance& instance,
                         const lp::MipOptions& options = {},
                         const core::Schedule* warm_start = nullptr);

}  // namespace metis::baselines
