// EcoFlow baseline [17], as adapted by the paper's evaluation (Section V.A):
// an economical, deadline-driven scheduler that "handles user requests one by
// one and accepts the user requests that generate higher service profits".
//
// Our adaptation: requests are processed one by one; for each, the candidate
// path with the lowest *incremental* bandwidth cost (the increase in ceiled
// charged units given everything committed so far) is evaluated, and the
// request is accepted only when its value exceeds that incremental cost.
// This greedy profit test is what makes EcoFlow decline many requests.
#pragma once

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace metis::baselines {

struct EcoFlowResult {
  core::Schedule schedule;
  core::ChargingPlan plan;
  double revenue = 0;
  double cost = 0;
  double profit = 0;
  int accepted = 0;
};

EcoFlowResult run_ecoflow(const core::SpmInstance& instance);

}  // namespace metis::baselines
