// MinCost baseline (Section V.A): a fixed scheduling rule that reserves
// exclusive bandwidth for every request on its min-price path, ignoring the
// interplay between requests.
#pragma once

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace metis::baselines {

struct MinCostResult {
  core::Schedule schedule;
  core::ChargingPlan plan;
  double cost = 0;
};

/// Routes every request on its cheapest candidate path (all accepted) and
/// charges the ceiling of the resulting peak loads.
MinCostResult run_mincost(const core::SpmInstance& instance);

}  // namespace metis::baselines
