#include "baselines/amoeba.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/numeric.h"

namespace metis::baselines {

AmoebaResult run_amoeba(const core::SpmInstance& instance,
                        const core::ChargingPlan& capacities,
                        const AmoebaOptions& options) {
  if (static_cast<int>(capacities.units.size()) != instance.num_edges()) {
    throw std::invalid_argument("run_amoeba: capacity size mismatch");
  }
  AmoebaResult result;
  result.schedule = core::Schedule::all_declined(instance.num_requests());
  core::LoadMatrix loads(instance.num_edges(), instance.num_slots());

  // Arrival order: by start slot, ties by index (stable online order).
  std::vector<int> order(instance.num_requests());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return instance.request(a).start_slot < instance.request(b).start_slot;
  });

  for (int i : order) {
    const workload::Request& r = instance.request(i);
    const int path_limit = options.multipath ? instance.num_paths(i) : 1;
    for (int j = 0; j < path_limit; ++j) {
      bool fits = true;
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        for (int t = r.start_slot; t <= r.end_slot && fits; ++t) {
          if (loads.at(e, t) + r.rate > capacities.units[e] + num::kCeilGuard) {
            fits = false;
          }
        }
        if (!fits) break;
      }
      if (!fits) continue;
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) loads.add(e, t, r.rate);
      }
      result.schedule.path_choice[i] = j;
      break;
    }
  }
  result.revenue = core::revenue(instance, result.schedule);
  result.accepted = result.schedule.num_accepted();
  return result;
}

}  // namespace metis::baselines
