// Amoeba baseline [20], as adapted by the paper's evaluation (Section V.B.2):
// an online inter-DC scheduler that, under a fixed amount of bandwidth,
// admits user requests one by one (in arrival order) whenever the residual
// bandwidth can accommodate them, "without considering future requests".
//
// Following that description, the default admission checks the request's
// primary (min-price) route only; `multipath = true` enables a stronger
// first-fit over all candidate paths (used by the ablation bench).
#pragma once

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace metis::baselines {

struct AmoebaOptions {
  /// false (paper's comparator): admit on the primary path or decline.
  /// true: first-fit across all candidate paths.
  bool multipath = false;
};

struct AmoebaResult {
  core::Schedule schedule;
  double revenue = 0;
  int accepted = 0;
};

/// Admits requests greedily under fixed per-edge capacities, processing them
/// by nondecreasing start slot (arrival order).
AmoebaResult run_amoeba(const core::SpmInstance& instance,
                        const core::ChargingPlan& capacities,
                        const AmoebaOptions& options = {});

}  // namespace metis::baselines
