// Plain-text serialization of topologies, so users can run the library on
// their own WANs (see examples/wan_pricing.cpp).
//
// Format (lines; '#' starts a comment):
//   nodes <N>
//   edge <src> <dst> <price> [capacity_units]
//   link <a> <b> <price> [capacity_units]     # bidirectional shorthand
#pragma once

#include <iosfwd>
#include <string>

#include "net/topology.h"

namespace metis::net {

/// Parses a topology; throws std::runtime_error on error.  Every diagnostic
/// names the source and line ("topology parse error at <source>:<line>:
/// ..."); `source` defaults to "<input>" for stream input, and
/// read_topology_file passes the file path.
Topology read_topology(std::istream& in, const std::string& source = "<input>");
/// File variant of read_topology; also throws when the file cannot be opened.
Topology read_topology_file(const std::string& path);

/// Writes the `edge` form (directed, exact round-trip).
void write_topology(std::ostream& out, const Topology& topo);
/// File variant of write_topology; throws when the file cannot be opened.
void write_topology_file(const std::string& path, const Topology& topo);

}  // namespace metis::net
