#include "net/topology_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace metis::net {

namespace {
[[noreturn]] void fail_at(const std::string& source, int line,
                          const std::string& message) {
  throw std::runtime_error("topology parse error at " + source + ":" +
                           std::to_string(line) + ": " + message);
}
}  // namespace

Topology read_topology(std::istream& in, const std::string& source) {
  const auto fail = [&source](int line, const std::string& message) {
    fail_at(source, line, message);
  };
  std::optional<Topology> topo;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword)) continue;  // blank line
    if (keyword == "nodes") {
      int n = 0;
      if (!(ss >> n) || n <= 0) fail(line_no, "nodes expects a positive count");
      if (topo) fail(line_no, "duplicate nodes line");
      topo.emplace(n);
    } else if (keyword == "edge" || keyword == "link") {
      if (!topo) fail(line_no, "edge before nodes line");
      int a = 0, b = 0;
      double price = 0;
      int capacity = 0;
      if (!(ss >> a >> b >> price)) fail(line_no, "expected: src dst price");
      // Optional capacity: if a fourth token is present it must be a whole
      // non-negative integer, and nothing may follow it.  A bare `ss >>
      // capacity` would silently swallow garbage ("junk" -> 0) and ignore
      // trailing fields, so a malformed line parsed as an uncapacitated
      // edge instead of failing.
      std::string token;
      if (ss >> token) {
        try {
          std::size_t pos = 0;
          capacity = std::stoi(token, &pos);
          if (pos != token.size()) fail(line_no, "bad capacity: " + token);
        } catch (const std::runtime_error&) {
          throw;
        } catch (const std::exception&) {
          fail(line_no, "bad capacity: " + token);
        }
        if (capacity < 0) fail(line_no, "negative capacity: " + token);
        std::string extra;
        if (ss >> extra) fail(line_no, "trailing token: " + extra);
      }
      try {
        if (keyword == "edge") {
          topo->add_edge(a, b, price, capacity);
        } else {
          topo->add_link(a, b, price, capacity);
        }
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown keyword: " + keyword);
    }
  }
  if (!topo) {
    throw std::runtime_error("topology parse error in " + source +
                             ": no nodes line");
  }
  return *std::move(topo);
}

Topology read_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open topology file: " + path);
  return read_topology(in, path);
}

void write_topology(std::ostream& out, const Topology& topo) {
  // Full round-trip precision for prices.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "nodes " << topo.num_nodes() << '\n';
  for (EdgeId e = 0; e < topo.num_edges(); ++e) {
    const Edge& edge = topo.edge(e);
    out << "edge " << edge.src << ' ' << edge.dst << ' ' << edge.price << ' '
        << edge.capacity_units << '\n';
  }
}

void write_topology_file(const std::string& path, const Topology& topo) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open topology file for write: " + path);
  write_topology(out, topo);
}

}  // namespace metis::net
