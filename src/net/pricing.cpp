#include "net/pricing.h"

#include <stdexcept>

namespace metis::net {

std::string to_string(Region region) {
  switch (region) {
    case Region::NorthAmerica: return "NorthAmerica";
    case Region::Europe: return "Europe";
    case Region::Asia: return "Asia";
    case Region::SouthAmerica: return "SouthAmerica";
    case Region::Oceania: return "Oceania";
  }
  return "Unknown";
}

double relative_price(Region region) {
  // Cloudflare "Bandwidth Costs Around the World" relative transit factors
  // (Europe/North America normalized to 1).
  switch (region) {
    case Region::NorthAmerica: return 1.0;
    case Region::Europe: return 1.0;
    case Region::Asia: return 6.5;
    case Region::SouthAmerica: return 17.0;
    case Region::Oceania: return 20.0;
  }
  return 1.0;
}

double link_price(Region a, Region b) {
  return (relative_price(a) + relative_price(b)) / 2.0;
}

void apply_region_pricing(Topology& topo, std::span<const Region> node_regions) {
  if (static_cast<int>(node_regions.size()) != topo.num_nodes()) {
    throw std::invalid_argument(
        "apply_region_pricing: one region per node required");
  }
  for (EdgeId e = 0; e < topo.num_edges(); ++e) {
    const Edge& edge = topo.edge(e);
    topo.set_price(e, link_price(node_regions[edge.src], node_regions[edge.dst]));
  }
}

}  // namespace metis::net
