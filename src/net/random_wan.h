// Random WAN generation (Waxman-style) for stress and property testing
// beyond the two reference topologies.
//
// The generator places data centers uniformly in the unit square, connects
// them with the classic Waxman probability
//     P(u, v) = beta * exp(-dist(u, v) / (alpha * sqrt(2)))
// and then adds a random spanning tree so the result is always strongly
// connected (every link is bidirectional).  Prices are drawn per link from
// a configurable range, mimicking the regional spread of real transit
// markets.
#pragma once

#include "net/topology.h"
#include "util/rng.h"

namespace metis::net {

/// Shape of the generated WAN (see the file comment for the model).
struct RandomWanConfig {
  int num_nodes = 10;
  /// Waxman parameters: larger alpha favours long links, larger beta raises
  /// overall edge density.
  double alpha = 0.4;
  double beta = 0.6;
  /// Per-link prices are drawn uniformly from [min_price, max_price] —
  /// defaults span the regional factors of net/pricing.h.
  double min_price = 1.0;
  double max_price = 6.5;
};

/// Generates a strongly connected bidirectional WAN.  Deterministic in the
/// rng state.  Throws std::invalid_argument on malformed config.
Topology random_wan(const RandomWanConfig& config, Rng& rng);

}  // namespace metis::net
