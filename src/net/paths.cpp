#include "net/paths.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "util/telemetry.h"

namespace metis::net {

namespace {

double edge_weight(const Topology& topo, EdgeId e, PathMetric metric) {
  return metric == PathMetric::Price ? topo.edge(e).price : 1.0;
}

}  // namespace

double path_weight(const Topology& topo, const Path& path, PathMetric metric) {
  double total = 0;
  for (EdgeId e : path.edges) total += edge_weight(topo, e, metric);
  return total;
}

NodeId path_source(const Topology& topo, const Path& path) {
  if (path.empty()) throw std::invalid_argument("path_source: empty path");
  return topo.edge(path.edges.front()).src;
}

NodeId path_destination(const Topology& topo, const Path& path) {
  if (path.empty()) throw std::invalid_argument("path_destination: empty path");
  return topo.edge(path.edges.back()).dst;
}

bool is_simple_path(const Topology& topo, const Path& path, NodeId src, NodeId dst) {
  if (path.empty()) return false;
  if (path_source(topo, path) != src) return false;
  if (path_destination(topo, path) != dst) return false;
  std::set<NodeId> seen{src};
  NodeId at = src;
  for (EdgeId e : path.edges) {
    if (e < 0 || e >= topo.num_edges()) return false;
    const Edge& edge = topo.edge(e);
    if (edge.src != at) return false;
    at = edge.dst;
    if (!seen.insert(at).second) return false;  // node revisited
  }
  return at == dst;
}

std::optional<Path> shortest_path(const Topology& topo, NodeId src, NodeId dst,
                                  PathMetric metric,
                                  const std::vector<bool>* forbidden_nodes,
                                  const std::vector<bool>* forbidden_edges) {
  if (!topo.valid_node(src) || !topo.valid_node(dst)) {
    throw std::invalid_argument("shortest_path: node out of range");
  }
  if (src == dst) return std::nullopt;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(topo.num_nodes(), kInf);
  std::vector<EdgeId> incoming(topo.num_nodes(), -1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0;
  heap.emplace(0.0, src);
  const auto node_ok = [&](NodeId n) {
    return !forbidden_nodes || !(*forbidden_nodes)[n];
  };
  if (!node_ok(src)) return std::nullopt;
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    if (node == dst) break;
    for (EdgeId e : topo.out_edges(node)) {
      if (forbidden_edges && (*forbidden_edges)[e]) continue;
      const Edge& edge = topo.edge(e);
      if (!edge.enabled) continue;  // failed link (fault injection)
      if (!node_ok(edge.dst)) continue;
      const double nd = d + edge_weight(topo, e, metric);
      if (nd < dist[edge.dst]) {
        dist[edge.dst] = nd;
        incoming[edge.dst] = e;
        heap.emplace(nd, edge.dst);
      }
    }
  }
  if (incoming[dst] == -1) return std::nullopt;
  Path path;
  for (NodeId at = dst; at != src;) {
    const EdgeId e = incoming[at];
    path.edges.push_back(e);
    at = topo.edge(e).src;
  }
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::vector<Path> k_shortest_paths(const Topology& topo, NodeId src, NodeId dst,
                                   int k, PathMetric metric) {
  if (k <= 0) return {};
  std::vector<Path> found;
  auto first = shortest_path(topo, src, dst, metric);
  if (!first) return {};
  found.push_back(*std::move(first));

  // Candidate pool ordered by (weight, edge sequence) for determinism.
  auto cmp = [&](const Path& a, const Path& b) {
    const double wa = path_weight(topo, a, metric);
    const double wb = path_weight(topo, b, metric);
    if (wa != wb) return wa < wb;
    return a.edges < b.edges;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (static_cast<int>(found.size()) < k) {
    const Path& last = found.back();
    // Spur from every prefix of the last accepted path.
    std::vector<bool> forbidden_nodes(topo.num_nodes(), false);
    NodeId spur_node = src;
    Path root_path;  // edges of `last` before the spur node
    for (std::size_t i = 0; i <= last.edges.size(); ++i) {
      if (i > 0) {
        const EdgeId prev = last.edges[i - 1];
        forbidden_nodes[topo.edge(prev).src] = true;  // nodes before spur
        root_path.edges.push_back(prev);
        spur_node = topo.edge(prev).dst;
      }
      if (i == last.edges.size()) break;  // spur at dst is meaningless
      // Forbid the next edge of every found path sharing this root.
      std::vector<bool> forbidden_edges(topo.num_edges(), false);
      for (const Path& p : found) {
        if (p.edges.size() <= root_path.edges.size()) continue;
        if (std::equal(root_path.edges.begin(), root_path.edges.end(),
                       p.edges.begin())) {
          forbidden_edges[p.edges[root_path.edges.size()]] = true;
        }
      }
      auto spur = shortest_path(topo, spur_node, dst, metric, &forbidden_nodes,
                                &forbidden_edges);
      if (spur) {
        Path total = root_path;
        total.edges.insert(total.edges.end(), spur->edges.begin(),
                           spur->edges.end());
        if (std::find(found.begin(), found.end(), total) == found.end()) {
          candidates.insert(std::move(total));
        }
      }
    }
    if (candidates.empty()) break;
    found.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return found;
}

namespace {
void dfs_paths(const Topology& topo, NodeId at, NodeId dst, int max_hops,
               std::vector<bool>& visited, Path& current,
               std::vector<Path>& out) {
  if (at == dst) {
    out.push_back(current);
    return;
  }
  if (static_cast<int>(current.edges.size()) >= max_hops) return;
  for (EdgeId e : topo.out_edges(at)) {
    if (!topo.edge(e).enabled) continue;
    const NodeId next = topo.edge(e).dst;
    if (visited[next]) continue;
    visited[next] = true;
    current.edges.push_back(e);
    dfs_paths(topo, next, dst, max_hops, visited, current, out);
    current.edges.pop_back();
    visited[next] = false;
  }
}
}  // namespace

std::vector<Path> all_simple_paths(const Topology& topo, NodeId src, NodeId dst,
                                   int max_hops) {
  if (!topo.valid_node(src) || !topo.valid_node(dst)) {
    throw std::invalid_argument("all_simple_paths: node out of range");
  }
  if (src == dst) return {};
  std::vector<Path> out;
  std::vector<bool> visited(topo.num_nodes(), false);
  visited[src] = true;
  Path current;
  dfs_paths(topo, src, dst, max_hops, visited, current, out);
  return out;
}

const std::vector<Path>& PathCache::paths(NodeId src, NodeId dst, int k,
                                          PathMetric metric) {
  // Entries are only valid for the topology epoch they were computed under;
  // any mutation (link failure, capacity override, price change) bumps the
  // epoch and flushes the whole cache instead of silently serving paths
  // over edges that may no longer exist.
  if (topo_->epoch() != epoch_) {
    stale_ += cache_.size();
    telemetry::count("net.path_cache_stale",
                     static_cast<std::int64_t>(cache_.size()));
    cache_.clear();
    epoch_ = topo_->epoch();
  }
  const auto key = std::make_tuple(src, dst, k, static_cast<int>(metric));
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    telemetry::count("net.path_cache_hits");
    return it->second;
  }
  ++misses_;
  telemetry::count("net.path_cache_misses");
  return cache_.emplace(key, k_shortest_paths(*topo_, src, dst, k, metric))
      .first->second;
}

PathCache::Dump PathCache::dump() const {
  Dump d;
  d.epoch = epoch_;
  d.hits = hits_;
  d.misses = misses_;
  d.stale = stale_;
  d.entries.reserve(cache_.size());
  for (const auto& [key, paths] : cache_) {
    d.entries.push_back(Dump::Entry{std::get<0>(key), std::get<1>(key),
                                    std::get<2>(key), std::get<3>(key),
                                    paths});
  }
  return d;
}

void PathCache::restore(const Dump& d) {
  // The image may *lag* the topology: mutations flush lazily, so a snapshot
  // taken between a mutation and the next lookup legitimately carries the
  // pre-mutation epoch (the restored cache then flushes on first lookup,
  // exactly as the uninterrupted cache would).  An image from a *future*
  // epoch cannot arise from a snapshot of this topology and is rejected.
  if (d.epoch > topo_->epoch()) {
    throw std::invalid_argument(
        "PathCache::restore: image epoch " + std::to_string(d.epoch) +
        " is ahead of the topology's epoch " +
        std::to_string(topo_->epoch()));
  }
  cache_.clear();
  for (const Dump::Entry& e : d.entries) {
    cache_[std::make_tuple(e.src, e.dst, e.k, e.metric)] = e.paths;
  }
  epoch_ = d.epoch;
  hits_ = static_cast<std::size_t>(d.hits);
  misses_ = static_cast<std::size_t>(d.misses);
  stale_ = static_cast<std::size_t>(d.stale);
}

}  // namespace metis::net
