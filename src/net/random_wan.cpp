#include "net/random_wan.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace metis::net {

Topology random_wan(const RandomWanConfig& config, Rng& rng) {
  if (config.num_nodes < 2) {
    throw std::invalid_argument("random_wan: need at least two nodes");
  }
  if (config.alpha <= 0 || config.beta <= 0 || config.beta > 1) {
    throw std::invalid_argument("random_wan: bad Waxman parameters");
  }
  if (config.min_price <= 0 || config.min_price > config.max_price) {
    throw std::invalid_argument("random_wan: bad price range");
  }

  const int n = config.num_nodes;
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = rng.uniform(0, 1);
    y[i] = rng.uniform(0, 1);
  }
  Topology topo(n);
  const double diag = std::sqrt(2.0);
  const auto link_price = [&] {
    return rng.uniform(config.min_price, config.max_price);
  };

  // Waxman edges.
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double dist = std::hypot(x[a] - x[b], y[a] - y[b]);
      const double p = config.beta * std::exp(-dist / (config.alpha * diag));
      if (rng.bernoulli(p)) topo.add_link(a, b, link_price());
    }
  }
  // Random spanning tree for guaranteed strong connectivity: attach each
  // node (in random order) to a random earlier node.
  const std::vector<std::size_t> order = rng.permutation(n);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const NodeId node = static_cast<NodeId>(order[i]);
    const NodeId anchor =
        static_cast<NodeId>(order[rng.uniform_int(0, static_cast<int>(i) - 1)]);
    if (topo.find_edge(node, anchor) == -1) {
      topo.add_link(node, anchor, link_price());
    }
  }
  return topo;
}

}  // namespace metis::net
