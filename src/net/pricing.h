// Region-based bandwidth pricing.
//
// The paper sets link prices "based on the relative bandwidth prices
// provided by Cloudflare" [9]: transit in North America and Europe is the
// cheap baseline while Asia, South America and Oceania are several times
// more expensive.  We encode those relative factors; a link's price is the
// mean of its endpoint regions' factors.
#pragma once

#include <span>
#include <string>

#include "net/topology.h"

namespace metis::net {

/// Transit-market region of a data center, in decreasing order of
/// bandwidth-price competitiveness (see relative_price).
enum class Region {
  NorthAmerica,  ///< baseline price 1.0
  Europe,        ///< baseline price 1.0
  Asia,          ///< several times the baseline
  SouthAmerica,  ///< the most expensive transit market
  Oceania,       ///< between Asia and South America
};

/// Human-readable region name ("NorthAmerica", ...).
std::string to_string(Region region);

/// Relative price of one bandwidth unit terminating in `region`
/// (North America / Europe = 1.0 baseline).
double relative_price(Region region);

/// Price of a link between two regions: mean of the endpoint factors.
double link_price(Region a, Region b);

/// Re-prices every edge of `topo` from a per-node region assignment.
/// `node_regions` must have one entry per node.
void apply_region_pricing(Topology& topo, std::span<const Region> node_regions);

}  // namespace metis::net
