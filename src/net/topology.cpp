#include "net/topology.h"

#include <algorithm>
#include <stdexcept>

namespace metis::net {

Topology::Topology(int num_nodes)
    : num_nodes_(num_nodes), out_(num_nodes), node_enabled_(num_nodes, true) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("Topology: need at least one node");
  }
}

EdgeId Topology::add_edge(NodeId src, NodeId dst, double price, int capacity_units) {
  if (!valid_node(src) || !valid_node(dst)) {
    throw std::invalid_argument("add_edge: node id out of range");
  }
  if (src == dst) throw std::invalid_argument("add_edge: self loop");
  if (price < 0) throw std::invalid_argument("add_edge: negative price");
  if (capacity_units < 0) throw std::invalid_argument("add_edge: negative capacity");
  if (find_edge(src, dst) != -1) {
    throw std::invalid_argument("add_edge: parallel edge");
  }
  edges_.push_back(Edge{src, dst, price, capacity_units});
  const EdgeId id = static_cast<EdgeId>(edges_.size()) - 1;
  out_[src].push_back(id);
  ++epoch_;
  return id;
}

EdgeId Topology::add_link(NodeId a, NodeId b, double price, int capacity_units) {
  const EdgeId forward = add_edge(a, b, price, capacity_units);
  add_edge(b, a, price, capacity_units);
  return forward;
}

EdgeId Topology::find_edge(NodeId src, NodeId dst) const {
  if (!valid_node(src) || !valid_node(dst)) return -1;
  for (EdgeId e : out_[src]) {
    if (edges_[e].dst == dst) return e;
  }
  return -1;
}

void Topology::set_price(EdgeId e, double price) {
  if (price < 0) throw std::invalid_argument("set_price: negative price");
  edges_.at(e).price = price;
  ++epoch_;
}

void Topology::set_capacity(EdgeId e, int units) {
  if (units < 0) throw std::invalid_argument("set_capacity: negative capacity");
  edges_.at(e).capacity_units = units;
  ++epoch_;
}

void Topology::set_uniform_capacity(int units) {
  for (EdgeId e = 0; e < num_edges(); ++e) set_capacity(e, units);
}

void Topology::disable_edge(EdgeId e) {
  Edge& edge = edges_.at(e);
  if (!edge.enabled) return;
  edge.enabled = false;
  ++epoch_;
}

void Topology::enable_edge(EdgeId e) {
  Edge& edge = edges_.at(e);
  if (edge.enabled) return;
  edge.enabled = true;
  ++epoch_;
}

int Topology::disable_node(NodeId node) {
  if (!valid_node(node)) {
    throw std::invalid_argument("disable_node: node id out of range");
  }
  int disabled = 0;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const Edge& edge = edges_[e];
    if ((edge.src == node || edge.dst == node) && edge.enabled) {
      disable_edge(e);
      ++disabled;
    }
  }
  if (node_enabled_[node]) {
    node_enabled_[node] = false;
    ++epoch_;
  }
  return disabled;
}

void Topology::restore_edge_state(EdgeId e, double price, int capacity_units,
                                  bool enabled) {
  if (price < 0) throw std::invalid_argument("restore_edge_state: negative price");
  if (capacity_units < 0) {
    throw std::invalid_argument("restore_edge_state: negative capacity");
  }
  Edge& edge = edges_.at(e);
  edge.price = price;
  edge.capacity_units = capacity_units;
  edge.enabled = enabled;
}

void Topology::restore_node_state(NodeId node, bool enabled) {
  if (!valid_node(node)) {
    throw std::invalid_argument("restore_node_state: node id out of range");
  }
  node_enabled_[node] = enabled;
}

int Topology::min_positive_capacity() const {
  int best = 0;
  for (const Edge& e : edges_) {
    if (!e.enabled) continue;
    if (e.capacity_units > 0 && (best == 0 || e.capacity_units < best)) {
      best = e.capacity_units;
    }
  }
  return best;
}

}  // namespace metis::net
