// Topology: the inter-datacenter WAN graph G(V, E).
//
// Nodes are data centers; edges are *directed* links with a bandwidth price
// u_e (cost of one 10 Gbps unit per billing cycle) and an optional capacity
// in integer bandwidth units (0 = uncapacitated, used by RL-SPM where the
// provider buys as much as it needs).
#pragma once

#include <string>
#include <vector>

#include "lp/types.h"

namespace metis::net {

using NodeId = int;
using EdgeId = int;

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  /// Bandwidth price u_e: cost of one unit (10 Gbps) for one billing cycle.
  double price = 1.0;
  /// Capacity in integer bandwidth units; 0 means "uncapacitated" (the
  /// provider may purchase any amount).
  int capacity_units = 0;
};

class Topology {
 public:
  explicit Topology(int num_nodes);

  /// Adds a directed edge and returns its id.
  EdgeId add_edge(NodeId src, NodeId dst, double price, int capacity_units = 0);

  /// Adds the two directed edges of one bidirectional link; returns the id
  /// of the first (src->dst); the reverse edge is the returned id + 1.
  EdgeId add_link(NodeId a, NodeId b, double price, int capacity_units = 0);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_.at(e); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing edge ids of a node.
  const std::vector<EdgeId>& out_edges(NodeId node) const {
    return out_.at(node);
  }

  /// Id of the directed edge src->dst, or -1 if absent.
  EdgeId find_edge(NodeId src, NodeId dst) const;

  void set_price(EdgeId e, double price);
  void set_capacity(EdgeId e, int units);
  /// Sets every edge's capacity to `units` (the Fig. 4c/4d uniform setup).
  void set_uniform_capacity(int units);

  /// Minimum strictly positive capacity across edges (the constant `c` in
  /// the paper's inequality (6)); returns 0 if every capacity is zero.
  int min_positive_capacity() const;

  /// True if `node` is a valid node id.
  bool valid_node(NodeId node) const { return node >= 0 && node < num_nodes_; }

 private:
  int num_nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
};

}  // namespace metis::net
