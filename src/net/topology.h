// Topology: the inter-datacenter WAN graph G(V, E).
//
// Nodes are data centers; edges are *directed* links with a bandwidth price
// u_e (cost of one 10 Gbps unit per billing cycle) and an optional capacity
// in integer bandwidth units (0 = uncapacitated, used by RL-SPM where the
// provider buys as much as it needs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/types.h"

namespace metis::net {

using NodeId = int;
using EdgeId = int;

/// One directed link of the WAN.
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  /// Bandwidth price u_e: cost of one unit (10 Gbps) for one billing cycle.
  double price = 1.0;
  /// Capacity in integer bandwidth units; 0 means "uncapacitated" (the
  /// provider may purchase any amount).
  int capacity_units = 0;
  /// False once the link has failed (fault injection, sim/faults.h).  Path
  /// search never routes over a disabled edge; existing reservations on it
  /// are the repair machinery's problem, not the topology's.
  bool enabled = true;
};

/// The directed WAN graph (see the file comment).  Edge ids are stable
/// append order; every mutation that can affect path search or charging
/// bumps epoch(), which PathCache uses for invalidation.
class Topology {
 public:
  explicit Topology(int num_nodes);

  /// Adds a directed edge and returns its id.
  EdgeId add_edge(NodeId src, NodeId dst, double price, int capacity_units = 0);

  /// Adds the two directed edges of one bidirectional link; returns the id
  /// of the first (src->dst); the reverse edge is the returned id + 1.
  EdgeId add_link(NodeId a, NodeId b, double price, int capacity_units = 0);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_.at(e); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing edge ids of a node.
  const std::vector<EdgeId>& out_edges(NodeId node) const {
    return out_.at(node);
  }

  /// Id of the directed edge src->dst, or -1 if absent.
  EdgeId find_edge(NodeId src, NodeId dst) const;

  void set_price(EdgeId e, double price);
  void set_capacity(EdgeId e, int units);
  /// Sets every edge's capacity to `units` (the Fig. 4c/4d uniform setup).
  void set_uniform_capacity(int units);

  /// Mutation epoch: starts at 0 and increments on every change that can
  /// alter path computation or charging — add_edge/add_link, set_price,
  /// set_capacity/override_capacity, disable/enable of edges or nodes.
  /// net::PathCache keys its entries on this counter so a mutated topology
  /// is never served stale candidate paths.
  std::uint64_t epoch() const { return epoch_; }

  /// Takes a failed link out of service: path search skips it from now on.
  /// Idempotent (disabling a dead edge is a no-op and does not bump the
  /// epoch).
  void disable_edge(EdgeId e);
  /// Returns a disabled edge to service (test/maintenance helper).
  void enable_edge(EdgeId e);
  /// Datacenter outage: disables every edge into or out of `node` and marks
  /// the node itself down.  Returns the number of edges newly disabled.
  int disable_node(NodeId node);
  /// Overrides an edge's capacity (fault-injection alias of set_capacity
  /// with the additional permission to *shrink below committed load* — the
  /// caller owns shedding).  `units` must be >= 0; 0 = uncapacitated.
  void override_capacity(EdgeId e, int units) { set_capacity(e, units); }

  bool edge_enabled(EdgeId e) const { return edges_.at(e).enabled; }
  bool node_enabled(NodeId node) const { return node_enabled_.at(node); }

  // --- checkpoint restore (src/persist/) --------------------------------
  // Rehydrating a snapshot must reproduce the *exact* saved state, epoch
  // included: replaying mutations through the normal setters would land on
  // a different epoch count (each call bumps it), so PathCache entries
  // restored alongside would be flushed as stale.  These setters write the
  // saved values without touching the epoch; restore_epoch() then pins the
  // counter last.  Restore-only — never use these mid-simulation.
  void restore_edge_state(EdgeId e, double price, int capacity_units,
                          bool enabled);
  void restore_node_state(NodeId node, bool enabled);
  void restore_epoch(std::uint64_t epoch) { epoch_ = epoch; }

  /// Minimum strictly positive capacity across *enabled* edges (the
  /// constant `c` in the paper's inequality (6)); returns 0 if every
  /// capacity is zero.
  int min_positive_capacity() const;

  /// True if `node` is a valid node id.
  bool valid_node(NodeId node) const { return node >= 0 && node < num_nodes_; }

 private:
  int num_nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<bool> node_enabled_;
  std::uint64_t epoch_ = 0;
};

}  // namespace metis::net
