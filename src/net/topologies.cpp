#include "net/topologies.h"

namespace metis::net {

const std::vector<std::pair<NodeId, NodeId>>& b4_links() {
  // 19 bidirectional links over 12 nodes, reconstructed to match the scale
  // and path diversity of the B4 figure (two/three disjoint routes between
  // most DC pairs, a US cluster, a Europe bridge and an Asia cluster).
  static const std::vector<std::pair<NodeId, NodeId>> links = {
      {0, 1}, {0, 2},  {1, 2},  {1, 3},  {2, 3},   {2, 4},  {3, 4},
      {3, 5}, {4, 5},  {4, 6},  {5, 6},  {5, 7},   {6, 7},  {6, 8},
      {7, 8}, {8, 9},  {8, 10}, {9, 11}, {10, 11},
  };
  return links;
}

const std::vector<Region>& b4_regions() {
  static const std::vector<Region> regions = {
      Region::NorthAmerica, Region::NorthAmerica, Region::NorthAmerica,
      Region::NorthAmerica, Region::NorthAmerica, Region::NorthAmerica,
      Region::Europe,       Region::Europe,       Region::Asia,
      Region::Asia,         Region::Asia,         Region::Asia,
  };
  return regions;
}

Topology make_b4() {
  Topology topo(12);
  for (const auto& [a, b] : b4_links()) topo.add_link(a, b, 1.0);
  apply_region_pricing(topo, b4_regions());
  return topo;
}

Topology make_sub_b4() {
  // DC1..DC6 with 7 links: a slice of B4 that, like the full WAN, spans the
  // three pricing regions (cheap NA core, a Europe bridge, an Asia tail) so
  // that routing and acceptance decisions stay price-sensitive.
  Topology topo(6);
  const std::vector<std::pair<NodeId, NodeId>> links = {
      {0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 5}, {4, 5},
  };
  for (const auto& [a, b] : links) topo.add_link(a, b, 1.0);
  const std::vector<Region> regions = {
      Region::NorthAmerica, Region::NorthAmerica, Region::NorthAmerica,
      Region::Europe,       Region::Asia,         Region::Asia,
  };
  apply_region_pricing(topo, regions);
  return topo;
}

const std::vector<std::string>& internet2_cities() {
  static const std::vector<std::string> cities = {
      "Seattle",     "Sunnyvale", "LosAngeles", "Denver",
      "KansasCity",  "Houston",   "Chicago",    "Indianapolis",
      "Atlanta",     "Washington", "NewYork",
  };
  return cities;
}

Topology make_internet2() {
  // The Abilene backbone: 11 PoPs, 14 bidirectional links.
  Topology topo(11);
  const std::vector<std::pair<NodeId, NodeId>> links = {
      {0, 1},  // Seattle - Sunnyvale
      {0, 3},  // Seattle - Denver
      {1, 2},  // Sunnyvale - Los Angeles
      {1, 3},  // Sunnyvale - Denver
      {2, 5},  // Los Angeles - Houston
      {3, 4},  // Denver - Kansas City
      {4, 5},  // Kansas City - Houston
      {4, 7},  // Kansas City - Indianapolis
      {5, 8},  // Houston - Atlanta
      {6, 7},  // Chicago - Indianapolis
      {6, 10}, // Chicago - New York
      {7, 8},  // Indianapolis - Atlanta
      {8, 9},  // Atlanta - Washington
      {9, 10}, // Washington - New York
  };
  for (const auto& [a, b] : links) topo.add_link(a, b, 1.0);
  return topo;
}

}  // namespace metis::net
