// Reference topologies used in the paper's evaluation (Section V.A):
//
//  * B4     — Google's inter-DC WAN: 12 data centers, 19 bidirectional links
//             (reconstructed from Fig. 2 of the paper; see DESIGN.md).
//  * SUB-B4 — the DC1..DC6 sub-network with 7 of those links.
//
// Prices follow the Cloudflare-relative region model in net/pricing.h:
// DC1..DC6 North America, DC7..DC8 Europe, DC9..DC12 Asia.
#pragma once

#include <string>
#include <vector>

#include "net/pricing.h"
#include "net/topology.h"

namespace metis::net {

/// The 19 bidirectional links of the reconstructed B4 graph as node pairs
/// (0-based node ids).
const std::vector<std::pair<NodeId, NodeId>>& b4_links();

/// Region of each of the 12 B4 data centers.
const std::vector<Region>& b4_regions();

/// Full B4: 12 nodes, 38 directed edges, region-based prices, uncapacitated.
Topology make_b4();

/// SUB-B4: nodes DC1..DC6 (ids 0..5), 7 links, 14 directed edges.
Topology make_sub_b4();

/// Internet2/Abilene (extension): the classic 11-node, 14-link US research
/// WAN, for experiments beyond the paper's two networks.  All nodes are
/// North America, so prices are uniform at the NA baseline.
Topology make_internet2();

/// City names of the Internet2 nodes (index = node id).
const std::vector<std::string>& internet2_cities();

}  // namespace metis::net
