// Path computation: Dijkstra shortest path, Yen's k-shortest simple paths,
// and an exhaustive DFS enumeration used as a test oracle.
//
// Path weights are edge prices by default (the candidate path sets P_i in
// the paper are the cheapest alternatives between a DC pair), with hop count
// available as an alternative metric.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "net/topology.h"

namespace metis::net {

/// A directed simple path, stored as consecutive edge ids.
struct Path {
  std::vector<EdgeId> edges;

  bool empty() const { return edges.empty(); }
  std::size_t hops() const { return edges.size(); }
  bool operator==(const Path& other) const = default;
};

enum class PathMetric { Price, Hops };

/// Sum of the path's edge weights under the metric.
double path_weight(const Topology& topo, const Path& path, PathMetric metric);

/// Source node of a non-empty path.
NodeId path_source(const Topology& topo, const Path& path);
/// Destination node of a non-empty path.
NodeId path_destination(const Topology& topo, const Path& path);

/// True if `path` is a contiguous, node-simple src->dst walk in `topo`.
bool is_simple_path(const Topology& topo, const Path& path, NodeId src, NodeId dst);

/// Dijkstra; std::nullopt if dst is unreachable.  `forbidden_nodes` /
/// `forbidden_edges` (optional, may be empty) support Yen's spur search.
std::optional<Path> shortest_path(const Topology& topo, NodeId src, NodeId dst,
                                  PathMetric metric = PathMetric::Price,
                                  const std::vector<bool>* forbidden_nodes = nullptr,
                                  const std::vector<bool>* forbidden_edges = nullptr);

/// Yen's algorithm: up to k loop-free paths in nondecreasing weight order.
/// Returns fewer than k when the graph does not contain that many.
std::vector<Path> k_shortest_paths(const Topology& topo, NodeId src, NodeId dst,
                                   int k, PathMetric metric = PathMetric::Price);

/// Exhaustive enumeration of all simple paths with at most `max_hops` hops
/// (test oracle; exponential, use on small graphs only).
std::vector<Path> all_simple_paths(const Topology& topo, NodeId src, NodeId dst,
                                   int max_hops);

/// Memoizing front-end for k_shortest_paths, keyed by (src, dst, k, metric)
/// *and the topology's mutation epoch*.  The online admission pipeline
/// rebuilds an SpmInstance per batch over one topology, re-running Yen for
/// the same DC pairs every time; routing this through a cache makes
/// recurring pairs a lookup.  When the referenced topology mutates (fault
/// injection disables a link, overrides a capacity, shocks a price) its
/// epoch advances and the next lookup flushes every entry — stale paths are
/// invalidated, never served.  The cache holds a reference to the topology
/// it was built for and must not outlive it; it may serve any topology
/// *copy* with identical edges and epoch (candidate paths are edge-id
/// lists).  Not thread-safe — one cache per simulation thread.
class PathCache {
 public:
  explicit PathCache(const Topology& topo)
      : topo_(&topo), epoch_(topo.epoch()) {}

  /// Cached k_shortest_paths(topo, src, dst, k, metric).  The reference is
  /// stable until the cache is destroyed or the topology mutates (std::map
  /// nodes do not move, but an epoch change flushes them).
  const std::vector<Path>& paths(NodeId src, NodeId dst, int k,
                                 PathMetric metric = PathMetric::Price);

  std::size_t hits() const { return hits_; }     ///< lookups served cached
  std::size_t misses() const { return misses_; }  ///< lookups that ran Yen
  /// Entries flushed because the topology epoch moved underneath them
  /// (also exported as the "net.path_cache_stale" telemetry counter).
  std::size_t stale() const { return stale_; }

  // --- checkpoint image (src/persist/) ----------------------------------
  /// Plain-data image of the cache: every entry plus the hit/miss/stale
  /// counters and the epoch the entries were computed under.
  struct Dump {
    struct Entry {
      NodeId src = 0;
      NodeId dst = 0;
      int k = 0;
      int metric = 0;  ///< static_cast<int>(PathMetric)
      std::vector<Path> paths;
    };
    std::vector<Entry> entries;  ///< sorted by (src, dst, k, metric)
    std::uint64_t epoch = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stale = 0;
  };
  Dump dump() const;
  /// Replaces the cache's contents and counters with `d`.  The image epoch
  /// may equal the topology's epoch or lag it (mutations flush lazily, so a
  /// snapshot taken between a mutation and the next lookup carries the
  /// pre-mutation epoch; the restored cache then flushes on first lookup
  /// exactly as the live one would).  An image *ahead* of the topology's
  /// epoch cannot have come from it, so that throws.
  void restore(const Dump& d);

 private:
  const Topology* topo_;
  std::uint64_t epoch_;
  std::map<std::tuple<NodeId, NodeId, int, int>, std::vector<Path>> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t stale_ = 0;
};

}  // namespace metis::net
