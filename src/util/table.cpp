#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace metis {

TablePrinter::TablePrinter(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one header");
  }
}

void TablePrinter::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TablePrinter::format(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  std::ostringstream os;
  if (const auto* d = std::get_if<double>(&cell)) {
    os << std::fixed << std::setprecision(precision_) << *d;
  } else {
    os << std::get<long long>(cell);
  }
  return os.str();
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> formatted;
    formatted.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      formatted.push_back(format(row[c]));
      widths[c] = std::max(widths[c], formatted.back().size());
    }
    cells.push_back(std::move(formatted));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : cells) emit_row(row);
  return os.str();
}

std::string TablePrinter::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(format(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

void TablePrinter::print(std::ostream& os) const { os << to_string() << '\n'; }

}  // namespace metis
