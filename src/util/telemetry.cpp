#include "util/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace metis::telemetry {

#if METIS_TELEMETRY_ENABLED

namespace {

/// Current thread's open-span path ("metis/maa/lp_solve").  Each thread —
/// caller or pool worker — nests independently.
thread_local std::string tls_span_path;

std::vector<double> default_bounds() {
  // Decade/half-decade grid sized for millisecond-scale observations.
  return {0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000};
}

// The escaped-string / number writers live in util/json.h — shared with the
// bench baseline writers and the persist layer's debug dump.
using json::write_escaped;
using json::write_number;

/// One node of the span tree rebuilt from slash-joined paths at export time.
struct SpanNode {
  SpanStats stats;
  std::map<std::string, SpanNode> children;
};

}  // namespace

struct Registry::Impl {
  // std::map keeps export order deterministic (sorted by name); values are
  // pointers so handed-out references survive rehashing-free anyway, but
  // node-based maps also never move values.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
  std::map<std::string, SpanStats, std::less<>> spans;
};

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_bounds() : std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must strictly increase");
    }
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  samples_.push_back(v);
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.empty()
             ? 0.0
             : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.empty()
             ? 0.0
             : *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0;
  for (double v : samples_) total += v;
  return total;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  double total = 0;
  for (double v : samples_) total += v;
  return total / static_cast<double>(samples_.size());
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  return metis::percentile(samples_, p);
}

std::vector<double> Histogram::percentiles(std::span<const double> ps) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> out(ps.size(), 0.0);
  if (samples_.empty()) return out;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = metis::percentile_sorted(sorted, ps[i]);
  }
  return out;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

std::vector<double> Histogram::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  samples_.clear();
}

Registry& Registry::global() {
  // Intentionally leaked: telemetry may be recorded from static teardown
  // (e.g. the shared ThreadPool's destructor), which must never race a
  // destroyed registry.
  static Registry* r = new Registry();
  return *r;
}

Registry::~Registry() { delete impl_; }

Registry::Impl* Registry::impl() {
  if (!impl_) impl_ = new Impl();
  return impl_;
}

const Registry::Impl* Registry::impl() const {
  return const_cast<Registry*>(this)->impl();
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& counters = impl()->counters;
  auto it = counters.find(name);
  if (it == counters.end()) {
    it = counters.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& gauges = impl()->gauges;
  auto it = gauges.find(name);
  if (it == gauges.end()) {
    it = gauges.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& histograms = impl()->histograms;
  auto it = histograms.find(name);
  if (it == histograms.end()) {
    it = histograms.try_emplace(std::string(name), std::move(bounds)).first;
  }
  return it->second;
}

void Registry::record_span(std::string_view path, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& spans = impl()->spans;
  auto it = spans.find(path);
  if (it == spans.end()) {
    it = spans.try_emplace(std::string(path)).first;
  }
  SpanStats& s = it->second;
  if (s.count == 0) {
    s.min_seconds = s.max_seconds = seconds;
  } else {
    s.min_seconds = std::min(s.min_seconds, seconds);
    s.max_seconds = std::max(s.max_seconds, seconds);
  }
  ++s.count;
  s.total_seconds += seconds;
}

SpanStats Registry::span(std::string_view path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto& spans = impl()->spans;
  const auto it = spans.find(path);
  return it == spans.end() ? SpanStats{} : it->second;
}

std::vector<std::string> Registry::span_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  for (const auto& [path, stats] : impl()->spans) paths.push_back(path);
  return paths;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!impl_) return;
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
  impl_->spans.clear();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  const Impl* i = impl();
  for (const auto& [name, c] : i->counters) {
    snap.counters.emplace_back(name, c.value());
  }
  for (const auto& [name, g] : i->gauges) {
    snap.gauges.emplace_back(name, g.value());
  }
  for (const auto& [name, h] : i->histograms) {
    snap.histograms.push_back({name, h.bucket_bounds(), h.samples()});
  }
  for (const auto& [path, s] : i->spans) snap.spans.emplace_back(path, s);
  return snap;
}

void Registry::restore(const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  Impl* i = impl();
  for (auto& [name, c] : i->counters) c.reset();
  for (auto& [name, g] : i->gauges) g.reset();
  for (auto& [name, h] : i->histograms) h.reset();
  i->spans.clear();
  for (const auto& [name, v] : snap.counters) {
    i->counters.try_emplace(name).first->second.add(v);
  }
  for (const auto& [name, v] : snap.gauges) {
    i->gauges.try_emplace(name).first->second.set(v);
  }
  for (const auto& image : snap.histograms) {
    // try_emplace only constructs on a miss, so an existing histogram keeps
    // its bounds; either way the bucket counts are rebuilt from the samples.
    Histogram& h =
        i->histograms.try_emplace(image.name, image.bounds).first->second;
    for (double v : image.samples) h.observe(v);
  }
  for (const auto& [path, stats] : snap.spans) i->spans[path] = stats;
}

namespace {

void write_span_node(std::ostream& os, const std::string& name,
                     const SpanNode& node) {
  os << "{\"name\":";
  write_escaped(os, name);
  os << ",\"count\":" << node.stats.count << ",\"total_ms\":";
  write_number(os, node.stats.total_seconds * 1e3);
  os << ",\"mean_ms\":";
  write_number(os, node.stats.count
                            ? node.stats.total_seconds * 1e3 /
                                  static_cast<double>(node.stats.count)
                            : 0.0);
  os << ",\"min_ms\":";
  write_number(os, node.stats.min_seconds * 1e3);
  os << ",\"max_ms\":";
  write_number(os, node.stats.max_seconds * 1e3);
  os << ",\"children\":[";
  bool first = true;
  for (const auto& [child_name, child] : node.children) {
    if (!first) os << ',';
    first = false;
    write_span_node(os, child_name, child);
  }
  os << "]}";
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Impl* i = impl();
  os << "{\"telemetry\":true,\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : i->counters) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : i->gauges) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':';
    write_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : i->histograms) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ":{\"count\":" << h.count() << ",\"min\":";
    write_number(os, h.min());
    os << ",\"max\":";
    write_number(os, h.max());
    os << ",\"mean\":";
    write_number(os, h.mean());
    static constexpr double kExportPcts[] = {50, 90, 95, 99};
    const std::vector<double> pct = h.percentiles(kExportPcts);
    os << ",\"p50\":";
    write_number(os, pct[0]);
    os << ",\"p90\":";
    write_number(os, pct[1]);
    os << ",\"p95\":";
    write_number(os, pct[2]);
    os << ",\"p99\":";
    write_number(os, pct[3]);
    os << ",\"buckets\":[";
    const auto& bounds = h.bucket_bounds();
    const auto counts = h.bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (b) os << ',';
      os << "{\"le\":";
      if (b < bounds.size()) {
        write_number(os, bounds[b]);
      } else {
        os << "null";  // overflow bucket
      }
      os << ",\"count\":" << counts[b] << '}';
    }
    os << "]}";
  }
  os << "},\"spans\":[";
  // Rebuild the nested tree from the flat slash-joined paths.
  SpanNode root;
  for (const auto& [path, stats] : i->spans) {
    SpanNode* node = &root;
    std::size_t begin = 0;
    while (begin <= path.size()) {
      const std::size_t end = path.find('/', begin);
      const std::string component =
          path.substr(begin, end == std::string::npos ? end : end - begin);
      node = &node->children[component];
      if (end == std::string::npos) break;
      begin = end + 1;
    }
    node->stats = stats;
  }
  first = true;
  for (const auto& [name, node] : root.children) {
    if (!first) os << ',';
    first = false;
    write_span_node(os, name, node);
  }
  os << "]}";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string Registry::to_table() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(mu_);
  const Impl* i = impl();
  if (!i->counters.empty()) {
    TablePrinter t({"counter", "value"});
    for (const auto& [name, c] : i->counters) {
      t.add_row({name, static_cast<long long>(c.value())});
    }
    out << t.to_string() << '\n';
  }
  if (!i->gauges.empty()) {
    TablePrinter t({"gauge", "value"});
    for (const auto& [name, g] : i->gauges) t.add_row({name, g.value()});
    out << t.to_string() << '\n';
  }
  if (!i->histograms.empty()) {
    TablePrinter t({"histogram", "count", "mean", "p50", "p95", "max"});
    static constexpr double kTablePcts[] = {50, 95};
    for (const auto& [name, h] : i->histograms) {
      const std::vector<double> pct = h.percentiles(kTablePcts);
      t.add_row({name, static_cast<long long>(h.count()), h.mean(), pct[0],
                 pct[1], h.max()});
    }
    out << t.to_string() << '\n';
  }
  if (!i->spans.empty()) {
    TablePrinter t({"span", "count", "total ms", "mean ms", "min ms",
                    "max ms"});
    for (const auto& [path, s] : i->spans) {
      t.add_row({path, static_cast<long long>(s.count), s.total_seconds * 1e3,
                 s.count ? s.total_seconds * 1e3 / static_cast<double>(s.count)
                         : 0.0,
                 s.min_seconds * 1e3, s.max_seconds * 1e3});
    }
    out << t.to_string() << '\n';
  }
  if (out.str().empty()) out << "(no telemetry recorded)\n";
  return out.str();
}

ScopedSpan::ScopedSpan(std::string_view name)
    : parent_length_(tls_span_path.size()) {
  if (!tls_span_path.empty()) tls_span_path.push_back('/');
  tls_span_path.append(name);
}

ScopedSpan::~ScopedSpan() {
  Registry::global().record_span(tls_span_path, timer_.seconds());
  tls_span_path.resize(parent_length_);
}

#else  // !METIS_TELEMETRY_ENABLED

void Registry::write_json(std::ostream& os) const {
  os << "{\"telemetry\":false}";
}

#endif  // METIS_TELEMETRY_ENABLED

}  // namespace metis::telemetry
