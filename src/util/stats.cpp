#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metis {

Summary summarize(std::span<const double> values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.summary();
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of range");
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  // Bessel-corrected sample variance: the benches feed this with small
  // trial counts (n = 2..5), where dividing by n biases stddev low.
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Summary Accumulator::summary() const {
  Summary s;
  s.count = n_;
  s.min = min_;
  s.max = max_;
  s.mean = mean();
  s.stddev = stddev();
  s.sum = sum_;
  return s;
}

}  // namespace metis
