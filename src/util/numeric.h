// Numerical-correctness policy: every tolerance the LP/MIP pipeline and the
// algorithm layers use, named, documented, and in one place.
//
// Why a single header: the profit guarantees of the paper only hold when the
// solver stack is numerically trustworthy, and a trustworthy stack cannot be
// assembled from ~20 ad-hoc magic epsilons that disagree with each other.
// Every comparison against "numerically zero" in src/lp/ and src/core/ must
// route through one of the named constants below (a `numeric`-labeled ctest
// greps for stray inline epsilons).  The table is documented for humans in
// DESIGN.md §"Numerical contract".
//
// Two regimes:
//  * Working tolerances (kFeasTol, kPivotTol, kSingularTol) — what the
//    simplex uses internally while pivoting.  Tight, because slack here
//    compounds over thousands of pivots.
//  * Checking tolerances (kOptTol, kIntegralityTol) — what callers and
//    certificates use to accept a finished answer.  Deliberately coarser
//    than the working tolerances: a solver must not claim more precision
//    than it maintains.
//
// Scale awareness: an absolute epsilon that is safe at loads of O(1) units
// silently mis-scales at O(1e6) units (the ROADMAP's "millions of users"
// regime).  Comparisons against quantities whose magnitude grows with the
// instance must use the relative helpers (approx_le & friends) with the
// natural scale of the comparison — e.g. a capacity check passes the
// capacity itself as `scale`.  Quantities that are *by construction* O(1)
// (LP reduced costs after equilibration, probabilities, per-unit rates) may
// use the constants absolutely.
#pragma once

#include <algorithm>
#include <cmath>

namespace metis::num {

/// Primal feasibility / reduced-cost working tolerance of the simplex
/// (SimplexOptions::tol).  Also the Harris ratio test's bound-expansion
/// budget: basic variables may transiently violate a bound by up to this
/// much (times scale) in exchange for larger, safer pivots.
inline constexpr double kFeasTol = 1e-7;

/// Optimality / acceptance tolerance: objective agreement between two
/// solvers, dual-certificate slack, warm-start bound acceptance, phase-1
/// residual infeasibility, and `LinearProblem::is_feasible`'s default.
/// Coarser than kFeasTol by design (see header comment).
inline constexpr double kOptTol = 1e-6;

/// Pivot magnitude below which a column is rejected as numerically unsafe
/// and the ratio test must look elsewhere (SimplexOptions::pivot_tol).
/// Also the presolve fixing threshold: bounds closer than this are a fix.
inline constexpr double kPivotTol = 1e-9;

/// LU elimination pivot below which the basis is declared singular and the
/// factorization fails (triggering a cold restart from the slack basis).
inline constexpr double kSingularTol = 1e-12;

/// Distance from the nearest integer at which a value still counts as
/// integral (MipOptions::integrality_tol, rounding heuristics).
inline constexpr double kIntegralityTol = 1e-6;

/// Ceiling backoff for charged bandwidth units: ceil(peak - kCeilGuard), so
/// a numerically-exact integer peak (1.0000000001 from float accumulation
/// of exact-looking rates) is not overcharged by one unit.  The single
/// source of truth for this guard — core::charged_units, the TAA/Amoeba
/// capacity fit checks and the EcoFlow baseline all share it, so no two
/// layers can disagree on the charged units of the same peak.
inline constexpr double kCeilGuard = 1e-9;

/// Strict-improvement margin for greedy/local-search heuristics comparing
/// money-valued objectives (Metis prune/reroute, MAA's alpha floor): a move
/// must beat the status quo by more than this to be taken, which keeps the
/// fixed-point loops from oscillating on round-off.
inline constexpr double kImproveTol = 1e-9;

/// Strict-improvement margin for branch & bound incumbent updates and
/// dominance pruning.  Much tighter than kImproveTol: an incumbent update
/// is bookkeeping (no oscillation risk), and a loose margin here would
/// discard genuinely better solutions on near-tied instances.
inline constexpr double kIncumbentTol = 1e-12;

/// Tie margin of the TAA derandomized walk: a candidate must lower the
/// pessimistic estimator by more than this to displace an earlier one, so
/// equal-estimate candidates resolve to the lowest index deterministically.
inline constexpr double kTieTol = 1e-15;

/// Bisection convergence tolerance (relative) and domain margin for the
/// Chernoff-bound root finders.
inline constexpr double kBisectTol = 1e-12;

/// Floor for logarithm arguments: exp(-700) underflows to 0 and log(0) is
/// -inf; probabilities are clamped here first (core/estimator.cpp).
inline constexpr double kTinyFloor = 1e-300;

/// max(1, |scale|): the relative-comparison denominator.  Using max with 1
/// keeps the helpers absolute near the origin and relative for large
/// magnitudes, which is the standard mixed absolute/relative test.
inline double rel_scale(double scale) { return std::max(1.0, std::abs(scale)); }

/// a <= b, allowing slack `tol * max(1, |scale|)`.  Pass the natural
/// magnitude of the comparison as `scale` (e.g. the capacity in a
/// load-vs-capacity check); defaults keep the historical absolute check.
inline bool approx_le(double a, double b, double scale = 1.0,
                      double tol = kFeasTol) {
  return a <= b + tol * rel_scale(scale);
}

/// a >= b within `tol * max(1, |scale|)`.
inline bool approx_ge(double a, double b, double scale = 1.0,
                      double tol = kFeasTol) {
  return a >= b - tol * rel_scale(scale);
}

/// |a - b| <= tol * max(1, |scale|).
inline bool approx_eq(double a, double b, double scale = 1.0,
                      double tol = kFeasTol) {
  return std::abs(a - b) <= tol * rel_scale(scale);
}

/// a < b by a margin that survives round-off: the strict counterpart of
/// approx_ge (definitely_lt(a,b) == !approx_ge(a,b)).
inline bool definitely_lt(double a, double b, double scale = 1.0,
                          double tol = kFeasTol) {
  return a < b - tol * rel_scale(scale);
}

}  // namespace metis::num
