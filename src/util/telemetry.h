// Process-wide telemetry: a thread-safe metrics registry (counters, gauges,
// fixed-bucket histograms with exact percentile queries) plus RAII trace
// spans with parent-child nesting, exportable as JSON and as an aligned text
// table.
//
// This is the one home for every wall-clock measurement and work counter in
// the repo — it subsumes the hand-rolled `steady_clock` snippets that used
// to live in simplex.cpp, mip.cpp, the simulator, the experiment sweeps and
// the bench drivers.  The span taxonomy (which layer opens which span, and
// how paths nest) is documented in DESIGN.md §5 and docs/ALGORITHMS.md §8.
//
// Concurrency contract:
//   * Counter/Gauge updates are lock-free atomics; Histogram::observe and
//     span recording take a short registry/value lock.  All are safe to
//     call from ThreadPool workers concurrently.
//   * Handles returned by Registry::{counter,gauge,histogram} stay valid
//     for the process lifetime; Registry::reset() zeroes values but never
//     invalidates a handle, so call sites may cache references in function
//     local statics.
//   * Spans nest per thread: a span opened on a ThreadPool worker starts a
//     fresh root path on that worker (parallel bodies therefore record
//     counters/histograms, not spans — see util/parallel.h's determinism
//     contract for why bodies must not depend on the calling context).
//
// Compile-out: configure with -DMETIS_TELEMETRY=OFF and every registry and
// span operation becomes an empty inline stub (zero overhead, zero
// branches); Stopwatch — plain monotonic timing with no global state —
// stays available in both modes because time limits (lp/mip.cpp) and
// reported wall-clock columns need it regardless.  Profit/cost outputs are
// identical in both modes: telemetry only observes, it never steers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(METIS_TELEMETRY_DISABLED)
#define METIS_TELEMETRY_ENABLED 0
#else
#define METIS_TELEMETRY_ENABLED 1
#endif

namespace metis::telemetry {

/// True when the registry/span machinery is compiled in.
constexpr bool enabled() { return METIS_TELEMETRY_ENABLED != 0; }

/// Monotonic wall-clock stopwatch.  Always available (even with telemetry
/// compiled out): this is the single sanctioned `steady_clock` wrapper.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ms() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Aggregate of one span path (all completed spans with the same nesting).
struct SpanStats {
  std::uint64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;

  bool operator==(const SpanStats&) const = default;
};

/// Point-in-time image of the whole registry, produced by
/// Registry::snapshot() and reloadable with Registry::restore().  This is
/// what the persistence layer (src/persist/) writes into a checkpoint so a
/// restored run's decision counters continue from the values the
/// interrupted run had accumulated.  Plain data, defined in both telemetry
/// modes (an OFF-mode snapshot is simply empty).
struct MetricsSnapshot {
  struct HistogramImage {
    std::string name;
    std::vector<double> bounds;   ///< bucket edges (never empty)
    std::vector<double> samples;  ///< raw samples in observation order
  };
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramImage> histograms;
  std::vector<std::pair<std::string, SpanStats>> spans;
};

#if METIS_TELEMETRY_ENABLED

/// Monotonically increasing event count (lock-free).
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value metric (lock-free).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram that also retains every sample, so bucket counts
/// are cheap to display while percentile queries stay exact
/// (metis::percentile over the raw sample, not a bucket interpolation).
class Histogram {
 public:
  /// `bounds` are inclusive upper bucket edges, strictly increasing; one
  /// implicit overflow bucket follows the last edge.  Empty bounds select
  /// the default decade/half-decade grid (0.1 .. 10000, for millisecond
  /// style data).
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double v);

  std::size_t count() const;
  double min() const;
  double max() const;
  double mean() const;
  double sum() const;
  /// Exact linear-interpolation percentile of everything observed, p in
  /// [0, 100]; returns 0 when empty.
  double percentile(double p) const;
  /// Batched percentile queries: one result per entry of `ps`, identical to
  /// calling percentile() per entry but with a single lock acquisition and
  /// a single sort of the sample — the exporters ask for four percentiles
  /// per histogram, which used to cost four lock/sort rounds each.
  std::vector<double> percentiles(std::span<const double> ps) const;
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Bucket counts, size bounds.size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Copy of the raw samples in observation order (per thread arrival).
  std::vector<double> samples() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::vector<double> samples_;
};

/// The process-wide metric store.  All members are thread-safe.
class Registry {
 public:
  /// The global registry (never destroyed: safe to record into from static
  /// destructors such as ThreadPool::shared()'s teardown).
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Returns the named metric, creating it on first use.  The reference
  /// stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  /// Folds one completed span occurrence into the aggregate for `path`
  /// (ScopedSpan calls this; tests may call it directly).
  void record_span(std::string_view path, double seconds);
  /// Aggregate for one exact span path ("metis/maa/lp_solve"); zeroed
  /// SpanStats when the path has never completed.
  SpanStats span(std::string_view path) const;
  /// All span paths seen so far, sorted.
  std::vector<std::string> span_paths() const;

  /// Zeroes every counter/gauge/histogram and drops span aggregates.
  /// Handles remain valid.
  void reset();

  /// Copies every metric's current value (histograms keep their raw
  /// samples, spans their aggregates) into a restorable image.
  MetricsSnapshot snapshot() const;
  /// Resets the registry, then reloads it from `snap` (histogram bucket
  /// counts are recomputed by replaying the samples).  Handles stay valid;
  /// metrics absent from `snap` read zero afterwards.
  void restore(const MetricsSnapshot& snap);

  /// JSON export: {"telemetry":true,"counters":{...},"gauges":{...},
  /// "histograms":{...},"spans":[...nested tree...]}.  Deterministic key
  /// order (sorted names).  Never emits NaN/Inf (clamped to null).
  void write_json(std::ostream& os) const;
  std::string to_json() const;

  /// Aligned text tables (one block per metric kind), for humans.
  std::string to_table() const;

 private:
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
  mutable std::mutex mu_;
  // Pointer-pimpl keeps <map> and friends out of this widely-included
  // header; allocated on first use, freed in ~Registry.
  Impl* impl_ = nullptr;
};

/// RAII trace span.  Opening a span pushes `name` (one path component, no
/// '/') onto the current thread's span path; destruction pops it and folds
/// the elapsed time into Registry::global() under the full nested path,
/// e.g. ScopedSpan("metis") { ScopedSpan("maa") } records "metis/maa".
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Elapsed time so far (the recorded value once destroyed).
  double seconds() const { return timer_.seconds(); }

 private:
  Stopwatch timer_;
  std::size_t parent_length_;  ///< thread path length to restore on close
};

// ---- convenience free functions on the global registry -------------------

inline void count(std::string_view name, std::int64_t delta = 1) {
  Registry::global().counter(name).add(delta);
}
inline void gauge_set(std::string_view name, double v) {
  Registry::global().gauge(name).set(v);
}
inline void observe(std::string_view name, double v) {
  Registry::global().histogram(name).observe(v);
}

#else  // !METIS_TELEMETRY_ENABLED — zero-cost stubs with the same API.

class Counter {
 public:
  void add(std::int64_t = 1) {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  double value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}) {}
  void observe(double) {}
  std::size_t count() const { return 0; }
  double min() const { return 0; }
  double max() const { return 0; }
  double mean() const { return 0; }
  double sum() const { return 0; }
  double percentile(double) const { return 0; }
  std::vector<double> percentiles(std::span<const double> ps) const {
    return std::vector<double>(ps.size(), 0.0);
  }
  const std::vector<double>& bucket_bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  std::vector<std::uint64_t> bucket_counts() const { return {}; }
  std::vector<double> samples() const { return {}; }
  void reset() {}
};

class Registry {
 public:
  static Registry& global() {
    static Registry r;
    return r;
  }
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view, std::vector<double> = {}) {
    return histogram_;
  }
  void record_span(std::string_view, double) {}
  SpanStats span(std::string_view) const { return {}; }
  std::vector<std::string> span_paths() const { return {}; }
  void reset() {}
  MetricsSnapshot snapshot() const { return {}; }
  void restore(const MetricsSnapshot&) {}
  void write_json(std::ostream& os) const;
  std::string to_json() const { return "{\"telemetry\":false}"; }
  std::string to_table() const { return "(telemetry compiled out)\n"; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  double seconds() const { return 0; }
};

inline void count(std::string_view, std::int64_t = 1) {}
inline void gauge_set(std::string_view, double) {}
inline void observe(std::string_view, double) {}

#endif  // METIS_TELEMETRY_ENABLED

/// Statement macro for the common case; compiles to nothing when telemetry
/// is off.  `name` must be a single path component (no '/').
#if METIS_TELEMETRY_ENABLED
#define METIS_TELEMETRY_CONCAT_INNER(a, b) a##b
#define METIS_TELEMETRY_CONCAT(a, b) METIS_TELEMETRY_CONCAT_INNER(a, b)
#define METIS_SPAN(name)                  \
  ::metis::telemetry::ScopedSpan METIS_TELEMETRY_CONCAT(metis_span_, \
                                                        __LINE__)(name)
#else
#define METIS_SPAN(name) ((void)0)
#endif

}  // namespace metis::telemetry
