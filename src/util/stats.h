// Summary statistics used throughout evaluation harnesses and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace metis {

/// Aggregate statistics of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (Bessel, n-1; 0 for n<2)
  double sum = 0;
};

/// Computes summary statistics.  An empty sample yields a zeroed Summary.
Summary summarize(std::span<const double> values);

/// Linear-interpolation percentile, p in [0,100].  Requires non-empty input.
double percentile(std::span<const double> values, double p);

/// Same interpolation over input that is ALREADY sorted ascending (not
/// checked).  Lets callers answering several percentile queries over one
/// sample sort once instead of once per query.
double percentile_sorted(std::span<const double> sorted, double p);

/// Incremental mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (Bessel, n-1; 0 for n<2)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  Summary summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

}  // namespace metis
