// Binary serialization primitives for the persistence layer (src/persist/):
// explicit little-endian byte packing, bounds-checked reads, CRC-32 and a
// 64-bit FNV-1a fingerprint.
//
// Everything here is byte-deterministic: the same values always encode to
// the same bytes on every platform (no struct memcpy, no host endianness,
// no padding).  Doubles round-trip through their IEEE-754 bit pattern, so
// a decode(encode(x)) is the identical double — the property the
// kill/restore byte-identity contract rests on.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace metis::serialize {

/// Thrown by ByteReader on any malformed input: truncation, an
/// out-of-range length prefix, trailing bytes.  The message carries the
/// byte offset at which decoding failed.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Appends primitives to a byte buffer in canonical little-endian order.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed (u64) byte string.
  void str(std::string_view s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  /// Raw bytes, no length prefix (the caller owns framing).
  void raw(const std::uint8_t* data, std::size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Decodes a byte buffer written by ByteWriter.  Every read is
/// bounds-checked; a short buffer throws SerializeError instead of reading
/// past the end.  `context` tags error messages ("checkpoint section 3").
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size,
             std::string context = "buffer")
      : data_(data), size_(size), context_(std::move(context)) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes,
                      std::string context = "buffer")
      : ByteReader(bytes.data(), bytes.size(), std::move(context)) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail("boolean byte is " + std::to_string(v));
    return v != 0;
  }
  std::string str() {
    const std::uint64_t n = length(u64());
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Validates a length prefix against the bytes actually remaining, so a
  /// corrupted prefix can never trigger a huge allocation.
  std::uint64_t length(std::uint64_t n) {
    if (n > remaining()) {
      fail("length prefix " + std::to_string(n) + " exceeds the " +
           std::to_string(remaining()) + " bytes remaining");
    }
    return n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == size_; }
  /// Call once decoding is complete: trailing bytes are corruption too.
  void expect_done() {
    if (!done()) {
      fail(std::to_string(remaining()) + " unexpected trailing bytes");
    }
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw SerializeError(context_ + " at byte " + std::to_string(pos_) + ": " +
                         message);
  }

 private:
  void need(std::size_t n) {
    if (size_ - pos_ < n) {
      fail("truncated: need " + std::to_string(n) + " bytes, have " +
           std::to_string(size_ - pos_));
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).  crc32("123456789")
/// == 0xCBF43926 — the standard check vector, asserted in test_persist.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// 64-bit FNV-1a running fingerprint: order-sensitive hash of a value
/// sequence, used to stamp a checkpoint with the configuration it was taken
/// under (a resume with a different config must be rejected, not replayed).
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ULL;
    }
    return *this;
  }
  Fingerprint& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Fingerprint& mix(int v) { return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  Fingerprint& mix(bool v) { return mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
  Fingerprint& mix(double v) { return mix(std::bit_cast<std::uint64_t>(v)); }
  Fingerprint& mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ULL;
    }
    return *this;
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

}  // namespace metis::serialize
