// Minimal command-line flag parsing for the example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags raise an error so typos are caught immediately.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace metis {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Declares a flag with a default; returns the parsed (or default) value.
  std::string get(const std::string& name, const std::string& default_value);
  int get_int(const std::string& name, int default_value);
  double get_double(const std::string& name, double default_value);
  bool get_bool(const std::string& name, bool default_value);

  /// True if --help / -h was passed.
  bool help_requested() const { return help_; }

  /// After all get*() declarations: throws std::invalid_argument if the
  /// command line contained flags that were never declared.
  void finish() const;

  /// Renders declared flags and their defaults (for --help output).
  std::string usage(const std::string& program_description) const;

 private:
  std::map<std::string, std::string> values_;     // parsed from argv
  mutable std::map<std::string, bool> consumed_;  // flags declared via get*
  std::vector<std::pair<std::string, std::string>> declared_;  // name, default
  bool help_ = false;
};

}  // namespace metis
