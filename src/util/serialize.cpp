#include "util/serialize.h"

#include <array>

namespace metis::serialize {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace metis::serialize
