#include "util/args.h"

#include <sstream>
#include <stdexcept>

namespace metis {

ArgParser::ArgParser(int argc, const char* const* argv) {
  // Repeating a flag is rejected rather than last-wins: a sweep script that
  // appends `--seed 2` to a template already containing `--seed 1` should
  // fail loudly, not silently drop half its configuration.
  const auto store = [this](const std::string& name, std::string value) {
    if (name.empty()) {
      throw std::invalid_argument("empty flag name: --" + (value.empty() ? "" : "=" + value));
    }
    if (!values_.emplace(name, std::move(value)).second) {
      throw std::invalid_argument("duplicate flag: --" + name);
    }
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      store(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      store(arg, argv[++i]);
    } else {
      store(arg, "true");  // boolean switch
    }
  }
}

std::string ArgParser::get(const std::string& name, const std::string& default_value) {
  // A flag read twice (e.g. once to branch, once to print) is still listed
  // once in usage().
  if (!consumed_.count(name)) declared_.emplace_back(name, default_value);
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int ArgParser::get_int(const std::string& name, int default_value) {
  const std::string raw = get(name, std::to_string(default_value));
  try {
    // std::stoi alone stops at the first non-digit ("4x" -> 4), silently
    // accepting a typo'd flag value; require the whole token to parse.
    std::size_t pos = 0;
    const int value = std::stoi(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got: " + raw);
  }
}

double ArgParser::get_double(const std::string& name, double default_value) {
  const std::string raw = get(name, std::to_string(default_value));
  try {
    std::size_t pos = 0;
    const double value = std::stod(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got: " + raw);
  }
}

bool ArgParser::get_bool(const std::string& name, bool default_value) {
  const std::string raw = get(name, default_value ? "true" : "false");
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got: " + raw);
}

void ArgParser::finish() const {
  for (const auto& [name, _] : values_) {
    if (!consumed_.count(name)) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
  }
}

std::string ArgParser::usage(const std::string& program_description) const {
  std::ostringstream os;
  os << program_description << "\n\nFlags:\n";
  for (const auto& [name, def] : declared_) {
    os << "  --" << name << " (default: " << def << ")\n";
  }
  return os.str();
}

}  // namespace metis
