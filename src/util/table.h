// Plain-text table and CSV rendering for benchmark/experiment output.
//
// Every figure-reproduction bench prints its series through TablePrinter so
// that the output format is uniform and machine-parsable (`--csv`-like dumps
// via to_csv()).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace metis {

/// A cell is either text or a number (formatted with fixed precision).
using Cell = std::variant<std::string, double, long long>;

class TablePrinter {
 public:
  /// `precision` controls how double cells are formatted.
  explicit TablePrinter(std::vector<std::string> headers, int precision = 3);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  std::size_t rows() const { return rows_.size(); }

  /// Renders an aligned ASCII table.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Convenience: prints to_string() to the stream with a trailing newline.
  void print(std::ostream& os) const;

 private:
  std::string format(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace metis
