// Deterministic random number generation helpers.
//
// All stochastic components of the library (workload generation, randomized
// rounding in MAA, ...) draw from an explicitly seeded Rng so that every
// experiment and test is reproducible from a single integer seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace metis {

/// A thin wrapper around std::mt19937_64 with convenience draws.
///
/// The wrapper exists so that (a) every component takes the same engine type,
/// (b) seeding is explicit and mandatory, and (c) common distributions used
/// across the library live in one audited place.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson draw with the given mean (mean > 0).
  int poisson(double mean);

  /// Exponential draw with the given rate (rate > 0).
  double exponential(double rate);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero.  Requires at least one
  /// strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Splits off an independently seeded child generator.  Used to give each
  /// experiment repetition its own stream.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace metis
