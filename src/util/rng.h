// Deterministic random number generation helpers.
//
// All stochastic components of the library (workload generation, randomized
// rounding in MAA, ...) draw from an explicitly seeded Rng so that every
// experiment and test is reproducible from a single integer seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace metis {

/// Smallest weight `weighted_pick`'s floating-point-slack fallback may
/// return: an LP residual like 1e-300 is numerically "zero" and must never
/// win a path selection just because the cumulative sum fell short of the
/// drawn value by one ulp.
inline constexpr double kMinSamplingWeight = 1e-12;

/// Inverse-CDF pick: the first index i with draw < sum of the (clamped
/// non-negative) weights[0..i].  When floating-point slack pushes `draw` at
/// or past the total, falls back to the last weight above
/// kMinSamplingWeight — or, if every weight is below the floor, the largest
/// weight's index.  Pure function of (weights, draw); exposed separately
/// from Rng so the fallback is directly testable.
std::size_t weighted_pick(std::span<const double> weights, double draw);

/// A thin wrapper around std::mt19937_64 with convenience draws.
///
/// The wrapper exists so that (a) every component takes the same engine type,
/// (b) seeding is explicit and mandatory, and (c) common distributions used
/// across the library live in one audited place.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson draw with the given mean (mean > 0).
  int poisson(double mean);

  /// Exponential draw with the given rate (rate > 0).
  double exponential(double rate);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero.  Requires at least one
  /// strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// SplitMix64 finalizer: the seed-derivation mix shared by split() and
  /// fork().  Bijective with full avalanche, so derived seeds are
  /// decorrelated even for adjacent inputs.
  static std::uint64_t mix(std::uint64_t x);

  /// Child stream addressed by `stream_id`, derived from this generator's
  /// *seed* only — never from its draw position.  split(i) therefore yields
  /// the same stream no matter how many draws the parent has consumed, which
  /// thread evaluates it, or in what order streams are requested: the
  /// index-addressed substrate of every parallel trial loop.
  Rng split(std::uint64_t stream_id) const;

  /// Splits off an independently seeded child generator, advancing this
  /// generator by one draw.  The raw engine draw is passed through the
  /// SplitMix64 mix — seeding a child mt19937_64 directly from a parent
  /// output produces measurably correlated streams.  Used to give each
  /// experiment repetition its own stream when sequential (stateful)
  /// semantics are wanted; prefer split() for index-addressed loops.
  Rng fork();

  /// The seed this generator was constructed with (stable; split() keys
  /// child derivation off it).
  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace metis
