// Minimal JSON writing helpers: the one escaped-string-safe implementation
// shared by the telemetry exporter, the bench baseline writers and the
// persist layer's debug dump.  Each of those used to carry its own ad-hoc
// writer; only telemetry's escaped control characters, so a bench label
// containing a quote produced invalid JSON.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace metis::json {

/// Writes `s` as a quoted JSON string, escaping quotes, backslashes and
/// control characters.
void write_escaped(std::ostream& os, std::string_view s);

/// `s` as a quoted JSON string literal.
std::string escaped(std::string_view s);

/// Writes a double round-trip exact (%.17g); non-finite values become null
/// (JSON has no NaN/Inf).
void write_number(std::ostream& os, double v);

}  // namespace metis::json
