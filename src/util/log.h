// Tiny leveled logger.  Default level is Warn so library code stays quiet in
// tests and benches; examples raise it to Info for narration.
#pragma once

#include <sstream>
#include <string>

namespace metis {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` to stderr if `level` passes the global threshold.
void log_message(LogLevel level, const std::string& message);

namespace internal {
/// Stream-style helper: LogLine(LogLevel::Info) << "x=" << x; emits on
/// destruction.  Construct it only behind a level check — the METIS_LOG
/// macro below gates at the call site so a filtered line never builds the
/// ostringstream or evaluates its stream operands.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// `voidify & stream-chain` turns the chain into a void expression so both
/// ternary branches in METIS_LOG agree; & binds looser than <<, so every
/// stream operand attaches to the LogLine first.
struct LogVoidify {
  void operator&(const LogLine&) {}
};
}  // namespace internal

/// Filtered lines short-circuit before the LogLine exists: no stream is
/// constructed and no operand expression is evaluated (a METIS_LOG_DEBUG in
/// a hot loop costs one atomic load when Debug is off).
#define METIS_LOG(level)                                              \
  (static_cast<int>(level) < static_cast<int>(::metis::log_level()))  \
      ? (void)0                                                       \
      : ::metis::internal::LogVoidify() & ::metis::internal::LogLine(level)
#define METIS_LOG_INFO METIS_LOG(::metis::LogLevel::Info)
#define METIS_LOG_WARN METIS_LOG(::metis::LogLevel::Warn)
#define METIS_LOG_DEBUG METIS_LOG(::metis::LogLevel::Debug)

}  // namespace metis
