// Tiny leveled logger.  Default level is Warn so library code stays quiet in
// tests and benches; examples raise it to Info for narration.
#pragma once

#include <sstream>
#include <string>

namespace metis {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` to stderr if `level` passes the global threshold.
void log_message(LogLevel level, const std::string& message);

namespace internal {
/// Stream-style helper: LogLine(LogLevel::Info) << "x=" << x; emits on
/// destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define METIS_LOG(level) ::metis::internal::LogLine(level)
#define METIS_LOG_INFO METIS_LOG(::metis::LogLevel::Info)
#define METIS_LOG_WARN METIS_LOG(::metis::LogLevel::Warn)
#define METIS_LOG_DEBUG METIS_LOG(::metis::LogLevel::Debug)

}  // namespace metis
