#include "util/rng.h"

#include <algorithm>
#include <numeric>

namespace metis {

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

int Rng::poisson(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::poisson: mean <= 0");
  return std::poisson_distribution<int>(mean)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

std::size_t weighted_pick(std::span<const double> weights, double draw) {
  if (weights.empty()) {
    throw std::invalid_argument("weighted_pick: empty weights");
  }
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(weights[i], 0.0);
    if (draw < acc) return i;
  }
  // Floating-point slack pushed `draw` to (or past) the total.  Fall back to
  // the last weight that is meaningfully positive — a bare `> 0` here would
  // let an LP residual like 1e-300 win the selection.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > kMinSamplingWeight) return i;
  }
  // Every weight is below the floor: the largest one is the only defensible
  // pick (ties resolve to the lowest index for determinism).
  std::size_t best = 0;
  for (std::size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] > weights[best]) best = i;
  }
  return best;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0) {
    throw std::invalid_argument("Rng::weighted_index: no positive weight");
  }
  return weighted_pick(weights, uniform(0.0, total));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::uint64_t Rng::mix(std::uint64_t x) {
  // SplitMix64 finalizer (Steele, Lea & Flood 2014).
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::split(std::uint64_t stream_id) const {
  return Rng(mix(seed_ ^ mix(stream_id)));
}

Rng Rng::fork() { return Rng(mix(engine_())); }

}  // namespace metis
