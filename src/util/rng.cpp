#include "util/rng.h"

#include <algorithm>
#include <numeric>

namespace metis {

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

int Rng::poisson(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::poisson: mean <= 0");
  return std::poisson_distribution<int>(mean)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0) {
    throw std::invalid_argument("Rng::weighted_index: no positive weight");
  }
  double draw = uniform(0.0, total);
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(weights[i], 0.0);
    if (draw < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace metis
