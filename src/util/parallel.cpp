#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/telemetry.h"

namespace metis {

namespace {

/// True on any thread currently executing inside a parallel region: pool
/// workers (always) and a run() caller while it participates in its own
/// job.  Nested run() calls on such threads execute inline instead of
/// re-entering the pool, which would self-deadlock on run_mu_ (callers) or
/// starve waiting on workers that are all busy with the outer job.
thread_local bool tls_in_parallel_region = false;

}  // namespace

int resolve_threads(int threads) {
  if (threads >= 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One parallel_for invocation.  Lives on the stack of run(); `active`
/// (mutated under mu_) counts workers still touching the job, so run() can
/// only return — and destroy the job — once every worker has let go.
struct ThreadPool::Job {
  const std::function<void(int)>* body = nullptr;
  int n = 0;
  std::atomic<int> next{0};       ///< next index to claim
  std::atomic<int> remaining{0};  ///< indices not yet finished
  std::atomic<int> slots{0};      ///< worker-participation budget left
  int active = 0;                 ///< workers inside work_on (guarded by mu_)
  std::exception_ptr error;       ///< first exception (guarded by error_mu)
  std::mutex error_mu;
};

ThreadPool::ThreadPool(int threads) {
  const int total = resolve_threads(threads);
  workers_.reserve(total > 1 ? total - 1 : 0);
  for (int i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::shared() {
  // >= 2 threads even on single-core hosts: the parallel code paths must
  // stay genuinely concurrent (and TSan-exercised) on every machine.
  static ThreadPool pool(std::max(2, resolve_threads(0)));
  return pool;
}

void ThreadPool::work_on(Job& job) {
  while (true) {
    const int i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_main() {
  tls_in_parallel_region = true;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && job_->slots.load() > 0 &&
                       job_->next.load() < job_->n);
    });
    if (stop_) return;
    Job* job = job_;
    if (job->slots.fetch_sub(1) <= 0) {
      job->slots.fetch_add(1);  // lost the race for the last slot
      continue;
    }
    ++job->active;
    lock.unlock();
    work_on(*job);
    lock.lock();
    --job->active;
    done_cv_.notify_all();
  }
}

void ThreadPool::run(int n, int max_workers,
                     const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (n == 1 || max_workers <= 1 || tls_in_parallel_region ||
      workers_.empty()) {
    telemetry::count("pool.inline_runs");
    telemetry::count("pool.tasks", n);
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  telemetry::count("pool.runs");
  telemetry::count("pool.tasks", n);
  std::lock_guard<std::mutex> serialize(run_mu_);
  Job job;
  job.body = &body;
  job.n = n;
  job.remaining.store(n);
  // The caller participates too, so hand out one fewer worker slot; never
  // more slots than indices (a worker with nothing to claim just spins off).
  job.slots.store(std::min({max_workers - 1,
                            static_cast<int>(workers_.size()), n - 1}));
  // Queue depth = indices waiting at launch; workers = caller + slots.
  telemetry::gauge_set("pool.queue_depth", n);
  telemetry::gauge_set("pool.workers", job.slots.load() + 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
  }
  cv_.notify_all();
  tls_in_parallel_region = true;  // nested calls from the body run inline
  work_on(job);
  tls_in_parallel_region = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Wait until all indices finished AND every worker released the job;
    // only then is the stack-allocated Job safe to destroy.  Late wakers
    // cannot re-grab it: the wait predicate in worker_main requires
    // next < n, which is false once the index space is drained.
    done_cv_.wait(lock, [&] {
      return job.remaining.load() == 0 && job.active == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(int n, const std::function<void(int)>& body, int threads) {
  const int workers = resolve_threads(threads);
  if (n <= 0) return;
  if (workers <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool::shared().run(n, workers, body);
}

}  // namespace metis
