#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace metis::json {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string escaped(std::string_view s) {
  std::ostringstream os;
  write_escaped(os, s);
  return os.str();
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace metis::json
