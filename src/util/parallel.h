// Deterministic parallel execution for embarrassingly parallel loops.
//
// Every hot loop in the repo (MAA's best-of-N roundings, Fig. 4b's 1000
// rounding trials, the experiment sweeps, the multi-cycle simulator) has the
// same shape: N independent work items addressed by index.  This header
// provides the one substrate they all share — a work-stealing-free
// ThreadPool plus `parallel_for` / `parallel_map` — under a strict
// determinism contract:
//
//   * body(i) must depend only on i and read-only captures, never on
//     scheduling order, thread identity, or other items' results;
//   * randomness inside body(i) must come from an index-addressed stream
//     (`Rng::split(i)`), not from a shared generator;
//   * reductions over the results happen serially, in index order, after
//     the parallel section.
//
// Under that contract the output is bit-identical for every thread count
// (1, 2, 8, ...), so `threads` is purely a wall-clock knob.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace metis {

/// Resolves a `threads` option value: >= 1 is taken as-is, 0 (the default in
/// every option struct) means "all hardware threads" (at least 1).
int resolve_threads(int threads);

/// A fixed-size pool of parked worker threads.  Work-stealing-free: a run is
/// a single shared atomic index counter that caller and workers drain
/// together, so there are no per-thread deques whose steal order could leak
/// into observable behaviour.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining thread);
  /// 0 = all hardware threads.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a run can use, caller included.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, n), using at most `max_workers`
  /// threads (caller included), and blocks until every index completed.
  /// The first exception thrown by any body(i) is rethrown here (remaining
  /// indices still run).  Calls from inside a pool worker (nested
  /// parallelism) execute inline and serially — nesting is legal, never
  /// a deadlock, and never oversubscribes.
  void run(int n, int max_workers, const std::function<void(int)>& body);

  /// The process-wide pool used by parallel_for/parallel_map.  Sized to at
  /// least two threads even on single-core hosts so the concurrent code
  /// paths stay genuinely concurrent (and TSan-checkable) everywhere.
  static ThreadPool& shared();

 private:
  struct Job;

  void worker_main();
  void work_on(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       // workers wait here for a job
  std::condition_variable done_cv_;  // run() waits here for completion
  std::mutex run_mu_;                // serializes concurrent run() callers
  Job* job_ = nullptr;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, n) on the shared pool with at most `threads`
/// workers (0 = all hardware threads, 1 = strictly inline/serial).  See the
/// determinism contract at the top of this header.
void parallel_for(int n, const std::function<void(int)>& body, int threads = 0);

/// As parallel_for, but collects fn(i) into a vector indexed by i.  The
/// result is identical for every thread count; reduce it serially.
template <typename Fn>
auto parallel_map(int n, Fn&& fn, int threads = 0)
    -> std::vector<decltype(fn(0))> {
  std::vector<decltype(fn(0))> out(n > 0 ? static_cast<std::size_t>(n) : 0);
  parallel_for(
      n, [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); }, threads);
  return out;
}

}  // namespace metis
