#include "workload/generator.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "net/paths.h"

namespace metis::workload {

RequestGenerator::RequestGenerator(const net::Topology& topo, GeneratorConfig config)
    : topo_(&topo), config_(config) {
  if (config_.num_slots <= 0) {
    throw std::invalid_argument("GeneratorConfig: num_slots must be positive");
  }
  if (config_.min_rate <= 0 || config_.min_rate > config_.max_rate) {
    throw std::invalid_argument("GeneratorConfig: bad rate range");
  }
  if (config_.value_noise < 0 || config_.value_noise >= 1) {
    throw std::invalid_argument("GeneratorConfig: noise must be in [0,1)");
  }
  if (config_.low_value_fraction < 0 || config_.low_value_fraction > 1) {
    throw std::invalid_argument(
        "GeneratorConfig: low_value_fraction must be in [0,1]");
  }
  if (config_.low_value_min <= 0 ||
      config_.low_value_min > config_.low_value_max) {
    throw std::invalid_argument("GeneratorConfig: bad low-value multiplier range");
  }
  for (net::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (net::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      if (net::shortest_path(topo, s, d)) connected_pairs_.emplace_back(s, d);
    }
  }
  if (connected_pairs_.empty()) {
    throw std::invalid_argument("RequestGenerator: no connected DC pairs");
  }
}

Request RequestGenerator::sample_one(int start_slot, Rng& rng) const {
  Request r;
  const auto& pair = connected_pairs_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(connected_pairs_.size()) - 1))];
  r.src = pair.first;
  r.dst = pair.second;
  r.start_slot = start_slot;
  r.end_slot = rng.uniform_int(start_slot, config_.num_slots - 1);
  r.rate = rng.uniform(config_.min_rate, config_.max_rate);
  const double volume = r.rate * r.duration();
  const double noise =
      rng.uniform(1.0 - config_.value_noise, 1.0 + config_.value_noise);
  r.value = volume * config_.value_per_unit_slot * noise;
  if (rng.bernoulli(config_.low_value_fraction)) {
    r.value *= rng.uniform(config_.low_value_min, config_.low_value_max);
  }
  validate_request(r, topo_->num_nodes(), config_.num_slots);
  return r;
}

std::vector<Request> RequestGenerator::generate(int count, Rng& rng) const {
  if (count < 0) throw std::invalid_argument("generate: negative count");
  std::vector<Request> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.push_back(sample_one(rng.uniform_int(0, config_.num_slots - 1), rng));
  }
  return out;
}

std::vector<Request> RequestGenerator::generate_poisson(double arrivals_per_slot,
                                                        Rng& rng) const {
  if (arrivals_per_slot <= 0) {
    throw std::invalid_argument("generate_poisson: rate must be positive");
  }
  std::vector<Request> out;
  for (int slot = 0; slot < config_.num_slots; ++slot) {
    const int arrivals = rng.poisson(arrivals_per_slot);
    for (int i = 0; i < arrivals; ++i) out.push_back(sample_one(slot, rng));
  }
  return out;
}

std::vector<Request> RequestGenerator::generate_at(int start_slot, int count,
                                                   Rng& rng) const {
  if (start_slot < 0 || start_slot >= config_.num_slots) {
    throw std::invalid_argument("generate_at: start_slot out of range");
  }
  if (count < 0) throw std::invalid_argument("generate_at: negative count");
  std::vector<Request> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(sample_one(start_slot, rng));
  return out;
}

std::vector<Arrival> RequestGenerator::generate_arrivals(double arrivals_per_slot,
                                                         Rng& rng) const {
  if (arrivals_per_slot < 0) {
    throw std::invalid_argument("generate_arrivals: negative rate");
  }
  // Fork before the empty-rate early return so the caller's generator
  // advances exactly once for any rate.
  const Rng base = rng.fork();
  std::vector<Arrival> out;
  if (arrivals_per_slot == 0) return out;
  for (int slot = 0; slot < config_.num_slots; ++slot) {
    Rng slot_rng = base.split(static_cast<std::uint64_t>(slot));
    const int arrivals = slot_rng.poisson(arrivals_per_slot);
    for (int i = 0; i < arrivals; ++i) {
      Arrival a;
      a.arrival_time = slot + slot_rng.uniform(0.0, 1.0);
      a.request = sample_one(slot, slot_rng);
      out.push_back(std::move(a));
    }
  }
  // Within a slot timestamps are i.i.d. uniform, so stable_sort keeps the
  // generation order on (measure-zero) ties — fully deterministic output.
  std::stable_sort(out.begin(), out.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  return out;
}

}  // namespace metis::workload
