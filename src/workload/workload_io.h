// Plain-text serialization of request workloads.
//
// Format (lines; '#' starts a comment):
//   slots <T>
//   request <src> <dst> <start> <end> <rate> <value>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/request.h"

namespace metis::workload {

struct Workload {
  int num_slots = 12;
  std::vector<Request> requests;
};

/// Parses a workload; throws std::runtime_error on error.  Every diagnostic
/// names the source and line ("workload parse error at <source>:<line>:
/// ..."); `source` defaults to "<input>" for stream input, and
/// read_workload_file passes the file path.
Workload read_workload(std::istream& in, const std::string& source = "<input>");
Workload read_workload_file(const std::string& path);

void write_workload(std::ostream& out, const Workload& workload);
void write_workload_file(const std::string& path, const Workload& workload);

}  // namespace metis::workload
