// Synthetic request generation following Section V.A of the paper:
//
//  * arrivals follow a Poisson distribution over the 12 slots of a cycle;
//  * bandwidth requirements are uniform in [0.1, 5] Gbps = [0.01, 0.5] units;
//  * start/end slots fall randomly within the cycle;
//  * endpoints are uniform over distinct connected DC pairs;
//  * values derive from the reserved volume (rate x duration) at a unit
//    price comparable to public cloud bandwidth price lists, with market
//    noise (see DESIGN.md's substitution table).
#pragma once

#include <vector>

#include "net/topology.h"
#include "util/rng.h"
#include "workload/request.h"

namespace metis::workload {

struct GeneratorConfig {
  int num_slots = 12;
  double min_rate = 0.01;  ///< units (= 0.1 Gbps)
  double max_rate = 0.5;   ///< units (= 5 Gbps)
  /// Value per unit of rate per active slot before noise.  The default is
  /// calibrated so that a typical request is comfortably profitable on
  /// cheap links and marginal on expensive ones — the regime in which the
  /// paper's acceptance decisions are interesting.
  double value_per_unit_slot = 2.5;
  /// Multiplicative noise: value *= U(1-noise, 1+noise).
  double value_noise = 0.2;
  /// Fraction of "bargain" customers whose bids sit well below the market
  /// rate (value additionally multiplied by U(low_value_min, low_value_max)).
  /// These are the requests a profit-maximizing provider should decline;
  /// without them accepting everything is trivially optimal and Fig. 3's
  /// OPT(SPM) vs OPT(RL-SPM) gap vanishes.
  double low_value_fraction = 0.25;
  double low_value_min = 0.05;
  double low_value_max = 0.4;
};

/// One within-cycle arrival: a request plus the continuous time at which it
/// reaches the admission queue (the online pipeline's event stream).
struct Arrival {
  Request request;
  /// Arrival time in slot units, in [request.start_slot,
  /// request.start_slot + 1): a request arrives during the slot in which
  /// its reservation starts — it cannot book the past.
  double arrival_time = 0;
};

class RequestGenerator {
 public:
  /// Endpoint pairs are sampled only among pairs connected in `topo`.
  RequestGenerator(const net::Topology& topo, GeneratorConfig config);

  /// Exactly `count` requests; start slots i.i.d. uniform (a homogeneous
  /// Poisson process conditioned on its total count), end slots uniform in
  /// [start, T-1].  This is the form used when sweeping "number of
  /// requests" on the x-axis of the paper's figures.
  std::vector<Request> generate(int count, Rng& rng) const;

  /// Open-ended Poisson form: the number of arrivals in each slot is
  /// Poisson(`arrivals_per_slot`); expected total = T * arrivals_per_slot.
  std::vector<Request> generate_poisson(double arrivals_per_slot, Rng& rng) const;

  /// Within-cycle arrival stream (online admission): like generate_poisson,
  /// but each request carries a continuous arrival timestamp uniform within
  /// its start slot, and the result is sorted by arrival_time.  Each slot
  /// draws from its own index-addressed stream (`rng.fork()` then
  /// `split(slot)`), so slot s's arrivals do not depend on how many arrivals
  /// earlier slots produced, and the caller's generator advances exactly
  /// once regardless of the realized count.  `arrivals_per_slot == 0` is
  /// allowed and yields an empty stream (an idle cycle); negative throws.
  std::vector<Arrival> generate_arrivals(double arrivals_per_slot,
                                         Rng& rng) const;

  /// Exactly `count` requests all starting at `start_slot` — the shape of a
  /// demand surge (fault injection, sim/faults.h): a burst of extra bids
  /// hitting the admission queue at one point of the cycle.  End slots,
  /// rates and values follow the usual model.
  std::vector<Request> generate_at(int start_slot, int count, Rng& rng) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  Request sample_one(int start_slot, Rng& rng) const;

  const net::Topology* topo_;
  GeneratorConfig config_;
  std::vector<std::pair<net::NodeId, net::NodeId>> connected_pairs_;
};

}  // namespace metis::workload
