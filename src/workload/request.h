// Request: the paper's six-tuple {s_i, d_i, ts_i, td_i, r_i, v_i}.
//
// Rates are expressed in *bandwidth units* (1 unit = 10 Gbps, the purchase
// granularity ISPs charge in); e.g. the paper's U(0.1, 5) Gbps requirement
// becomes U(0.01, 0.5) units.  Slots are 0-based and inclusive on both ends.
#pragma once

#include <vector>

#include "net/topology.h"

namespace metis::workload {

struct Request {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  int start_slot = 0;  ///< ts_i, 0-based
  int end_slot = 0;    ///< td_i, inclusive
  double rate = 0;     ///< r_i in bandwidth units
  double value = 0;    ///< v_i, the customer's bid

  bool active_at(int slot) const {
    return slot >= start_slot && slot <= end_slot;
  }
  int duration() const { return end_slot - start_slot + 1; }
  /// r_{i,t}: the rate when active, 0 otherwise.
  double rate_at(int slot) const { return active_at(slot) ? rate : 0.0; }

  bool operator==(const Request& other) const = default;
};

/// Throws std::invalid_argument if the request is malformed with respect to
/// a topology with `num_nodes` nodes and a cycle of `num_slots` slots.
void validate_request(const Request& request, int num_nodes, int num_slots);

}  // namespace metis::workload
