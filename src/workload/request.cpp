#include "workload/request.h"

#include <stdexcept>

namespace metis::workload {

void validate_request(const Request& request, int num_nodes, int num_slots) {
  if (request.src < 0 || request.src >= num_nodes ||
      request.dst < 0 || request.dst >= num_nodes) {
    throw std::invalid_argument("request: endpoint out of range");
  }
  if (request.src == request.dst) {
    throw std::invalid_argument("request: src == dst");
  }
  if (request.start_slot < 0 || request.end_slot >= num_slots ||
      request.start_slot > request.end_slot) {
    throw std::invalid_argument("request: bad time window");
  }
  if (request.rate <= 0) throw std::invalid_argument("request: rate must be > 0");
  if (request.value < 0) throw std::invalid_argument("request: negative value");
}

}  // namespace metis::workload
