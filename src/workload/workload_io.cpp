#include "workload/workload_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace metis::workload {

namespace {
[[noreturn]] void fail_at(const std::string& source, int line,
                          const std::string& message) {
  throw std::runtime_error("workload parse error at " + source + ":" +
                           std::to_string(line) + ": " + message);
}
}  // namespace

Workload read_workload(std::istream& in, const std::string& source) {
  const auto fail = [&source](int line, const std::string& message) {
    fail_at(source, line, message);
  };
  Workload w;
  bool have_slots = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword)) continue;
    if (keyword == "slots") {
      if (have_slots) fail(line_no, "duplicate slots line");
      if (!(ss >> w.num_slots) || w.num_slots <= 0) {
        fail(line_no, "slots expects a positive count");
      }
      have_slots = true;
    } else if (keyword == "request") {
      if (!have_slots) fail(line_no, "request before slots line");
      Request r;
      if (!(ss >> r.src >> r.dst >> r.start_slot >> r.end_slot >> r.rate >>
            r.value)) {
        fail(line_no, "expected: src dst start end rate value");
      }
      if (r.start_slot < 0 || r.end_slot >= w.num_slots ||
          r.start_slot > r.end_slot || r.rate <= 0 || r.value < 0) {
        fail(line_no, "malformed request fields");
      }
      w.requests.push_back(r);
    } else {
      fail(line_no, "unknown keyword: " + keyword);
    }
  }
  if (!have_slots) {
    throw std::runtime_error("workload parse error in " + source +
                             ": no slots line");
  }
  return w;
}

Workload read_workload_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload file: " + path);
  return read_workload(in, path);
}

void write_workload(std::ostream& out, const Workload& workload) {
  // Full round-trip precision for rates and values.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "slots " << workload.num_slots << '\n';
  for (const Request& r : workload.requests) {
    out << "request " << r.src << ' ' << r.dst << ' ' << r.start_slot << ' '
        << r.end_slot << ' ' << r.rate << ' ' << r.value << '\n';
  }
}

void write_workload_file(const std::string& path, const Workload& workload) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open workload file for write: " + path);
  }
  write_workload(out, workload);
}

}  // namespace metis::workload
