// SimplexSolver: a two-phase primal simplex method for LinearProblem.
//
// Design (sparse revised simplex, sized for the LPs in this repo: up to a
// few thousand columns and ~1000 rows, very sparse — each SPM path column
// touches only its path's edge-slot rows):
//
//  * Computational standard form.  Every row gets one slack column with
//    coefficient +1 whose bounds encode the row type (LessEqual: [0, inf),
//    GreaterEqual: (-inf, 0], Equal: [0, 0]).
//  * Bounded variables.  Columns live in [l_j, u_j]; nonbasic columns rest at
//    a finite bound (or at 0 when free).  Bound flips are handled without a
//    basis change.
//  * Phase 1 with artificials.  Rows whose initial slack value falls outside
//    the slack bounds receive one artificial column; phase 1 minimizes the
//    sum of artificials.  Artificials are frozen ([0,0]) once driven out.
//  * Sparse LU basis factorization (left-looking, partial pivoting with
//    deterministic ties) with product-form eta updates per pivot; the basis
//    is refactorized every `refactor_interval` pivots to bound drift.
//    FTRAN/BTRAN run against the sparse factors, never a dense inverse.
//  * Devex partial pricing over rotating candidate windows by default
//    (PricingRule::Dantzig restores the full-scan rule), with an automatic
//    switch to Bland's rule after a run of degenerate pivots, which
//    guarantees termination under either rule.
//  * Presolve by default.  `presolve()` reductions run in front of the
//    simplex and `postsolve` lifts the reduced optimum — primal AND dual —
//    back to the caller's space.  Bypassed when `options.presolve` is off,
//    when `options.scale` is on, when a warm basis is accepted (the basis
//    refers to the full problem), and on a presolve `unbounded` verdict
//    (which assumes the remaining model is feasible; the full solve proves
//    it).
//  * Warm starts.  `solve(problem, &basis)` tries to start from a caller
//    supplied basis snapshot and writes the optimal basis back, so repeated
//    solves of same-shaped problems (Metis alternation, branch & bound
//    children) skip phase 1 and most of phase 2.  See Basis in types.h for
//    the acceptance contract; rejection silently falls back to a cold start.
//
// This module is the stand-in for the commercial LP solver (Gurobi) used by
// the paper; see DESIGN.md section 2.
#pragma once

#include "lp/problem.h"
#include "lp/types.h"
#include "util/numeric.h"

namespace metis::lp {

/// Entering-variable pricing rule of the simplex.
///
///  * Dantzig — full scan: every nonbasic column's reduced cost is
///    recomputed each iteration and the largest violation enters.  O(nnz(A))
///    per iteration, the historical behaviour.
///  * Devex — partial pricing with candidate windows: only a rotating
///    window of nonbasic columns is priced per iteration, and the entering
///    column maximizes the devex-weighted violation d_j^2 / w_j.  Reference
///    weights start at 1, follow Forrest & Goldfarb's recurrence per pivot
///    (pivot-row based; see update_devex in simplex.cpp), and reset on
///    every refactorization and on Bland-mode entry.  When no window
///    contains an attractive column the scan falls through to a full pass,
///    so optimality certification is exactly the Dantzig one.
///
/// Both rules are deterministic (ties to the smallest column index, window
/// rotation a pure function of the pivot sequence), so offline bit-identity,
/// warm/cold decision equality and thread invariance are unchanged.
enum class PricingRule { Dantzig, Devex };

/// Knobs of the sparse revised simplex.  The defaults are the production
/// configuration every solver in the repo runs with; tests flip individual
/// toggles (harris, pricing, presolve) to cross-check code paths against
/// each other.
struct SimplexOptions {
  /// 0 means automatic: 200 * (rows + cols) + 2000.
  int max_iterations = 0;
  /// Primal feasibility / reduced-cost tolerance.
  double tol = num::kFeasTol;
  /// Pivot magnitude below which a column is rejected as numerically unsafe.
  double pivot_tol = num::kPivotTol;
  /// Refactorize the basis every this many pivots.
  int refactor_interval = 100;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int bland_threshold = 64;
  /// Harris two-pass ratio test: pass 1 finds the minimum ratio with every
  /// bound expanded by the feasibility budget `tol * max(1, |bound|)`;
  /// pass 2 picks the numerically largest pivot among the candidates that
  /// fit under it (ties to the smallest basis column index).  Degenerate
  /// and near-degenerate instances get large stable pivots instead of
  /// cycling on tiny ones; transient bound violations are bounded by the
  /// expansion budget and washed out at the next refactorization.  Off
  /// falls back to the textbook smallest-ratio rule (the differential fuzz
  /// oracle cross-checks the two paths against each other).
  bool harris = true;
  /// Geometric-mean equilibration of rows and columns before solving.
  /// Opt-in: it rescues problems whose coefficients span many orders of
  /// magnitude (see test_lp_stress), but on naturally well-scaled models —
  /// including all SPM formulations in this repo — it perturbs degeneracy
  /// handling and costs several times more iterations.  The solution is
  /// unscaled transparently when enabled.
  bool scale = false;
  /// Run presolve reductions before the simplex (skipped when `scale` is
  /// on or a warm-start basis is accepted).  Postsolve restores full
  /// primal/dual vectors, so this is transparent to callers.
  bool presolve = true;
  /// Entering-variable pricing rule (see PricingRule).  Devex partial
  /// pricing is the default; Dantzig reproduces the historical full scan
  /// (the differential fuzz oracle cross-checks the two paths).
  PricingRule pricing = PricingRule::Devex;
  /// Columns per partial-pricing candidate window (devex only).  0 selects
  /// the automatic size max(64, num_cols / 8).  Small explicit windows are
  /// for tests that exercise the full-pass fallback.
  int pricing_window = 0;
};

/// The two-phase primal simplex method over LinearProblem (see the file
/// comment for the design).  Stateless apart from its options: solve() may
/// be called repeatedly and from multiple threads concurrently.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the problem.  The returned solution is in the problem's own
  /// sense (objective is the true max/min value, duals match the rows).
  /// Non-Optimal statuses return empty x/duals and objective 0.
  LpSolution solve(const LinearProblem& problem) const;

  /// Same, with basis reuse: when `basis` is non-null and holds a
  /// compatible snapshot, the solve warm-starts from it (bypassing
  /// presolve); an unusable snapshot falls back to a cold start.  On
  /// Optimal, `*basis` is overwritten with the final basis (possibly empty
  /// when no valid snapshot exists, e.g. an artificial stayed basic); on
  /// any other status it is left untouched.
  LpSolution solve(const LinearProblem& problem, Basis* basis) const;

  const SimplexOptions& options() const { return options_; }

 private:
  SimplexOptions options_;
};

}  // namespace metis::lp
