// SimplexSolver: a two-phase primal simplex method for LinearProblem.
//
// Design (classic textbook revised simplex, sized for the LPs in this repo:
// up to a few thousand columns and ~1000 rows):
//
//  * Computational standard form.  Every row gets one slack column with
//    coefficient +1 whose bounds encode the row type (LessEqual: [0, inf),
//    GreaterEqual: (-inf, 0], Equal: [0, 0]).
//  * Bounded variables.  Columns live in [l_j, u_j]; nonbasic columns rest at
//    a finite bound (or at 0 when free).  Bound flips are handled without a
//    basis change.
//  * Phase 1 with artificials.  Rows whose initial slack value falls outside
//    the slack bounds receive one artificial column; phase 1 minimizes the
//    sum of artificials.  Artificials are frozen ([0,0]) once driven out.
//  * Explicit dense basis inverse B^{-1}, updated by elementary row
//    operations per pivot and refactorized (Gauss-Jordan with partial
//    pivoting) every `refactor_interval` pivots to bound numerical drift.
//  * Dantzig pricing with an automatic switch to Bland's rule after a run of
//    degenerate pivots, which guarantees termination.
//
// This module is the stand-in for the commercial LP solver (Gurobi) used by
// the paper; see DESIGN.md section 2.
#pragma once

#include "lp/problem.h"
#include "lp/types.h"

namespace metis::lp {

struct SimplexOptions {
  /// 0 means automatic: 200 * (rows + cols) + 2000.
  int max_iterations = 0;
  /// Primal feasibility / reduced-cost tolerance.
  double tol = 1e-7;
  /// Pivot magnitude below which a column is rejected as numerically unsafe.
  double pivot_tol = 1e-9;
  /// Refactorize the basis inverse every this many pivots.
  int refactor_interval = 100;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int bland_threshold = 64;
  /// Geometric-mean equilibration of rows and columns before solving.
  /// Opt-in: it rescues problems whose coefficients span many orders of
  /// magnitude (see test_lp_stress), but on naturally well-scaled models —
  /// including all SPM formulations in this repo — it perturbs degeneracy
  /// handling and costs several times more iterations.  The solution is
  /// unscaled transparently when enabled.
  bool scale = false;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the problem.  The returned solution is in the problem's own
  /// sense (objective is the true max/min value, duals match the rows).
  LpSolution solve(const LinearProblem& problem) const;

  const SimplexOptions& options() const { return options_; }

 private:
  SimplexOptions options_;
};

}  // namespace metis::lp
