// MipSolver: branch & bound for mixed-integer linear programs.
//
// Integrality is requested per column (the LinearProblem itself is purely
// continuous).  The solver runs best-first branch & bound over LP
// relaxations solved by SimplexSolver:
//
//  * node selection: best LP bound first (priority queue);
//  * branching variable: most fractional integer column;
//  * incumbent: found at integral LP optima, plus a cheap rounding heuristic
//    at the root to seed pruning;
//  * limits: relative gap, node count, wall-clock time.  When a limit stops
//    the search the best incumbent and the proven bound are still returned,
//    which is how the OPT(SPM)/OPT(RL-SPM) baselines report "best found
//    within budget" on large instances (see DESIGN.md).
//
// This module is the stand-in for the ILP side of Gurobi used by the paper.
#pragma once

#include <vector>

#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/types.h"
#include "util/numeric.h"

namespace metis::lp {

/// Limits and tolerances of the branch & bound search.
struct MipOptions {
  /// A relaxation value within this of an integer counts as integral (both
  /// for branching-variable selection and for accepting an LP optimum as an
  /// incumbent).
  double integrality_tol = num::kIntegralityTol;
  /// Stop when |incumbent - bound| / max(1,|incumbent|) <= gap_tol.
  double gap_tol = num::kOptTol;
  /// Feasibility tolerance for accepting candidate incumbents (the caller's
  /// warm-start seed and the root rounding heuristic).  One knob for both:
  /// the two checks used to disagree by an order of magnitude, so a point
  /// could seed the incumbent from outside but not from the rounding path.
  double feas_tol = num::kOptTol;
  /// Node budget for the best-first search; the best incumbent found and
  /// the proven bound are returned either way (status NodeLimit).
  long max_nodes = 200000;
  /// Wall-clock budget in seconds; <= 0 means unlimited.
  double time_limit_seconds = 0;
  /// Options of the relaxation solves at every node.
  SimplexOptions lp;
};

/// Best-first branch & bound over SimplexSolver relaxations (see the file
/// comment).  Stateless apart from its options.
class MipSolver {
 public:
  explicit MipSolver(MipOptions options = {}) : options_(options) {}

  /// Solves `problem` with the columns in `integer_vars` restricted to
  /// integer values.  Indices must be valid and unique.
  ///
  /// `warm_start` (optional) seeds the incumbent with a known feasible
  /// integral solution — standard MIP practice that turns bound pruning on
  /// from the first node and guarantees the result is at least as good as
  /// the seed.  An infeasible or non-integral seed is ignored with a
  /// warning.
  MipResult solve(const LinearProblem& problem,
                  const std::vector<int>& integer_vars,
                  const std::vector<double>* warm_start = nullptr) const;

  const MipOptions& options() const { return options_; }

 private:
  MipOptions options_;
};

}  // namespace metis::lp
