// LinearProblem: a column/row model for linear and mixed-integer programs.
//
//   min (or max)  c^T x
//   subject to    row_k:  a_k^T x  {<=, >=, =}  b_k      for every row k
//                 l_j <= x_j <= u_j                      for every column j
//
// Rows are stored sparsely.  The model is solver-agnostic: SimplexSolver
// consumes it for LP relaxations and MipSolver adds integrality on a caller-
// provided subset of columns.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "lp/types.h"
#include "util/numeric.h"

namespace metis::lp {

/// Objective direction of a LinearProblem.
enum class Sense { Minimize, Maximize };
/// Relation of a constraint row's activity to its right-hand side.
enum class RowType { LessEqual, GreaterEqual, Equal };

/// One nonzero of a row: coefficient `coef` on column `col`.
struct RowEntry {
  int col = 0;
  double coef = 0;
};

/// One sparse constraint row: a_k^T x {<=, >=, =} rhs.
struct Row {
  RowType type = RowType::LessEqual;
  double rhs = 0;
  std::vector<RowEntry> entries;  ///< the nonzeros of a_k, any column order
  std::string name;               ///< optional label for diagnostics
};

/// The solver-agnostic column/row model (see the file comment for the
/// canonical form).  Columns are appended by add_variable, rows by add_row;
/// both are stable indices that SimplexSolver/MipSolver solutions, Basis
/// snapshots and ModelSnapshot mappings refer to.
class LinearProblem {
 public:
  explicit LinearProblem(Sense sense = Sense::Minimize) : sense_(sense) {}

  /// Adds a column with bounds [lower, upper] and objective coefficient obj.
  /// Returns the column index.  lower may be -kInfinity, upper +kInfinity.
  int add_variable(double lower, double upper, double obj, std::string name = "");

  /// Adds a constraint row.  Entries may reference any existing column; the
  /// same column may appear multiple times (coefficients are summed by the
  /// solver).  Returns the row index.
  int add_row(RowType type, double rhs, std::vector<RowEntry> entries,
              std::string name = "");

  Sense sense() const { return sense_; }
  void set_sense(Sense sense) { sense_ = sense; }

  int num_variables() const { return static_cast<int>(obj_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  double objective_coef(int col) const { return obj_.at(col); }
  void set_objective_coef(int col, double obj) { obj_.at(col) = obj; }
  double lower_bound(int col) const { return lower_.at(col); }
  double upper_bound(int col) const { return upper_.at(col); }

  /// Tightens/replaces the bounds of an existing column (used by B&B).
  void set_bounds(int col, double lower, double upper);

  const Row& row(int r) const { return rows_.at(r); }
  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<double>& objective() const { return obj_; }
  const std::string& variable_name(int col) const { return names_.at(col); }

  /// c^T x for a full assignment.
  double objective_value(std::span<const double> x) const;

  /// a_k^T x for row k.
  double row_activity(int r, std::span<const double> x) const;

  /// True if x satisfies every row and bound within `tol` (absolute on
  /// bounds, relative to the rhs magnitude on rows — a checking tolerance,
  /// deliberately coarser than the solver's working kFeasTol).
  bool is_feasible(std::span<const double> x, double tol = num::kOptTol) const;

  /// Throws std::invalid_argument on structural problems (bad indices,
  /// lower > upper, NaN coefficients).  Solvers call this before solving.
  void validate() const;

 private:
  Sense sense_;
  std::vector<double> obj_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace metis::lp
