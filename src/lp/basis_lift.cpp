#include "lp/basis_lift.h"

#include <stdexcept>

namespace metis::lp {

Basis lift_basis(const Basis& old_basis, int old_cols, int old_rows,
                 std::span<const int> col_of_new,
                 std::span<const int> row_of_new,
                 std::span<const int> basic_new_columns,
                 const LiftOptions& options) {
  Basis lifted;
  if (old_basis.empty() || !old_basis.compatible(old_cols, old_rows)) {
    return lifted;  // empty => the solver cold starts
  }
  const int new_cols = static_cast<int>(col_of_new.size());
  const int new_rows = static_cast<int>(row_of_new.size());
  lifted.status.assign(static_cast<std::size_t>(new_cols) + new_rows,
                       options.new_column);

  for (int j = 0; j < new_cols; ++j) {
    const int old_j = col_of_new[j];
    if (old_j < 0) continue;  // keeps the new-column default
    if (old_j >= old_cols) {
      throw std::invalid_argument("lift_basis: column map exceeds old shape");
    }
    lifted.status[j] = old_basis.status[old_j];
  }
  for (int r = 0; r < new_rows; ++r) {
    const int old_r = row_of_new[r];
    if (old_r < 0) {
      lifted.status[new_cols + r] = options.new_row_slack;
      continue;
    }
    if (old_r >= old_rows) {
      throw std::invalid_argument("lift_basis: row map exceeds old shape");
    }
    lifted.status[new_cols + r] = old_basis.status[old_cols + old_r];
  }
  for (int j : basic_new_columns) {
    if (j < 0 || j >= new_cols) {
      throw std::invalid_argument("lift_basis: basic_new_columns out of range");
    }
    lifted.status[j] = BasisStatus::Basic;
  }

  // Count repair: the solver requires exactly new_rows Basic entries.  Only
  // row slacks are flipped — structural columns keep whatever the mapping
  // and basic_new_columns said, because demoting a mapped Basic structural
  // to a bound is far more likely to land outside its bounds than parking a
  // slack.  Demotion scans new rows first (their Basic default is the most
  // disposable), promotion likewise.
  int basics = 0;
  for (const BasisStatus s : lifted.status) {
    if (s == BasisStatus::Basic) ++basics;
  }
  const auto sweep_rows = [&](bool new_rows_first, auto&& flip) {
    for (int pass = 0; pass < 2 && basics != new_rows; ++pass) {
      const bool want_new = new_rows_first ? pass == 0 : pass == 1;
      for (int r = 0; r < new_rows && basics != new_rows; ++r) {
        if ((row_of_new[r] < 0) == want_new) flip(new_cols + r);
      }
    }
  };
  if (basics > new_rows) {
    sweep_rows(true, [&](int idx) {
      if (lifted.status[idx] == BasisStatus::Basic) {
        lifted.status[idx] = BasisStatus::AtLower;
        --basics;
      }
    });
  } else if (basics < new_rows) {
    sweep_rows(true, [&](int idx) {
      if (lifted.status[idx] != BasisStatus::Basic) {
        lifted.status[idx] = BasisStatus::Basic;
        ++basics;
      }
    });
  }
  if (basics != new_rows) {
    // Not repairable with row slacks alone (every slack already Basic and
    // still short, or none Basic and still long) — give up cleanly.
    lifted.clear();
  }
  return lifted;
}

}  // namespace metis::lp
