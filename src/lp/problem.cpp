#include "lp/problem.h"

#include <cmath>
#include <stdexcept>

namespace metis::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::NotSolved: return "NotSolved";
    case SolveStatus::Optimal: return "Optimal";
    case SolveStatus::Infeasible: return "Infeasible";
    case SolveStatus::Unbounded: return "Unbounded";
    case SolveStatus::IterationLimit: return "IterationLimit";
    case SolveStatus::NodeLimit: return "NodeLimit";
    case SolveStatus::TimeLimit: return "TimeLimit";
  }
  return "Unknown";
}

double MipResult::gap() const {
  if (!has_incumbent) return kInfinity;
  const double denom = std::max(1.0, std::abs(objective));
  return std::abs(objective - best_bound) / denom;
}

int LinearProblem::add_variable(double lower, double upper, double obj,
                                std::string name) {
  if (std::isnan(lower) || std::isnan(upper) || std::isnan(obj)) {
    throw std::invalid_argument("add_variable: NaN input");
  }
  if (lower > upper) {
    throw std::invalid_argument("add_variable: lower > upper for " + name);
  }
  obj_.push_back(obj);
  lower_.push_back(lower);
  upper_.push_back(upper);
  names_.push_back(name.empty() ? "x" + std::to_string(obj_.size() - 1)
                                : std::move(name));
  return static_cast<int>(obj_.size()) - 1;
}

int LinearProblem::add_row(RowType type, double rhs, std::vector<RowEntry> entries,
                           std::string name) {
  if (std::isnan(rhs)) throw std::invalid_argument("add_row: NaN rhs");
  for (const RowEntry& e : entries) {
    if (e.col < 0 || e.col >= num_variables()) {
      throw std::invalid_argument("add_row: entry references unknown column");
    }
    if (std::isnan(e.coef)) throw std::invalid_argument("add_row: NaN coefficient");
  }
  rows_.push_back(Row{type, rhs, std::move(entries), std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

void LinearProblem::set_bounds(int col, double lower, double upper) {
  if (col < 0 || col >= num_variables()) {
    throw std::invalid_argument("set_bounds: unknown column");
  }
  if (lower > upper) throw std::invalid_argument("set_bounds: lower > upper");
  lower_[col] = lower;
  upper_[col] = upper;
}

double LinearProblem::objective_value(std::span<const double> x) const {
  if (x.size() != obj_.size()) {
    throw std::invalid_argument("objective_value: size mismatch");
  }
  double total = 0;
  for (std::size_t j = 0; j < obj_.size(); ++j) total += obj_[j] * x[j];
  return total;
}

double LinearProblem::row_activity(int r, std::span<const double> x) const {
  const Row& row = rows_.at(r);
  double activity = 0;
  for (const RowEntry& e : row.entries) activity += e.coef * x[e.col];
  return activity;
}

bool LinearProblem::is_feasible(std::span<const double> x, double tol) const {
  if (x.size() != obj_.size()) return false;
  for (std::size_t j = 0; j < obj_.size(); ++j) {
    if (x[j] < lower_[j] - tol || x[j] > upper_[j] + tol) return false;
  }
  for (int r = 0; r < num_rows(); ++r) {
    const double activity = row_activity(r, x);
    const double rhs = rows_[r].rhs;
    switch (rows_[r].type) {
      case RowType::LessEqual:
        if (!num::approx_le(activity, rhs, rhs, tol)) return false;
        break;
      case RowType::GreaterEqual:
        if (!num::approx_ge(activity, rhs, rhs, tol)) return false;
        break;
      case RowType::Equal:
        if (!num::approx_eq(activity, rhs, rhs, tol)) return false;
        break;
    }
  }
  return true;
}

void LinearProblem::validate() const {
  for (int j = 0; j < num_variables(); ++j) {
    if (lower_[j] > upper_[j]) {
      throw std::invalid_argument("validate: lower > upper on column " +
                                  names_[j]);
    }
  }
  for (const Row& row : rows_) {
    for (const RowEntry& e : row.entries) {
      if (e.col < 0 || e.col >= num_variables()) {
        throw std::invalid_argument("validate: bad column index in row " +
                                    row.name);
      }
    }
  }
}

}  // namespace metis::lp
