#include "lp/presolve.h"

#include <cmath>
#include <stdexcept>

#include "util/numeric.h"
#include "util/telemetry.h"

namespace metis::lp {

namespace {

/// Working copy of the problem that supports in-place elimination.
struct Work {
  Sense sense;
  std::vector<double> obj, lb, ub;
  std::vector<bool> col_alive;
  struct WRow {
    RowType type;
    double rhs;
    std::vector<RowEntry> entries;  // only alive columns
    bool alive = true;
  };
  std::vector<WRow> rows;
};

Work load(const LinearProblem& p) {
  Work w;
  w.sense = p.sense();
  w.obj = p.objective();
  w.lb.resize(p.num_variables());
  w.ub.resize(p.num_variables());
  for (int j = 0; j < p.num_variables(); ++j) {
    w.lb[j] = p.lower_bound(j);
    w.ub[j] = p.upper_bound(j);
  }
  w.col_alive.assign(p.num_variables(), true);
  w.rows.resize(p.num_rows());
  for (int r = 0; r < p.num_rows(); ++r) {
    const Row& row = p.row(r);
    w.rows[r].type = row.type;
    w.rows[r].rhs = row.rhs;
    // Merge duplicate column references.
    for (const RowEntry& e : row.entries) {
      bool merged = false;
      for (RowEntry& existing : w.rows[r].entries) {
        if (existing.col == e.col) {
          existing.coef += e.coef;
          merged = true;
          break;
        }
      }
      if (!merged) w.rows[r].entries.push_back(e);
    }
    // Drop exact-zero coefficients.
    std::erase_if(w.rows[r].entries,
                  [](const RowEntry& e) { return e.coef == 0.0; });
  }
  return w;
}

/// Substitutes a fixed column's value into all rows and kills the column.
void eliminate_fixed(Work& w, int col, double value) {
  w.col_alive[col] = false;
  for (auto& row : w.rows) {
    if (!row.alive) continue;
    for (std::size_t k = 0; k < row.entries.size(); ++k) {
      if (row.entries[k].col == col) {
        row.rhs -= row.entries[k].coef * value;
        row.entries.erase(row.entries.begin() + static_cast<long>(k));
        break;
      }
    }
  }
}

/// Checks an empty row's rhs.  Returns false when infeasible.
bool empty_row_feasible(const Work::WRow& row, double tol) {
  switch (row.type) {
    case RowType::LessEqual: return row.rhs >= -tol;
    case RowType::GreaterEqual: return row.rhs <= tol;
    case RowType::Equal: return std::abs(row.rhs) <= tol;
  }
  return true;
}

}  // namespace

std::vector<double> PresolveResult::restore(
    const std::vector<double>& reduced_x) const {
  std::vector<double> x(col_map.size(), 0.0);
  for (std::size_t j = 0; j < col_map.size(); ++j) {
    x[j] = col_map[j] >= 0 ? reduced_x.at(col_map[j]) : fixed_value[j];
  }
  return x;
}

LpSolution PresolveResult::postsolve(const LinearProblem& original,
                                     const LpSolution& reduced_sol,
                                     double tol) const {
  LpSolution out;
  out.status = reduced_sol.status;
  out.iterations = reduced_sol.iterations;
  out.stats = reduced_sol.stats;
  if (reduced_sol.status != SolveStatus::Optimal) return out;

  out.x = restore(reduced_sol.x);
  out.objective = original.objective_value(out.x);

  // Duals, working in minimization form (duals are reported in the
  // problem's own sense, so flip on the way in and out for Maximize).
  const double sign = original.sense() == Sense::Minimize ? 1.0 : -1.0;
  std::vector<double> y(original.num_rows(), 0.0);
  for (int r = 0; r < original.num_rows(); ++r) {
    if (row_map[r] >= 0) y[r] = sign * reduced_sol.duals.at(row_map[r]);
  }

  // Column view of the original matrix for reduced-cost evaluation.
  std::vector<std::vector<std::pair<int, double>>> col_rows(
      original.num_variables());
  for (int r = 0; r < original.num_rows(); ++r) {
    for (const RowEntry& e : original.row(r).entries) {
      col_rows[e.col].emplace_back(r, e.coef);
    }
  }

  // Replay eliminated singleton rows newest-first.  A row whose folded-in
  // bound supports the optimum (x rests on it) is active in the original
  // problem; its multiplier absorbs the column's remaining reduced cost,
  // provided the resulting sign is admissible for the row type — when two
  // folds pin the same column from both sides, the sign guard routes the
  // reduced cost to whichever row direction actually supports it.
  for (auto it = eliminated_singletons.rbegin();
       it != eliminated_singletons.rend(); ++it) {
    const int j = it->col;
    if (!num::approx_eq(out.x[j], it->bound, it->bound, num::kOptTol)) {
      continue;  // slack row: y = 0
    }
    double d = sign * original.objective_coef(j);
    for (const auto& [r, a] : col_rows[j]) d -= y[r] * a;
    const double cand = d / it->coef;
    const RowType type = original.row(it->row).type;
    const bool sign_ok =
        type == RowType::Equal ||
        (type == RowType::LessEqual && cand <= tol) ||
        (type == RowType::GreaterEqual && cand >= -tol);
    if (sign_ok) y[it->row] = cand;
  }

  out.duals.resize(original.num_rows());
  for (int r = 0; r < original.num_rows(); ++r) out.duals[r] = sign * y[r];
  return out;
}

Basis PresolveResult::lift_basis(const LinearProblem& original,
                                 const Basis& reduced_basis) const {
  Basis out;
  if (reduced_basis.empty()) return out;
  if (!reduced_basis.compatible(reduced.num_variables(), reduced.num_rows())) {
    return out;
  }
  const int n = original.num_variables();
  const int m = original.num_rows();
  out.status.assign(n + m, BasisStatus::AtLower);
  for (int j = 0; j < n; ++j) {
    if (col_map[j] >= 0) {
      out.status[j] = reduced_basis.status[col_map[j]];
      continue;
    }
    // Eliminated column: rest it at the original bound matching its fixed
    // value.  A value interior to the original bounds (pinned by a folded
    // equality row) has no nonbasic resting status that reproduces it; the
    // nearest bound keeps the snapshot well-formed and the warm-start
    // feasibility check decides whether it is still usable.
    const double lb = original.lower_bound(j);
    const double ub = original.upper_bound(j);
    const double v = fixed_value[j];
    if (std::isfinite(lb) &&
        (!std::isfinite(ub) || std::abs(v - lb) <= std::abs(v - ub))) {
      out.status[j] = BasisStatus::AtLower;
    } else if (std::isfinite(ub)) {
      out.status[j] = BasisStatus::AtUpper;
    } else {
      out.status[j] = BasisStatus::Free;
    }
  }
  for (int r = 0; r < m; ++r) {
    // Slacks of eliminated rows become basic: the basis matrix gains an
    // identity block on those rows, so nonsingularity of the reduced basis
    // carries over, and a folded row is satisfied at the lifted point so
    // its basic slack lands within bounds.
    out.status[n + r] = row_map[r] >= 0
                            ? reduced_basis.status[reduced.num_variables() +
                                                   row_map[r]]
                            : BasisStatus::Basic;
  }
  return out;
}

std::vector<int> PresolveResult::map_columns(
    const std::vector<int>& original_cols) const {
  std::vector<int> out;
  for (int col : original_cols) {
    const int mapped = col_map.at(col);
    if (mapped >= 0) out.push_back(mapped);
  }
  return out;
}

PresolveResult presolve(const LinearProblem& problem, double tol) {
  METIS_SPAN("presolve");
  problem.validate();
  Work w = load(problem);
  PresolveResult result;
  result.col_map.assign(problem.num_variables(), -1);
  result.fixed_value.assign(problem.num_variables(), 0.0);
  result.row_map.assign(problem.num_rows(), -1);

  const double sense_sign = w.sense == Sense::Minimize ? 1.0 : -1.0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Fixed columns.
    for (int j = 0; j < problem.num_variables(); ++j) {
      if (!w.col_alive[j]) continue;
      if (w.lb[j] > w.ub[j] + tol) {
        result.infeasible = true;
        return result;
      }
      if (std::abs(w.ub[j] - w.lb[j]) <= tol) {
        const double value = (w.lb[j] + w.ub[j]) / 2;
        result.fixed_value[j] = value;
        eliminate_fixed(w, j, value);
        changed = true;
      }
    }
    // Column occurrence counts (for empty-column detection).
    std::vector<int> occurrences(problem.num_variables(), 0);
    for (const auto& row : w.rows) {
      if (!row.alive) continue;
      for (const RowEntry& e : row.entries) ++occurrences[e.col];
    }
    // Empty columns: fix at the objective-optimal bound.
    for (int j = 0; j < problem.num_variables(); ++j) {
      if (!w.col_alive[j] || occurrences[j] > 0) continue;
      const double c = sense_sign * w.obj[j];
      double value = 0;
      if (c > 0) {
        if (!std::isfinite(w.lb[j])) {
          result.unbounded = true;
          return result;
        }
        value = w.lb[j];
      } else if (c < 0) {
        if (!std::isfinite(w.ub[j])) {
          result.unbounded = true;
          return result;
        }
        value = w.ub[j];
      } else {
        value = std::isfinite(w.lb[j]) ? w.lb[j]
                : std::isfinite(w.ub[j]) ? w.ub[j]
                                         : 0.0;
      }
      result.fixed_value[j] = value;
      eliminate_fixed(w, j, value);
      changed = true;
    }
    // Rows: empty-row verdicts and singleton-row bound tightening.
    for (int r = 0; r < static_cast<int>(w.rows.size()); ++r) {
      auto& row = w.rows[r];
      if (!row.alive) continue;
      if (row.entries.empty()) {
        if (!empty_row_feasible(row, tol)) {
          result.infeasible = true;
          return result;
        }
        row.alive = false;
        changed = true;
        continue;
      }
      if (row.entries.size() == 1) {
        const int col = row.entries[0].col;
        const double a = row.entries[0].coef;
        const double bound = row.rhs / a;
        result.eliminated_singletons.push_back({r, col, a, bound});
        // a*x <= rhs  =>  x <= bound (a>0) or x >= bound (a<0); etc.
        const bool tighten_upper =
            (row.type == RowType::LessEqual && a > 0) ||
            (row.type == RowType::GreaterEqual && a < 0);
        const bool tighten_lower =
            (row.type == RowType::GreaterEqual && a > 0) ||
            (row.type == RowType::LessEqual && a < 0);
        if (row.type == RowType::Equal) {
          w.lb[col] = std::max(w.lb[col], bound);
          w.ub[col] = std::min(w.ub[col], bound);
        } else if (tighten_upper) {
          w.ub[col] = std::min(w.ub[col], bound);
        } else if (tighten_lower) {
          w.lb[col] = std::max(w.lb[col], bound);
        }
        if (w.lb[col] > w.ub[col] + tol) {
          result.infeasible = true;
          return result;
        }
        row.alive = false;
        changed = true;
      }
    }
  }

  // Assemble the reduced problem.
  result.reduced = LinearProblem(w.sense);
  for (int j = 0; j < problem.num_variables(); ++j) {
    if (!w.col_alive[j]) {
      result.objective_offset += w.obj[j] * result.fixed_value[j];
      ++result.removed_columns;
      continue;
    }
    result.col_map[j] = result.reduced.add_variable(
        w.lb[j], w.ub[j], w.obj[j], problem.variable_name(j));
  }
  for (int r = 0; r < problem.num_rows(); ++r) {
    const auto& row = w.rows[r];
    if (!row.alive) {
      ++result.removed_rows;
      continue;
    }
    std::vector<RowEntry> entries;
    entries.reserve(row.entries.size());
    for (const RowEntry& e : row.entries) {
      entries.push_back({result.col_map[e.col], e.coef});
    }
    result.row_map[r] =
        result.reduced.add_row(row.type, row.rhs, std::move(entries));
  }
  telemetry::count("presolve.runs");
  telemetry::count("presolve.removed_rows", result.removed_rows);
  telemetry::count("presolve.removed_cols", result.removed_columns);
  return result;
}

}  // namespace metis::lp
