// Presolve: standard LP/MIP reductions applied before the simplex.
//
// Rules (iterated to a fixpoint):
//   * fixed columns (lower == upper) are substituted into their rows;
//   * empty rows become pure feasibility checks on their rhs;
//   * singleton rows (one nonzero) become bound tightenings and are dropped;
//   * empty columns are fixed at their objective-optimal bound.
//
// The result is a smaller problem plus the bookkeeping needed to lift a
// reduced solution back to the original variable space.  Dual values are
// NOT reconstructed — presolve targets primal solves (branch & bound nodes,
// heuristics); solve the original problem when duals are needed.
#pragma once

#include <vector>

#include "lp/problem.h"
#include "lp/types.h"

namespace metis::lp {

struct PresolveResult {
  LinearProblem reduced;
  /// Early verdicts.  When either flag is set, `reduced` is meaningless.
  bool infeasible = false;
  bool unbounded = false;

  /// original column -> reduced column, or -1 when eliminated.
  std::vector<int> col_map;
  /// value of each eliminated column (indexed by original column).
  std::vector<double> fixed_value;
  /// original row -> reduced row, or -1 when eliminated.
  std::vector<int> row_map;
  /// objective constant contributed by eliminated columns.
  double objective_offset = 0;

  int removed_columns = 0;
  int removed_rows = 0;

  /// Lifts a reduced-space solution back to the original columns.
  std::vector<double> restore(const std::vector<double>& reduced_x) const;

  /// Maps original column indices (e.g. an integrality list) into reduced
  /// space, dropping eliminated ones.
  std::vector<int> map_columns(const std::vector<int>& original_cols) const;
};

/// Applies the reductions.  `tol` is the feasibility tolerance for the
/// verdict checks.
PresolveResult presolve(const LinearProblem& problem, double tol = 1e-9);

}  // namespace metis::lp
