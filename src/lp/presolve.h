// Presolve: standard LP/MIP reductions applied before the simplex.
//
// Rules (iterated to a fixpoint):
//   * fixed columns (lower == upper) are substituted into their rows;
//   * empty rows become pure feasibility checks on their rhs;
//   * singleton rows (one nonzero) become bound tightenings and are dropped;
//   * empty columns are fixed at their objective-optimal bound.
//
// The result is a smaller problem plus the bookkeeping needed to lift a
// reduced solution back to the original variable space.  `postsolve`
// recovers the FULL primal and dual vectors: eliminated singleton rows are
// replayed in reverse elimination order, and any row whose folded-in bound
// supports the optimum at a presolve-tightened bound receives the reduced
// cost of its column as its multiplier — the lifted solution satisfies the
// original problem's KKT conditions (test_lp_presolve certifies this).
// SimplexSolver runs this pipeline internally by default; see
// SimplexOptions::presolve for the bypass conditions.
#pragma once

#include <vector>

#include "lp/problem.h"
#include "lp/types.h"
#include "util/numeric.h"

namespace metis::lp {

/// The reduced problem plus everything needed to lift a reduced-space
/// solution, dual vector or basis back to the original problem (see the
/// file comment for the reduction rules).
struct PresolveResult {
  /// The problem after all reductions; solve this instead of the original.
  LinearProblem reduced;
  /// Early verdicts.  When either flag is set, `reduced` is meaningless.
  bool infeasible = false;
  bool unbounded = false;

  /// original column -> reduced column, or -1 when eliminated.
  std::vector<int> col_map;
  /// value of each eliminated column (indexed by original column).
  std::vector<double> fixed_value;
  /// original row -> reduced row, or -1 when eliminated.
  std::vector<int> row_map;
  /// objective constant contributed by eliminated columns.
  double objective_offset = 0;

  int removed_columns = 0;
  int removed_rows = 0;

  /// One eliminated singleton row (in elimination order): `a * x[col]` vs
  /// `rhs` folded into a bound `rhs / a` on `col`.  Replayed in reverse by
  /// `postsolve` to reconstruct the row's dual multiplier.
  struct SingletonRow {
    int row = -1;
    int col = -1;
    double coef = 0;
    double bound = 0;   ///< rhs / coef, the bound folded into the column
  };
  std::vector<SingletonRow> eliminated_singletons;

  /// Lifts a reduced-space solution back to the original columns.
  std::vector<double> restore(const std::vector<double>& reduced_x) const;

  /// Lifts a full reduced-space LpSolution (primal, duals, objective) back
  /// to `original`'s space.  Non-Optimal solutions pass through with empty
  /// primal/dual vectors.  The returned objective is recomputed from the
  /// restored x to wash out reduction round-off.
  LpSolution postsolve(const LinearProblem& original,
                       const LpSolution& reduced_sol,
                       double tol = num::kFeasTol) const;

  /// Lifts a basis snapshot of the reduced problem into `original`'s column
  /// space: surviving columns/slacks keep their status, eliminated columns
  /// rest at the bound equal to their fixed value, and slacks of eliminated
  /// rows become basic (an always-nonsingular, primal-feasible completion).
  Basis lift_basis(const LinearProblem& original, const Basis& reduced) const;

  /// Maps original column indices (e.g. an integrality list) into reduced
  /// space, dropping eliminated ones.
  std::vector<int> map_columns(const std::vector<int>& original_cols) const;
};

/// Applies the reductions.  `tol` is the feasibility tolerance for the
/// verdict checks and the bound-gap threshold below which a column counts
/// as fixed (num::kPivotTol: tighter than the simplex feasibility tolerance
/// so presolve never fixes what the solver could still move).
PresolveResult presolve(const LinearProblem& problem,
                        double tol = num::kPivotTol);

}  // namespace metis::lp
