#include "lp/mip.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <stdexcept>

#include "util/log.h"
#include "util/telemetry.h"

namespace metis::lp {

namespace {

/// A node is a set of bound overrides on integer columns.
struct BoundChange {
  int col;
  double lower;
  double upper;
};

struct Node {
  std::vector<BoundChange> changes;
  double bound;  // LP relaxation objective in minimization form
  int depth = 0;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // smaller bound first
    return a.depth < b.depth;                          // deeper first on ties
  }
};

}  // namespace

MipResult MipSolver::solve(const LinearProblem& problem,
                           const std::vector<int>& integer_vars,
                           const std::vector<double>* warm_start) const {
  problem.validate();
  for (int col : integer_vars) {
    if (col < 0 || col >= problem.num_variables()) {
      throw std::invalid_argument("MipSolver: bad integer column index");
    }
  }
  METIS_SPAN("mip_solve");
  const telemetry::Stopwatch timer;
  const auto out_of_time = [&] {
    if (options_.time_limit_seconds <= 0) return false;
    return timer.seconds() > options_.time_limit_seconds;
  };

  // Work in minimization form; flip back at the end.
  const double sign = problem.sense() == Sense::Minimize ? 1.0 : -1.0;
  LinearProblem work = problem;
  work.set_sense(Sense::Minimize);
  if (sign < 0) {
    for (int j = 0; j < work.num_variables(); ++j) {
      work.set_objective_coef(j, -work.objective_coef(j));
    }
  }

  SimplexSolver lp(options_.lp);
  MipResult result;
  double incumbent_obj = kInfinity;  // minimization form
  std::vector<double> incumbent_x;

  const auto apply = [&](const std::vector<BoundChange>& changes) {
    for (const BoundChange& ch : changes) work.set_bounds(ch.col, ch.lower, ch.upper);
  };
  const auto restore = [&](const std::vector<BoundChange>& changes) {
    for (const BoundChange& ch : changes) {
      work.set_bounds(ch.col, problem.lower_bound(ch.col),
                      problem.upper_bound(ch.col));
    }
  };

  const auto fractional_col = [&](const std::vector<double>& x) {
    // Most-fractional branching: pick the column farthest from integrality.
    int best = -1;
    double best_frac = options_.integrality_tol;
    for (int col : integer_vars) {
      const double frac = std::abs(x[col] - std::round(x[col]));
      if (frac > best_frac) {
        best_frac = frac;
        best = col;
      }
    }
    return best;
  };

  const auto try_incumbent = [&](const std::vector<double>& x, double obj) {
    if (obj < incumbent_obj - num::kIncumbentTol) {
      incumbent_obj = obj;
      incumbent_x = x;
      // Snap near-integers exactly.
      for (int col : integer_vars) {
        incumbent_x[col] = std::round(incumbent_x[col]);
      }
    }
  };

  // Seed the incumbent from the warm start, if one is supplied and valid.
  if (warm_start != nullptr) {
    bool valid = static_cast<int>(warm_start->size()) == work.num_variables();
    if (valid) {
      for (int col : integer_vars) {
        if (std::abs((*warm_start)[col] - std::round((*warm_start)[col])) >
            options_.integrality_tol) {
          valid = false;
          break;
        }
      }
    }
    if (valid && work.is_feasible(*warm_start, options_.feas_tol)) {
      try_incumbent(*warm_start, work.objective_value(*warm_start));
    } else {
      METIS_LOG_WARN << "MIP warm start rejected (infeasible or fractional)";
    }
  }

  // --- Root node ---
  // One basis snapshot threads through the whole tree: each node tries to
  // warm-start from the most recent optimal basis (parent or sibling —
  // usually one bound change away) and silently cold-starts when the
  // snapshot is not primal feasible under the node's bounds.
  Basis basis;
  LpSolution root = lp.solve(work, &basis);
  result.lp_stats += root.stats;
  if (root.status == SolveStatus::Infeasible) {
    result.status = SolveStatus::Infeasible;
    return result;
  }
  if (root.status == SolveStatus::Unbounded) {
    result.status = SolveStatus::Unbounded;
    return result;
  }
  if (root.status != SolveStatus::Optimal) {
    result.status = root.status;
    return result;
  }

  // Rounding heuristic at the root: round integer columns to the nearest
  // integer within bounds and keep it if it happens to be feasible.
  {
    std::vector<double> rounded = root.x;
    bool integral = true;
    for (int col : integer_vars) {
      double v = std::round(rounded[col]);
      v = std::clamp(v, problem.lower_bound(col), problem.upper_bound(col));
      // Clamping against fractional bounds can leave v non-integer; such a
      // point must not become an incumbent.
      if (std::abs(v - std::round(v)) > options_.integrality_tol) {
        integral = false;
        break;
      }
      rounded[col] = v;
    }
    if (integral && work.is_feasible(rounded, options_.feas_tol)) {
      try_incumbent(rounded, work.objective_value(rounded));
    }
  }

  // Two-phase node selection: depth-first diving until the first incumbent
  // exists (reaches integral leaves quickly), then best-first on the LP
  // bound (closes the gap quickly).
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  std::vector<Node> dive_stack;
  open.push(Node{{}, root.objective, 0});
  double best_open_bound = root.objective;
  SolveStatus stop_reason = SolveStatus::Optimal;

  bool popped_from_queue = false;
  const auto pop_node = [&]() -> Node {
    if (incumbent_x.empty() && !dive_stack.empty()) {
      Node node = std::move(dive_stack.back());
      dive_stack.pop_back();
      popped_from_queue = false;
      return node;
    }
    if (!dive_stack.empty()) {
      // An incumbent appeared: drain the dive stack into the queue.
      for (Node& n : dive_stack) open.push(std::move(n));
      dive_stack.clear();
    }
    Node node = open.top();
    open.pop();
    popped_from_queue = true;
    return node;
  };
  const auto push_node = [&](Node&& node) {
    if (incumbent_x.empty()) {
      dive_stack.push_back(std::move(node));
    } else {
      open.push(std::move(node));
    }
  };

  while (!open.empty() || !dive_stack.empty()) {
    if (result.nodes >= options_.max_nodes) {
      stop_reason = SolveStatus::NodeLimit;
      break;
    }
    if (out_of_time()) {
      stop_reason = SolveStatus::TimeLimit;
      break;
    }
    Node node = pop_node();
    if (popped_from_queue) best_open_bound = node.bound;
    // Prune by bound against the incumbent.
    const double denom = std::max(1.0, std::abs(incumbent_obj));
    if (incumbent_obj < kInfinity &&
        node.bound >= incumbent_obj - options_.gap_tol * denom) {
      if (popped_from_queue) {
        // Best-first order: every remaining node is at least as bad.
        best_open_bound = incumbent_obj;
        break;
      }
      continue;  // diving: prune this node only
    }
    ++result.nodes;

    apply(node.changes);
    LpSolution sol = lp.solve(work, &basis);
    restore(node.changes);
    result.lp_stats += sol.stats;

    if (sol.status == SolveStatus::Infeasible) continue;
    if (sol.status != SolveStatus::Optimal) {
      // Iteration trouble on a node: treat conservatively as unexplorable.
      METIS_LOG_WARN << "MIP node LP ended with status " << to_string(sol.status);
      continue;
    }
    if (incumbent_obj < kInfinity &&
        sol.objective >= incumbent_obj - num::kIncumbentTol) {
      continue;  // dominated
    }
    const int branch_col = fractional_col(sol.x);
    if (branch_col < 0) {
      try_incumbent(sol.x, sol.objective);
      continue;
    }
    const double v = sol.x[branch_col];
    const auto make_down = [&]() -> std::optional<Node> {
      Node child = node;
      child.depth++;
      double lo = problem.lower_bound(branch_col);
      double hi = std::floor(v);
      for (const BoundChange& ch : node.changes) {
        if (ch.col == branch_col) {
          lo = ch.lower;
          hi = std::min(hi, ch.upper);
        }
      }
      if (lo > hi) return std::nullopt;
      child.changes.push_back({branch_col, lo, hi});
      child.bound = sol.objective;
      return child;
    };
    const auto make_up = [&]() -> std::optional<Node> {
      Node child = node;
      child.depth++;
      double lo = std::ceil(v);
      double hi = problem.upper_bound(branch_col);
      for (const BoundChange& ch : node.changes) {
        if (ch.col == branch_col) {
          lo = std::max(lo, ch.lower);
          hi = ch.upper;
        }
      }
      if (lo > hi) return std::nullopt;
      child.changes.push_back({branch_col, lo, hi});
      child.bound = sol.objective;
      return child;
    };
    auto down = make_down();
    auto up = make_up();
    // While diving, push the child on the rounding-preferred side last so it
    // is explored first (LIFO): this reaches integral leaves fastest.
    const bool prefer_down = v - std::floor(v) < 0.5;
    if (prefer_down) {
      if (up) push_node(*std::move(up));
      if (down) push_node(*std::move(down));
    } else {
      if (down) push_node(*std::move(down));
      if (up) push_node(*std::move(up));
    }
  }

  if (open.empty() && dive_stack.empty() &&
      stop_reason == SolveStatus::Optimal) {
    best_open_bound = incumbent_obj;  // tree exhausted: bound is exact
  } else {
    if (!open.empty()) {
      best_open_bound = std::min(best_open_bound, open.top().bound);
    }
    for (const Node& n : dive_stack) {
      best_open_bound = std::min(best_open_bound, n.bound);
    }
  }

  result.has_incumbent = incumbent_obj < kInfinity;
  if (result.has_incumbent) {
    result.objective = sign * incumbent_obj;
    result.x = std::move(incumbent_x);
    result.best_bound = sign * best_open_bound;
    result.status = stop_reason;
  } else {
    result.status = stop_reason == SolveStatus::Optimal ? SolveStatus::Infeasible
                                                        : stop_reason;
    result.best_bound = sign * best_open_bound;
  }
  telemetry::count("mip.solves");
  telemetry::count("mip.nodes", result.nodes);
  telemetry::observe("mip.solve_ms", timer.ms());
  return result;
}

}  // namespace metis::lp
