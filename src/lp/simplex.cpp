#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "util/log.h"

namespace metis::lp {

namespace {

enum class VarStatus { Basic, AtLower, AtUpper, Free };

/// Sparse column: the nonzeros of one variable across all rows.
struct Column {
  std::vector<int> row;
  std::vector<double> coef;
};

/// Whole working state of one solve.  All columns (structural, slack,
/// artificial) share the index space [0, num_cols).
struct Tableau {
  int m = 0;                 // rows
  int n_struct = 0;          // structural columns
  std::vector<Column> cols;  // per column nonzeros
  std::vector<double> lb, ub, value;
  std::vector<VarStatus> status;
  std::vector<double> b;       // row rhs
  std::vector<int> basis;      // basis[i] = column basic in row i
  std::vector<int> basis_row;  // basis_row[j] = row of basic column j, or -1
  std::vector<double> binv;    // dense m x m row-major basis inverse
  std::vector<int> artificials;

  double& inv(int i, int k) { return binv[static_cast<std::size_t>(i) * m + k]; }
  double inv(int i, int k) const {
    return binv[static_cast<std::size_t>(i) * m + k];
  }

  int num_cols() const { return static_cast<int>(cols.size()); }
  bool is_fixed(int j) const { return lb[j] == ub[j]; }
};

/// Builds sparse columns from the row-wise LinearProblem, merging duplicate
/// column references within a row.
void build_structural(const LinearProblem& p, Tableau& t) {
  t.m = p.num_rows();
  t.n_struct = p.num_variables();
  t.cols.resize(t.n_struct);
  t.lb.resize(t.n_struct);
  t.ub.resize(t.n_struct);
  for (int j = 0; j < t.n_struct; ++j) {
    t.lb[j] = p.lower_bound(j);
    t.ub[j] = p.upper_bound(j);
  }
  // Collect (row, col) -> coef with duplicate merging.
  std::vector<std::map<int, double>> by_col(t.n_struct);
  for (int r = 0; r < t.m; ++r) {
    for (const RowEntry& e : p.row(r).entries) {
      by_col[e.col][r] += e.coef;
    }
  }
  for (int j = 0; j < t.n_struct; ++j) {
    for (const auto& [r, c] : by_col[j]) {
      if (c != 0.0) {
        t.cols[j].row.push_back(r);
        t.cols[j].coef.push_back(c);
      }
    }
  }
  t.b.resize(t.m);
  for (int r = 0; r < t.m; ++r) t.b[r] = p.row(r).rhs;
}

/// Appends one slack column per row (coefficient +1).
void add_slacks(const LinearProblem& p, Tableau& t) {
  for (int r = 0; r < t.m; ++r) {
    Column col;
    col.row.push_back(r);
    col.coef.push_back(1.0);
    t.cols.push_back(std::move(col));
    switch (p.row(r).type) {
      case RowType::LessEqual:
        t.lb.push_back(0.0);
        t.ub.push_back(kInfinity);
        break;
      case RowType::GreaterEqual:
        t.lb.push_back(-kInfinity);
        t.ub.push_back(0.0);
        break;
      case RowType::Equal:
        t.lb.push_back(0.0);
        t.ub.push_back(0.0);
        break;
    }
  }
}

/// Chooses the initial resting point of a nonbasic column.
VarStatus initial_status(double lb, double ub) {
  if (std::isfinite(lb)) return VarStatus::AtLower;
  if (std::isfinite(ub)) return VarStatus::AtUpper;
  return VarStatus::Free;
}

double resting_value(VarStatus s, double lb, double ub) {
  switch (s) {
    case VarStatus::AtLower: return lb;
    case VarStatus::AtUpper: return ub;
    default: return 0.0;
  }
}

class Engine {
 public:
  Engine(const LinearProblem& p, const SimplexOptions& opt) : opt_(opt) {
    build_structural(p, t_);
    add_slacks(p, t_);
    max_iterations_ = opt_.max_iterations > 0
                          ? opt_.max_iterations
                          : 200 * (t_.m + t_.n_struct) + 2000;
    // Objective in minimization form over all columns.
    sign_ = p.sense() == Sense::Minimize ? 1.0 : -1.0;
    cost_.assign(t_.num_cols(), 0.0);
    for (int j = 0; j < t_.n_struct; ++j) {
      cost_[j] = sign_ * p.objective_coef(j);
    }
  }

  LpSolution run() {
    LpSolution out;
    init_basis();
    if (!t_.artificials.empty()) {
      std::vector<double> phase1(t_.num_cols(), 0.0);
      for (int a : t_.artificials) phase1[a] = 1.0;
      const SolveStatus s1 = iterate(phase1, /*phase1=*/true);
      if (s1 != SolveStatus::Optimal) {
        out.status = s1;
        out.iterations = iterations_;
        return out;
      }
      double infeas = 0;
      for (int a : t_.artificials) infeas += t_.value[a];
      if (infeas > 1e-6) {
        out.status = SolveStatus::Infeasible;
        out.iterations = iterations_;
        return out;
      }
      // Freeze all artificials at zero for phase 2.
      for (int a : t_.artificials) {
        t_.lb[a] = t_.ub[a] = 0.0;
        t_.value[a] = 0.0;
        if (t_.basis_row[a] < 0) t_.status[a] = VarStatus::AtLower;
      }
    }
    // Grow the cost vector to cover artificial columns (cost 0).
    cost_.resize(t_.num_cols(), 0.0);
    const SolveStatus s2 = iterate(cost_, /*phase1=*/false);
    out.status = s2;
    out.iterations = iterations_;
    if (s2 != SolveStatus::Optimal) return out;

    out.x.assign(t_.n_struct, 0.0);
    for (int j = 0; j < t_.n_struct; ++j) out.x[j] = t_.value[j];
    double obj = 0;
    for (int j = 0; j < t_.n_struct; ++j) obj += cost_[j] * t_.value[j];
    out.objective = sign_ * obj;
    // Duals: y = c_B B^{-1}, flipped back for maximization.
    std::vector<double> y = compute_y(cost_);
    out.duals.assign(t_.m, 0.0);
    for (int r = 0; r < t_.m; ++r) out.duals[r] = sign_ * y[r];
    return out;
  }

 private:
  /// Sets up the slack basis plus artificials for rows whose slack starts
  /// outside its bounds.
  void init_basis() {
    const int total = t_.num_cols();
    t_.value.assign(total, 0.0);
    t_.status.assign(total, VarStatus::AtLower);
    t_.basis_row.assign(total, -1);
    for (int j = 0; j < total; ++j) {
      t_.status[j] = initial_status(t_.lb[j], t_.ub[j]);
      t_.value[j] = resting_value(t_.status[j], t_.lb[j], t_.ub[j]);
    }
    // Residual r_i = b_i - sum over structural nonbasic values.
    std::vector<double> resid = t_.b;
    for (int j = 0; j < t_.n_struct; ++j) {
      if (t_.value[j] == 0.0) continue;
      const Column& col = t_.cols[j];
      for (std::size_t k = 0; k < col.row.size(); ++k) {
        resid[col.row[k]] -= col.coef[k] * t_.value[j];
      }
    }
    t_.basis.assign(t_.m, -1);
    for (int r = 0; r < t_.m; ++r) {
      const int slack = t_.n_struct + r;
      const double clamped = std::clamp(resid[r], t_.lb[slack], t_.ub[slack]);
      if (std::abs(resid[r] - clamped) <= opt_.tol) {
        set_basic(slack, r, resid[r]);
      } else {
        // Slack rests at its nearest bound; an artificial carries the rest.
        t_.status[slack] =
            clamped == t_.lb[slack] ? VarStatus::AtLower : VarStatus::AtUpper;
        t_.value[slack] = clamped;
        const double excess = resid[r] - clamped;
        Column art;
        art.row.push_back(r);
        art.coef.push_back(excess > 0 ? 1.0 : -1.0);
        t_.cols.push_back(std::move(art));
        t_.lb.push_back(0.0);
        t_.ub.push_back(kInfinity);
        t_.value.push_back(std::abs(excess));
        t_.status.push_back(VarStatus::Basic);
        t_.basis_row.push_back(r);
        const int art_col = t_.num_cols() - 1;
        t_.basis[r] = art_col;
        t_.artificials.push_back(art_col);
      }
    }
    // Basis is (a signed permutation of) the identity; its inverse too.
    t_.binv.assign(static_cast<std::size_t>(t_.m) * t_.m, 0.0);
    for (int r = 0; r < t_.m; ++r) {
      const int j = t_.basis[r];
      // Slack coefficient is +1; artificial coefficient is +/-1.
      t_.inv(r, r) = 1.0 / t_.cols[j].coef[0];
    }
  }

  void set_basic(int col, int row, double value) {
    t_.status[col] = VarStatus::Basic;
    t_.value[col] = value;
    t_.basis[row] = col;
    t_.basis_row[col] = row;
  }

  std::vector<double> compute_y(const std::vector<double>& c) const {
    std::vector<double> y(t_.m, 0.0);
    for (int i = 0; i < t_.m; ++i) {
      const double cb = c[t_.basis[i]];
      if (cb == 0.0) continue;
      for (int k = 0; k < t_.m; ++k) y[k] += cb * t_.inv(i, k);
    }
    return y;
  }

  double reduced_cost(int j, const std::vector<double>& c,
                      const std::vector<double>& y) const {
    double d = c[j];
    const Column& col = t_.cols[j];
    for (std::size_t k = 0; k < col.row.size(); ++k) {
      d -= y[col.row[k]] * col.coef[k];
    }
    return d;
  }

  /// B^{-1} a_j.
  std::vector<double> ftran(int j) const {
    std::vector<double> w(t_.m, 0.0);
    const Column& col = t_.cols[j];
    for (std::size_t k = 0; k < col.row.size(); ++k) {
      const int r = col.row[k];
      const double a = col.coef[k];
      for (int i = 0; i < t_.m; ++i) w[i] += t_.inv(i, r) * a;
    }
    return w;
  }

  /// Rebuilds B^{-1} from scratch and recomputes basic values.
  void refactorize() {
    const int m = t_.m;
    if (m == 0) return;
    // Dense B in row-major, augmented Gauss-Jordan to the identity.
    std::vector<double> B(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) {
      const Column& col = t_.cols[t_.basis[i]];
      for (std::size_t k = 0; k < col.row.size(); ++k) {
        B[static_cast<std::size_t>(col.row[k]) * m + i] = col.coef[k];
      }
    }
    std::vector<double> inv(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) inv[static_cast<std::size_t>(i) * m + i] = 1.0;
    auto bat = [&](std::vector<double>& mat, int i, int k) -> double& {
      return mat[static_cast<std::size_t>(i) * m + k];
    };
    for (int col = 0; col < m; ++col) {
      int piv = col;
      double best = std::abs(bat(B, col, col));
      for (int i = col + 1; i < m; ++i) {
        if (std::abs(bat(B, i, col)) > best) {
          best = std::abs(bat(B, i, col));
          piv = i;
        }
      }
      if (best < 1e-12) {
        throw std::runtime_error("simplex: singular basis during refactorize");
      }
      if (piv != col) {
        for (int k = 0; k < m; ++k) {
          std::swap(bat(B, piv, k), bat(B, col, k));
          std::swap(bat(inv, piv, k), bat(inv, col, k));
        }
      }
      const double p = bat(B, col, col);
      for (int k = 0; k < m; ++k) {
        bat(B, col, k) /= p;
        bat(inv, col, k) /= p;
      }
      for (int i = 0; i < m; ++i) {
        if (i == col) continue;
        const double f = bat(B, i, col);
        if (f == 0.0) continue;
        for (int k = 0; k < m; ++k) {
          bat(B, i, k) -= f * bat(B, col, k);
          bat(inv, i, k) -= f * bat(inv, col, k);
        }
      }
    }
    t_.binv = std::move(inv);
    recompute_basic_values();
  }

  void recompute_basic_values() {
    // x_B = B^{-1} (b - A_N x_N)
    std::vector<double> rhs = t_.b;
    for (int j = 0; j < t_.num_cols(); ++j) {
      if (t_.status[j] == VarStatus::Basic || t_.value[j] == 0.0) continue;
      const Column& col = t_.cols[j];
      for (std::size_t k = 0; k < col.row.size(); ++k) {
        rhs[col.row[k]] -= col.coef[k] * t_.value[j];
      }
    }
    for (int i = 0; i < t_.m; ++i) {
      double v = 0;
      for (int k = 0; k < t_.m; ++k) v += t_.inv(i, k) * rhs[k];
      t_.value[t_.basis[i]] = v;
    }
  }

  /// One simplex phase.  Returns Optimal, Unbounded or IterationLimit.
  SolveStatus iterate(const std::vector<double>& c, bool phase1) {
    int degenerate_run = 0;
    int since_refactor = 0;
    while (true) {
      if (iterations_++ >= max_iterations_) return SolveStatus::IterationLimit;
      const bool bland = degenerate_run >= opt_.bland_threshold;
      const std::vector<double> y = compute_y(c);

      // --- Pricing ---
      int enter = -1;
      double enter_d = 0;
      double best = opt_.tol;
      for (int j = 0; j < t_.num_cols(); ++j) {
        if (t_.status[j] == VarStatus::Basic || t_.is_fixed(j)) continue;
        const double d = reduced_cost(j, c, y);
        double violation = 0;
        if (t_.status[j] == VarStatus::AtLower && d < -opt_.tol) violation = -d;
        else if (t_.status[j] == VarStatus::AtUpper && d > opt_.tol) violation = d;
        else if (t_.status[j] == VarStatus::Free && std::abs(d) > opt_.tol)
          violation = std::abs(d);
        if (violation <= 0) continue;
        if (bland) {  // first eligible index
          enter = j;
          enter_d = d;
          break;
        }
        if (violation > best) {
          best = violation;
          enter = j;
          enter_d = d;
        }
      }
      if (enter < 0) return SolveStatus::Optimal;

      // Direction: sigma=+1 when the entering variable increases.
      const double sigma =
          (t_.status[enter] == VarStatus::AtUpper ||
           (t_.status[enter] == VarStatus::Free && enter_d > 0))
              ? -1.0
              : 1.0;
      const std::vector<double> w = ftran(enter);

      // --- Ratio test ---
      double t_max = kInfinity;
      int leave_pos = -1;
      bool leave_to_upper = false;
      for (int i = 0; i < t_.m; ++i) {
        const double coef = sigma * w[i];
        const int bj = t_.basis[i];
        if (coef > opt_.pivot_tol) {
          if (!std::isfinite(t_.lb[bj])) continue;
          const double room = std::max(0.0, t_.value[bj] - t_.lb[bj]);
          const double ratio = room / coef;
          if (ratio < t_max - opt_.tol ||
              (ratio < t_max + opt_.tol &&
               (leave_pos < 0 || bj < t_.basis[leave_pos]))) {
            t_max = std::min(t_max, ratio);
            leave_pos = i;
            leave_to_upper = false;
          }
        } else if (coef < -opt_.pivot_tol) {
          if (!std::isfinite(t_.ub[bj])) continue;
          const double room = std::max(0.0, t_.ub[bj] - t_.value[bj]);
          const double ratio = room / (-coef);
          if (ratio < t_max - opt_.tol ||
              (ratio < t_max + opt_.tol &&
               (leave_pos < 0 || bj < t_.basis[leave_pos]))) {
            t_max = std::min(t_max, ratio);
            leave_pos = i;
            leave_to_upper = true;
          }
        }
      }
      // Bound-flip of the entering variable itself.
      const double span = t_.ub[enter] - t_.lb[enter];
      bool flip = false;
      if (std::isfinite(span) && span < t_max - opt_.tol) {
        t_max = span;
        flip = true;
      }
      if (!std::isfinite(t_max)) {
        // Phase 1 minimizes a nonnegative sum, so it cannot be unbounded;
        // hitting this in phase 1 indicates numerical trouble.
        return phase1 ? SolveStatus::NotSolved : SolveStatus::Unbounded;
      }
      t_max = std::max(0.0, t_max);
      degenerate_run = t_max <= opt_.tol ? degenerate_run + 1 : 0;

      // --- Apply the step ---
      for (int i = 0; i < t_.m; ++i) {
        t_.value[t_.basis[i]] -= sigma * t_max * w[i];
      }
      if (flip) {
        t_.status[enter] = t_.status[enter] == VarStatus::AtLower
                               ? VarStatus::AtUpper
                               : VarStatus::AtLower;
        t_.value[enter] = resting_value(t_.status[enter], t_.lb[enter], t_.ub[enter]);
        continue;
      }
      const double enter_value = t_.value[enter] + sigma * t_max;
      const int leave = t_.basis[leave_pos];
      // Leaving variable snaps exactly onto the bound it hit.
      t_.status[leave] = leave_to_upper ? VarStatus::AtUpper : VarStatus::AtLower;
      t_.value[leave] = leave_to_upper ? t_.ub[leave] : t_.lb[leave];
      t_.basis_row[leave] = -1;
      // Freeze artificials once they leave the basis.
      if (leave >= t_.n_struct + t_.m) {
        t_.lb[leave] = t_.ub[leave] = 0.0;
        t_.value[leave] = 0.0;
        t_.status[leave] = VarStatus::AtLower;
      }
      set_basic(enter, leave_pos, enter_value);

      // --- Update B^{-1} (pivot on w[leave_pos]) ---
      const double pivot = w[leave_pos];
      if (std::abs(pivot) < opt_.pivot_tol) {
        refactorize();
        since_refactor = 0;
        continue;
      }
      for (int i = 0; i < t_.m; ++i) {
        if (i == leave_pos) continue;
        const double f = w[i] / pivot;
        if (f == 0.0) continue;
        for (int k = 0; k < t_.m; ++k) t_.inv(i, k) -= f * t_.inv(leave_pos, k);
      }
      for (int k = 0; k < t_.m; ++k) t_.inv(leave_pos, k) /= pivot;

      if (++since_refactor >= opt_.refactor_interval) {
        refactorize();
        since_refactor = 0;
      }
    }
  }

  SimplexOptions opt_;
  Tableau t_;
  std::vector<double> cost_;  // minimization costs over all columns
  double sign_ = 1.0;
  int iterations_ = 0;
  int max_iterations_ = 0;
};

}  // namespace

namespace {

/// Geometric-mean equilibration: substitute x_j = col[j] * x'_j and multiply
/// row i by row[i] so that nonzero magnitudes cluster around 1.
struct Scaled {
  LinearProblem problem;
  std::vector<double> row;  // row multipliers
  std::vector<double> col;  // column multipliers (x = col .* x')
};

Scaled scale_problem(const LinearProblem& p) {
  const int n = p.num_variables();
  const int m = p.num_rows();
  Scaled s;
  s.row.assign(m, 1.0);
  s.col.assign(n, 1.0);
  const auto geo = [](double lo, double hi) { return std::sqrt(lo * hi); };
  for (int pass = 0; pass < 3; ++pass) {
    // Rows.
    for (int r = 0; r < m; ++r) {
      double lo = 0, hi = 0;
      for (const RowEntry& e : p.row(r).entries) {
        const double a = std::abs(e.coef) * s.col[e.col] * s.row[r];
        if (a == 0) continue;
        if (lo == 0 || a < lo) lo = a;
        if (a > hi) hi = a;
      }
      if (hi > 0) s.row[r] /= geo(lo, hi);
    }
    // Columns.
    std::vector<double> col_lo(n, 0), col_hi(n, 0);
    for (int r = 0; r < m; ++r) {
      for (const RowEntry& e : p.row(r).entries) {
        const double a = std::abs(e.coef) * s.col[e.col] * s.row[r];
        if (a == 0) continue;
        if (col_lo[e.col] == 0 || a < col_lo[e.col]) col_lo[e.col] = a;
        if (a > col_hi[e.col]) col_hi[e.col] = a;
      }
    }
    for (int j = 0; j < n; ++j) {
      if (col_hi[j] > 0) s.col[j] /= geo(col_lo[j], col_hi[j]);
    }
  }
  // Assemble the scaled problem.
  s.problem.set_sense(p.sense());
  for (int j = 0; j < n; ++j) {
    const double c = s.col[j];
    const double lb = p.lower_bound(j);
    const double ub = p.upper_bound(j);
    s.problem.add_variable(std::isfinite(lb) ? lb / c : lb,
                           std::isfinite(ub) ? ub / c : ub,
                           p.objective_coef(j) * c, p.variable_name(j));
  }
  for (int r = 0; r < m; ++r) {
    const Row& row = p.row(r);
    std::vector<RowEntry> entries;
    entries.reserve(row.entries.size());
    for (const RowEntry& e : row.entries) {
      entries.push_back({e.col, e.coef * s.row[r] * s.col[e.col]});
    }
    s.problem.add_row(row.type, row.rhs * s.row[r], std::move(entries),
                      row.name);
  }
  return s;
}

}  // namespace

LpSolution SimplexSolver::solve(const LinearProblem& problem) const {
  problem.validate();
  if (!options_.scale) {
    Engine engine(problem, options_);
    return engine.run();
  }
  const Scaled scaled = scale_problem(problem);
  Engine engine(scaled.problem, options_);
  LpSolution sol = engine.run();
  if (sol.status == SolveStatus::Optimal) {
    for (int j = 0; j < problem.num_variables(); ++j) {
      sol.x[j] *= scaled.col[j];
    }
    for (int r = 0; r < problem.num_rows(); ++r) {
      sol.duals[r] *= scaled.row[r];
    }
    // c' x' == c x, so the objective needs no adjustment; recompute anyway
    // to wash out scaling round-off.
    sol.objective = problem.objective_value(sol.x);
  }
  return sol;
}

}  // namespace metis::lp
