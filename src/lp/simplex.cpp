#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lp/presolve.h"
#include "util/log.h"
#include "util/numeric.h"
#include "util/telemetry.h"

namespace metis::lp {

namespace {

enum class VarStatus { Basic, AtLower, AtUpper, Free };

/// Sparse column: the nonzeros of one variable across all rows.
struct Column {
  std::vector<int> row;
  std::vector<double> coef;
};

/// Whole working state of one solve.  All columns (structural, slack,
/// artificial) share the index space [0, num_cols).
struct Tableau {
  int m = 0;                 // rows
  int n_struct = 0;          // structural columns
  std::vector<Column> cols;  // per column nonzeros
  std::vector<double> lb, ub, value;
  std::vector<VarStatus> status;
  std::vector<double> b;       // row rhs
  std::vector<int> basis;      // basis[k] = column basic at position k
  std::vector<int> basis_row;  // basis_row[j] = position of basic col j, or -1
  std::vector<int> artificials;

  int num_cols() const { return static_cast<int>(cols.size()); }
  bool is_fixed(int j) const { return lb[j] == ub[j]; }
};

/// Sparse LU factorization of the basis (left-looking elimination with
/// partial pivoting; deterministic ties to the smallest row index) plus a
/// product-form eta file appended per pivot between refactorizations.
///
/// The factorization satisfies  P * (prod_j Lhat_j) * B = U  where Lhat_j
/// is the elementary elimination of pivot j, P gathers pivot rows into
/// basis-position order, and U is upper triangular in position space, so
///   FTRAN: w = B^{-1} a = U^{-1} P (prod Lhat) a   then forward etas,
///   BTRAN: y = B^{-T} c  via reverse transposed etas, forward U^T-solve,
///          scatter through P^T, backward transposed Lhat application.
/// FTRAN results are indexed by basis position; BTRAN results by row.
class BasisFactor {
 public:
  /// Factorizes the columns `basis[k]` of `t`.  Clears the eta file.
  /// Returns false when the basis is numerically singular.
  bool factorize(const Tableau& t, const std::vector<int>& basis) {
    m_ = static_cast<int>(basis.size());
    lcols_.assign(m_, {});
    ucols_.assign(m_, {});
    pivot_row_.assign(m_, -1);
    etas_.clear();
    std::vector<int> pivot_pos(m_, -1);  // row -> pivot position, or -1
    std::vector<double> x(m_, 0.0);
    std::vector<char> seen(m_, 0);
    std::vector<int> touched;
    touched.reserve(m_);
    const auto touch = [&](int r) {
      if (!seen[r]) {
        seen[r] = 1;
        touched.push_back(r);
      }
    };
    for (int k = 0; k < m_; ++k) {
      const Column& col = t.cols[basis[k]];
      for (std::size_t i = 0; i < col.row.size(); ++i) {
        x[col.row[i]] = col.coef[i];
        touch(col.row[i]);
      }
      // Left-looking: apply earlier pivots in order; the value sitting on
      // pivot row j right before its elimination is exactly U's entry u_jk.
      UCol& u = ucols_[k];
      for (int j = 0; j < k; ++j) {
        const double xr = x[pivot_row_[j]];
        if (xr == 0.0) continue;
        u.pos.push_back(j);
        u.val.push_back(xr);
        const LCol& l = lcols_[j];
        for (std::size_t i = 0; i < l.row.size(); ++i) {
          x[l.row[i]] -= l.mult[i] * xr;
          touch(l.row[i]);
        }
      }
      // Partial pivoting over rows not yet claimed by an earlier pivot.
      int piv = -1;
      double best = 0.0;
      for (int r : touched) {
        if (pivot_pos[r] >= 0) continue;
        const double a = std::abs(x[r]);
        if (a > best || (a == best && a > 0.0 && r < piv)) {
          best = a;
          piv = r;
        }
      }
      if (piv < 0 || best < num::kSingularTol) {
        // Singular: no acceptable pivot for basis position k.  Record
        // which position failed and which rows no earlier pivot claimed
        // (ascending), so the caller can repair the basis deterministically
        // instead of giving up.
        fail_pos_ = k;
        fail_rows_.clear();
        for (int r = 0; r < m_; ++r) {
          if (pivot_pos[r] < 0) fail_rows_.push_back(r);
        }
        for (int r : touched) {
          x[r] = 0.0;
          seen[r] = 0;
        }
        return false;
      }
      pivot_row_[k] = piv;
      pivot_pos[piv] = k;
      u.diag = x[piv];
      LCol& l = lcols_[k];
      for (int r : touched) {
        if (pivot_pos[r] >= 0 || x[r] == 0.0) continue;
        l.row.push_back(r);
        l.mult.push_back(x[r] / u.diag);
      }
      for (int r : touched) {
        x[r] = 0.0;
        seen[r] = 0;
      }
      touched.clear();
    }
    return true;
  }

  /// Solves B z = w.  `w` arrives in row space (and is clobbered); `z`
  /// leaves in basis-position space.
  void ftran(std::vector<double>& w, std::vector<double>& z) const {
    for (int j = 0; j < m_; ++j) {
      const double xr = w[pivot_row_[j]];
      if (xr == 0.0) continue;
      const LCol& l = lcols_[j];
      for (std::size_t i = 0; i < l.row.size(); ++i) {
        w[l.row[i]] -= l.mult[i] * xr;
      }
    }
    z.assign(m_, 0.0);
    for (int k = 0; k < m_; ++k) z[k] = w[pivot_row_[k]];
    for (int k = m_ - 1; k >= 0; --k) {
      if (z[k] == 0.0) continue;
      z[k] /= ucols_[k].diag;
      const UCol& u = ucols_[k];
      for (std::size_t i = 0; i < u.pos.size(); ++i) {
        z[u.pos[i]] -= u.val[i] * z[k];
      }
    }
    for (const Eta& e : etas_) {
      const double zr = z[e.r] / e.pivot;
      if (zr != 0.0) {
        for (std::size_t i = 0; i < e.idx.size(); ++i) {
          z[e.idx[i]] -= e.val[i] * zr;
        }
      }
      z[e.r] = zr;
    }
  }

  /// Solves B^T y = z.  `z` arrives in basis-position space (and is
  /// clobbered); `y` leaves in row space.
  void btran(std::vector<double>& z, std::vector<double>& y) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double acc = z[it->r];
      for (std::size_t i = 0; i < it->idx.size(); ++i) {
        acc -= it->val[i] * z[it->idx[i]];
      }
      z[it->r] = acc / it->pivot;
    }
    for (int k = 0; k < m_; ++k) {
      double acc = z[k];
      const UCol& u = ucols_[k];
      for (std::size_t i = 0; i < u.pos.size(); ++i) {
        acc -= u.val[i] * z[u.pos[i]];
      }
      z[k] = acc / ucols_[k].diag;
    }
    y.assign(m_, 0.0);
    for (int k = 0; k < m_; ++k) y[pivot_row_[k]] = z[k];
    for (int j = m_ - 1; j >= 0; --j) {
      const LCol& l = lcols_[j];
      double acc = y[pivot_row_[j]];
      for (std::size_t i = 0; i < l.row.size(); ++i) {
        acc -= l.mult[i] * y[l.row[i]];
      }
      y[pivot_row_[j]] = acc;
    }
  }

  /// Records the basis change at position `r` with FTRAN spike `w`
  /// (position space): new B = old B * E where E's column r is w.
  void push_eta(int r, const std::vector<double>& w) {
    Eta e;
    e.r = r;
    e.pivot = w[r];
    for (int i = 0; i < m_; ++i) {
      if (i != r && w[i] != 0.0) {
        e.idx.push_back(i);
        e.val.push_back(w[i]);
      }
    }
    etas_.push_back(std::move(e));
  }

  int eta_count() const { return static_cast<int>(etas_.size()); }

  /// After a failed factorize: the basis position whose column had no
  /// acceptable pivot, and the rows left unclaimed (ascending).
  int fail_pos() const { return fail_pos_; }
  const std::vector<int>& fail_rows() const { return fail_rows_; }

 private:
  struct LCol {  // elimination multipliers of one pivot, by original row
    std::vector<int> row;
    std::vector<double> mult;
  };
  struct UCol {  // strictly-upper entries (by pivot position) + diagonal
    std::vector<int> pos;
    std::vector<double> val;
    double diag = 0;
  };
  struct Eta {  // product-form update at position r with spike (idx, val)
    int r = 0;
    double pivot = 0;
    std::vector<int> idx;
    std::vector<double> val;
  };

  int m_ = 0;
  std::vector<LCol> lcols_;
  std::vector<UCol> ucols_;
  std::vector<int> pivot_row_;  // pivot_row_[k] = original row of pivot k
  std::vector<Eta> etas_;
  int fail_pos_ = -1;           // basis position of the last failure
  std::vector<int> fail_rows_;  // unclaimed rows of the last failure
};

/// Builds sparse columns from the row-wise LinearProblem, merging duplicate
/// column references within a row.
void build_structural(const LinearProblem& p, Tableau& t) {
  t.m = p.num_rows();
  t.n_struct = p.num_variables();
  t.cols.resize(t.n_struct);
  t.lb.resize(t.n_struct);
  t.ub.resize(t.n_struct);
  for (int j = 0; j < t.n_struct; ++j) {
    t.lb[j] = p.lower_bound(j);
    t.ub[j] = p.upper_bound(j);
  }
  // Collect (row, col) -> coef with duplicate merging.
  std::vector<std::map<int, double>> by_col(t.n_struct);
  for (int r = 0; r < t.m; ++r) {
    for (const RowEntry& e : p.row(r).entries) {
      by_col[e.col][r] += e.coef;
    }
  }
  for (int j = 0; j < t.n_struct; ++j) {
    for (const auto& [r, c] : by_col[j]) {
      if (c != 0.0) {
        t.cols[j].row.push_back(r);
        t.cols[j].coef.push_back(c);
      }
    }
  }
  t.b.resize(t.m);
  for (int r = 0; r < t.m; ++r) t.b[r] = p.row(r).rhs;
}

/// Appends one slack column per row (coefficient +1).
void add_slacks(const LinearProblem& p, Tableau& t) {
  for (int r = 0; r < t.m; ++r) {
    Column col;
    col.row.push_back(r);
    col.coef.push_back(1.0);
    t.cols.push_back(std::move(col));
    switch (p.row(r).type) {
      case RowType::LessEqual:
        t.lb.push_back(0.0);
        t.ub.push_back(kInfinity);
        break;
      case RowType::GreaterEqual:
        t.lb.push_back(-kInfinity);
        t.ub.push_back(0.0);
        break;
      case RowType::Equal:
        t.lb.push_back(0.0);
        t.ub.push_back(0.0);
        break;
    }
  }
}

/// Chooses the initial resting point of a nonbasic column.
VarStatus initial_status(double lb, double ub) {
  if (std::isfinite(lb)) return VarStatus::AtLower;
  if (std::isfinite(ub)) return VarStatus::AtUpper;
  return VarStatus::Free;
}

double resting_value(VarStatus s, double lb, double ub) {
  switch (s) {
    case VarStatus::AtLower: return lb;
    case VarStatus::AtUpper: return ub;
    default: return 0.0;
  }
}

/// Maps a snapshot status onto a legal resting status for bounds [lb, ub]
/// (a snapshot from a differently-bounded problem may name an infinite
/// bound; fall back to the standard resting choice rather than reject).
VarStatus remap_status(BasisStatus s, double lb, double ub) {
  switch (s) {
    case BasisStatus::Basic:
      return VarStatus::Basic;
    case BasisStatus::AtLower:
      return std::isfinite(lb) ? VarStatus::AtLower : initial_status(lb, ub);
    case BasisStatus::AtUpper:
      return std::isfinite(ub) ? VarStatus::AtUpper : initial_status(lb, ub);
    case BasisStatus::Free:
      return (std::isfinite(lb) || std::isfinite(ub)) ? initial_status(lb, ub)
                                                      : VarStatus::Free;
  }
  return VarStatus::Free;
}

class Engine {
 public:
  Engine(const LinearProblem& p, const SimplexOptions& opt) : opt_(opt) {
    build_structural(p, t_);
    add_slacks(p, t_);
    max_iterations_ = opt_.max_iterations > 0
                          ? opt_.max_iterations
                          : 200 * (t_.m + t_.n_struct) + 2000;
    // Objective in minimization form over all columns.
    sign_ = p.sense() == Sense::Minimize ? 1.0 : -1.0;
    cost_.assign(t_.num_cols(), 0.0);
    for (int j = 0; j < t_.n_struct; ++j) {
      cost_[j] = sign_ * p.objective_coef(j);
    }
  }

  /// Attempts to adopt a basis snapshot: shape-compatible, exactly m basic
  /// columns, factorizable, and the implied basic values within bounds.
  /// On rejection the engine is left for init_basis() to (re)set.
  bool try_warm_start(const Basis& snapshot) {
    if (!snapshot.compatible(t_.n_struct, t_.m)) return false;
    const int total = t_.num_cols();
    std::vector<VarStatus> status(total);
    std::vector<int> basic;
    basic.reserve(t_.m);
    for (int j = 0; j < total; ++j) {
      status[j] = remap_status(snapshot.status[j], t_.lb[j], t_.ub[j]);
      if (status[j] == VarStatus::Basic) basic.push_back(j);
    }
    if (static_cast<int>(basic.size()) != t_.m) return false;
    if (!factor_.factorize(t_, basic)) return false;
    ++factorizations_;
    t_.status = std::move(status);
    t_.basis = std::move(basic);
    t_.basis_row.assign(total, -1);
    t_.value.assign(total, 0.0);
    for (int k = 0; k < t_.m; ++k) t_.basis_row[t_.basis[k]] = k;
    for (int j = 0; j < total; ++j) {
      if (t_.status[j] != VarStatus::Basic) {
        t_.value[j] = resting_value(t_.status[j], t_.lb[j], t_.ub[j]);
      }
    }
    recompute_basic_values();
    for (int k = 0; k < t_.m; ++k) {
      const int j = t_.basis[k];
      const double v = t_.value[j];
      if (!num::approx_ge(v, t_.lb[j], v, num::kOptTol) ||
          !num::approx_le(v, t_.ub[j], v, num::kOptTol)) {
        return false;
      }
    }
    return true;
  }

  /// Runs the solve.  `warm` means try_warm_start succeeded: the current
  /// basis is primal feasible, so phase 1 is skipped entirely.
  LpSolution run(bool warm) {
    LpSolution out;
    if (!warm) {
      init_basis();
      if (!t_.artificials.empty()) {
        std::vector<double> phase1(t_.num_cols(), 0.0);
        for (int a : t_.artificials) phase1[a] = 1.0;
        const SolveStatus s1 = timed_iterate(phase1, /*phase1=*/true);
        if (s1 != SolveStatus::Optimal) {
          out.status = s1;
          finish_stats(out);
          return out;
        }
        double infeas = 0;
        for (int a : t_.artificials) infeas += t_.value[a];
        // Residual infeasibility is judged relative to the RHS magnitude:
        // the same leftover that is round-off against b ~ 1e6 is a real
        // violation against b ~ 1.
        double bscale = 0;
        for (double b : t_.b) bscale = std::max(bscale, std::abs(b));
        if (!num::approx_le(infeas, 0.0, bscale, num::kOptTol)) {
          out.status = SolveStatus::Infeasible;
          finish_stats(out);
          return out;
        }
        // Freeze all artificials at zero for phase 2.
        for (int a : t_.artificials) {
          t_.lb[a] = t_.ub[a] = 0.0;
          t_.value[a] = 0.0;
          if (t_.basis_row[a] < 0) t_.status[a] = VarStatus::AtLower;
        }
      }
    }
    // Grow the cost vector to cover artificial columns (cost 0).
    cost_.resize(t_.num_cols(), 0.0);
    const SolveStatus s2 = timed_iterate(cost_, /*phase1=*/false);
    out.status = s2;
    finish_stats(out);
    if (s2 != SolveStatus::Optimal) return out;

    out.x.assign(t_.n_struct, 0.0);
    for (int j = 0; j < t_.n_struct; ++j) out.x[j] = t_.value[j];
    double obj = 0;
    for (int j = 0; j < t_.n_struct; ++j) obj += cost_[j] * t_.value[j];
    out.objective = sign_ * obj;
    // Duals: y = c_B B^{-1}, flipped back for maximization.
    std::vector<double> y = compute_y(cost_);
    out.duals.assign(t_.m, 0.0);
    for (int r = 0; r < t_.m; ++r) out.duals[r] = sign_ * y[r];
    return out;
  }

  /// Snapshot of the final basis, or an empty Basis when no valid snapshot
  /// exists (a degenerate phase 1 can leave an artificial basic at zero;
  /// such a basis does not describe the original column space).
  Basis export_basis() const {
    Basis b;
    for (int a : t_.artificials) {
      if (t_.status[a] == VarStatus::Basic) return b;
    }
    const int total = t_.n_struct + t_.m;
    b.status.resize(total);
    for (int j = 0; j < total; ++j) {
      switch (t_.status[j]) {
        case VarStatus::Basic: b.status[j] = BasisStatus::Basic; break;
        case VarStatus::AtLower: b.status[j] = BasisStatus::AtLower; break;
        case VarStatus::AtUpper: b.status[j] = BasisStatus::AtUpper; break;
        case VarStatus::Free: b.status[j] = BasisStatus::Free; break;
      }
    }
    return b;
  }

 private:
  /// Sets up the slack basis plus artificials for rows whose slack starts
  /// outside its bounds.
  void init_basis() {
    const int total = t_.num_cols();
    t_.value.assign(total, 0.0);
    t_.status.assign(total, VarStatus::AtLower);
    t_.basis_row.assign(total, -1);
    for (int j = 0; j < total; ++j) {
      t_.status[j] = initial_status(t_.lb[j], t_.ub[j]);
      t_.value[j] = resting_value(t_.status[j], t_.lb[j], t_.ub[j]);
    }
    // Residual r_i = b_i - sum over structural nonbasic values.
    std::vector<double> resid = t_.b;
    for (int j = 0; j < t_.n_struct; ++j) {
      if (t_.value[j] == 0.0) continue;
      const Column& col = t_.cols[j];
      for (std::size_t k = 0; k < col.row.size(); ++k) {
        resid[col.row[k]] -= col.coef[k] * t_.value[j];
      }
    }
    t_.basis.assign(t_.m, -1);
    for (int r = 0; r < t_.m; ++r) {
      const int slack = t_.n_struct + r;
      const double clamped = std::clamp(resid[r], t_.lb[slack], t_.ub[slack]);
      if (std::abs(resid[r] - clamped) <= opt_.tol) {
        set_basic(slack, r, resid[r]);
      } else {
        // Slack rests at its nearest bound; an artificial carries the rest.
        t_.status[slack] =
            clamped == t_.lb[slack] ? VarStatus::AtLower : VarStatus::AtUpper;
        t_.value[slack] = clamped;
        const double excess = resid[r] - clamped;
        Column art;
        art.row.push_back(r);
        art.coef.push_back(excess > 0 ? 1.0 : -1.0);
        t_.cols.push_back(std::move(art));
        t_.lb.push_back(0.0);
        t_.ub.push_back(kInfinity);
        t_.value.push_back(std::abs(excess));
        t_.status.push_back(VarStatus::Basic);
        t_.basis_row.push_back(r);
        const int art_col = t_.num_cols() - 1;
        t_.basis[r] = art_col;
        t_.artificials.push_back(art_col);
      }
    }
    refactorize();
  }

  void set_basic(int col, int row, double value) {
    t_.status[col] = VarStatus::Basic;
    t_.value[col] = value;
    t_.basis[row] = col;
    t_.basis_row[col] = row;
  }

  std::vector<double> compute_y(const std::vector<double>& c) const {
    std::vector<double> z(t_.m, 0.0);
    for (int k = 0; k < t_.m; ++k) z[k] = c[t_.basis[k]];
    std::vector<double> y;
    factor_.btran(z, y);
    return y;
  }

  double reduced_cost(int j, const std::vector<double>& c,
                      const std::vector<double>& y) const {
    double d = c[j];
    const Column& col = t_.cols[j];
    for (std::size_t k = 0; k < col.row.size(); ++k) {
      d -= y[col.row[k]] * col.coef[k];
    }
    return d;
  }

  /// B^{-1} a_j, indexed by basis position.
  std::vector<double> ftran(int j) const {
    std::vector<double> w(t_.m, 0.0);
    const Column& col = t_.cols[j];
    for (std::size_t k = 0; k < col.row.size(); ++k) {
      w[col.row[k]] = col.coef[k];
    }
    std::vector<double> z;
    factor_.ftran(w, z);
    return z;
  }

  /// rho = B^{-T} e_r: row r of B^{-1}.  rho . a_j is entry j of the pivot
  /// row, the quantity the devex weight recurrence needs per nonbasic
  /// column.
  std::vector<double> btran_unit(int r) const {
    std::vector<double> z(t_.m, 0.0);
    z[r] = 1.0;
    std::vector<double> rho;
    factor_.btran(z, rho);
    return rho;
  }

  /// Refactorizes the current basis from scratch and recomputes values.
  /// Also resets the devex reference weights to a fresh reference
  /// framework: the refactorization interval bounds how far the weight
  /// recurrence can grow/drift, and a reset alongside the exact recompute
  /// keeps the pricing frame and the numerical frame in lockstep.
  void refactorize() {
    if (t_.m == 0) return;
    int repairs = 0;
    while (!factor_.factorize(t_, t_.basis)) {
      // A run of numerically tiny (but individually acceptable) pivots can
      // leave the basis columns dependent to working precision.  The old
      // behaviour was a hard throw; repair instead, so one bad pivot
      // sequence cannot kill a whole solve.  Each repair claims one more
      // row, so the loop terminates; the cap keeps the old throw as a
      // backstop against pathological inputs.
      if (++repairs > t_.m) {
        throw std::runtime_error("simplex: singular basis during refactorize");
      }
      repair_basis(factor_.fail_pos(), factor_.fail_rows());
    }
    basis_repairs_ += repairs;
    ++factorizations_;
    recompute_basic_values();
    if (opt_.pricing == PricingRule::Devex) reset_devex();
  }

  /// Deterministic singular-basis repair: the LU found no acceptable pivot
  /// for the column at basis position `pos` — it is numerically dependent
  /// on the other basis columns.  Swap in the slack of the smallest
  /// unclaimed row whose slack is still nonbasic (a unit column on an
  /// unclaimed row is independent of everything already factored) and rest
  /// the displaced column at its nearest bound.
  void repair_basis(int pos, const std::vector<int>& unclaimed) {
    int row = unclaimed.empty() ? -1 : unclaimed.front();
    for (int r : unclaimed) {
      if (t_.basis_row[t_.n_struct + r] < 0) {
        row = r;
        break;
      }
    }
    if (row < 0) {
      throw std::runtime_error("simplex: singular basis during refactorize");
    }
    const int out = t_.basis[pos];
    const int slack = t_.n_struct + row;
    t_.status[out] = initial_status(t_.lb[out], t_.ub[out]);
    t_.value[out] = resting_value(t_.status[out], t_.lb[out], t_.ub[out]);
    t_.basis_row[out] = -1;
    set_basic(slack, pos, t_.value[slack]);
  }

  void recompute_basic_values() {
    // x_B = B^{-1} (b - A_N x_N)
    std::vector<double> rhs = t_.b;
    for (int j = 0; j < t_.num_cols(); ++j) {
      if (t_.status[j] == VarStatus::Basic || t_.value[j] == 0.0) continue;
      const Column& col = t_.cols[j];
      for (std::size_t k = 0; k < col.row.size(); ++k) {
        rhs[col.row[k]] -= col.coef[k] * t_.value[j];
      }
    }
    std::vector<double> z;
    factor_.ftran(rhs, z);
    for (int k = 0; k < t_.m; ++k) t_.value[t_.basis[k]] = z[k];
  }

  /// One simplex phase.  Returns Optimal, Unbounded or IterationLimit.
  /// iterate() under a per-phase trace span, so lp_solve/phase1 vs /phase2
  /// pivot time is separable in the telemetry export.
  SolveStatus timed_iterate(const std::vector<double>& c, bool phase1) {
    METIS_SPAN(phase1 ? "phase1" : "phase2");
    return iterate(c, phase1);
  }

  /// Outcome of a ratio test: the step length, the blocking basis position
  /// (-1 when no bound blocks), and which bound the leaving variable hits.
  struct RatioChoice {
    double t_max = kInfinity;
    int leave_pos = -1;
    bool leave_to_upper = false;
  };

  /// Textbook smallest-ratio rule, two-pass.  Pass 1 finds the exact
  /// minimum ratio; pass 2 tie-breaks to the smallest basis column index
  /// among candidates within round-off (kTieTol, relative) of that *final*
  /// minimum.  The band must be round-off sized and anchored at the final
  /// minimum: the old one-pass rule banded against the running minimum with
  /// the feasibility tolerance, which could (a) retain a leaving candidate
  /// whose true ratio exceeds the step by up to `tol` — snapping it onto a
  /// bound it never reached — and (b) skip recording a later, strictly
  /// smaller ratio inside the band, overdriving the true blocker through
  /// its bound.  Both inject up to tol*|coef| of error that, unlike the
  /// Harris budget model's transient *basic* violations, sits on a nonbasic
  /// value and therefore survives every refactorization.
  RatioChoice ratio_test_textbook(double sigma,
                                  const std::vector<double>& w) const {
    RatioChoice out;
    for (int i = 0; i < t_.m; ++i) {
      const double coef = sigma * w[i];
      const int bj = t_.basis[i];
      if (coef > opt_.pivot_tol) {
        if (!std::isfinite(t_.lb[bj])) continue;
        const double room = std::max(0.0, t_.value[bj] - t_.lb[bj]);
        out.t_max = std::min(out.t_max, room / coef);
      } else if (coef < -opt_.pivot_tol) {
        if (!std::isfinite(t_.ub[bj])) continue;
        const double room = std::max(0.0, t_.ub[bj] - t_.value[bj]);
        out.t_max = std::min(out.t_max, room / (-coef));
      }
    }
    if (!std::isfinite(out.t_max)) return out;  // no blocking bound
    const double band = num::kTieTol * num::rel_scale(out.t_max);
    for (int i = 0; i < t_.m; ++i) {
      const double coef = sigma * w[i];
      const int bj = t_.basis[i];
      double ratio;
      bool to_upper;
      if (coef > opt_.pivot_tol && std::isfinite(t_.lb[bj])) {
        ratio = std::max(0.0, t_.value[bj] - t_.lb[bj]) / coef;
        to_upper = false;
      } else if (coef < -opt_.pivot_tol && std::isfinite(t_.ub[bj])) {
        ratio = std::max(0.0, t_.ub[bj] - t_.value[bj]) / (-coef);
        to_upper = true;
      } else {
        continue;
      }
      if (ratio > out.t_max + band) continue;
      if (out.leave_pos < 0 || bj < t_.basis[out.leave_pos]) {
        out.leave_pos = i;
        out.leave_to_upper = to_upper;
      }
    }
    return out;
  }

  /// Harris two-pass ratio test with bounded bound-perturbation.
  ///
  /// Pass 1 computes the relaxed step theta = min_i (room_i + delta_i) /
  /// |coef_i| where delta_i = tol * max(1, |bound_i|) is each bound's
  /// expansion budget.  Pass 2 picks, among the candidates whose TRUE ratio
  /// fits under theta, the numerically largest pivot (deterministic ties to
  /// the smallest basis column index).  The chosen step may push other
  /// basic variables past their bounds, but never by more than their
  /// budget, and refactorization recomputes values from the nonbasic rest
  /// points so the drift does not compound.  Degenerate vertices — tied
  /// zero ratios, exactly what duplicate-rate SPM requests produce — yield
  /// a large stable pivot instead of a forced tiny one, which is what stops
  /// the stalling/cycling the textbook rule is prone to.
  RatioChoice ratio_test_harris(double sigma,
                                const std::vector<double>& w) const {
    RatioChoice out;
    double theta = kInfinity;
    for (int i = 0; i < t_.m; ++i) {
      const double coef = sigma * w[i];
      const int bj = t_.basis[i];
      if (coef > opt_.pivot_tol) {
        if (!std::isfinite(t_.lb[bj])) continue;
        const double room = std::max(0.0, t_.value[bj] - t_.lb[bj]);
        const double budget = opt_.tol * num::rel_scale(t_.lb[bj]);
        theta = std::min(theta, (room + budget) / coef);
      } else if (coef < -opt_.pivot_tol) {
        if (!std::isfinite(t_.ub[bj])) continue;
        const double room = std::max(0.0, t_.ub[bj] - t_.value[bj]);
        const double budget = opt_.tol * num::rel_scale(t_.ub[bj]);
        theta = std::min(theta, (room + budget) / (-coef));
      }
    }
    if (!std::isfinite(theta)) return out;  // no blocking bound
    double best_mag = 0;
    for (int i = 0; i < t_.m; ++i) {
      const double coef = sigma * w[i];
      const int bj = t_.basis[i];
      double ratio;
      bool to_upper;
      if (coef > opt_.pivot_tol && std::isfinite(t_.lb[bj])) {
        ratio = std::max(0.0, t_.value[bj] - t_.lb[bj]) / coef;
        to_upper = false;
      } else if (coef < -opt_.pivot_tol && std::isfinite(t_.ub[bj])) {
        ratio = std::max(0.0, t_.ub[bj] - t_.value[bj]) / (-coef);
        to_upper = true;
      } else {
        continue;
      }
      if (ratio > theta) continue;
      const double mag = std::abs(coef);
      if (mag > best_mag ||
          (mag == best_mag && out.leave_pos >= 0 &&
           bj < t_.basis[out.leave_pos])) {
        best_mag = mag;
        out.t_max = ratio;
        out.leave_pos = i;
        out.leave_to_upper = to_upper;
      }
    }
    return out;
  }

  /// Pricing violation of nonbasic column j given reduced cost d, or 0
  /// when j prices out (not attractive at its resting bound).
  double pricing_violation(int j, double d) const {
    if (t_.status[j] == VarStatus::AtLower && d < -opt_.tol) return -d;
    if (t_.status[j] == VarStatus::AtUpper && d > opt_.tol) return d;
    if (t_.status[j] == VarStatus::Free && std::abs(d) > opt_.tol)
      return std::abs(d);
    return 0.0;
  }

  /// Dantzig full scan: largest violation over every nonbasic column
  /// (smallest index on ties).  Bland mode takes the first eligible index
  /// instead, which guarantees termination.
  int price_dantzig(const std::vector<double>& c, const std::vector<double>& y,
                    bool bland, double* enter_d) {
    ++pricing_passes_;
    int enter = -1;
    double best = 0;
    for (int j = 0; j < t_.num_cols(); ++j) {
      if (t_.status[j] == VarStatus::Basic || t_.is_fixed(j)) continue;
      const double d = reduced_cost(j, c, y);
      const double violation = pricing_violation(j, d);
      if (violation <= 0) continue;
      if (bland) {  // first eligible index
        *enter_d = d;
        return j;
      }
      if (violation > best) {
        best = violation;
        enter = j;
        *enter_d = d;
      }
    }
    return enter;
  }

  /// Devex partial pricing: scan the nonbasic ring in windows of
  /// `pricing_window` columns starting just past the previous entering
  /// column, stopping at the end of the first window that holds an
  /// attractive column; the entering variable maximizes the devex-weighted
  /// violation d_j^2 / w_j (deterministic ties to the smallest column
  /// index).  When every window comes up empty the scan has walked the full
  /// ring — exactly a Dantzig-style full pass — so "no candidate" certifies
  /// optimality under the same tolerance as the full scan.
  int price_devex(const std::vector<double>& c, const std::vector<double>& y,
                  double* enter_d) {
    ++pricing_passes_;
    const int n = t_.num_cols();
    const int window =
        opt_.pricing_window > 0 ? opt_.pricing_window : std::max(64, n / 8);
    int enter = -1;
    double best_score = 0;
    int scanned = 0;
    for (int k = 0; k < n; ++k) {
      int j = window_start_ + k;
      if (j >= n) j -= n;
      ++scanned;
      if (t_.status[j] != VarStatus::Basic && !t_.is_fixed(j)) {
        const double d = reduced_cost(j, c, y);
        const double violation = pricing_violation(j, d);
        if (violation > 0) {
          const double score = violation * violation / devex_[j];
          if (score > best_score ||
              (score == best_score && enter >= 0 && j < enter)) {
            best_score = score;
            enter = j;
            *enter_d = d;
          }
        }
      }
      if (enter >= 0 && (k + 1) % window == 0) break;
    }
    if (scanned >= n) {
      ++full_fallbacks_;
    } else {
      ++partial_hits_;
    }
    if (enter >= 0) window_start_ = enter + 1 == n ? 0 : enter + 1;
    return enter;
  }

  /// Resets every devex reference weight to 1 (a fresh reference
  /// framework).  Called on refactorization — which bounds how stale the
  /// projected-devex weights can get — and therefore also on Bland-mode
  /// entry, whose transition refactorizes.
  void reset_devex() { devex_.assign(t_.num_cols(), 1.0); }

  /// Devex weight update for one pivot (Forrest & Goldfarb's recurrence):
  /// entering column `enter` displaced position `leave_pos`'s variable to
  /// `leave`, with pivot element `alpha` (the FTRAN spike at the pivot
  /// position).  With alpha_j = e_r^T B^{-1} a_j the pivot-row entry of
  /// nonbasic column j,
  ///
  ///    gamma_j    = max(gamma_j, (alpha_j / alpha)^2 * gamma_q)   j != q
  ///    gamma_r    = max(gamma_q / alpha^2, 1)
  ///
  /// which keeps each gamma_j an underestimate-by-design reference-space
  /// proxy for the steepest-edge norm ||B^{-1} a_j||^2.  The pivot row
  /// costs one BTRAN of e_r plus a sweep of the nonbasic columns — the
  /// same O(nnz(A)) order as one Dantzig pricing scan — and buys the
  /// iteration-count reduction that is the whole point of devex; the
  /// partial window then makes the *pricing* side cheap.  Weight growth is
  /// bounded by the refactorization reset (a fresh reference framework
  /// every refactor_interval pivots).
  void update_devex(int enter, int leave, int leave_pos, double alpha) {
    if (alpha == 0.0) return;  // unreachable: the pivot magnitude is checked
    const double gq = std::max(devex_[enter], 1.0);
    const double alpha_sq = alpha * alpha;
    const std::vector<double> rho = btran_unit(leave_pos);
    for (int j = 0; j < t_.num_cols(); ++j) {
      if (t_.status[j] == VarStatus::Basic || t_.is_fixed(j) || j == enter) {
        continue;
      }
      const Column& col = t_.cols[j];
      double aj = 0;
      for (std::size_t k = 0; k < col.row.size(); ++k) {
        aj += rho[col.row[k]] * col.coef[k];
      }
      if (aj == 0.0) continue;
      const double cand = aj * aj / alpha_sq * gq;
      if (cand > devex_[j]) devex_[j] = cand;
    }
    devex_[leave] = std::max(gq / alpha_sq, 1.0);
  }

  SolveStatus iterate(const std::vector<double>& c, bool phase1) {
    int degenerate_run = 0;
    const bool devex = opt_.pricing == PricingRule::Devex;
    if (devex) reset_devex();
    while (true) {
      if (iterations_++ >= max_iterations_) return SolveStatus::IterationLimit;
      const bool bland = degenerate_run >= opt_.bland_threshold;
      // Reinversion trigger 1 (deterministic: a pure function of the pivot
      // sequence): on the transition into Bland's anti-cycling mode,
      // refactorize once so the endgame prices against exact basic values
      // instead of the drift the Harris bound-expansion accumulated.  The
      // refactorization also resets the devex weights, so Bland's endgame
      // never prices on a stale reference framework.
      if (degenerate_run == opt_.bland_threshold) refactorize();
      const std::vector<double> y = compute_y(c);

      // --- Pricing (devex partial by default; see simplex.h) ---
      int enter = -1;
      double enter_d = 0;
      if (devex && !bland) {
        enter = price_devex(c, y, &enter_d);
      } else {
        enter = price_dantzig(c, y, bland, &enter_d);
      }
      if (enter < 0) return SolveStatus::Optimal;

      // Direction: sigma=+1 when the entering variable increases.
      const double sigma =
          (t_.status[enter] == VarStatus::AtUpper ||
           (t_.status[enter] == VarStatus::Free && enter_d > 0))
              ? -1.0
              : 1.0;
      const std::vector<double> w = ftran(enter);

      // --- Ratio test (Harris two-pass by default; see simplex.h) ---
      // Bland's anti-cycling guarantee needs smallest-index selection on
      // BOTH sides of the pivot: entering (price_dantzig in bland mode)
      // AND leaving.  Harris's largest-pivot choice breaks the guarantee —
      // on heavily degenerate vertices the Bland endgame can revisit bases
      // forever (observed as a ~100k-iteration cycle under partial
      // pricing) — so Bland mode always uses the textbook rule, whose
      // tie-break is the smallest basis column index.
      const RatioChoice choice = opt_.harris && !bland
                                     ? ratio_test_harris(sigma, w)
                                     : ratio_test_textbook(sigma, w);
      double t_max = choice.t_max;
      const int leave_pos = choice.leave_pos;
      const bool leave_to_upper = choice.leave_to_upper;
      // Bound-flip of the entering variable itself.  Ties go to the flip:
      // it needs no basis change, and on degenerate bottlenecks it leaves
      // the basis whose dual prices the *extra* unit of capacity (the
      // shadow price callers consume) rather than the removed one.
      const double span = t_.ub[enter] - t_.lb[enter];
      bool flip = false;
      if (std::isfinite(span) && span <= t_max) {
        t_max = span;
        flip = true;
      }
      if (!std::isfinite(t_max)) {
        // Phase 1 minimizes a nonnegative sum, so it cannot be unbounded;
        // hitting this in phase 1 indicates numerical trouble.
        return phase1 ? SolveStatus::NotSolved : SolveStatus::Unbounded;
      }
      t_max = std::max(0.0, t_max);
      degenerate_run = t_max <= opt_.tol ? degenerate_run + 1 : 0;

      // --- Apply the step ---
      for (int i = 0; i < t_.m; ++i) {
        t_.value[t_.basis[i]] -= sigma * t_max * w[i];
      }
      if (flip) {
        t_.status[enter] = t_.status[enter] == VarStatus::AtLower
                               ? VarStatus::AtUpper
                               : VarStatus::AtLower;
        t_.value[enter] = resting_value(t_.status[enter], t_.lb[enter], t_.ub[enter]);
        continue;
      }
      const double enter_value = t_.value[enter] + sigma * t_max;
      const int leave = t_.basis[leave_pos];
      // Leaving variable snaps exactly onto the bound it hit.
      t_.status[leave] = leave_to_upper ? VarStatus::AtUpper : VarStatus::AtLower;
      t_.value[leave] = leave_to_upper ? t_.ub[leave] : t_.lb[leave];
      t_.basis_row[leave] = -1;
      // Freeze artificials once they leave the basis.
      if (leave >= t_.n_struct + t_.m) {
        t_.lb[leave] = t_.ub[leave] = 0.0;
        t_.value[leave] = 0.0;
        t_.status[leave] = VarStatus::AtLower;
      }
      set_basic(enter, leave_pos, enter_value);
      if (devex) update_devex(enter, leave, leave_pos, w[leave_pos]);

      // --- Update the factorization ---
      // Reinversion triggers 2-4, all deterministic (pure functions of the
      // pivot sequence): an absolutely tiny pivot, a pivot small relative
      // to the spike's largest entry (an eta division by it would amplify
      // the spike by > 1/kOptTol), and the periodic eta-file cap.
      const double pivot = w[leave_pos];
      double spike = 0;
      for (int i = 0; i < t_.m; ++i) spike = std::max(spike, std::abs(w[i]));
      if (std::abs(pivot) < opt_.pivot_tol ||
          std::abs(pivot) < num::kOptTol * spike) {
        refactorize();
        continue;
      }
      factor_.push_eta(leave_pos, w);
      if (factor_.eta_count() >= opt_.refactor_interval) {
        refactorize();
      }
    }
  }

  void finish_stats(LpSolution& out) const {
    out.iterations = iterations_;
    out.stats.iterations = iterations_;
    out.stats.factorizations = factorizations_;
    out.stats.pricing_passes = pricing_passes_;
    out.stats.partial_hits = partial_hits_;
    out.stats.full_fallbacks = full_fallbacks_;
    out.stats.basis_repairs = basis_repairs_;
  }

  SimplexOptions opt_;
  Tableau t_;
  BasisFactor factor_;
  std::vector<double> cost_;  // minimization costs over all columns
  std::vector<double> devex_;  // devex reference weights, one per column
  double sign_ = 1.0;
  int iterations_ = 0;
  int factorizations_ = 0;
  int basis_repairs_ = 0;
  int max_iterations_ = 0;
  int window_start_ = 0;       // partial-pricing ring cursor
  long pricing_passes_ = 0;    // pricing calls (one per iteration)
  long partial_hits_ = 0;      // devex passes satisfied inside the ring
  long full_fallbacks_ = 0;    // devex passes that walked the full ring
};

}  // namespace

namespace {

/// Geometric-mean equilibration: substitute x_j = col[j] * x'_j and multiply
/// row i by row[i] so that nonzero magnitudes cluster around 1.
struct Scaled {
  LinearProblem problem;
  std::vector<double> row;  // row multipliers
  std::vector<double> col;  // column multipliers (x = col .* x')
};

Scaled scale_problem(const LinearProblem& p) {
  const int n = p.num_variables();
  const int m = p.num_rows();
  Scaled s;
  s.row.assign(m, 1.0);
  s.col.assign(n, 1.0);
  const auto geo = [](double lo, double hi) { return std::sqrt(lo * hi); };
  for (int pass = 0; pass < 3; ++pass) {
    // Rows.
    for (int r = 0; r < m; ++r) {
      double lo = 0, hi = 0;
      for (const RowEntry& e : p.row(r).entries) {
        const double a = std::abs(e.coef) * s.col[e.col] * s.row[r];
        if (a == 0) continue;
        if (lo == 0 || a < lo) lo = a;
        if (a > hi) hi = a;
      }
      if (hi > 0) s.row[r] /= geo(lo, hi);
    }
    // Columns.
    std::vector<double> col_lo(n, 0), col_hi(n, 0);
    for (int r = 0; r < m; ++r) {
      for (const RowEntry& e : p.row(r).entries) {
        const double a = std::abs(e.coef) * s.col[e.col] * s.row[r];
        if (a == 0) continue;
        if (col_lo[e.col] == 0 || a < col_lo[e.col]) col_lo[e.col] = a;
        if (a > col_hi[e.col]) col_hi[e.col] = a;
      }
    }
    for (int j = 0; j < n; ++j) {
      if (col_hi[j] > 0) s.col[j] /= geo(col_lo[j], col_hi[j]);
    }
  }
  // Assemble the scaled problem.
  s.problem.set_sense(p.sense());
  for (int j = 0; j < n; ++j) {
    const double c = s.col[j];
    const double lb = p.lower_bound(j);
    const double ub = p.upper_bound(j);
    s.problem.add_variable(std::isfinite(lb) ? lb / c : lb,
                           std::isfinite(ub) ? ub / c : ub,
                           p.objective_coef(j) * c, p.variable_name(j));
  }
  for (int r = 0; r < m; ++r) {
    const Row& row = p.row(r);
    std::vector<RowEntry> entries;
    entries.reserve(row.entries.size());
    for (const RowEntry& e : row.entries) {
      entries.push_back({e.col, e.coef * s.row[r] * s.col[e.col]});
    }
    s.problem.add_row(row.type, row.rhs * s.row[r], std::move(entries),
                      row.name);
  }
  return s;
}

}  // namespace

LpSolution SimplexSolver::solve(const LinearProblem& problem) const {
  return solve(problem, nullptr);
}

LpSolution SimplexSolver::solve(const LinearProblem& problem,
                                Basis* basis) const {
  const telemetry::Stopwatch timer;
  METIS_SPAN("lp_solve");
  problem.validate();
  LpSolution sol;
  bool warm_used = false;

  if (options_.scale) {
    // Scaled path: statuses are scale-invariant, so a snapshot carries
    // over; presolve is skipped (its bookkeeping is in unscaled space).
    const Scaled scaled = scale_problem(problem);
    Engine engine(scaled.problem, options_);
    warm_used = basis != nullptr && engine.try_warm_start(*basis);
    sol = engine.run(warm_used);
    if (sol.status == SolveStatus::Optimal) {
      for (int j = 0; j < problem.num_variables(); ++j) {
        sol.x[j] *= scaled.col[j];
      }
      for (int r = 0; r < problem.num_rows(); ++r) {
        sol.duals[r] *= scaled.row[r];
      }
      // c' x' == c x, so the objective needs no adjustment; recompute anyway
      // to wash out scaling round-off.
      sol.objective = problem.objective_value(sol.x);
      if (basis) *basis = engine.export_basis();
    }
  } else {
    bool solved = false;
    // A caller-supplied basis refers to the full problem, so an accepted
    // warm start bypasses presolve entirely.
    if (basis != nullptr && !basis->empty() &&
        basis->compatible(problem.num_variables(), problem.num_rows())) {
      Engine engine(problem, options_);
      if (engine.try_warm_start(*basis)) {
        warm_used = true;
        sol = engine.run(true);
        if (sol.ok()) *basis = engine.export_basis();
        solved = true;
      }
    }
    if (!solved && options_.presolve) {
      const PresolveResult pre = presolve(problem);
      if (pre.infeasible) {
        sol.status = SolveStatus::Infeasible;
        solved = true;
      } else if (!pre.unbounded) {
        Engine engine(pre.reduced, options_);
        const LpSolution red = engine.run(false);
        sol = pre.postsolve(problem, red, options_.tol);
        sol.stats.presolve_removed_rows = pre.removed_rows;
        sol.stats.presolve_removed_cols = pre.removed_columns;
        if (sol.ok() && basis) {
          *basis = pre.lift_basis(problem, engine.export_basis());
        }
        solved = true;
      }
      // An `unbounded` verdict only proves an improving ray exists IF the
      // rest of the model is feasible; fall through and let the full solve
      // decide between Unbounded and Infeasible.
    }
    if (!solved) {
      Engine engine(problem, options_);
      sol = engine.run(false);
      if (sol.ok() && basis) *basis = engine.export_basis();
    }
  }

  if (warm_used) {
    sol.stats.warm_starts = 1;
  } else {
    sol.stats.cold_starts = 1;
  }
  sol.stats.solve_seconds = timer.seconds();
  telemetry::count("lp.solves");
  telemetry::count("lp.iterations", sol.stats.iterations);
  telemetry::count("lp.factorizations", sol.stats.factorizations);
  telemetry::count("lp.pricing_passes", sol.stats.pricing_passes);
  telemetry::count("lp.partial_hits", sol.stats.partial_hits);
  telemetry::count("lp.full_fallbacks", sol.stats.full_fallbacks);
  if (sol.stats.basis_repairs > 0) {
    telemetry::count("lp.basis_repairs", sol.stats.basis_repairs);
  }
  telemetry::count(warm_used ? "lp.warm_starts" : "lp.cold_starts");
  telemetry::observe("lp.solve_ms", timer.ms());
  return sol;
}

}  // namespace metis::lp
