// Shared status/result types for the LP and MIP solvers.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace metis::lp {

/// +infinity sentinel used for unbounded variable bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class SolveStatus {
  NotSolved,        ///< solve() has not run / internal error
  Optimal,          ///< proven optimal (LP) or proven optimal within gap (MIP)
  Infeasible,       ///< no feasible point exists
  Unbounded,        ///< objective unbounded over the feasible region
  IterationLimit,   ///< simplex hit its iteration cap
  NodeLimit,        ///< branch & bound hit its node cap (best incumbent kept)
  TimeLimit,        ///< branch & bound hit its wall-clock cap
};

std::string to_string(SolveStatus status);

/// Result of one LP solve.
struct LpSolution {
  SolveStatus status = SolveStatus::NotSolved;
  double objective = 0;        ///< in the problem's own sense (min or max)
  std::vector<double> x;       ///< primal values, one per structural column
  std::vector<double> duals;   ///< one multiplier per row (simplex y-vector)
  int iterations = 0;          ///< total simplex iterations (both phases)

  bool ok() const { return status == SolveStatus::Optimal; }
};

/// Result of one MIP solve.
struct MipResult {
  SolveStatus status = SolveStatus::NotSolved;
  double objective = 0;      ///< objective of the incumbent (if any)
  std::vector<double> x;     ///< incumbent solution (empty if none found)
  double best_bound = 0;     ///< proven bound on the optimum
  long nodes = 0;            ///< branch & bound nodes processed
  bool has_incumbent = false;

  /// Relative gap between incumbent and bound (0 when proven optimal).
  double gap() const;
  bool ok() const { return has_incumbent; }
};

}  // namespace metis::lp
