// Shared status/result types for the LP and MIP solvers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace metis::lp {

/// +infinity sentinel used for unbounded variable bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class SolveStatus {
  NotSolved,        ///< solve() has not run / internal error
  Optimal,          ///< proven optimal (LP) or proven optimal within gap (MIP)
  Infeasible,       ///< no feasible point exists
  Unbounded,        ///< objective unbounded over the feasible region
  IterationLimit,   ///< simplex hit its iteration cap
  NodeLimit,        ///< branch & bound hit its node cap (best incumbent kept)
  TimeLimit,        ///< branch & bound hit its wall-clock cap
};

std::string to_string(SolveStatus status);

/// Where a column rests in a simplex basis snapshot.
enum class BasisStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };

/// Snapshot of a simplex basis: one BasisStatus per structural column
/// followed by one per row slack (size = num_variables + num_rows).
/// Returned by SimplexSolver::solve at optimality and accepted back as a
/// warm start for a subsequent solve of a problem with the same shape —
/// the basis-reuse contract the Metis alternation loop and branch & bound
/// rely on (see docs/ALGORITHMS.md §6).  An incompatible, singular or
/// primal-infeasible snapshot is rejected and the solve falls back to a
/// cold start; a snapshot is never required for correctness.
struct Basis {
  std::vector<BasisStatus> status;

  bool empty() const { return status.empty(); }
  void clear() { status.clear(); }
  /// True when the snapshot's shape matches an (n columns, m rows) problem.
  bool compatible(int num_variables, int num_rows) const {
    return static_cast<int>(status.size()) == num_variables + num_rows;
  }
};

/// Per-solve work counters.  Additive: operator+= lets callers (Metis's
/// alternation loop, branch & bound) aggregate across a solve sequence.
struct SolveStats {
  long iterations = 0;          ///< simplex iterations (both phases)
  int factorizations = 0;       ///< sparse LU (re)factorizations
  int presolve_removed_rows = 0;
  int presolve_removed_cols = 0;
  int warm_starts = 0;          ///< solves that started from an accepted basis
  int cold_starts = 0;          ///< solves from the slack/artificial basis
  long pricing_passes = 0;      ///< entering-variable pricing calls
  long partial_hits = 0;        ///< devex passes satisfied inside a window
  long full_fallbacks = 0;      ///< devex passes that walked the whole ring
  int basis_repairs = 0;        ///< singular-basis repairs (slack swap-ins)
  double solve_seconds = 0;     ///< wall time (not deterministic; never diff)

  SolveStats& operator+=(const SolveStats& o) {
    iterations += o.iterations;
    factorizations += o.factorizations;
    presolve_removed_rows += o.presolve_removed_rows;
    presolve_removed_cols += o.presolve_removed_cols;
    warm_starts += o.warm_starts;
    cold_starts += o.cold_starts;
    pricing_passes += o.pricing_passes;
    partial_hits += o.partial_hits;
    full_fallbacks += o.full_fallbacks;
    basis_repairs += o.basis_repairs;
    solve_seconds += o.solve_seconds;
    return *this;
  }
};

/// Result of one LP solve.
struct LpSolution {
  SolveStatus status = SolveStatus::NotSolved;
  double objective = 0;        ///< in the problem's own sense (min or max)
  std::vector<double> x;       ///< primal values, one per structural column
  std::vector<double> duals;   ///< one multiplier per row (simplex y-vector)
  int iterations = 0;          ///< total simplex iterations (both phases)
  SolveStats stats;            ///< work counters (stats.iterations == iterations)

  bool ok() const { return status == SolveStatus::Optimal; }
};

/// Result of one MIP solve.
struct MipResult {
  SolveStatus status = SolveStatus::NotSolved;
  double objective = 0;      ///< objective of the incumbent (if any)
  std::vector<double> x;     ///< incumbent solution (empty if none found)
  double best_bound = 0;     ///< proven bound on the optimum
  long nodes = 0;            ///< branch & bound nodes processed
  bool has_incumbent = false;
  /// LP work aggregated over the root + all node relaxations.  Node solves
  /// share one Basis snapshot, so `lp_stats.warm_starts` counts how many
  /// nodes re-solved from a parent/sibling basis instead of from scratch.
  SolveStats lp_stats;

  /// Relative gap between incumbent and bound (0 when proven optimal).
  double gap() const;
  bool ok() const { return has_incumbent; }
};

}  // namespace metis::lp
