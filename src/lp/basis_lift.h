// Basis lifting: reuse of a simplex basis across *differently shaped*
// problems.
//
// The warm-start contract of SimplexSolver::solve (types.h) requires a
// snapshot whose shape matches the new problem exactly.  Repeated solves in
// the online admission pipeline violate that: every batch re-decide adds
// columns for the new requests and drops the columns of requests that were
// committed since, while the capacity rows and the c_e purchase columns
// persist.  lift_basis maps the persistent part of an old basis onto the
// new problem's shape and fills the rest with a primal-safe default, so the
// solver can *attempt* a warm start (its acceptance check — factorizable,
// exactly m basics, basic values within bounds — still decides; a rejected
// lift silently costs one cold start and nothing else).
#pragma once

#include <span>

#include "lp/types.h"

namespace metis::lp {

/// Options for the non-mapped remainder of a lifted basis.
struct LiftOptions {
  /// Status given to new structural columns (no old counterpart).
  /// AtLower (the default) is primal-safe for columns whose lower bound is
  /// finite; Basic is what RL-SPM's equality assignment rows need for one
  /// column per new row (see lift notes in core/lp_builder.h).
  BasisStatus new_column = BasisStatus::AtLower;
  /// Status given to the slack of new rows.  Basic (the default) makes the
  /// new row initially non-binding, which is primal-feasible for inequality
  /// rows whenever the mapped part is.
  BasisStatus new_row_slack = BasisStatus::Basic;
};

/// Lifts `old_basis` (shape: old_cols structural columns + old_rows row
/// slacks) onto a new problem with `new_cols` columns and `new_rows` rows.
///
///  * col_of_new[j] = index of new column j in the old problem, or -1 when
///    the column is new; row_of_new likewise for rows.  Old entities not
///    referenced by any map entry are dropped.
///  * Mapped entities keep their old status; unmapped ones take the
///    LiftOptions defaults, except that callers may pre-mark specific new
///    columns Basic via `basic_new_columns` (one column index per entry).
///  * The result is *count-repaired*: a valid basis needs exactly new_rows
///    Basic entries, so surplus Basic row slacks are demoted to AtLower and,
///    when short, non-basic row slacks are promoted (new rows first) — the
///    repair keeps the snapshot acceptable in shape, while feasibility is
///    still the solver's call.
///
/// Returns an empty Basis when old_basis is empty or shape-incompatible
/// with (old_cols, old_rows) — an empty snapshot makes the solver cold
/// start, which is always correct.
Basis lift_basis(const Basis& old_basis, int old_cols, int old_rows,
                 std::span<const int> col_of_new,
                 std::span<const int> row_of_new,
                 std::span<const int> basic_new_columns = {},
                 const LiftOptions& options = {});

}  // namespace metis::lp
