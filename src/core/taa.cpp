#include "core/taa.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/chernoff.h"
#include "core/estimator.h"
#include "core/lp_builder.h"
#include "util/log.h"
#include "util/numeric.h"
#include "util/telemetry.h"

namespace metis::core {

namespace {

/// True if routing request i on path j keeps every touched (e,t) within
/// capacity given the loads committed so far.
bool fits(const SpmInstance& instance, const ChargingPlan& capacities,
          const LoadMatrix& loads, int i, int j) {
  const workload::Request& r = instance.request(i);
  for (net::EdgeId e : instance.paths(i)[j].edges) {
    const int cap = capacities.units[e];
    for (int t = r.start_slot; t <= r.end_slot; ++t) {
      // kCeilGuard keeps this consistent with charged_units: a load the
      // billing ceiling would not push over `cap` units also fits here.
      if (loads.at(e, t) + r.rate > cap + num::kCeilGuard) return false;
    }
  }
  return true;
}

void commit(const SpmInstance& instance, LoadMatrix& loads, int i, int j) {
  const workload::Request& r = instance.request(i);
  for (net::EdgeId e : instance.paths(i)[j].edges) {
    for (int t = r.start_slot; t <= r.end_slot; ++t) loads.add(e, t, r.rate);
  }
}

}  // namespace

TaaResult run_taa(const SpmInstance& instance, const ChargingPlan& capacities,
                  const std::vector<bool>& accepted_in,
                  const TaaOptions& options) {
  if (static_cast<int>(capacities.units.size()) != instance.num_edges()) {
    throw std::invalid_argument("run_taa: capacity size mismatch");
  }
  METIS_SPAN("taa");
  telemetry::count("taa.solves");
  std::vector<bool> accepted = accepted_in;
  if (accepted.empty()) accepted.assign(instance.num_requests(), true);

  // Online admission: pinned commitments (all-declined / all-zero when the
  // context is absent, in which case every use below reduces to offline).
  const IncrementalContext* inc = options.incremental;
  const LoadMatrix* pinned = inc != nullptr ? inc->committed_loads : nullptr;

  TaaResult result;
  result.schedule = inc != nullptr && inc->committed != nullptr
                        ? *inc->committed
                        : Schedule::all_declined(instance.num_requests());

  // Step 2: LP relaxation of BL-SPM.
  BlSpmOptions bl_options;
  bl_options.cost_weight = options.cost_weight;
  const SpmModel model =
      build_bl_spm(instance, capacities, accepted, bl_options, pinned);
  lp::Basis* warm = options.warm_basis;
  if (warm != nullptr && warm->empty() && inc != nullptr &&
      inc->lift_from != nullptr && !inc->lift_from->empty()) {
    *warm =
        lift_into_model(*inc->lift_from, model, /*equality_assignments=*/false);
    if (!warm->empty()) telemetry::count("taa.basis_lifts");
  }
  const lp::SimplexSolver solver(options.lp);
  const lp::LpSolution relaxed = solver.solve(model.problem, warm);
  result.status = relaxed.status;
  result.lp_stats = relaxed.stats;
  if (inc != nullptr && inc->snapshot_out != nullptr && relaxed.ok() &&
      warm != nullptr) {
    snapshot_model(model, *warm, *inc->snapshot_out);
  }
  if (!relaxed.ok()) return result;
  result.lp_revenue = relaxed.objective;

  // Step 1 (normalization constants).
  double r_max = 0, v_max = 0;
  for (int i = 0; i < instance.num_requests(); ++i) {
    if (!accepted[i]) continue;
    r_max = std::max(r_max, instance.request(i).rate);
    v_max = std::max(v_max, instance.request(i).value);
  }
  if (r_max <= 0 || v_max <= 0) {
    // Nothing free to schedule; the pinned commitments still earn.
    result.revenue = revenue(instance, result.schedule);
    return result;
  }

  // Step 3: scaling factor mu from inequality (6).
  const int N = instance.num_edges();
  const int T = instance.num_slots();
  const int min_cap = capacities.total_units() > 0
                          ? [&] {
                              int best = 0;
                              for (int c : capacities.units) {
                                if (c > 0 && (best == 0 || c < best)) best = c;
                              }
                              return best;
                            }()
                          : 0;
  if (min_cap == 0) {
    // No bandwidth anywhere: every free request stays declined.
    result.revenue = revenue(instance, result.schedule);
    return result;
  }
  double mu = choose_mu(min_cap / r_max, T, N);
  if (mu <= 0) {
    METIS_LOG_DEBUG << "TAA: inequality (6) unsatisfiable, falling back to mu="
                    << options.fallback_mu;
    mu = options.fallback_mu;
  }
  result.mu = mu;

  // Pull the fractional solution into [request][path] form.
  std::vector<std::vector<double>> x_hat(instance.num_requests());
  for (int i = 0; i < instance.num_requests(); ++i) {
    x_hat[i].assign(instance.num_paths(i), 0.0);
    if (!accepted[i]) continue;
    for (int j = 0; j < instance.num_paths(i); ++j) {
      x_hat[i][j] = relaxed.x.at(model.x_var[i][j]);
    }
  }

  // Expected scaled revenue I_S (normalized) and the Theorem 6 floor I_B.
  double i_s = 0;
  for (int i = 0; i < instance.num_requests(); ++i) {
    if (!accepted[i]) continue;
    const double mass =
        std::accumulate(x_hat[i].begin(), x_hat[i].end(), 0.0);
    i_s += mu * mass * (instance.request(i).value / v_max);
  }
  PessimisticEstimator::Config config;
  config.mu = mu;
  config.tk = std::log(1.0 / mu);
  config.r_max = r_max;
  config.v_max = v_max;
  if (i_s > 0) {
    result.gamma = chernoff_d(i_s, 1.0 / (N + 1));
    config.t0 = std::log1p(std::min(result.gamma, 1e6));
    config.i_b = std::max(0.0, i_s * (1.0 - result.gamma));
  }
  result.revenue_floor = config.i_b * v_max;

  // Step 4: derandomized walk down the decision tree.  The load ledger
  // starts from the pinned loads so the hard feasibility guard accounts for
  // commitments (the LP already did, via the RHS).
  LoadMatrix loads = pinned != nullptr
                         ? *pinned
                         : LoadMatrix(instance.num_edges(), instance.num_slots());
  {
    METIS_SPAN("walk");
    PessimisticEstimator estimator(instance, capacities, x_hat, accepted,
                                   config);
    for (int i = 0; i < instance.num_requests(); ++i) {
      if (!accepted[i]) continue;
      int best_choice = kDeclined;
      double best_u = estimator.candidate_value(i, kDeclined);
      for (int j = 0; j < instance.num_paths(i); ++j) {
        if (!fits(instance, capacities, loads, i, j)) continue;  // hard guard
        const double u = estimator.candidate_value(i, j);
        if (u < best_u - num::kTieTol) {
          best_u = u;
          best_choice = j;
        }
      }
      estimator.fix(i, best_choice);
      if (best_choice != kDeclined) {
        commit(instance, loads, i, best_choice);
        result.schedule.path_choice[i] = best_choice;
        ++result.walk_accepted;
      }
    }
  }
  telemetry::count("taa.walk_accepted", result.walk_accepted);

  // Optional greedy augmentation: re-admit declined requests that still fit
  // (highest value first) — a pure revenue improvement.
  if (options.augment) {
    METIS_SPAN("augment");
    std::vector<int> declined;
    for (int i = 0; i < instance.num_requests(); ++i) {
      if (accepted[i] && !result.schedule.accepted(i)) declined.push_back(i);
    }
    std::sort(declined.begin(), declined.end(), [&](int a, int b) {
      return instance.request(a).value > instance.request(b).value;
    });
    for (int i : declined) {
      for (int j = 0; j < instance.num_paths(i); ++j) {
        if (fits(instance, capacities, loads, i, j)) {
          commit(instance, loads, i, j);
          result.schedule.path_choice[i] = j;
          ++result.augment_accepted;
          break;
        }
      }
    }
  }

  telemetry::count("taa.augment_accepted", result.augment_accepted);
  result.revenue = revenue(instance, result.schedule);
  return result;
}

SplittableResult run_splittable_bl_spm(const SpmInstance& instance,
                                       const ChargingPlan& capacities,
                                       const std::vector<bool>& accepted_in) {
  std::vector<bool> accepted = accepted_in;
  if (accepted.empty()) accepted.assign(instance.num_requests(), true);
  SplittableResult result;
  const SpmModel model = build_bl_spm(instance, capacities, accepted);
  const lp::LpSolution relaxed = lp::SimplexSolver().solve(model.problem);
  result.status = relaxed.status;
  result.lp_stats = relaxed.stats;
  if (!relaxed.ok()) return result;
  result.revenue = relaxed.objective;
  result.flow.resize(instance.num_requests());
  for (int i = 0; i < instance.num_requests(); ++i) {
    result.flow[i].assign(instance.num_paths(i), 0.0);
    if (!accepted[i]) continue;
    for (int j = 0; j < instance.num_paths(i); ++j) {
      result.flow[i][j] = relaxed.x.at(model.x_var[i][j]);
    }
  }
  return result;
}

}  // namespace metis::core
