#include "core/maa.h"

#include <cmath>
#include <stdexcept>

#include "core/lp_builder.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/telemetry.h"

namespace metis::core {

namespace {

/// Stage 2: one randomized rounding of the fractional solution.  `base`
/// carries the pinned (committed) choices; rounding only writes the
/// participating requests, so commitments pass through verbatim.
Schedule round_once(const SpmInstance& instance, const SpmModel& model,
                    const std::vector<double>& x_hat,
                    const std::vector<bool>& accepted, const Schedule& base,
                    Rng& rng) {
  Schedule schedule = base;
  std::vector<double> weights;
  for (int i = 0; i < instance.num_requests(); ++i) {
    if (!accepted[i]) continue;
    weights.clear();
    for (int j = 0; j < instance.num_paths(i); ++j) {
      weights.push_back(x_hat.at(model.x_var[i][j]));
    }
    schedule.path_choice[i] =
        static_cast<int>(rng.weighted_index(weights));
  }
  return schedule;
}

/// Ablation variant: argmax-probability path per request (no sampling).
Schedule round_argmax(const SpmInstance& instance, const SpmModel& model,
                      const std::vector<double>& x_hat,
                      const std::vector<bool>& accepted, const Schedule& base) {
  Schedule schedule = base;
  for (int i = 0; i < instance.num_requests(); ++i) {
    if (!accepted[i]) continue;
    int best = 0;
    for (int j = 1; j < instance.num_paths(i); ++j) {
      if (x_hat.at(model.x_var[i][j]) > x_hat.at(model.x_var[i][best])) {
        best = j;
      }
    }
    schedule.path_choice[i] = best;
  }
  return schedule;
}

}  // namespace

MaaResult run_maa(const SpmInstance& instance, const std::vector<bool>& accepted_in,
                  Rng& rng, const MaaOptions& options) {
  if (options.rounding_trials < 1) {
    throw std::invalid_argument("MaaOptions: rounding_trials must be >= 1");
  }
  METIS_SPAN("maa");
  telemetry::count("maa.solves");
  std::vector<bool> accepted = accepted_in;
  if (accepted.empty()) accepted.assign(instance.num_requests(), true);

  // Online admission: pinned commitments (all-declined / all-zero when the
  // context is absent, in which case every use below reduces to offline).
  const IncrementalContext* inc = options.incremental;
  const Schedule pin_base =
      inc != nullptr && inc->committed != nullptr
          ? *inc->committed
          : Schedule::all_declined(instance.num_requests());
  const LoadMatrix* pinned = inc != nullptr ? inc->committed_loads : nullptr;

  MaaResult result;
  const SpmModel model =
      build_rl_spm(instance, accepted, pinned, options.edge_capacity);
  lp::Basis* warm = options.warm_basis;
  if (warm != nullptr && warm->empty() && inc != nullptr &&
      inc->lift_from != nullptr && !inc->lift_from->empty()) {
    *warm = lift_into_model(*inc->lift_from, model, /*equality_assignments=*/true);
    if (!warm->empty()) telemetry::count("maa.basis_lifts");
  }
  const lp::SimplexSolver solver(options.lp);
  const lp::LpSolution relaxed = solver.solve(model.problem, warm);
  result.status = relaxed.status;
  result.lp_stats = relaxed.stats;
  if (inc != nullptr && inc->snapshot_out != nullptr && relaxed.ok() &&
      warm != nullptr) {
    snapshot_model(model, *warm, *inc->snapshot_out);
  }
  if (!relaxed.ok()) return result;
  result.lp_cost = relaxed.objective;

  // Fractional ĉ_e and alpha = min positive ĉ_e.
  result.fractional_c.assign(instance.num_edges(), 0.0);
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    result.fractional_c[e] = relaxed.x.at(model.c_var[e]);
  }
  double alpha = 0;
  for (double c : result.fractional_c) {
    if (c > num::kImproveTol && (alpha == 0 || c < alpha)) alpha = c;
  }
  result.alpha = alpha;

  // Stages 2+3, keeping the cheapest of `rounding_trials` roundings.
  METIS_SPAN("rounding");
  telemetry::count("maa.rounding_trials", options.rounding_trials);
  const auto keep = [&](Schedule candidate) {
    result.plan = charging_from_loads(compute_loads(instance, candidate));
    result.cost = cost(instance.topology(), result.plan);
    result.schedule = std::move(candidate);
  };
  if (options.deterministic) {
    keep(round_argmax(instance, model, relaxed.x, accepted, pin_base));
  } else if (options.rounding_trials == 1) {
    // The paper's Algorithm 1 verbatim: one rounding drawn directly from the
    // caller's generator (bit-identical to the historical serial behaviour,
    // which the multi-cycle simulator and Metis's default path rely on).
    keep(round_once(instance, model, relaxed.x, accepted, pin_base, rng));
  } else {
    // Best-of-N: trial t draws from the index-addressed stream
    // base.split(t), so the set of candidates — and the winner — does not
    // depend on thread count or scheduling order.  The caller's generator
    // advances exactly once (the fork), keeping repeated run_maa calls on
    // one Rng statistically independent.
    struct Candidate {
      Schedule schedule;
      ChargingPlan plan;
      double cost = lp::kInfinity;
    };
    const Rng base = rng.fork();
    std::vector<Candidate> candidates = parallel_map(
        options.rounding_trials,
        [&](int trial) {
          Rng trial_rng = base.split(static_cast<std::uint64_t>(trial));
          Candidate c;
          c.schedule =
              round_once(instance, model, relaxed.x, accepted, pin_base, trial_rng);
          c.plan = charging_from_loads(compute_loads(instance, c.schedule));
          c.cost = cost(instance.topology(), c.plan);
          return c;
        },
        options.threads);
    // Deterministic serial reduction: minimum cost, lowest trial index on
    // ties (strict < while scanning in index order).
    std::size_t best = 0;
    for (std::size_t t = 1; t < candidates.size(); ++t) {
      if (candidates[t].cost < candidates[best].cost) best = t;
    }
    result.schedule = std::move(candidates[best].schedule);
    result.plan = std::move(candidates[best].plan);
    result.cost = candidates[best].cost;
  }
  return result;
}

MaaResult run_maa(const SpmInstance& instance, Rng& rng, const MaaOptions& options) {
  return run_maa(instance, {}, rng, options);
}

}  // namespace metis::core
