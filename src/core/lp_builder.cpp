#include "core/lp_builder.h"

#include "core/accounting.h"
#include "lp/basis_lift.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace metis::core {

namespace {

std::vector<bool> resolve_accepted(const SpmInstance& instance,
                                   const std::vector<bool>& accepted) {
  if (accepted.empty()) {
    return std::vector<bool>(instance.num_requests(), true);
  }
  if (static_cast<int>(accepted.size()) != instance.num_requests()) {
    throw std::invalid_argument("accepted mask has wrong size");
  }
  return accepted;
}

/// Adds the x_{i,j} columns for participating requests.
std::vector<std::vector<int>> add_x_columns(const SpmInstance& instance,
                                            const std::vector<bool>& accepted,
                                            double obj_value_factor,
                                            lp::LinearProblem& problem) {
  std::vector<std::vector<int>> x_var(instance.num_requests());
  for (int i = 0; i < instance.num_requests(); ++i) {
    x_var[i].assign(instance.num_paths(i), -1);
    if (!accepted[i]) continue;
    for (int j = 0; j < instance.num_paths(i); ++j) {
      const double obj = obj_value_factor * instance.request(i).value;
      x_var[i][j] = problem.add_variable(
          0.0, 1.0, obj, "x_" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  return x_var;
}

/// Adds the per-(edge,slot) load rows.  When c_var is non-empty the row is
/// load - c_e <= 0; otherwise load <= capacity[e].  A non-null `pinned`
/// moves committed load onto the right-hand side (and, in the c_var form,
/// forces a row wherever pinned load alone requires purchase); zero pinned
/// entries leave the row byte-identical to the offline build.
std::vector<std::vector<int>> add_capacity_rows(
    const SpmInstance& instance, const std::vector<bool>& accepted,
    const std::vector<std::vector<int>>& x_var, const std::vector<int>& c_var,
    const ChargingPlan* capacities, const LoadMatrix* pinned,
    lp::LinearProblem& problem) {
  std::vector<std::vector<int>> cap_row(
      instance.num_edges(), std::vector<int>(instance.num_slots(), -1));
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    for (int t = 0; t < instance.num_slots(); ++t) {
      std::vector<lp::RowEntry> entries;
      for (int i = 0; i < instance.num_requests(); ++i) {
        if (!accepted[i]) continue;
        const workload::Request& r = instance.request(i);
        if (!r.active_at(t)) continue;
        for (int j = 0; j < instance.num_paths(i); ++j) {
          if (instance.path_uses_edge(i, j, e)) {
            entries.push_back({x_var[i][j], r.rate});
          }
        }
      }
      const double committed = pinned != nullptr ? pinned->at(e, t) : 0.0;
      // In the c_var form a positive committed load still needs a row (the
      // purchase must cover it even when no free request can add to it);
      // without c columns such a row would be variable-free and vacuous.
      if (entries.empty() && (c_var.empty() || committed <= 0)) {
        continue;  // nothing can load this (e,t)
      }
      double rhs = 0;
      if (c_var.empty()) {
        rhs = capacities->units.at(e);
      } else {
        entries.push_back({c_var[e], -1.0});
      }
      if (committed > 0) {
        rhs -= committed;
        // Fault repair can shrink an edge's capacity below the load already
        // committed on it.  In the capacity-bounded form (no c column) a
        // negative RHS would make the whole LP infeasible even though the
        // free requests add nothing; clamp to 0 so the row only forbids new
        // load and the overload stays the repair machinery's problem.  (In
        // the c-column form a negative RHS is correct — it forces the
        // purchase to cover the committed load.)
        if (c_var.empty() && rhs < 0) rhs = 0;
      }
      cap_row[e][t] = problem.add_row(
          lp::RowType::LessEqual, rhs, std::move(entries),
          "cap_e" + std::to_string(e) + "_t" + std::to_string(t));
    }
  }
  return cap_row;
}

void add_assignment_rows(const SpmInstance& instance,
                         const std::vector<bool>& accepted,
                         const std::vector<std::vector<int>>& x_var,
                         lp::RowType type, lp::LinearProblem& problem) {
  for (int i = 0; i < instance.num_requests(); ++i) {
    if (!accepted[i]) continue;
    std::vector<lp::RowEntry> entries;
    for (int j = 0; j < instance.num_paths(i); ++j) {
      entries.push_back({x_var[i][j], 1.0});
    }
    problem.add_row(type, 1.0, std::move(entries), "asg_" + std::to_string(i));
  }
}

std::vector<int> add_c_columns(const SpmInstance& instance,
                               lp::LinearProblem& problem) {
  std::vector<int> c_var(instance.num_edges());
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    // In the maximization forms the cost enters as -u_e; in RL-SPM the
    // problem is a minimization so the coefficient is +u_e.  The caller
    // fixes the sign by the problem sense set before calling.
    const double sign =
        problem.sense() == lp::Sense::Minimize ? 1.0 : -1.0;
    c_var[e] = problem.add_variable(0.0, lp::kInfinity,
                                    sign * instance.topology().edge(e).price,
                                    "c_" + std::to_string(e));
  }
  return c_var;
}

}  // namespace

std::vector<int> SpmModel::x_columns() const {
  std::vector<int> cols;
  for (const auto& row : x_var) {
    for (int col : row) {
      if (col >= 0) cols.push_back(col);
    }
  }
  return cols;
}

std::vector<int> SpmModel::integer_columns() const {
  std::vector<int> cols = x_columns();
  for (int col : c_var) {
    if (col >= 0) cols.push_back(col);
  }
  return cols;
}

SpmModel build_rl_spm(const SpmInstance& instance,
                      const std::vector<bool>& accepted_in,
                      const LoadMatrix* pinned,
                      const std::vector<int>* purchase_cap) {
  const std::vector<bool> accepted = resolve_accepted(instance, accepted_in);
  if (purchase_cap != nullptr &&
      static_cast<int>(purchase_cap->size()) != instance.num_edges()) {
    throw std::invalid_argument("build_rl_spm: purchase_cap size mismatch");
  }
  SpmModel model;
  model.problem.set_sense(lp::Sense::Minimize);
  model.x_var = add_x_columns(instance, accepted, /*obj_value_factor=*/0.0,
                              model.problem);
  model.c_var = add_c_columns(instance, model.problem);
  if (purchase_cap != nullptr) {
    for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
      const int cap = (*purchase_cap)[e];
      if (cap >= 0) model.problem.set_bounds(model.c_var[e], 0.0, cap);
    }
  }
  add_assignment_rows(instance, accepted, model.x_var, lp::RowType::Equal,
                      model.problem);
  model.cap_row = add_capacity_rows(instance, accepted, model.x_var,
                                    model.c_var, /*capacities=*/nullptr,
                                    pinned, model.problem);
  return model;
}

SpmModel build_bl_spm(const SpmInstance& instance, const ChargingPlan& capacities,
                      const std::vector<bool>& accepted_in,
                      const BlSpmOptions& options, const LoadMatrix* pinned) {
  if (static_cast<int>(capacities.units.size()) != instance.num_edges()) {
    throw std::invalid_argument("build_bl_spm: capacity size mismatch");
  }
  if (options.cost_weight < 0) {
    throw std::invalid_argument("build_bl_spm: negative cost_weight");
  }
  const std::vector<bool> accepted = resolve_accepted(instance, accepted_in);
  SpmModel model;
  model.problem.set_sense(lp::Sense::Maximize);
  model.x_var = add_x_columns(instance, accepted, /*obj_value_factor=*/1.0,
                              model.problem);
  if (options.cost_weight > 0) {
    // Internalize an estimated bandwidth footprint per (request, path).
    for (int i = 0; i < instance.num_requests(); ++i) {
      if (!accepted[i]) continue;
      const workload::Request& r = instance.request(i);
      const double share =
          r.rate * static_cast<double>(r.duration()) / instance.num_slots();
      for (int j = 0; j < instance.num_paths(i); ++j) {
        double path_price = 0;
        for (net::EdgeId e : instance.paths(i)[j].edges) {
          path_price += instance.topology().edge(e).price;
        }
        const int col = model.x_var[i][j];
        model.problem.set_objective_coef(
            col, r.value - options.cost_weight * share * path_price);
      }
    }
  }
  add_assignment_rows(instance, accepted, model.x_var, lp::RowType::LessEqual,
                      model.problem);
  model.cap_row = add_capacity_rows(instance, accepted, model.x_var,
                                    /*c_var=*/{}, &capacities, pinned,
                                    model.problem);
  return model;
}

SpmModel build_spm(const SpmInstance& instance) {
  const std::vector<bool> accepted(instance.num_requests(), true);
  SpmModel model;
  model.problem.set_sense(lp::Sense::Maximize);
  model.x_var = add_x_columns(instance, accepted, /*obj_value_factor=*/1.0,
                              model.problem);
  model.c_var = add_c_columns(instance, model.problem);
  add_assignment_rows(instance, accepted, model.x_var, lp::RowType::LessEqual,
                      model.problem);
  model.cap_row = add_capacity_rows(instance, accepted, model.x_var,
                                    model.c_var, /*capacities=*/nullptr,
                                    /*pinned=*/nullptr, model.problem);
  return model;
}

Schedule schedule_from_solution(const SpmInstance& instance, const SpmModel& model,
                                const std::vector<double>& x) {
  Schedule schedule = Schedule::all_declined(instance.num_requests());
  for (int i = 0; i < instance.num_requests(); ++i) {
    for (int j = 0; j < instance.num_paths(i); ++j) {
      const int col = model.x_var[i][j];
      if (col >= 0 && x.at(col) >= 0.5) {
        schedule.path_choice[i] = j;
        break;
      }
    }
  }
  return schedule;
}

ChargingPlan plan_from_solution(const SpmInstance& instance, const SpmModel& model,
                                const std::vector<double>& x) {
  if (model.c_var.empty()) {
    throw std::invalid_argument("plan_from_solution: model has no c variables");
  }
  ChargingPlan plan = ChargingPlan::none(instance.num_edges());
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    plan.units[e] = static_cast<int>(std::llround(x.at(model.c_var[e])));
  }
  return plan;
}

void snapshot_model(const SpmModel& model, const lp::Basis& basis,
                    ModelSnapshot& out) {
  if (basis.empty()) {
    out.clear();
    return;
  }
  out.basis = basis;
  out.num_variables = model.problem.num_variables();
  out.num_rows = model.problem.num_rows();
  out.c_col = model.c_var;
  out.cap_row = model.cap_row;
}

lp::Basis lift_into_model(const ModelSnapshot& snap, const SpmModel& model,
                          bool equality_assignments) {
  if (snap.empty()) return {};
  const int new_cols = model.problem.num_variables();
  const int new_rows = model.problem.num_rows();
  std::vector<int> col_of_new(new_cols, -1);
  std::vector<int> row_of_new(new_rows, -1);
  // The persistent structure: c columns map per edge, capacity rows per
  // (edge, slot).  x columns and assignment rows belong to the batch's own
  // request set and never map across batches.
  const std::size_t edges =
      std::min(model.c_var.size(), snap.c_col.size());
  for (std::size_t e = 0; e < edges; ++e) {
    if (model.c_var[e] >= 0 && snap.c_col[e] >= 0) {
      col_of_new[model.c_var[e]] = snap.c_col[e];
    }
  }
  const std::size_t cap_edges =
      std::min(model.cap_row.size(), snap.cap_row.size());
  for (std::size_t e = 0; e < cap_edges; ++e) {
    const std::size_t slots =
        std::min(model.cap_row[e].size(), snap.cap_row[e].size());
    for (std::size_t t = 0; t < slots; ++t) {
      if (model.cap_row[e][t] >= 0 && snap.cap_row[e][t] >= 0) {
        row_of_new[model.cap_row[e][t]] = snap.cap_row[e][t];
      }
    }
  }
  // The equality assignment rows (sum_j x = 1) cannot rest on their slack:
  // mark each request's first path column Basic so the lifted point has a
  // column to carry the forced unit.  The count repair in lift_basis then
  // parks the surplus new-row slacks.
  std::vector<int> basic_new;
  if (equality_assignments) {
    for (const auto& row : model.x_var) {
      if (!row.empty() && row.front() >= 0) basic_new.push_back(row.front());
    }
  }
  return lp::lift_basis(snap.basis, snap.num_variables, snap.num_rows,
                        col_of_new, row_of_new, basic_new);
}

std::vector<double> columns_from_decision(const SpmInstance& instance,
                                          const SpmModel& model,
                                          const Schedule& schedule) {
  validate_shape(instance, schedule);
  std::vector<double> x(model.problem.num_variables(), 0.0);
  for (int i = 0; i < instance.num_requests(); ++i) {
    const int j = schedule.path_choice[i];
    if (j == kDeclined) continue;
    const int col = model.x_var[i][j];
    if (col < 0) {
      throw std::invalid_argument(
          "columns_from_decision: schedule accepts a request outside the model");
    }
    x[col] = 1.0;
  }
  if (!model.c_var.empty()) {
    const ChargingPlan plan =
        charging_from_loads(compute_loads(instance, schedule));
    for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
      x[model.c_var[e]] = plan.units[e];
    }
  }
  return x;
}

}  // namespace metis::core
