// Sharded scenario decomposition: partition the WAN's datacenters into K
// shards with a deterministic edge-cut heuristic, assign each request to the
// shard owning its source DC, and identify the cross-shard ("shared") links
// whose charging the shards must coordinate on.
//
// The partition is pure graph work — no LP, no randomness.  Given the same
// topology and K it always produces the same ShardPlan, which is what makes
// the coordinated solve (core/coordinate.h) reproducible for any thread
// count: every shard's sub-problem is fixed before any solver runs.
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"

namespace metis::core {

/// Knobs of the dual-price coordination loop (core/coordinate.h).  The
/// defaults aim at K in {2, 4} on B4-sized WANs; `MetisOptions::shards`
/// selects K itself.
struct ShardOptions {
  /// Coordination rounds: each round solves every shard against the current
  /// link prices, combines, repairs, and updates the prices.  Round 0 runs
  /// at the true prices, so max_rounds == 1 is "solve shards once and
  /// reconcile greedily" with no dual updates.
  int max_rounds = 4;
  /// Stop early once the relative duality gap (believed shard profit sum vs
  /// realized combined profit) falls to this.
  double gap_tol = 0.01;
  /// Subgradient step for the price update, damped by 1/(round+1).
  double step = 1.0;
  /// Never discount a shared link below this fraction of its true price:
  /// a near-zero coordination price would invite every shard to over-accept
  /// onto the link at once.
  double min_price_factor = 0.25;
  /// Fall back to the monolithic solve up front when more than this
  /// fraction of the candidate-path edges is shared between shards — a cut
  /// that dense means the partition decomposed nothing.  Empirically the
  /// gray zone starts just below 0.9: on B4 a 0.895 cut converges its
  /// duality gap yet lands a few percent short of monolithic profit, while
  /// cuts under ~0.75 coordinate at parity or better — so the default
  /// refuses the zone where convergence stops implying profit parity.
  double max_cut_fraction = 0.85;
  /// Fall back after the loop when the final duality gap still exceeds
  /// this (coordination failed to reconcile the shards).
  double fallback_gap = 0.5;
  /// Worker threads for the concurrent shard solves (0 = all hardware
  /// threads).  Purely a wall-clock knob: results are bit-identical for
  /// every value at fixed K.
  int threads = 0;
};

/// What the coordinated solve actually did — attached to MetisResult so
/// callers (and the shard benches/tests) can tell a sharded decision from a
/// fallback without re-deriving it.
struct ShardInfo {
  /// True when the dual-price coordination produced the returned decision.
  bool sharded = false;
  /// True when shards were requested (> 1) but the monolithic path ran —
  /// see `fallback_reason`.
  bool fell_back = false;
  std::string fallback_reason;  ///< empty unless fell_back
  int shards_requested = 1;     ///< MetisOptions::shards as passed in
  int shards_used = 0;          ///< shards holding at least one request
  int rounds = 0;               ///< coordination rounds executed
  double duality_gap = 0;       ///< final round's relative gap
  double cut_fraction = 0;      ///< shared / used candidate-path edges
  std::vector<double> round_gaps;  ///< gap after each round, in order
};

/// A K-way partition of one instance.
struct ShardPlan {
  int num_shards = 0;
  /// Owning shard per DC (size num_nodes).
  std::vector<int> node_shard;
  /// Owning shard per request — its source DC's shard (size num_requests).
  std::vector<int> request_shard;
  /// Original request ids per shard, ascending (arrival order preserved, so
  /// a committed prefix of the instance stays a committed prefix of every
  /// shard's sub-instance).
  std::vector<std::vector<int>> shard_requests;
  /// Per edge: true when candidate paths of requests from two or more
  /// different shards traverse it (size num_edges).  These are the links
  /// the dual-price loop coordinates on; every other edge is priced and
  /// charged by exactly one shard.
  std::vector<bool> edge_shared;
  int used_edges = 0;    ///< edges on at least one candidate path
  int shared_edges = 0;  ///< used edges with edge_shared set
  double cut_fraction = 0;  ///< shared_edges / max(1, used_edges)
};

/// Deterministic K-way edge-cut partition of the instance's WAN:
/// farthest-point seed selection (BFS hop distance, lowest-id ties) followed
/// by balanced region growth from the seeds and one boundary-refinement
/// sweep that moves a node to the neighboring shard holding most of its
/// links when that strictly reduces the cut.  `shards` is clamped to
/// [1, num_nodes].  Pure function of (topology, requests, shards).
ShardPlan partition_instance(const SpmInstance& instance, int shards);

}  // namespace metis::core
