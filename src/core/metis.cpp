#include "core/metis.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>

#include "core/coordinate.h"
#include "util/log.h"
#include "util/numeric.h"
#include "util/telemetry.h"

namespace metis::core {

int trim_min_utilization_link(const SpmInstance& instance, const Schedule& schedule,
                              ChargingPlan& plan, int units,
                              const std::vector<int>* floor) {
  if (units <= 0) throw std::invalid_argument("trim: units must be positive");
  if (floor != nullptr &&
      static_cast<int>(floor->size()) != instance.num_edges()) {
    throw std::invalid_argument("trim: floor size mismatch");
  }
  const LoadMatrix loads = compute_loads(instance, schedule);
  const auto floor_of = [&](net::EdgeId e) {
    return floor != nullptr ? (*floor)[e] : 0;
  };
  int target = -1;
  double lowest = 0;
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    if (plan.units[e] <= floor_of(e)) continue;
    const double util = loads.mean(e) / plan.units[e];
    if (target == -1 || util < lowest) {
      lowest = util;
      target = e;
    }
  }
  if (target >= 0) {
    plan.units[target] = std::max(floor_of(target), plan.units[target] - units);
  }
  return target;
}

namespace {

/// Range-max over one edge's per-slot loads with point updates.  The prune
/// fixed point queries every accepted request's path edges each round, so
/// the old full slot rescan made a round O(K * |path| * T); the tree makes
/// each query O(log T).  Leaves copy LoadMatrix values verbatim, and
/// correctly-rounded subtraction is monotone, so subtracting the rate from
/// the window's max equals the old per-slot subtract-then-max bit for bit —
/// prune decisions are unchanged (test_metis pins this equivalence).
class PeakTree {
 public:
  PeakTree(const LoadMatrix& loads, net::EdgeId e, int slots)
      : n_(std::max(1, slots)), tree_(2 * static_cast<std::size_t>(n_), kNone) {
    for (int t = 0; t < slots; ++t) tree_[n_ + t] = loads.at(e, t);
    for (int i = n_ - 1; i >= 1; --i) {
      tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  void set(int pos, double value) {
    int i = n_ + pos;
    tree_[i] = value;
    for (i /= 2; i >= 1; i /= 2) {
      tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  /// Max over slots [lo, hi] (inclusive); -infinity when empty.
  double max_range(int lo, int hi) const {
    double best = kNone;
    for (int l = n_ + lo, r = n_ + hi + 1; l < r; l /= 2, r /= 2) {
      if (l & 1) best = std::max(best, tree_[l++]);
      if (r & 1) best = std::max(best, tree_[--r]);
    }
    return best;
  }

  double max_all() const { return tree_[1]; }

 private:
  static constexpr double kNone = -std::numeric_limits<double>::infinity();
  int n_;
  std::vector<double> tree_;
};

/// Charging saved on edge e if `rate` were removed from slots [start, end],
/// evaluated against the peaks tree of that edge.
double removal_saving(const SpmInstance& instance, const PeakTree& peaks,
                      net::EdgeId e, int start, int end, double rate) {
  const double peak_with = std::max(0.0, peaks.max_all());
  double peak_without = 0;
  if (start > 0) {
    peak_without = std::max(peak_without, peaks.max_range(0, start - 1));
  }
  const int last = instance.num_slots() - 1;
  if (end < last) {
    peak_without = std::max(peak_without, peaks.max_range(end + 1, last));
  }
  peak_without = std::max(peak_without, peaks.max_range(start, end) - rate);
  return instance.topology().edge(e).price *
         (charged_units(peak_with) - charged_units(peak_without));
}

}  // namespace

int prune_unprofitable(const SpmInstance& instance, Schedule& schedule,
                       int first_mutable) {
  validate_shape(instance, schedule);
  LoadMatrix loads = compute_loads(instance, schedule);
  std::vector<PeakTree> peaks;
  peaks.reserve(instance.num_edges());
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    peaks.emplace_back(loads, e, instance.num_slots());
  }
  int pruned = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Find the accepted request with the most negative (value - saving).
    int worst = -1;
    double worst_margin = -num::kImproveTol;
    for (int i = first_mutable; i < instance.num_requests(); ++i) {
      const int j = schedule.path_choice[i];
      if (j == kDeclined) continue;
      const workload::Request& r = instance.request(i);
      double saving = 0;
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        saving += removal_saving(instance, peaks[e], e, r.start_slot,
                                 r.end_slot, r.rate);
      }
      const double margin = r.value - saving;
      if (margin < worst_margin) {
        worst_margin = margin;
        worst = i;
      }
    }
    if (worst >= 0) {
      const workload::Request& r = instance.request(worst);
      for (net::EdgeId e : instance.paths(worst)[schedule.path_choice[worst]].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) {
          loads.add(e, t, -r.rate);
          peaks[e].set(t, loads.at(e, t));
        }
      }
      schedule.path_choice[worst] = kDeclined;
      ++pruned;
      changed = true;
    }
  }
  return pruned;
}

int reroute_cheaper(const SpmInstance& instance, Schedule& schedule,
                    int first_mutable) {
  validate_shape(instance, schedule);
  LoadMatrix loads = compute_loads(instance, schedule);
  const auto apply = [&](int i, int j, double sign) {
    const workload::Request& r = instance.request(i);
    for (net::EdgeId e : instance.paths(i)[j].edges) {
      for (int t = r.start_slot; t <= r.end_slot; ++t) {
        loads.add(e, t, sign * r.rate);
      }
    }
  };
  // Charged cost of the edges a move can touch, from current loads.
  const auto cost_of_edges = [&](const std::vector<net::EdgeId>& edges) {
    double total = 0;
    for (net::EdgeId e : edges) {
      total += instance.topology().edge(e).price * charged_units(loads.peak(e));
    }
    return total;
  };
  int moves = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = first_mutable; i < instance.num_requests(); ++i) {
      const int current = schedule.path_choice[i];
      if (current == kDeclined || instance.num_paths(i) < 2) continue;
      // Union of edges across all candidate paths of i: only their charges
      // can change when i moves.
      std::vector<net::EdgeId> touched;
      for (int j = 0; j < instance.num_paths(i); ++j) {
        for (net::EdgeId e : instance.paths(i)[j].edges) {
          if (std::find(touched.begin(), touched.end(), e) == touched.end()) {
            touched.push_back(e);
          }
        }
      }
      int best = current;
      double best_cost = cost_of_edges(touched);
      for (int j = 0; j < instance.num_paths(i); ++j) {
        if (j == current) continue;
        apply(i, current, -1.0);
        apply(i, j, +1.0);
        const double candidate_cost = cost_of_edges(touched);
        apply(i, j, -1.0);
        apply(i, current, +1.0);
        if (candidate_cost < best_cost - num::kImproveTol) {
          best_cost = candidate_cost;
          best = j;
        }
      }
      if (best != current) {
        apply(i, current, -1.0);
        apply(i, best, +1.0);
        schedule.path_choice[i] = best;
        ++moves;
        changed = true;
      }
    }
  }
  return moves;
}

namespace {

/// Shared body of run_metis / run_metis_incremental.  `state == nullptr`
/// (or an empty committed prefix with empty snapshots) is the offline loop:
/// every pinned structure below is then empty / all-zero, and each use
/// reduces bit for bit to the historical behaviour — which is what makes
/// the single-batch online mode reproduce the offline decision exactly.
MetisResult run_metis_impl(const SpmInstance& instance, Rng& rng,
                           const MetisOptions& options,
                           IncrementalState* state) {
  if (options.theta < 0) throw std::invalid_argument("Metis: theta must be >= 0");
  METIS_SPAN("metis");
  telemetry::count("metis.runs");
  const int K = instance.num_requests();
  const int C = state != nullptr ? static_cast<int>(state->committed.size()) : 0;
  if (C > K) {
    throw std::invalid_argument("Metis: more commitments than requests");
  }
  if (options.edge_capacity != nullptr &&
      static_cast<int>(options.edge_capacity->size()) != instance.num_edges()) {
    throw std::invalid_argument("Metis: edge_capacity size mismatch");
  }

  // Pinned commitments: the first C requests in their final decision.
  Schedule pin = Schedule::all_declined(K);
  for (int i = 0; i < C; ++i) pin.path_choice[i] = state->committed[i];
  validate_shape(instance, pin);
  const LoadMatrix pinned_loads = compute_loads(instance, pin);
  // BW-limiter floor: a trim may never cut an edge below what the pinned
  // requests already consume (their charge is a sunk commitment).
  std::vector<int> floor_units(instance.num_edges(), 0);
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    floor_units[e] = charged_units(pinned_loads.peak(e));
  }

  // Convergence mode (theta == 0): run the paper's worst-case bound of K
  // loops (Section II.C) — here K free requests — with the usual early
  // exits when the accepted set empties or no bandwidth is left to trim.
  const int max_loops = options.theta == 0 ? K - C : options.theta;
  MetisResult result;
  // SP Updater starts from the pinned-only decision: with no commitments
  // that is the paper's empty decision (no requests, no bandwidth,
  // profit 0, Section II.C).
  result.schedule = pin;
  result.plan = charging_from_loads(pinned_loads);
  result.best = evaluate_with_plan(instance, result.schedule, result.plan);

  // Initialization phase: every *free* request marked "accepted".
  std::vector<bool> accepted(K, false);
  for (int i = C; i < K; ++i) accepted[i] = true;

  const auto record = [&](const Schedule& schedule, const ChargingPlan& plan) {
    ProfitBreakdown pb = evaluate_with_plan(instance, schedule, plan);
    if (pb.profit > result.best.profit) {
      result.best = pb;
      result.schedule = schedule;
      result.plan = plan;
    }
    if (options.prune || options.local_search) {
      // SP-updater guards: also consider the cleaned-up variant of the
      // candidate (reroute onto cheaper paths, drop value-negative
      // requests) — never worse than the candidate itself.  Commitments
      // (the first C requests) are immutable to both guards.
      METIS_SPAN("sp_update");
      Schedule improved = schedule;
      int changes = 0;
      if (options.local_search) changes += reroute_cheaper(instance, improved, C);
      if (options.prune) changes += prune_unprofitable(instance, improved, C);
      if (options.local_search) changes += reroute_cheaper(instance, improved, C);
      if (changes > 0) {
        const ChargingPlan improved_plan =
            charging_from_loads(compute_loads(instance, improved));
        const ProfitBreakdown improved_pb =
            evaluate_with_plan(instance, improved, improved_plan);
        if (improved_pb.profit > result.best.profit) {
          result.best = improved_pb;
          result.schedule = std::move(improved);
          result.plan = improved_plan;
        }
        if (improved_pb.profit > pb.profit) pb = improved_pb;
      }
    }
    return pb;
  };

  // Basis snapshots carried across loops.  While the accepted set is
  // stable the RL-SPM/BL-SPM LPs keep their shape (lp_builder's column
  // order is a function of the accepted set alone), so each re-solve
  // warm-starts from the previous optimum; when acceptance shrinks the
  // shape changes and the solver silently falls back to a cold start.
  // The incremental path additionally lifts the *previous batch's* basis
  // into the first solve of each kind (IncrementalContext::lift_from) and
  // snapshots the last optimal one for the next batch.
  lp::Basis maa_basis, taa_basis;
  MaaOptions maa_options = options.maa;
  maa_options.edge_capacity = options.edge_capacity;
  TaaOptions taa_options = options.taa;
  if (options.warm_start) {
    maa_options.warm_basis = &maa_basis;
    taa_options.warm_basis = &taa_basis;
  }
  IncrementalContext maa_inc, taa_inc;
  if (state != nullptr) {
    maa_inc.committed = &pin;
    maa_inc.committed_loads = &pinned_loads;
    taa_inc.committed = &pin;
    taa_inc.committed_loads = &pinned_loads;
    if (options.warm_start) {
      maa_inc.lift_from = &state->maa;
      maa_inc.snapshot_out = &state->maa;
      taa_inc.lift_from = &state->taa;
      taa_inc.snapshot_out = &state->taa;
    }
    maa_options.incremental = &maa_inc;
    taa_options.incremental = &taa_inc;
  }

  for (int loop = 0; loop < max_loops; ++loop) {
    MetisIteration iter;

    // RL-SPM Solver: minimal-cost routing of the current accepted set.
    const MaaResult maa = run_maa(instance, accepted, rng, maa_options);
    result.maa_status = maa.status;
    result.lp_stats += maa.lp_stats;
    if (!maa.ok()) {
      METIS_LOG_WARN << "Metis: MAA failed with status "
                     << lp::to_string(maa.status);
      break;
    }
    iter.profit_after_maa = record(maa.schedule, maa.plan).profit;

    // BW Limiter: trim the least-utilized link (rule tau), never below the
    // pinned floor.
    ChargingPlan limited = maa.plan;
    if (options.edge_capacity != nullptr) {
      // Fault repair: the rounded MAA plan may overshoot a shrunk link's
      // physical capacity; the BL-SPM pass must not offer bandwidth that no
      // longer exists.  Keep the pinned floor even when a fault pushed the
      // cap below it — the TAA fits() guard then simply admits nothing new
      // there, and the overload is the repair shed loop's to resolve.
      for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
        const int cap = (*options.edge_capacity)[e];
        if (cap >= 0 && limited.units[e] > cap) {
          limited.units[e] = std::max(cap, floor_units[e]);
        }
      }
    }
    iter.trimmed_edge = trim_min_utilization_link(
        instance, maa.schedule, limited, options.trim_units, &floor_units);
    if (iter.trimmed_edge < 0) {
      result.history.push_back(iter);
      ++result.iterations_run;
      break;  // nothing purchased: no bandwidth left to rebalance
    }

    // BL-SPM Solver: best revenue under the limited bandwidth.
    const TaaResult taa = run_taa(instance, limited, accepted, taa_options);
    result.taa_status = taa.status;
    result.lp_stats += taa.lp_stats;
    if (!taa.ok()) {
      METIS_LOG_WARN << "Metis: TAA failed with status "
                     << lp::to_string(taa.status);
      result.history.push_back(iter);
      ++result.iterations_run;
      break;
    }
    // Charge only what the TAA schedule actually needs (<= limited).
    const ChargingPlan taa_plan =
        charging_from_loads(compute_loads(instance, taa.schedule));
    iter.profit_after_taa = record(taa.schedule, taa_plan).profit;
    iter.accepted_after_taa = taa.schedule.num_accepted();
    result.history.push_back(iter);
    ++result.iterations_run;
    // Per-round alternation trajectory: last-value gauges plus a round
    // counter, so a telemetry export shows where the loop settled.
    telemetry::count("metis.rounds");
    telemetry::gauge_set("metis.profit", result.best.profit);
    telemetry::gauge_set("metis.cost", result.best.cost);
    telemetry::gauge_set("metis.accepted", result.best.accepted);

    // The declined *free* requests leave the working set (convergence
    // argument of Section II.C); commitments never re-enter it.
    std::vector<bool> next(K, false);
    int remaining = 0;
    for (int i = C; i < K; ++i) {
      next[i] = taa.schedule.accepted(i);
      remaining += next[i] ? 1 : 0;
    }
    if (remaining == 0) break;
    accepted = std::move(next);
  }
  return result;
}

}  // namespace

MetisResult run_metis(const SpmInstance& instance, Rng& rng,
                      const MetisOptions& options) {
  if (options.shards > 1) return run_metis_sharded(instance, nullptr, rng, options);
  return run_metis_impl(instance, rng, options, nullptr);
}

MetisResult run_metis_incremental(const SpmInstance& instance,
                                  IncrementalState& state, Rng& rng,
                                  const MetisOptions& options) {
  if (options.shards > 1) return run_metis_sharded(instance, &state, rng, options);
  return run_metis_impl(instance, rng, options, &state);
}

}  // namespace metis::core
