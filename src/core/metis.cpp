#include "core/metis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.h"

namespace metis::core {

int trim_min_utilization_link(const SpmInstance& instance, const Schedule& schedule,
                              ChargingPlan& plan, int units) {
  if (units <= 0) throw std::invalid_argument("trim: units must be positive");
  const LoadMatrix loads = compute_loads(instance, schedule);
  int target = -1;
  double lowest = 0;
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    if (plan.units[e] <= 0) continue;
    const double util = loads.mean(e) / plan.units[e];
    if (target == -1 || util < lowest) {
      lowest = util;
      target = e;
    }
  }
  if (target >= 0) {
    plan.units[target] = std::max(0, plan.units[target] - units);
  }
  return target;
}

namespace {

/// Charging saved on edge e if `rate` were removed from slots
/// [start, end] of `loads`.
double removal_saving(const SpmInstance& instance, const LoadMatrix& loads,
                      net::EdgeId e, int start, int end, double rate) {
  double peak_with = 0, peak_without = 0;
  for (int t = 0; t < instance.num_slots(); ++t) {
    const double load = loads.at(e, t);
    peak_with = std::max(peak_with, load);
    const bool in_window = t >= start && t <= end;
    peak_without = std::max(peak_without, in_window ? load - rate : load);
  }
  return instance.topology().edge(e).price *
         (charged_units(peak_with) - charged_units(peak_without));
}

}  // namespace

int prune_unprofitable(const SpmInstance& instance, Schedule& schedule) {
  validate_shape(instance, schedule);
  LoadMatrix loads = compute_loads(instance, schedule);
  int pruned = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Find the accepted request with the most negative (value - saving).
    int worst = -1;
    double worst_margin = -1e-9;
    for (int i = 0; i < instance.num_requests(); ++i) {
      const int j = schedule.path_choice[i];
      if (j == kDeclined) continue;
      const workload::Request& r = instance.request(i);
      double saving = 0;
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        saving += removal_saving(instance, loads, e, r.start_slot, r.end_slot,
                                 r.rate);
      }
      const double margin = r.value - saving;
      if (margin < worst_margin) {
        worst_margin = margin;
        worst = i;
      }
    }
    if (worst >= 0) {
      const workload::Request& r = instance.request(worst);
      for (net::EdgeId e : instance.paths(worst)[schedule.path_choice[worst]].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) {
          loads.add(e, t, -r.rate);
        }
      }
      schedule.path_choice[worst] = kDeclined;
      ++pruned;
      changed = true;
    }
  }
  return pruned;
}

int reroute_cheaper(const SpmInstance& instance, Schedule& schedule) {
  validate_shape(instance, schedule);
  LoadMatrix loads = compute_loads(instance, schedule);
  const auto apply = [&](int i, int j, double sign) {
    const workload::Request& r = instance.request(i);
    for (net::EdgeId e : instance.paths(i)[j].edges) {
      for (int t = r.start_slot; t <= r.end_slot; ++t) {
        loads.add(e, t, sign * r.rate);
      }
    }
  };
  // Charged cost of the edges a move can touch, from current loads.
  const auto cost_of_edges = [&](const std::vector<net::EdgeId>& edges) {
    double total = 0;
    for (net::EdgeId e : edges) {
      total += instance.topology().edge(e).price * charged_units(loads.peak(e));
    }
    return total;
  };
  int moves = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < instance.num_requests(); ++i) {
      const int current = schedule.path_choice[i];
      if (current == kDeclined || instance.num_paths(i) < 2) continue;
      // Union of edges across all candidate paths of i: only their charges
      // can change when i moves.
      std::vector<net::EdgeId> touched;
      for (int j = 0; j < instance.num_paths(i); ++j) {
        for (net::EdgeId e : instance.paths(i)[j].edges) {
          if (std::find(touched.begin(), touched.end(), e) == touched.end()) {
            touched.push_back(e);
          }
        }
      }
      int best = current;
      double best_cost = cost_of_edges(touched);
      for (int j = 0; j < instance.num_paths(i); ++j) {
        if (j == current) continue;
        apply(i, current, -1.0);
        apply(i, j, +1.0);
        const double candidate_cost = cost_of_edges(touched);
        apply(i, j, -1.0);
        apply(i, current, +1.0);
        if (candidate_cost < best_cost - 1e-9) {
          best_cost = candidate_cost;
          best = j;
        }
      }
      if (best != current) {
        apply(i, current, -1.0);
        apply(i, best, +1.0);
        schedule.path_choice[i] = best;
        ++moves;
        changed = true;
      }
    }
  }
  return moves;
}

MetisResult run_metis(const SpmInstance& instance, Rng& rng,
                      const MetisOptions& options) {
  if (options.theta < 0) throw std::invalid_argument("Metis: theta must be >= 0");
  // Convergence mode (theta == 0): run the paper's worst-case bound of K
  // loops (Section II.C), with the usual early exits when the accepted set
  // empties or no bandwidth is left to trim.
  const int max_loops =
      options.theta == 0 ? instance.num_requests() : options.theta;
  MetisResult result;
  // SP Updater starts from the empty decision: no requests, no bandwidth,
  // profit 0 (Section II.C).
  result.schedule = Schedule::all_declined(instance.num_requests());
  result.plan = ChargingPlan::none(instance.num_edges());
  result.best = ProfitBreakdown{};

  // Initialization phase: all requests marked "accepted".
  std::vector<bool> accepted(instance.num_requests(), true);

  const auto record = [&](const Schedule& schedule, const ChargingPlan& plan) {
    ProfitBreakdown pb = evaluate_with_plan(instance, schedule, plan);
    if (pb.profit > result.best.profit) {
      result.best = pb;
      result.schedule = schedule;
      result.plan = plan;
    }
    if (options.prune || options.local_search) {
      // SP-updater guards: also consider the cleaned-up variant of the
      // candidate (reroute onto cheaper paths, drop value-negative
      // requests) — never worse than the candidate itself.
      Schedule improved = schedule;
      int changes = 0;
      if (options.local_search) changes += reroute_cheaper(instance, improved);
      if (options.prune) changes += prune_unprofitable(instance, improved);
      if (options.local_search) changes += reroute_cheaper(instance, improved);
      if (changes > 0) {
        const ChargingPlan improved_plan =
            charging_from_loads(compute_loads(instance, improved));
        const ProfitBreakdown improved_pb =
            evaluate_with_plan(instance, improved, improved_plan);
        if (improved_pb.profit > result.best.profit) {
          result.best = improved_pb;
          result.schedule = std::move(improved);
          result.plan = improved_plan;
        }
        if (improved_pb.profit > pb.profit) pb = improved_pb;
      }
    }
    return pb;
  };

  for (int loop = 0; loop < max_loops; ++loop) {
    MetisIteration iter;

    // RL-SPM Solver: minimal-cost routing of the current accepted set.
    const MaaResult maa = run_maa(instance, accepted, rng, options.maa);
    if (!maa.ok()) {
      METIS_LOG_WARN << "Metis: MAA failed with status "
                     << lp::to_string(maa.status);
      break;
    }
    iter.profit_after_maa = record(maa.schedule, maa.plan).profit;

    // BW Limiter: trim the least-utilized link (rule tau).
    ChargingPlan limited = maa.plan;
    iter.trimmed_edge =
        trim_min_utilization_link(instance, maa.schedule, limited, options.trim_units);
    if (iter.trimmed_edge < 0) {
      result.history.push_back(iter);
      ++result.iterations_run;
      break;  // nothing purchased: no bandwidth left to rebalance
    }

    // BL-SPM Solver: best revenue under the limited bandwidth.
    const TaaResult taa = run_taa(instance, limited, accepted, options.taa);
    if (!taa.ok()) {
      METIS_LOG_WARN << "Metis: TAA failed with status "
                     << lp::to_string(taa.status);
      result.history.push_back(iter);
      ++result.iterations_run;
      break;
    }
    // Charge only what the TAA schedule actually needs (<= limited).
    const ChargingPlan taa_plan =
        charging_from_loads(compute_loads(instance, taa.schedule));
    iter.profit_after_taa = record(taa.schedule, taa_plan).profit;
    iter.accepted_after_taa = taa.schedule.num_accepted();
    result.history.push_back(iter);
    ++result.iterations_run;

    // The declined requests leave the working set (convergence argument of
    // Section II.C).
    std::vector<bool> next(instance.num_requests(), false);
    int remaining = 0;
    for (int i = 0; i < instance.num_requests(); ++i) {
      next[i] = taa.schedule.accepted(i);
      remaining += next[i] ? 1 : 0;
    }
    if (remaining == 0) break;
    accepted = std::move(next);
  }
  return result;
}

}  // namespace metis::core
