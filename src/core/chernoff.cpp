#include "core/chernoff.h"

#include <cmath>
#include <stdexcept>

#include "util/numeric.h"

namespace metis::core {

double log_chernoff_b(double m, double delta) {
  if (m < 0) throw std::invalid_argument("log_chernoff_b: m < 0");
  if (delta <= -1) throw std::invalid_argument("log_chernoff_b: delta <= -1");
  // log B = m * (delta - (1+delta) log(1+delta))
  return m * (delta - (1 + delta) * std::log1p(delta));
}

double chernoff_b(double m, double delta) {
  return std::exp(log_chernoff_b(m, delta));
}

double chernoff_d(double m, double x) {
  if (m <= 0) throw std::invalid_argument("chernoff_d: m must be positive");
  if (x <= 0 || x >= 1) throw std::invalid_argument("chernoff_d: x in (0,1)");
  const double target = std::log(x);
  // log B(m, delta) decreases from 0 (delta=0) to -inf as delta grows.
  double lo = 0, hi = 1;
  while (log_chernoff_b(m, hi) > target) {
    hi *= 2;
    if (hi > 1e12) return hi;  // bound is astronomically weak; cap it
  }
  for (int iter = 0; iter < 200 && hi - lo > num::kBisectTol * (1 + hi); ++iter) {
    const double mid = (lo + hi) / 2;
    if (log_chernoff_b(m, mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double choose_mu(double c, int num_slots, int num_edges) {
  if (c <= 0) return 0;
  if (num_slots <= 0 || num_edges <= 0) {
    throw std::invalid_argument("choose_mu: need positive T and N");
  }
  const double target =
      -std::log(static_cast<double>(num_slots) * (num_edges + 1));
  // f(mu) = c [ (1-mu) + log mu ] is strictly increasing on (0,1) with
  // f(1) = 0 > target and f(0+) = -inf, so the feasible set is (0, mu*).
  const auto f = [c](double mu) { return c * ((1 - mu) + std::log(mu)); };
  constexpr double kMargin = num::kImproveTol;  // keep the inequality strict
  double lo = num::kBisectTol, hi = 1.0 - num::kBisectTol;
  if (f(lo) >= target - kMargin) return 0;  // even tiny mu fails
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2;
    if (f(mid) < target - kMargin) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace metis::core
