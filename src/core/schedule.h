// Schedule and ChargingPlan: the two outputs of every SPM solver.
//
//  * Schedule maps each request to a chosen candidate-path index
//    (kDeclined = the request was turned down) — the x_{i,j} variables.
//  * ChargingPlan is the integer number of bandwidth units purchased per
//    directed edge — the c_e variables.
#pragma once

#include <vector>

#include "core/instance.h"

namespace metis::core {

/// Sentinel path index meaning "request declined".
inline constexpr int kDeclined = -1;

struct Schedule {
  /// One entry per request: candidate path index or kDeclined.
  std::vector<int> path_choice;

  static Schedule all_declined(int num_requests) {
    return Schedule{std::vector<int>(num_requests, kDeclined)};
  }
  bool accepted(int i) const { return path_choice.at(i) != kDeclined; }
  int num_accepted() const;
};

struct ChargingPlan {
  /// Purchased units per directed edge.
  std::vector<int> units;

  static ChargingPlan none(int num_edges) {
    return ChargingPlan{std::vector<int>(num_edges, 0)};
  }
  long long total_units() const;
};

/// Throws std::invalid_argument if the schedule shape doesn't match the
/// instance (size, path indices in range).
void validate_shape(const SpmInstance& instance, const Schedule& schedule);

}  // namespace metis::core
