// SpmInstance: one fully-specified SPM problem — the WAN, the billing cycle,
// the request set and each request's candidate path set P_i.
//
// Candidate paths are the L_i cheapest loop-free paths between the request's
// endpoints (Yen's algorithm, price metric), computed once per distinct DC
// pair and shared.
#pragma once

#include <vector>

#include "net/paths.h"
#include "net/topology.h"
#include "workload/request.h"

namespace metis::core {

struct InstanceConfig {
  /// Time slots T per billing cycle (the paper evaluates T = 12).
  int num_slots = 12;
  /// Maximum number of candidate paths per request (L_i <= this).
  int max_paths = 4;
};

class SpmInstance {
 public:
  /// Validates every request against the topology/cycle and precomputes the
  /// candidate path sets.  Requests between disconnected pairs are rejected
  /// with std::invalid_argument (the generator never produces them).
  ///
  /// `path_cache` (optional): a net::PathCache built over a topology with
  /// the same edges as `topology`, through which the per-pair Yen runs are
  /// memoized.  The online pipeline passes one cache across all of a
  /// cycle's batch instances so recurring (src, dst) pairs cost a lookup;
  /// nullptr computes paths from scratch (identical results either way).
  ///
  /// `require_paths` (optional, fault repair): per-request concrete paths
  /// that must appear in the request's candidate set.  After a topology
  /// mutation Yen may rank paths differently (or drop the one a committed
  /// request is pinned to), so the repair machinery passes each survivor's
  /// reserved path here; if Yen's set misses it, it is appended.  Each
  /// non-empty entry must be a live (all edges enabled) simple src->dst
  /// path; empty entries request nothing.  nullptr (or all-empty) leaves
  /// the candidate sets byte-identical to the plain construction.
  SpmInstance(net::Topology topology, std::vector<workload::Request> requests,
              InstanceConfig config = {}, net::PathCache* path_cache = nullptr,
              const std::vector<net::Path>* require_paths = nullptr);

  const net::Topology& topology() const { return topology_; }
  net::Topology& mutable_topology() { return topology_; }
  const std::vector<workload::Request>& requests() const { return requests_; }
  const workload::Request& request(int i) const { return requests_.at(i); }

  int num_requests() const { return static_cast<int>(requests_.size()); }
  int num_slots() const { return config_.num_slots; }
  int num_edges() const { return topology_.num_edges(); }

  /// Candidate paths of request i (size L_i >= 1).
  const std::vector<net::Path>& paths(int i) const { return paths_.at(i); }
  int num_paths(int i) const { return static_cast<int>(paths_.at(i).size()); }

  /// I_{i,j,e}: whether edge e lies on path P_{i,j}.
  bool path_uses_edge(int i, int j, net::EdgeId e) const;

  const InstanceConfig& config() const { return config_; }

 private:
  net::Topology topology_;
  std::vector<workload::Request> requests_;
  InstanceConfig config_;
  std::vector<std::vector<net::Path>> paths_;
  // Per (request, path): bitmap over edges for O(1) I_{i,j,e} lookups.
  std::vector<std::vector<std::vector<bool>>> uses_edge_;
};

}  // namespace metis::core
