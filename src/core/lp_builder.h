// Builders that translate SPM and its two variants into LinearProblem form.
//
// Variable layout is returned alongside the problem so solvers/rounders can
// map LP columns back to (request, path) pairs and edges:
//
//   RL-SPM  (min cost, accepted set fixed):
//       min  sum_e u_e c_e
//       s.t. sum_j x_{i,j}  = 1                       for accepted i
//            sum_{i,j} r_{i,t} x_{i,j} I_{i,j,e} - c_e <= 0   for all (e,t)
//            x in [0,1] (or {0,1}),  c_e >= 0 (or integer)
//
//   BL-SPM  (max revenue, capacities fixed):
//       max  sum_i v_i sum_j x_{i,j}
//       s.t. sum_j x_{i,j} <= 1                       for all i
//            sum_{i,j} r_{i,t} x_{i,j} I_{i,j,e} <= cap_e   for all (e,t)
//
//   SPM     (max profit, everything free):
//       max  sum_i v_i sum_j x_{i,j} - sum_e u_e c_e
//       s.t. sum_j x_{i,j} <= 1;  load(e,t) - c_e <= 0
//
// Ordering contract (load-bearing for warm starts): for a fixed instance
// and accepted set, every builder emits columns and rows in a fixed
// deterministic order — x columns per accepted request in index order,
// path-major, then c columns per edge; assignment rows before capacity
// rows per (edge, slot).  Two builds over the same accepted set therefore
// produce identically-shaped LinearProblems, which is what lets a
// lp::Basis snapshot from one solve warm-start the next (Metis carries one
// across alternation iterations; see MaaOptions/TaaOptions::warm_basis).
// Changing the accepted set changes the shape, and the solver falls back
// to a cold start on its own — never rely on column indices surviving an
// acceptance change.
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "lp/problem.h"

namespace metis::core {

/// Column map of a built model.  x_var[i][j] == -1 when request i is not
/// part of the model (declined up-front); c_var is empty for BL-SPM.
struct SpmModel {
  lp::LinearProblem problem;
  std::vector<std::vector<int>> x_var;  ///< [request][path] -> column
  std::vector<int> c_var;               ///< [edge] -> column (may be empty)
  /// [edge][slot] -> row index of the capacity constraint, or -1 when the
  /// pair has no row (nothing can load it).  Lets callers read the LP duals
  /// as per-(edge, slot) shadow prices of bandwidth.
  std::vector<std::vector<int>> cap_row;

  /// All x columns (for MIP integrality lists).
  std::vector<int> x_columns() const;
  /// All columns that must be integral in the exact formulations (x and c).
  std::vector<int> integer_columns() const;
};

/// RL-SPM for the subset of requests with accepted[i] == true.
/// An empty `accepted` vector means "all requests accepted".
SpmModel build_rl_spm(const SpmInstance& instance,
                      const std::vector<bool>& accepted = {});

/// Extension knobs for BL-SPM (beyond the paper, see DESIGN.md):
struct BlSpmOptions {
  /// 0 (the paper): maximize pure revenue.  > 0: subtract
  /// `cost_weight * r_i * (duration_i / T) * path_price_j` from the
  /// objective coefficient of x_{i,j} — an internalized estimate of the
  /// bandwidth a request consumes on its path, making the solver prefer
  /// cheap routes and decline bids that cannot cover their footprint.
  double cost_weight = 0;
};

/// BL-SPM under per-edge capacities (units.size() == num_edges).  Only
/// requests with accepted[i] == true participate (empty = all).
SpmModel build_bl_spm(const SpmInstance& instance, const ChargingPlan& capacities,
                      const std::vector<bool>& accepted = {},
                      const BlSpmOptions& options = {});

/// The full SPM problem (used with MipSolver for OPT(SPM)).
SpmModel build_spm(const SpmInstance& instance);

/// Extracts a Schedule from solved x values: for each request the path with
/// x >= 0.5 (exact formulations produce 0/1 values).  Fractional solutions
/// below the threshold everywhere yield kDeclined.
Schedule schedule_from_solution(const SpmInstance& instance, const SpmModel& model,
                                const std::vector<double>& x);

/// Extracts a ChargingPlan from solved c values (rounded to nearest int).
ChargingPlan plan_from_solution(const SpmInstance& instance, const SpmModel& model,
                                const std::vector<double>& x);

/// The inverse of schedule_from_solution: encodes a concrete decision as a
/// full column assignment of `model` (x from the schedule; c, when the model
/// has c columns, as the ceiled peak loads).  Used to warm-start MipSolver
/// with a heuristic solution.
std::vector<double> columns_from_decision(const SpmInstance& instance,
                                          const SpmModel& model,
                                          const Schedule& schedule);

}  // namespace metis::core
