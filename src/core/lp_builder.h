// Builders that translate SPM and its two variants into LinearProblem form.
//
// Variable layout is returned alongside the problem so solvers/rounders can
// map LP columns back to (request, path) pairs and edges:
//
//   RL-SPM  (min cost, accepted set fixed):
//       min  sum_e u_e c_e
//       s.t. sum_j x_{i,j}  = 1                       for accepted i
//            sum_{i,j} r_{i,t} x_{i,j} I_{i,j,e} - c_e <= 0   for all (e,t)
//            x in [0,1] (or {0,1}),  c_e >= 0 (or integer)
//
//   BL-SPM  (max revenue, capacities fixed):
//       max  sum_i v_i sum_j x_{i,j}
//       s.t. sum_j x_{i,j} <= 1                       for all i
//            sum_{i,j} r_{i,t} x_{i,j} I_{i,j,e} <= cap_e   for all (e,t)
//
//   SPM     (max profit, everything free):
//       max  sum_i v_i sum_j x_{i,j} - sum_e u_e c_e
//       s.t. sum_j x_{i,j} <= 1;  load(e,t) - c_e <= 0
//
// Ordering contract (load-bearing for warm starts): for a fixed instance
// and accepted set, every builder emits columns and rows in a fixed
// deterministic order — x columns per accepted request in index order,
// path-major, then c columns per edge; assignment rows before capacity
// rows per (edge, slot).  Two builds over the same accepted set therefore
// produce identically-shaped LinearProblems, which is what lets a
// lp::Basis snapshot from one solve warm-start the next (Metis carries one
// across alternation iterations; see MaaOptions/TaaOptions::warm_basis).
// Changing the accepted set changes the shape, and the solver falls back
// to a cold start on its own — never rely on column indices surviving an
// acceptance change.
#pragma once

#include <vector>

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "lp/problem.h"
#include "lp/types.h"

namespace metis::core {

/// Column map of a built model.  x_var[i][j] == -1 when request i is not
/// part of the model (declined up-front); c_var is empty for BL-SPM.
struct SpmModel {
  lp::LinearProblem problem;
  std::vector<std::vector<int>> x_var;  ///< [request][path] -> column
  std::vector<int> c_var;               ///< [edge] -> column (may be empty)
  /// [edge][slot] -> row index of the capacity constraint, or -1 when the
  /// pair has no row (nothing can load it).  Lets callers read the LP duals
  /// as per-(edge, slot) shadow prices of bandwidth.
  std::vector<std::vector<int>> cap_row;

  /// All x columns (for MIP integrality lists).
  std::vector<int> x_columns() const;
  /// All columns that must be integral in the exact formulations (x and c).
  std::vector<int> integer_columns() const;
};

/// RL-SPM for the subset of requests with accepted[i] == true.
/// An empty `accepted` vector means "all requests accepted".
///
/// `pinned` (online admission): per-(edge, slot) loads of requests whose
/// routing is already committed and therefore NOT part of the model.  The
/// pinned load moves to the capacity rows' right-hand side (load_free − c_e
/// ≤ −pinned(e,t)), so the purchased c_e must cover commitments plus
/// whatever the model routes.  A capacity row is emitted for every (e, t)
/// with either a potential free load or a positive pinned load.  Passing
/// nullptr (or an all-zero matrix) reproduces the offline model exactly,
/// byte for byte — the bit-identity anchor of the single-batch online mode.
///
/// `purchase_cap` (optional, fault repair): per-edge ceiling on the c_e
/// purchase column (size num_edges); an entry < 0 leaves that edge
/// uncapacitated.  RL-SPM's columns are otherwise unbounded — the provider
/// buys whatever it needs — but after a link degrades, what it can buy on
/// that link is physically capped.  nullptr reproduces the unbounded model
/// exactly.
SpmModel build_rl_spm(const SpmInstance& instance,
                      const std::vector<bool>& accepted = {},
                      const LoadMatrix* pinned = nullptr,
                      const std::vector<int>* purchase_cap = nullptr);

/// Extension knobs for BL-SPM (beyond the paper, see DESIGN.md):
struct BlSpmOptions {
  /// 0 (the paper): maximize pure revenue.  > 0: subtract
  /// `cost_weight * r_i * (duration_i / T) * path_price_j` from the
  /// objective coefficient of x_{i,j} — an internalized estimate of the
  /// bandwidth a request consumes on its path, making the solver prefer
  /// cheap routes and decline bids that cannot cover their footprint.
  double cost_weight = 0;
};

/// BL-SPM under per-edge capacities (units.size() == num_edges).  Only
/// requests with accepted[i] == true participate (empty = all).
///
/// `pinned` (online admission): committed loads subtracted from the
/// capacity rows' right-hand side (load_free ≤ cap_e − pinned(e,t)); the
/// caller guarantees cap_e covers the pinned peak (the incremental Metis
/// trim floor).  nullptr / all-zero reproduces the offline model exactly.
SpmModel build_bl_spm(const SpmInstance& instance, const ChargingPlan& capacities,
                      const std::vector<bool>& accepted = {},
                      const BlSpmOptions& options = {},
                      const LoadMatrix* pinned = nullptr);

/// The full SPM problem (used with MipSolver for OPT(SPM)).
SpmModel build_spm(const SpmInstance& instance);

/// Extracts a Schedule from solved x values: for each request the path with
/// x >= 0.5 (exact formulations produce 0/1 values).  Fractional solutions
/// below the threshold everywhere yield kDeclined.
Schedule schedule_from_solution(const SpmInstance& instance, const SpmModel& model,
                                const std::vector<double>& x);

/// Extracts a ChargingPlan from solved c values (rounded to nearest int).
ChargingPlan plan_from_solution(const SpmInstance& instance, const SpmModel& model,
                                const std::vector<double>& x);

/// Shape + optimal basis of one solved SPM relaxation, kept across batches
/// by the online admission pipeline (core::IncrementalState).  Consecutive
/// batch re-decides solve *differently shaped* problems — the new batch's
/// x columns replace the previous batch's — but the c_e purchase columns
/// and the (edge, slot) capacity rows persist, and their basis statuses
/// encode which links sit at their load ceiling.  lift_into_model maps that
/// persistent part onto the next batch's model (see lp/basis_lift.h).
struct ModelSnapshot {
  lp::Basis basis;                      ///< optimal basis of the snapshot solve
  int num_variables = 0;                ///< columns of the snapshot problem
  int num_rows = 0;                     ///< rows of the snapshot problem
  std::vector<int> c_col;               ///< [edge] -> column (empty for BL-SPM)
  std::vector<std::vector<int>> cap_row;  ///< [edge][slot] -> row or -1

  bool empty() const { return basis.empty(); }
  void clear() { basis.clear(); c_col.clear(); cap_row.clear(); }
};

/// Records `model`'s shape together with `basis` (the solve's optimal
/// basis) into `out`.  An empty basis clears the snapshot — there is
/// nothing to lift from a solve that produced no reusable basis.
void snapshot_model(const SpmModel& model, const lp::Basis& basis,
                    ModelSnapshot& out);

/// Lifts `snap` onto `model`'s shape: c columns and capacity rows map by
/// (edge) / (edge, slot) identity, everything else is new.  With
/// `equality_assignments` (RL-SPM), each participating request's first
/// path column is marked Basic so the lifted point can satisfy the
/// sum_j x = 1 rows.  Returns an empty Basis (= cold start) when the
/// snapshot is empty or unliftable.
lp::Basis lift_into_model(const ModelSnapshot& snap, const SpmModel& model,
                          bool equality_assignments);

/// Pinning/warm-start context threaded through one MAA or TAA solve by the
/// incremental Metis loop (online admission, see MetisOptions /
/// IncrementalState in metis.h).  All pointers are non-owning; any may be
/// null.  With `committed`/`committed_loads` null — or pointing at an
/// all-declined schedule / all-zero matrix — the solve is byte-identical to
/// the offline one.
struct IncrementalContext {
  /// Full-size schedule of already-committed decisions (kDeclined for every
  /// request still free).  Committed requests are excluded from the LP and
  /// merged verbatim into the returned schedule.
  const Schedule* committed = nullptr;
  /// Loads of the committed acceptances (compute_loads over *committed).
  const LoadMatrix* committed_loads = nullptr;
  /// Snapshot of the previous batch's solve to lift a warm start from.
  const ModelSnapshot* lift_from = nullptr;
  /// When non-null, receives this solve's shape + optimal basis (the next
  /// batch's lift_from).  May alias lift_from — it is read before written.
  ModelSnapshot* snapshot_out = nullptr;
};

/// The inverse of schedule_from_solution: encodes a concrete decision as a
/// full column assignment of `model` (x from the schedule; c, when the model
/// has c columns, as the ceiled peak loads).  Used to warm-start MipSolver
/// with a heuristic solution.
std::vector<double> columns_from_decision(const SpmInstance& instance,
                                          const SpmModel& model,
                                          const Schedule& schedule);

}  // namespace metis::core
