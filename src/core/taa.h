// TAA — Tree-based Approximation Algorithm for BL-SPM (Algorithm 2).
//
// Steps:
//   1. Normalize rates and values to [0,1].
//   2. Solve the BL-SPM LP relaxation under the given capacities.
//   3. Pick the scaling factor mu from the paper's inequality (6).
//   4. Walk the K-level decision tree: for each request choose the option
//      (one of its L_i paths, or declining) that minimizes the pessimistic
//      estimator u_root, i.e. the method of conditional probabilities on the
//      Chernoff-Hoeffding bounds.
//
// Two engineering guards on top of the paper's description:
//   * a *hard feasibility guard*: options that would violate a capacity
//     constraint outright are discarded (a violated branch cannot reach a
//     "good leaf", so this never excludes the guaranteed solution);
//   * an optional greedy *augmentation pass* (on by default): requests the
//     walk declined are re-admitted if they still fit in residual capacity —
//     a pure revenue improvement that keeps feasibility.  Disable via
//     TaaOptions::augment to measure the bare walk (see the ablation bench).
#pragma once

#include <vector>

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "lp/simplex.h"

namespace metis::core {

struct IncrementalContext;  // core/lp_builder.h

struct TaaOptions {
  /// Greedy re-admission of walk-declined requests that still fit.
  bool augment = true;
  /// Fallback mu when inequality (6) has no solution (tiny capacities).
  double fallback_mu = 0.5;
  /// Extension (see BlSpmOptions::cost_weight): > 0 makes the relaxation
  /// prefer cheap routes / decline bids below their bandwidth footprint.
  /// With a non-zero weight `lp_revenue` holds the LP *objective*, which is
  /// no longer an upper bound on revenue.
  double cost_weight = 0;
  /// Simplex knobs for the relaxation solve.
  lp::SimplexOptions lp;
  /// Optional basis-reuse slot for the BL-SPM relaxation (see
  /// MaaOptions::warm_basis): consecutive Metis iterations re-solve the
  /// same-shaped LP with only capacities/acceptance perturbed.
  lp::Basis* warm_basis = nullptr;
  /// Online admission (see IncrementalState in metis.h): when non-null,
  /// committed requests are pinned — excluded from the LP (their loads are
  /// subtracted from the capacity rows' RHS), pre-loaded into the walk's
  /// feasibility guard, and merged verbatim into the returned schedule —
  /// and, when `warm_basis` is empty, the relaxation lifts a cross-batch
  /// warm start from `incremental->lift_from` and snapshots its own optimal
  /// basis into `incremental->snapshot_out`.  Null: plain offline solve.
  const IncrementalContext* incremental = nullptr;
};

struct TaaResult {
  lp::SolveStatus status = lp::SolveStatus::NotSolved;  ///< relaxation outcome
  Schedule schedule;  ///< accepted path per request under the capacities
  double lp_revenue = 0;   ///< optimal relaxed revenue (upper bound)
  double revenue = 0;      ///< revenue of the returned schedule
  double mu = 0;           ///< scaling factor actually used
  double gamma = 0;        ///< D(I_S, 1/(N+1))
  double revenue_floor = 0;  ///< I_B denormalized (the Theorem 6 target)
  int walk_accepted = 0;     ///< accepted by the tree walk itself
  int augment_accepted = 0;  ///< additionally accepted by augmentation
  /// Work counters of the relaxation solve (aggregatable via +=).
  lp::SolveStats lp_stats;

  /// False when the relaxation did not reach optimality; `status` says why
  /// (Infeasible vs IterationLimit vs numerical NotSolved).
  bool ok() const { return status == lp::SolveStatus::Optimal; }
};

/// Runs TAA under per-edge capacities over the requests with
/// accepted[i] == true (empty mask = all requests participate).
TaaResult run_taa(const SpmInstance& instance, const ChargingPlan& capacities,
                  const std::vector<bool>& accepted = {},
                  const TaaOptions& options = {});

/// The *splittable* counterpart (extension): with multipath splitting
/// allowed, BL-SPM's LP relaxation is itself the exact optimum — a request
/// counts as satisfied to the extent sum_j x_{i,j}, and revenue is earned
/// pro-rata.  Quantifies what the paper's unsplittable model gives up
/// (cf. the EcoFlow discussion in Section VI: splitting avoids charge
/// increases but introduces packet reordering).
struct SplittableResult {
  lp::SolveStatus status = lp::SolveStatus::NotSolved;
  double revenue = 0;                     ///< optimal splittable revenue
  std::vector<std::vector<double>> flow;  ///< [request][path] fractions
  lp::SolveStats lp_stats;                ///< work counters of the solve
  bool ok() const { return status == lp::SolveStatus::Optimal; }
};

SplittableResult run_splittable_bl_spm(const SpmInstance& instance,
                                       const ChargingPlan& capacities,
                                       const std::vector<bool>& accepted = {});

}  // namespace metis::core
