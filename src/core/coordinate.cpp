#include "core/coordinate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/paths.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/telemetry.h"

namespace metis::core {

namespace {

/// Index of `path` in `candidates`, fast-pathing the common case where the
/// sets are identical and the index carries over unchanged.  The shard
/// sub-instances copy the parent topology and re-run the same deterministic
/// Yen search, so a miss means the decomposition invariant broke — throw
/// rather than mis-route.
int find_candidate(const std::vector<net::Path>& candidates, int hint,
                   const net::Path& path) {
  if (hint >= 0 && hint < static_cast<int>(candidates.size()) &&
      candidates[hint] == path) {
    return hint;
  }
  for (int j = 0; j < static_cast<int>(candidates.size()); ++j) {
    if (candidates[j] == path) return j;
  }
  throw std::logic_error("shard: candidate path missing across instances");
}

/// Translates a path choice between two instances' candidate sets for the
/// same underlying request (kDeclined passes through).
int translate_choice(const SpmInstance& from, int from_request, int choice,
                     const SpmInstance& to, int to_request) {
  if (choice == kDeclined) return kDeclined;
  return find_candidate(to.paths(to_request), choice,
                        from.paths(from_request)[choice]);
}

/// Adds (sign = +1) or removes (sign = -1) one request's reservation from a
/// load matrix.
void apply_request(const SpmInstance& instance, int i, int path_index,
                   double sign, LoadMatrix& loads) {
  const workload::Request& r = instance.request(i);
  for (net::EdgeId e : instance.paths(i)[path_index].edges) {
    for (int t = r.start_slot; t <= r.end_slot; ++t) {
      loads.add(e, t, sign * r.rate);
    }
  }
}

/// One shard's standing sub-problem across coordination rounds.
struct ShardTask {
  std::vector<SpmInstance> instance;  // 0 or 1 entries (no default ctor)
  IncrementalState state;             // per-round warm-start snapshots
  std::vector<Rng> rng;               // 1 entry; stateful across rounds
  bool populated = false;
};

}  // namespace

int admit_profitable(const SpmInstance& instance, Schedule& schedule,
                     int first_mutable,
                     const std::vector<int>* edge_capacity) {
  validate_shape(instance, schedule);
  LoadMatrix loads = compute_loads(instance, schedule);
  std::vector<double> peak(instance.num_edges());
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    peak[e] = loads.peak(e);
  }
  int admitted = 0;
  for (;;) {
    int best_i = kDeclined;
    int best_j = kDeclined;
    double best_margin = num::kImproveTol;
    for (int i = first_mutable; i < instance.num_requests(); ++i) {
      if (schedule.accepted(i)) continue;
      const workload::Request& r = instance.request(i);
      for (int j = 0; j < instance.num_paths(i); ++j) {
        double marginal = 0;
        bool feasible = true;
        for (net::EdgeId e : instance.paths(i)[j].edges) {
          double window_max = 0;
          for (int t = r.start_slot; t <= r.end_slot; ++t) {
            window_max = std::max(window_max, loads.at(e, t));
          }
          const double after = std::max(peak[e], window_max + r.rate);
          const int units_after = charged_units(after);
          if (edge_capacity != nullptr && (*edge_capacity)[e] >= 0 &&
              units_after > (*edge_capacity)[e]) {
            feasible = false;
            break;
          }
          marginal += instance.topology().edge(e).price *
                      (units_after - charged_units(peak[e]));
        }
        if (!feasible) continue;
        const double margin = r.value - marginal;
        if (margin > best_margin) {
          best_margin = margin;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i == kDeclined) break;
    schedule.path_choice[best_i] = best_j;
    apply_request(instance, best_i, best_j, +1.0, loads);
    for (net::EdgeId e : instance.paths(best_i)[best_j].edges) {
      peak[e] = loads.peak(e);
    }
    ++admitted;
  }
  return admitted;
}

int enforce_edge_capacity(const SpmInstance& instance, Schedule& schedule,
                          const std::vector<int>& edge_capacity,
                          int first_mutable) {
  validate_shape(instance, schedule);
  if (static_cast<int>(edge_capacity.size()) != instance.num_edges()) {
    throw std::invalid_argument(
        "enforce_edge_capacity: capacity vector size mismatch");
  }
  LoadMatrix loads = compute_loads(instance, schedule);
  int dropped = 0;
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    if (edge_capacity[e] < 0) continue;
    while (charged_units(loads.peak(e)) > edge_capacity[e]) {
      int victim = kDeclined;
      for (int i = first_mutable; i < instance.num_requests(); ++i) {
        if (!schedule.accepted(i)) continue;
        if (!instance.path_uses_edge(i, schedule.path_choice[i], e)) continue;
        if (victim == kDeclined ||
            instance.request(i).value < instance.request(victim).value) {
          victim = i;
        }
      }
      if (victim == kDeclined) break;  // committed load alone overflows:
                                       // shedding is the repair layer's call
      apply_request(instance, victim, schedule.path_choice[victim], -1.0,
                    loads);
      schedule.path_choice[victim] = kDeclined;
      ++dropped;
    }
  }
  return dropped;
}

MetisResult run_metis_sharded(const SpmInstance& instance,
                              IncrementalState* state, Rng& rng,
                              const MetisOptions& options) {
  METIS_SPAN("shard.coordinate");
  const int num_requests = instance.num_requests();
  const int committed =
      state != nullptr ? static_cast<int>(state->committed.size()) : 0;

  MetisOptions mono = options;
  mono.shards = 1;
  // The caller's rng is never drawn from before a fallback (split() does
  // not advance it), so both fallback sites reproduce the monolithic solve
  // bit for bit.
  const auto monolithic = [&]() {
    return state != nullptr ? run_metis_incremental(instance, *state, rng, mono)
                            : run_metis(instance, rng, mono);
  };

  ShardPlan plan = partition_instance(instance, options.shards);
  telemetry::gauge_set("shard.cut_fraction", plan.cut_fraction);

  ShardInfo info;
  info.shards_requested = options.shards;
  info.cut_fraction = plan.cut_fraction;
  for (const auto& members : plan.shard_requests) {
    info.shards_used += members.empty() ? 0 : 1;
  }

  const auto fall_back = [&](const std::string& reason) {
    telemetry::count("shard.fallbacks");
    MetisResult result = monolithic();
    result.shard = info;
    result.shard.fell_back = true;
    result.shard.fallback_reason = reason;
    return result;
  };

  if (info.shards_used <= 1) return fall_back("fewer than two populated shards");
  if (plan.cut_fraction > options.shard.max_cut_fraction) {
    return fall_back("cut too dense to decompose");
  }

  // Standing shard tasks: a sub-instance over a full topology copy with only
  // the shard's requests (candidate paths match the parent's per request —
  // same topology, same deterministic Yen search, committed survivors'
  // concrete paths required explicitly), plus per-shard warm-start state and
  // a seed-keyed Rng stream (split() leaves the caller's rng untouched).
  net::PathCache path_cache(instance.topology());
  std::vector<ShardTask> tasks(plan.num_shards);
  for (int s = 0; s < plan.num_shards; ++s) {
    ShardTask& task = tasks[s];
    task.populated = !plan.shard_requests[s].empty();
    task.rng.push_back(rng.split(0x5A1D0000u + static_cast<std::uint64_t>(s)));
    if (!task.populated) continue;
    std::vector<workload::Request> requests;
    std::vector<net::Path> required;
    bool any_required = false;
    for (int orig : plan.shard_requests[s]) {
      requests.push_back(instance.request(orig));
      net::Path pinned;
      if (orig < committed && state->committed[orig] != kDeclined) {
        pinned = instance.paths(orig)[state->committed[orig]];
        any_required = true;
      }
      required.push_back(std::move(pinned));
    }
    task.instance.emplace_back(net::Topology(instance.topology()),
                               std::move(requests), instance.config(),
                               &path_cache,
                               any_required ? &required : nullptr);
    for (std::size_t local = 0; local < plan.shard_requests[s].size();
         ++local) {
      const int orig = plan.shard_requests[s][local];
      if (orig >= committed) break;  // ascending ids: prefix ends here
      task.state.committed.push_back(
          translate_choice(instance, orig, state->committed[orig],
                           task.instance.front(), static_cast<int>(local)));
    }
  }

  // Coordination prices on the shared edges, starting at the true prices
  // (round 0 is the undiscounted decomposition).
  std::vector<double> price(instance.num_edges());
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    price[e] = instance.topology().edge(e).price;
  }

  MetisResult result;
  result.schedule = Schedule::all_declined(num_requests);
  result.plan = ChargingPlan::none(instance.num_edges());
  bool have_best = false;
  const int max_rounds = std::max(1, options.shard.max_rounds);

  for (int round = 0; round < max_rounds; ++round) {
    if (round > 0) {
      for (int s = 0; s < plan.num_shards; ++s) {
        if (!tasks[s].populated) continue;
        net::Topology& topo = tasks[s].instance.front().mutable_topology();
        for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
          if (plan.edge_shared[e]) topo.set_price(e, price[e]);
        }
      }
    }

    // Concurrent shard solves.  Each body touches only its own task (rng,
    // snapshots, sub-instance), so results are index-addressed and the
    // output is bit-identical for any thread count.
    std::vector<MetisResult> solved = parallel_map(
        plan.num_shards,
        [&](int s) -> MetisResult {
          if (!tasks[s].populated) return MetisResult{};
          METIS_SPAN("shard.solve");
          return run_metis_incremental(tasks[s].instance.front(),
                                       tasks[s].state, tasks[s].rng.front(),
                                       mono);
        },
        options.shard.threads);

    // Combine on the true instance: committed decisions verbatim, free
    // decisions translated back from each shard's candidate set.
    Schedule combined = Schedule::all_declined(num_requests);
    for (int i = 0; i < committed; ++i) {
      combined.path_choice[i] = state->committed[i];
    }
    double believed = 0;
    for (int s = 0; s < plan.num_shards; ++s) {
      if (!tasks[s].populated) continue;
      believed += solved[s].best.profit;
      result.lp_stats += solved[s].lp_stats;
      if (solved[s].maa_status != lp::SolveStatus::Optimal) {
        result.maa_status = solved[s].maa_status;
      } else if (result.maa_status == lp::SolveStatus::NotSolved) {
        result.maa_status = lp::SolveStatus::Optimal;
      }
      if (solved[s].taa_status != lp::SolveStatus::Optimal) {
        result.taa_status = solved[s].taa_status;
      } else if (result.taa_status == lp::SolveStatus::NotSolved) {
        result.taa_status = lp::SolveStatus::Optimal;
      }
      const SpmInstance& sub = tasks[s].instance.front();
      for (std::size_t local = 0; local < plan.shard_requests[s].size();
           ++local) {
        const int orig = plan.shard_requests[s][local];
        if (orig < committed) continue;
        combined.path_choice[orig] = translate_choice(
            sub, static_cast<int>(local),
            solved[s].schedule.path_choice[local], instance, orig);
      }
    }

    // SP-updater repairs at the true prices: the split prices paths by
    // shard-local peaks, so cross-shard consolidation (cheaper joint
    // routes, admissions the per-shard integer conservatism declined) is
    // recovered here, then joint capacity overflows are shed.
    reroute_cheaper(instance, combined, committed);
    prune_unprofitable(instance, combined, committed);
    admit_profitable(instance, combined, committed, options.edge_capacity);
    if (options.edge_capacity != nullptr) {
      enforce_edge_capacity(instance, combined, *options.edge_capacity,
                            committed);
    }

    const LoadMatrix loads = compute_loads(instance, combined);
    ChargingPlan round_plan = charging_from_loads(loads);
    const ProfitBreakdown realized =
        evaluate_with_plan(instance, combined, round_plan);
    if (!have_best || realized.profit > result.best.profit) {
      result.best = realized;
      result.schedule = combined;
      result.plan = std::move(round_plan);
      have_best = true;
    }

    const double gap =
        std::abs(believed - realized.profit) /
        std::max({1.0, std::abs(realized.profit), std::abs(believed)});
    info.round_gaps.push_back(gap);
    info.duality_gap = gap;
    info.rounds = round + 1;
    telemetry::count("shard.rounds");
    telemetry::gauge_set("shard.duality_gap", gap);
    if (gap <= options.shard.gap_tol) break;
    if (round + 1 >= max_rounds) break;

    // Dual update on the shared edges.  Cost sharing first: discount each
    // shared edge to its realized marginal share — the combined charged
    // units over the sum the shards each budgeted — so the next round's
    // shards see (approximately) the true joint cost of the link.  Then a
    // subgradient surcharge on jointly over-subscribed capped edges.
    LoadMatrix shard_loads(instance.num_edges(),
                           instance.num_slots() * plan.num_shards);
    for (int i = 0; i < num_requests; ++i) {
      if (!combined.accepted(i)) continue;
      const workload::Request& r = instance.request(i);
      const int base = plan.request_shard[i] * instance.num_slots();
      for (net::EdgeId e :
           instance.paths(i)[combined.path_choice[i]].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) {
          shard_loads.add(e, base + t, r.rate);
        }
      }
    }
    const double step = options.shard.step / (round + 1);
    for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
      if (!plan.edge_shared[e]) continue;
      const double true_price = instance.topology().edge(e).price;
      const int joint_units = charged_units(loads.peak(e));
      int budgeted_units = 0;
      for (int s = 0; s < plan.num_shards; ++s) {
        double shard_peak = 0;
        const int base = s * instance.num_slots();
        for (int t = 0; t < instance.num_slots(); ++t) {
          shard_peak = std::max(shard_peak, shard_loads.at(e, base + t));
        }
        budgeted_units += charged_units(shard_peak);
      }
      double share = budgeted_units > 0
                         ? static_cast<double>(joint_units) / budgeted_units
                         : 1.0;
      share = std::clamp(share, options.shard.min_price_factor, 1.0);
      double target = true_price * share;
      if (options.edge_capacity != nullptr && (*options.edge_capacity)[e] >= 0 &&
          joint_units > (*options.edge_capacity)[e]) {
        target += true_price * (joint_units - (*options.edge_capacity)[e]);
      }
      price[e] += step * (target - price[e]);
    }
  }

  if (info.duality_gap > options.shard.fallback_gap) {
    return fall_back("coordination gap failed to converge");
  }

  info.sharded = true;
  result.shard = info;
  result.iterations_run = info.rounds;
  return result;
}

}  // namespace metis::core
