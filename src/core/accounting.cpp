#include "core/accounting.h"

#include <cmath>
#include <stdexcept>

namespace metis::core {

LoadMatrix::LoadMatrix(int num_edges, int num_slots)
    : num_edges_(num_edges),
      num_slots_(num_slots),
      data_(static_cast<std::size_t>(num_edges) * num_slots, 0.0) {
  if (num_edges < 0 || num_slots <= 0) {
    throw std::invalid_argument("LoadMatrix: bad dimensions");
  }
}

double LoadMatrix::peak(net::EdgeId e) const {
  double best = 0;
  for (int t = 0; t < num_slots_; ++t) best = std::max(best, at(e, t));
  return best;
}

double LoadMatrix::mean(net::EdgeId e) const {
  double total = 0;
  for (int t = 0; t < num_slots_; ++t) total += at(e, t);
  return total / num_slots_;
}

LoadMatrix compute_loads(const SpmInstance& instance, const Schedule& schedule) {
  validate_shape(instance, schedule);
  LoadMatrix loads(instance.num_edges(), instance.num_slots());
  for (int i = 0; i < instance.num_requests(); ++i) {
    const int j = schedule.path_choice[i];
    if (j == kDeclined) continue;
    const workload::Request& r = instance.request(i);
    for (net::EdgeId e : instance.paths(i)[j].edges) {
      for (int t = r.start_slot; t <= r.end_slot; ++t) {
        loads.add(e, t, r.rate);
      }
    }
  }
  return loads;
}

ChargingPlan charging_from_loads(const LoadMatrix& loads) {
  ChargingPlan plan = ChargingPlan::none(loads.num_edges());
  for (net::EdgeId e = 0; e < loads.num_edges(); ++e) {
    plan.units[e] = charged_units(loads.peak(e));
  }
  return plan;
}

double revenue(const SpmInstance& instance, const Schedule& schedule) {
  validate_shape(instance, schedule);
  double total = 0;
  for (int i = 0; i < instance.num_requests(); ++i) {
    if (schedule.accepted(i)) total += instance.request(i).value;
  }
  return total;
}

double cost(const net::Topology& topology, const ChargingPlan& plan) {
  if (static_cast<int>(plan.units.size()) != topology.num_edges()) {
    throw std::invalid_argument("cost: plan size mismatch");
  }
  double total = 0;
  for (net::EdgeId e = 0; e < topology.num_edges(); ++e) {
    total += topology.edge(e).price * plan.units[e];
  }
  return total;
}

ProfitBreakdown evaluate(const SpmInstance& instance, const Schedule& schedule) {
  const ChargingPlan plan = charging_from_loads(compute_loads(instance, schedule));
  return evaluate_with_plan(instance, schedule, plan);
}

ProfitBreakdown evaluate_with_plan(const SpmInstance& instance,
                                   const Schedule& schedule,
                                   const ChargingPlan& plan) {
  ProfitBreakdown out;
  out.revenue = revenue(instance, schedule);
  out.cost = cost(instance.topology(), plan);
  out.profit = out.revenue - out.cost;
  out.accepted = schedule.num_accepted();
  return out;
}

Summary utilization_summary(const SpmInstance& instance, const Schedule& schedule,
                            const ChargingPlan& plan) {
  const LoadMatrix loads = compute_loads(instance, schedule);
  Accumulator acc;
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    if (plan.units[e] <= 0) continue;
    acc.add(loads.mean(e) / plan.units[e]);
  }
  return acc.summary();
}

}  // namespace metis::core
