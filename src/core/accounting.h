// Accounting: loads, charging, revenue, cost, profit and utilization — the
// quantities every figure of the paper reports.
#pragma once

#include <cmath>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "util/numeric.h"
#include "util/stats.h"

namespace metis::core {

/// load(e, t): total reserved rate on edge e during slot t.
class LoadMatrix {
 public:
  LoadMatrix(int num_edges, int num_slots);

  /// Reserved rate on edge e during slot t, in bandwidth units
  /// (1 unit = 10 Gbps).
  double at(net::EdgeId e, int slot) const {
    return data_[static_cast<std::size_t>(e) * num_slots_ + slot];
  }
  /// Adds `rate` units to edge e's load during `slot`.
  void add(net::EdgeId e, int slot, double rate) {
    data_[static_cast<std::size_t>(e) * num_slots_ + slot] += rate;
  }
  /// Peak load of an edge across slots.
  double peak(net::EdgeId e) const;
  /// Mean load of an edge across all T slots.
  double mean(net::EdgeId e) const;

  int num_edges() const { return num_edges_; }
  int num_slots() const { return num_slots_; }

 private:
  int num_edges_;
  int num_slots_;
  std::vector<double> data_;
};

/// Integer charged units for a peak load: the paper's ceiling with a
/// num::kCeilGuard backoff so a numerically-exact integer peak (1 plus a
/// few ulps from float accumulation of exact-looking rates) is not
/// overcharged by one unit.  The single source of truth for this guard —
/// the SP updater's saving/cost estimates (metis.cpp), the billed plan
/// (charging_from_loads) and the EcoFlow baseline's incremental-cost
/// estimate must agree bit-for-bit or one layer optimizes against a
/// different bill than the one charged.
inline int charged_units(double peak) {
  return static_cast<int>(std::ceil(peak - num::kCeilGuard));
}

/// Accumulates the per-edge/per-slot loads of a schedule.
LoadMatrix compute_loads(const SpmInstance& instance, const Schedule& schedule);

/// The paper's "ceiling" step: c_e = ceil(max_t load(e, t)).
ChargingPlan charging_from_loads(const LoadMatrix& loads);

/// Sum of v_i over accepted requests.
double revenue(const SpmInstance& instance, const Schedule& schedule);

/// Sum of u_e * c_e.
double cost(const net::Topology& topology, const ChargingPlan& plan);

/// One decision's bottom line.  Money values share the workload's value
/// scale (a request's bid v_i per cycle); bandwidth enters via cost =
/// Σ u_e · c_e with c_e in integer units (1 unit = 10 Gbps).
struct ProfitBreakdown {
  double revenue = 0;  ///< Σ v_i over accepted requests
  double cost = 0;     ///< Σ u_e · c_e over the charging plan
  double profit = 0;   ///< revenue − cost
  int accepted = 0;    ///< number of accepted requests
};

/// Full evaluation of a schedule: the charging plan is derived from the
/// schedule's own loads (the provider purchases exactly what the schedule
/// needs, rounded up per edge).
ProfitBreakdown evaluate(const SpmInstance& instance, const Schedule& schedule);

/// As above but charging a caller-provided plan (e.g. OPT's c_e variables).
ProfitBreakdown evaluate_with_plan(const SpmInstance& instance,
                                   const Schedule& schedule,
                                   const ChargingPlan& plan);

/// SLA-refund ledger (fault repair, sim/faults.h): a provider that revokes
/// an already-committed acceptance owes the customer a refund proportional
/// to the bid.  Net profit of a faulted cycle = gross profit of the final
/// book − `refunded`.
struct RefundLedger {
  double refunded = 0;  ///< Σ refunds paid out
  int drops = 0;        ///< commitments revoked

  /// Books one revoked commitment; returns the refund paid.
  double charge(double value, double refund_factor) {
    const double refund = refund_factor * value;
    refunded += refund;
    ++drops;
    return refund;
  }
};

/// Link utilization: for each edge with purchased units > 0, the mean over
/// slots of load/units.  Returns the min/avg/max summary across those edges
/// (all zeros when nothing is purchased) — the series of Fig. 3c / Fig. 5c.
Summary utilization_summary(const SpmInstance& instance, const Schedule& schedule,
                            const ChargingPlan& plan);

}  // namespace metis::core
