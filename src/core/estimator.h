// The pessimistic estimator u_root used by TAA's derandomized tree walk
// (method of conditional probabilities, Section IV of the paper).
//
// u_root is a sum of one *revenue term* (bounding Pr[revenue < I_B]) and one
// *capacity term* per (edge, slot) pair that any candidate path can load
// (bounding Pr[load(e,t) > c_e]).  Each term is a product over requests of a
// per-request factor:
//
//   unfixed request i:  E over the mu-scaled random path choice
//   fixed on path j:    the factor with x_{i,j} := 1
//   fixed declined:     factor 1
//
// Everything is maintained in log space: each term keeps a running log of
// its product, so re-evaluating the estimator for one candidate choice of
// one request costs O(#terms touching that request).
//
// Note on the revenue exponent: the paper's displayed formula multiplies the
// revenue term by e^{t0 * I_S}; a lower-tail bound below 1 requires the
// *target* revenue I_B in the exponent (with I_S the product is >= 1 by
// Jensen), so we use e^{t0 * I_B} — see DESIGN.md.
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/schedule.h"

namespace metis::core {

class PessimisticEstimator {
 public:
  struct Config {
    double mu = 0.5;      ///< scaling factor from inequality (6)
    double t0 = 0;        ///< ln(1 + D(I_S, 1/(N+1)))
    double tk = 0;        ///< ln(1 + (1-mu)/mu) = ln(1/mu)
    double i_b = 0;       ///< normalized revenue target I_B
    double r_max = 1;     ///< rate normalizer (r' = r / r_max)
    double v_max = 1;     ///< value normalizer (v' = v / v_max)
  };

  /// `x_hat[i][j]` is the *unscaled* fractional LP solution; participation
  /// is encoded by `accepted` (non-participants contribute factor 1
  /// everywhere).  Capacities are in raw units.
  PessimisticEstimator(const SpmInstance& instance, const ChargingPlan& capacities,
                       const std::vector<std::vector<double>>& x_hat,
                       const std::vector<bool>& accepted, const Config& config);

  /// Current u_root given the requests fixed so far.
  double value() const;

  /// u_root if request i were fixed to `choice` (a path index, or kDeclined).
  /// Request i must be unfixed and participating.
  double candidate_value(int i, int choice) const;

  /// Commits request i to `choice` and updates all terms.
  void fix(int i, int choice);

  int num_terms() const { return static_cast<int>(log_sum_.size()); }

 private:
  /// New log-factor of request i in term k under `choice`.
  double fixed_log_factor(int i, int choice, int term) const;

  const SpmInstance* instance_;
  Config config_;
  /// term 0 = revenue; terms 1.. map to (edge, slot) via term_edge_/term_slot_.
  std::vector<int> term_edge_;
  std::vector<int> term_slot_;
  /// term index of each (e,t), or -1 when the pair has no term.
  std::vector<std::vector<int>> term_of_;
  std::vector<long double> log_sum_;             // per term: const + sum of log factors
  std::vector<std::vector<double>> log_factor_;  // [term][request], 0 if untouched
  std::vector<std::vector<int>> presence_;       // terms where request i has a factor
  std::vector<std::vector<double>> x_hat_;       // mu-scaled probabilities
  std::vector<bool> fixed_;
  long double total_ = 0;  // sum over terms of exp(log_sum_)
};

}  // namespace metis::core
