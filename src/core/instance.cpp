#include "core/instance.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace metis::core {

SpmInstance::SpmInstance(net::Topology topology,
                         std::vector<workload::Request> requests,
                         InstanceConfig config, net::PathCache* path_cache,
                         const std::vector<net::Path>* require_paths)
    : topology_(std::move(topology)),
      requests_(std::move(requests)),
      config_(config) {
  if (config_.num_slots <= 0) {
    throw std::invalid_argument("SpmInstance: num_slots must be positive");
  }
  if (config_.max_paths <= 0) {
    throw std::invalid_argument("SpmInstance: max_paths must be positive");
  }
  if (require_paths != nullptr &&
      require_paths->size() != requests_.size()) {
    throw std::invalid_argument("SpmInstance: require_paths size mismatch");
  }
  for (const workload::Request& r : requests_) {
    workload::validate_request(r, topology_.num_nodes(), config_.num_slots);
  }
  // One Yen run per distinct endpoint pair.
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<net::Path>> by_pair;
  for (const workload::Request& r : requests_) {
    by_pair.emplace(std::make_pair(r.src, r.dst), std::vector<net::Path>{});
  }
  for (auto& [pair, paths] : by_pair) {
    paths = path_cache != nullptr
                ? path_cache->paths(pair.first, pair.second, config_.max_paths)
                : net::k_shortest_paths(topology_, pair.first, pair.second,
                                        config_.max_paths);
    if (paths.empty()) {
      throw std::invalid_argument(
          "SpmInstance: request endpoints are disconnected (" +
          std::to_string(pair.first) + " -> " + std::to_string(pair.second) + ")");
    }
  }
  paths_.reserve(requests_.size());
  uses_edge_.reserve(requests_.size());
  for (std::size_t idx = 0; idx < requests_.size(); ++idx) {
    const workload::Request& r = requests_[idx];
    paths_.push_back(by_pair.at({r.src, r.dst}));
    if (require_paths != nullptr && !(*require_paths)[idx].empty()) {
      const net::Path& required = (*require_paths)[idx];
      if (!net::is_simple_path(topology_, required, r.src, r.dst)) {
        throw std::invalid_argument(
            "SpmInstance: require_paths[" + std::to_string(idx) +
            "] is not a simple src->dst path");
      }
      for (net::EdgeId e : required.edges) {
        if (!topology_.edge_enabled(e)) {
          throw std::invalid_argument(
              "SpmInstance: require_paths[" + std::to_string(idx) +
              "] crosses a disabled edge");
        }
      }
      auto& candidates = paths_.back();
      if (std::find(candidates.begin(), candidates.end(), required) ==
          candidates.end()) {
        candidates.push_back(required);
      }
    }
    std::vector<std::vector<bool>> bitmap;
    for (const net::Path& p : paths_.back()) {
      std::vector<bool> uses(topology_.num_edges(), false);
      for (net::EdgeId e : p.edges) uses[e] = true;
      bitmap.push_back(std::move(uses));
    }
    uses_edge_.push_back(std::move(bitmap));
  }
}

bool SpmInstance::path_uses_edge(int i, int j, net::EdgeId e) const {
  return uses_edge_.at(i).at(j).at(e);
}

}  // namespace metis::core
