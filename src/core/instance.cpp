#include "core/instance.h"

#include <map>
#include <stdexcept>

namespace metis::core {

SpmInstance::SpmInstance(net::Topology topology,
                         std::vector<workload::Request> requests,
                         InstanceConfig config, net::PathCache* path_cache)
    : topology_(std::move(topology)),
      requests_(std::move(requests)),
      config_(config) {
  if (config_.num_slots <= 0) {
    throw std::invalid_argument("SpmInstance: num_slots must be positive");
  }
  if (config_.max_paths <= 0) {
    throw std::invalid_argument("SpmInstance: max_paths must be positive");
  }
  for (const workload::Request& r : requests_) {
    workload::validate_request(r, topology_.num_nodes(), config_.num_slots);
  }
  // One Yen run per distinct endpoint pair.
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<net::Path>> by_pair;
  for (const workload::Request& r : requests_) {
    by_pair.emplace(std::make_pair(r.src, r.dst), std::vector<net::Path>{});
  }
  for (auto& [pair, paths] : by_pair) {
    paths = path_cache != nullptr
                ? path_cache->paths(pair.first, pair.second, config_.max_paths)
                : net::k_shortest_paths(topology_, pair.first, pair.second,
                                        config_.max_paths);
    if (paths.empty()) {
      throw std::invalid_argument(
          "SpmInstance: request endpoints are disconnected (" +
          std::to_string(pair.first) + " -> " + std::to_string(pair.second) + ")");
    }
  }
  paths_.reserve(requests_.size());
  uses_edge_.reserve(requests_.size());
  for (const workload::Request& r : requests_) {
    paths_.push_back(by_pair.at({r.src, r.dst}));
    std::vector<std::vector<bool>> bitmap;
    for (const net::Path& p : paths_.back()) {
      std::vector<bool> uses(topology_.num_edges(), false);
      for (net::EdgeId e : p.edges) uses[e] = true;
      bitmap.push_back(std::move(uses));
    }
    uses_edge_.push_back(std::move(bitmap));
  }
}

bool SpmInstance::path_uses_edge(int i, int j, net::EdgeId e) const {
  return uses_edge_.at(i).at(j).at(e);
}

}  // namespace metis::core
