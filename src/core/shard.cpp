#include "core/shard.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace metis::core {

namespace {

constexpr int kUnassigned = -1;
constexpr int kInfHops = std::numeric_limits<int>::max();

/// Undirected adjacency over enabled edges (directed pairs collapse).
std::vector<std::vector<int>> build_adjacency(const net::Topology& topo) {
  std::vector<std::vector<int>> adj(topo.num_nodes());
  for (net::EdgeId e = 0; e < topo.num_edges(); ++e) {
    if (!topo.edge_enabled(e)) continue;
    const net::Edge& edge = topo.edge(e);
    adj[edge.src].push_back(edge.dst);
    adj[edge.dst].push_back(edge.src);
  }
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return adj;
}

/// Relaxes `dist` (min hops to any seed so far) with a BFS from `source`.
void relax_from(const std::vector<std::vector<int>>& adj, int source,
                std::vector<int>& dist) {
  std::deque<int> queue;
  if (dist[source] > 0) dist[source] = 0;
  queue.push_back(source);
  std::vector<int> local(adj.size(), kInfHops);
  local[source] = 0;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adj[u]) {
      if (local[v] != kInfHops) continue;
      local[v] = local[u] + 1;
      dist[v] = std::min(dist[v], local[v]);
      queue.push_back(v);
    }
  }
}

/// Farthest-point seed set: start at node 0, then repeatedly add the node
/// maximizing the hop distance to the nearest existing seed (unreachable
/// nodes count as infinitely far, so disconnected components get their own
/// seeds first).  Ties resolve to the lowest node id.
std::vector<int> pick_seeds(const std::vector<std::vector<int>>& adj, int k) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> dist(n, kInfHops);
  std::vector<int> seeds;
  seeds.push_back(0);
  relax_from(adj, 0, dist);
  while (static_cast<int>(seeds.size()) < k) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (dist[v] == 0) continue;  // already a seed
      if (best == -1 || dist[v] > dist[best]) best = v;
    }
    if (best == -1) break;  // fewer nodes than shards (caller clamped, but
                            // isolated duplicates can still run short)
    seeds.push_back(best);
    relax_from(adj, best, dist);
  }
  return seeds;
}

/// Balanced region growth: repeatedly expands the smallest shard by one
/// node from its BFS frontier.  Unreachable leftovers are seeded into the
/// smallest shard directly, so every node ends up assigned.
void grow_regions(const std::vector<std::vector<int>>& adj,
                  const std::vector<int>& seeds, std::vector<int>& node_shard,
                  std::vector<int>& shard_size) {
  const int n = static_cast<int>(adj.size());
  const int k = static_cast<int>(seeds.size());
  std::vector<std::deque<int>> frontier(k);
  int assigned = 0;
  for (int s = 0; s < k; ++s) {
    node_shard[seeds[s]] = s;
    ++shard_size[s];
    frontier[s].push_back(seeds[s]);
    ++assigned;
  }
  auto smallest_shard = [&](bool need_frontier) {
    int pick = -1;
    for (int s = 0; s < k; ++s) {
      if (need_frontier && frontier[s].empty()) continue;
      if (pick == -1 || shard_size[s] < shard_size[pick]) pick = s;
    }
    return pick;
  };
  while (assigned < n) {
    const int s = smallest_shard(/*need_frontier=*/true);
    if (s == -1) {
      // Disconnected remainder: hand the lowest unassigned node to the
      // smallest shard and keep growing from there.
      int v = 0;
      while (node_shard[v] != kUnassigned) ++v;
      const int target = smallest_shard(/*need_frontier=*/false);
      node_shard[v] = target;
      ++shard_size[target];
      frontier[target].push_back(v);
      ++assigned;
      continue;
    }
    const int u = frontier[s].front();
    int grabbed = kUnassigned;
    for (int v : adj[u]) {
      if (node_shard[v] == kUnassigned) {
        grabbed = v;
        break;
      }
    }
    if (grabbed == kUnassigned) {
      frontier[s].pop_front();  // u fully surrounded; retire it
      continue;
    }
    node_shard[grabbed] = s;
    ++shard_size[s];
    frontier[s].push_back(grabbed);
    ++assigned;
  }
}

/// One deterministic boundary sweep: move a node to the neighboring shard
/// holding strictly more of its links, provided the move keeps its current
/// shard non-empty and respects a 2x balance cap.  Reduces the number of
/// cut links; a single sweep is enough on WAN-sized graphs.
void refine_cut(const std::vector<std::vector<int>>& adj,
                std::vector<int>& node_shard, std::vector<int>& shard_size) {
  const int n = static_cast<int>(adj.size());
  const int k = static_cast<int>(shard_size.size());
  const int balance_cap = 2 * ((n + k - 1) / k);
  std::vector<int> weight(k, 0);
  for (int v = 0; v < n; ++v) {
    const int cur = node_shard[v];
    if (shard_size[cur] <= 1) continue;
    std::fill(weight.begin(), weight.end(), 0);
    for (int u : adj[v]) ++weight[node_shard[u]];
    int best = cur;
    for (int s = 0; s < k; ++s) {
      if (s == cur || shard_size[s] + 1 > balance_cap) continue;
      if (weight[s] > weight[best]) best = s;
    }
    if (best != cur) {
      node_shard[v] = best;
      --shard_size[cur];
      ++shard_size[best];
    }
  }
}

}  // namespace

ShardPlan partition_instance(const SpmInstance& instance, int shards) {
  const net::Topology& topo = instance.topology();
  const int n = topo.num_nodes();
  if (n <= 0) throw std::invalid_argument("partition_instance: empty topology");
  const int k = std::clamp(shards, 1, n);

  ShardPlan plan;
  plan.node_shard.assign(n, kUnassigned);

  if (k <= 1) {
    plan.num_shards = 1;
    std::fill(plan.node_shard.begin(), plan.node_shard.end(), 0);
  } else {
    const auto adj = build_adjacency(topo);
    const auto seeds = pick_seeds(adj, k);
    std::vector<int> shard_size(seeds.size(), 0);
    grow_regions(adj, seeds, plan.node_shard, shard_size);
    refine_cut(adj, plan.node_shard, shard_size);
    plan.num_shards = static_cast<int>(seeds.size());
  }

  const int num_requests = instance.num_requests();
  plan.request_shard.resize(num_requests);
  plan.shard_requests.assign(plan.num_shards, {});
  for (int i = 0; i < num_requests; ++i) {
    const int s = plan.node_shard[instance.request(i).src];
    plan.request_shard[i] = s;
    plan.shard_requests[s].push_back(i);  // i ascending: prefix order kept
  }

  // Shared-edge detection over the *candidate* paths (not the raw graph):
  // an edge no candidate path can use needs no coordination even if it
  // crosses the node cut.
  std::vector<int> first_user(topo.num_edges(), kUnassigned);
  plan.edge_shared.assign(topo.num_edges(), false);
  for (int i = 0; i < num_requests; ++i) {
    const int s = plan.request_shard[i];
    for (const net::Path& path : instance.paths(i)) {
      for (net::EdgeId e : path.edges) {
        if (first_user[e] == kUnassigned) {
          first_user[e] = s;
        } else if (first_user[e] != s) {
          plan.edge_shared[e] = true;
        }
      }
    }
  }
  for (net::EdgeId e = 0; e < topo.num_edges(); ++e) {
    plan.used_edges += first_user[e] != kUnassigned ? 1 : 0;
    plan.shared_edges += plan.edge_shared[e] ? 1 : 0;
  }
  plan.cut_fraction =
      static_cast<double>(plan.shared_edges) / std::max(1, plan.used_edges);
  return plan;
}

}  // namespace metis::core
