// Metis — the alternate-optimization framework of Section II.C.
//
// Modules (Fig. 1 of the paper) and how they map here:
//   Input        -> SpmInstance
//   RL-SPM Solver-> run_maa (minimize cost of the current accepted set)
//   BW Limiter   -> trim_min_utilization_link (rule tau: one unit off the
//                   link with minimum average utilization)
//   BL-SPM Solver-> run_taa (maximize revenue under the trimmed bandwidth)
//   SP Updater   -> the best (profit, schedule, plan) seen so far
//   Output       -> MetisResult
//
// The loop runs theta times (or until TAA declines everything / the accepted
// set stops changing), alternately reducing cost and improving revenue.
#pragma once

#include <vector>

#include "core/accounting.h"
#include "core/instance.h"
#include "core/lp_builder.h"
#include "core/maa.h"
#include "core/schedule.h"
#include "core/shard.h"
#include "core/taa.h"
#include "util/rng.h"

namespace metis::core {

struct MetisOptions {
  /// Number of alternation loops (the paper's theta >= 1).  Each loop trims
  /// `trim_units` from one link, so theta bounds how far the bandwidth sweep
  /// can descend; larger theta explores deeper trades of cost vs revenue.
  ///
  /// theta == 0 selects *convergence mode*: run the paper's worst-case
  /// bound of K loops (Section II.C: "Metis loops at most K times"),
  /// stopping early when every request has been declined or no purchased
  /// bandwidth remains to trim.
  int theta = 16;
  /// Units removed from the min-utilization link per loop (rule tau).
  int trim_units = 1;
  /// Engineering guard on the SP updater (see DESIGN.md): before recording a
  /// candidate decision, greedily decline accepted requests whose bid does
  /// not cover the bandwidth cost their removal would save.  Each removal
  /// strictly increases profit, so the recorded decision can only improve.
  bool prune = true;
  /// Second SP-updater guard: a first-improvement local search that moves
  /// accepted requests onto alternative candidate paths whenever that
  /// lowers the ceiled charging cost.  Recovers most of the integer-packing
  /// gap that randomized rounding leaves at small K.
  bool local_search = true;
  /// Inner-solver options.  The MAA default keeps the cheapest of 8
  /// roundings per pass: inside the alternation loop the LP solve dominates
  /// the cost anyway, and single-rounding variance otherwise leaks straight
  /// into the recorded profit at small K.
  MaaOptions maa = [] {
    MaaOptions options;
    options.rounding_trials = 8;
    return options;
  }();
  /// Inner TAA options (augmentation, fallback mu, LP knobs).
  TaaOptions taa;
  /// Carry a simplex basis across alternation iterations: the RL-SPM and
  /// BL-SPM re-solves warm-start from the previous loop's optimal basis
  /// whenever the accepted set (and hence the LP shape) is unchanged, and
  /// silently cold-start otherwise.  Off reproduces all-cold solves (the
  /// ablation baseline measured by bench_lp_solver).
  bool warm_start = true;
  /// Fault repair (sim/faults.h): per-edge hard capacity (size num_edges;
  /// entry < 0 = uncapacitated).  Caps the RL-SPM purchase columns and
  /// clamps the plan handed to the BL-SPM pass, steering the whole loop
  /// away from links a fault shrank or killed.  nullptr (the default) is
  /// the historical uncapacitated loop, byte for byte.
  const std::vector<int>* edge_capacity = nullptr;
  /// Scenario decomposition (core/shard.h, core/coordinate.h): partition
  /// the DCs into this many shards, solve them concurrently, and reconcile
  /// the shared WAN links with a bounded dual-price loop.  1 (the default)
  /// is the monolithic solve, bit for bit; > 1 routes run_metis /
  /// run_metis_incremental through run_metis_sharded, which itself falls
  /// back to the monolithic path (also bit-identically) when the cut is
  /// too dense or coordination fails — see MetisResult::shard.
  int shards = 1;
  /// Knobs of the coordination loop (rounds, gap tolerances, fallback
  /// thresholds, solver threads); ignored when shards == 1.
  ShardOptions shard;
};

/// One loop's bookkeeping (for convergence plots and the theta ablation).
struct MetisIteration {
  double profit_after_maa = 0;  ///< profit of the MAA candidate this loop
  double profit_after_taa = 0;  ///< profit of the TAA candidate this loop
  int accepted_after_taa = 0;   ///< acceptance count after the TAA pass
  int trimmed_edge = -1;        ///< edge trimmed by the BW limiter (-1: none)
};

struct MetisResult {
  ProfitBreakdown best;   ///< SP Updater's record
  Schedule schedule;      ///< acceptance + routing decision
  ChargingPlan plan;      ///< bandwidth purchase decision
  std::vector<MetisIteration> history;
  int iterations_run = 0;
  /// Status of the last inner MAA / TAA solve.  When the loop stops early
  /// because a relaxation failed, these distinguish an infeasible LP from
  /// an iteration-limited or numerically failed one (NotSolved means the
  /// corresponding stage never ran).
  lp::SolveStatus maa_status = lp::SolveStatus::NotSolved;
  lp::SolveStatus taa_status = lp::SolveStatus::NotSolved;
  /// LP work aggregated over every relaxation solved by the loop.
  lp::SolveStats lp_stats;
  /// What the sharded path did (rounds, duality gap, fallback) when
  /// MetisOptions::shards > 1; default-constructed for monolithic runs.
  ShardInfo shard;
};

/// BW Limiter: among edges with plan.units above their floor, reduces the
/// one whose average utilization (mean_t load / units) is minimal by
/// `units`, clamped at the floor.  `floor` is a per-edge minimum purchase
/// (size num_edges); nullptr means floor 0 everywhere (the offline rule
/// tau verbatim).  The incremental loop passes the ceiled peaks of the
/// committed loads so a trim can never cut below what the pinned requests
/// already consume.  Returns the trimmed edge id, or -1 when every edge is
/// at its floor.
int trim_min_utilization_link(const SpmInstance& instance, const Schedule& schedule,
                              ChargingPlan& plan, int units = 1,
                              const std::vector<int>* floor = nullptr);

/// Profit pruning: repeatedly declines the accepted request with the worst
/// (value - cost saving of removing it) as long as that quantity is
/// negative, where the saving is the drop in ceiled charging on the
/// request's path.  Returns the number of requests declined.  Every removal
/// strictly increases evaluate(instance, schedule).profit.  Requests below
/// `first_mutable` are commitments: their loads still count, but they are
/// never declined.
int prune_unprofitable(const SpmInstance& instance, Schedule& schedule,
                       int first_mutable = 0);

/// Routing local search: sweeps accepted requests, moving each onto the
/// candidate path that minimizes the total ceiled charging cost given the
/// rest of the schedule, until a sweep makes no move.  Returns the number of
/// moves.  Never increases cost (and never changes acceptance).  Requests
/// below `first_mutable` are commitments and are never moved.
int reroute_cheaper(const SpmInstance& instance, Schedule& schedule,
                    int first_mutable = 0);

/// Runs the full Metis loop.
MetisResult run_metis(const SpmInstance& instance, Rng& rng,
                      const MetisOptions& options = {});

/// Cross-batch carry-over of the online admission pipeline (sim/online.h).
/// With `committed` empty and fresh snapshots, run_metis_incremental is
/// bit-identical to run_metis — the anchor the single-batch test pins.
struct IncrementalState {
  /// Hard commitments: final decisions for the first `committed.size()`
  /// requests of the instance, in arrival order (path index or kDeclined).
  /// Committed requests are excluded from re-optimization: accepted ones
  /// keep their path (their loads move into the LP right-hand sides and
  /// floor the BW limiter), declined ones stay declined.
  std::vector<int> committed;
  /// Shape + optimal basis of the last RL-SPM / BL-SPM solve, lifted onto
  /// the next batch's models for a cross-batch warm start (lp/basis_lift.h).
  /// Updated in place by every optimal inner solve; start empty.
  ModelSnapshot maa;
  ModelSnapshot taa;
};

/// Metis over `instance` treating the leading `state.committed.size()`
/// requests as already decided.  The returned schedule/plan/profit cover
/// the *whole* instance (commitments included); the caller appends the new
/// decisions to `state.committed` before the next batch.  `state` is only
/// mutated through its snapshots.
MetisResult run_metis_incremental(const SpmInstance& instance,
                                  IncrementalState& state, Rng& rng,
                                  const MetisOptions& options = {});

}  // namespace metis::core
