// Dual-price coordination over a ShardPlan (core/shard.h): solve each
// shard's SPM sub-problem independently (concurrently, on the shared
// ThreadPool), then reconcile the shared WAN links with a bounded Lagrangian
// price loop.
//
// Decomposition.  Each shard gets a full topology copy but only its own
// requests, so candidate paths — and therefore the LP shape — match the
// monolithic instance exactly per request.  The combined schedule is always
// feasible (edges are uncapacitated for the purchase decision) and, because
// ceil(a + b) <= ceil(a) + ceil(b) per edge, the combined bill never exceeds
// the sum the shards budgeted for — shard profits are a lower bound.
//
// Coordination.  What the split loses is the shared links' economy of
// scale: two shards each pushing half a unit over one edge both budget a
// whole unit for it, while the monolithic solve buys one.  The loop fixes
// the incentive with prices: after each round, every shared edge's price in
// the shard sub-instances is discounted to its *realized* marginal share
// (cost sharing: true price x combined charged units / sum of per-shard
// charged units), plus a subgradient surcharge when a capacity-capped edge
// is jointly over-subscribed.  Shards re-solve against the adjusted prices
// — warm-started from their previous basis via ModelSnapshot/basis_lift —
// and the believed-vs-realized profit gap is the convergence measure.
//
// Every round's combined schedule is repaired on the *true* instance
// (reroute_cheaper / prune_unprofitable / admit_profitable, then capacity
// enforcement when MetisOptions::edge_capacity is set) and evaluated at the
// true prices; the best round wins.  The loop falls back to the monolithic
// solve — bit-identical to never having sharded, the caller's Rng untouched
// until that point — when the cut is too dense, fewer than two shards hold
// requests, or the final gap stays above ShardOptions::fallback_gap.
#pragma once

#include <vector>

#include "core/metis.h"
#include "core/shard.h"

namespace metis::core {

/// The sharded counterpart of run_metis / run_metis_incremental, reached
/// through them when MetisOptions::shards > 1 (`state` == nullptr selects
/// the offline path).  Deterministic for any ShardOptions::threads value.
MetisResult run_metis_sharded(const SpmInstance& instance,
                              IncrementalState* state, Rng& rng,
                              const MetisOptions& options);

/// Greedy admission sweep: repeatedly accepts the declined request (at or
/// past `first_mutable`) whose bid exceeds the marginal ceiled charging
/// cost of its cheapest candidate path by the largest margin, until no
/// profitable admission remains.  The complement of prune_unprofitable —
/// recovers acceptances the per-shard integer-unit conservatism left on the
/// table.  Paths that would push an edge past `edge_capacity` (same
/// convention as MetisOptions::edge_capacity; nullptr = uncapacitated) are
/// skipped.  Returns the number of requests admitted; every admission
/// strictly increases evaluate(instance, schedule).profit.
int admit_profitable(const SpmInstance& instance, Schedule& schedule,
                     int first_mutable = 0,
                     const std::vector<int>* edge_capacity = nullptr);

/// Feasibility repair: for every capped edge (cap[e] >= 0, size num_edges)
/// whose combined charged units exceed the cap, declines the lowest-value
/// accepted request (at or past `first_mutable`) routed over it until the
/// edge fits or only committed load remains.  Returns the number of
/// requests declined.  Deterministic: edges in id order, ties to the lowest
/// request id.
int enforce_edge_capacity(const SpmInstance& instance, Schedule& schedule,
                          const std::vector<int>& edge_capacity,
                          int first_mutable = 0);

}  // namespace metis::core
