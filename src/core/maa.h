// MAA — Multistage Approximation Algorithm for RL-SPM (Algorithm 1).
//
// Stages:
//   1. Relaxation: solve the LP relaxation of RL-SPM (x in [0,1], c real).
//   2. Randomized rounding: pick exactly one path per request with
//      probability x̂_{i,j} (the assignment rows force sum_j x̂ = 1).
//   3. Ceiling: charge c_e = ceil(max_t load(e,t)) per edge.
//
// `rounding_trials > 1` repeats stage 2 and keeps the cheapest rounding
// (an ablation knob; the paper's algorithm is trials = 1).
#pragma once

#include <vector>

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace metis::core {

struct IncrementalContext;  // core/lp_builder.h

struct MaaOptions {
  /// Independent roundings of stage 2, cheapest kept (1 = the paper).
  int rounding_trials = 1;
  /// Deterministic variant (ablation): instead of sampling, each request
  /// takes its argmax-probability path.  `rounding_trials` is ignored.
  bool deterministic = false;
  /// Worker threads for the best-of-N rounding loop (0 = all hardware
  /// threads, 1 = strictly serial).  With `rounding_trials > 1` each trial
  /// draws from an index-addressed stream (`Rng::split(trial)`) and the
  /// winner is reduced by (cost, lowest trial index), so the result is
  /// bit-identical for every thread count.  With `rounding_trials == 1`
  /// (the paper's Algorithm 1) the single rounding draws directly from the
  /// caller's generator, byte-for-byte reproducing the historical serial
  /// behaviour.  See docs/ALGORITHMS.md §"Parallel execution".
  int threads = 0;
  /// Simplex knobs for the relaxation solve.
  lp::SimplexOptions lp;
  /// Optional basis-reuse slot: when non-null, the relaxation warm-starts
  /// from *warm_basis and writes the optimal basis back (see Basis in
  /// lp/types.h).  Metis's alternation loop points this at a basis it
  /// carries across iterations; the LP column order is stable for a fixed
  /// accepted set (see lp_builder.h), so re-solves start near-optimal.
  lp::Basis* warm_basis = nullptr;
  /// Online admission (see IncrementalState in metis.h): when non-null,
  /// committed requests are pinned — excluded from the LP (their loads move
  /// to the capacity rows' RHS) and merged verbatim into the returned
  /// schedule/plan — and, when `warm_basis` is empty, the relaxation lifts a
  /// cross-batch warm start from `incremental->lift_from` and snapshots its
  /// own optimal basis into `incremental->snapshot_out`.  Null (the
  /// default): plain offline solve, bit-identical to the historical path.
  const IncrementalContext* incremental = nullptr;
  /// Fault repair: per-edge purchase ceiling on the relaxation's c_e
  /// columns (entry < 0 = uncapacitated; see build_rl_spm).  The rounded
  /// plan can still overshoot a cap — randomized rounding only respects
  /// the relaxation in expectation — so callers that need a hard guarantee
  /// must shed after the fact (sim/faults.h does).  nullptr (the default)
  /// keeps every column unbounded, bit-identical to the historical model.
  const std::vector<int>* edge_capacity = nullptr;
};

struct MaaResult {
  lp::SolveStatus status = lp::SolveStatus::NotSolved;  ///< relaxation outcome
  Schedule schedule;  ///< rounded path per accepted request
  ChargingPlan plan;  ///< ceiled integer units per edge (10 Gbps each)
  /// Objective of the LP relaxation (a lower bound on the optimal cost).
  double lp_cost = 0;
  /// Fractional charged bandwidth per edge from the relaxation (ĉ_e).
  std::vector<double> fractional_c;
  /// Cost of the returned (rounded + ceiled) plan.
  double cost = 0;
  /// alpha = min positive fractional ĉ_e (drives the (alpha+1)/alpha bound).
  double alpha = 0;
  /// Work counters of the relaxation solve (aggregatable via +=).
  lp::SolveStats lp_stats;

  /// False when the relaxation did not reach optimality; `status` says why
  /// (Infeasible vs IterationLimit vs numerical NotSolved).
  bool ok() const { return status == lp::SolveStatus::Optimal; }
};

/// Runs MAA over the requests with accepted[i] == true (empty = all).
/// Declined requests keep kDeclined in the returned schedule.
MaaResult run_maa(const SpmInstance& instance, const std::vector<bool>& accepted,
                  Rng& rng, const MaaOptions& options = {});

/// Convenience overload: all requests accepted.
MaaResult run_maa(const SpmInstance& instance, Rng& rng,
                  const MaaOptions& options = {});

}  // namespace metis::core
