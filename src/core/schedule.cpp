#include "core/schedule.h"

#include <numeric>
#include <stdexcept>

namespace metis::core {

int Schedule::num_accepted() const {
  int count = 0;
  for (int choice : path_choice) {
    if (choice != kDeclined) ++count;
  }
  return count;
}

long long ChargingPlan::total_units() const {
  return std::accumulate(units.begin(), units.end(), 0LL);
}

void validate_shape(const SpmInstance& instance, const Schedule& schedule) {
  if (static_cast<int>(schedule.path_choice.size()) != instance.num_requests()) {
    throw std::invalid_argument("Schedule: wrong number of requests");
  }
  for (int i = 0; i < instance.num_requests(); ++i) {
    const int choice = schedule.path_choice[i];
    if (choice == kDeclined) continue;
    if (choice < 0 || choice >= instance.num_paths(i)) {
      throw std::invalid_argument("Schedule: path index out of range");
    }
  }
}

}  // namespace metis::core
