// Chernoff-Hoeffding machinery used by TAA (Section IV of the paper).
//
//   B(m, delta) = [ e^delta / (1+delta)^(1+delta) ]^m
//     — the upper-tail bound Pr[I > (1+delta) m] for a sum of independent
//       [0,1] variables with mean m.
//   D(m, x)     = the delta solving B(m, D(m,x)) = x.
//   choose_mu   = the largest scaling factor mu in (0,1) satisfying the
//       paper's inequality (6):  B(mu*c, (1-mu)/mu) < 1 / (T (N+1)),
//       which simplifies to  exp((1-mu) c) * mu^c < 1/(T(N+1)).
//
// All computations are carried out in log space.
#pragma once

namespace metis::core {

/// log B(m, delta); requires m >= 0, delta > -1.
double log_chernoff_b(double m, double delta);

/// B(m, delta) itself (may underflow to 0 for large m — prefer the log form).
double chernoff_b(double m, double delta);

/// D(m, x): the delta > 0 with B(m, delta) = x, for x in (0,1) and m > 0.
/// Monotone bisection; returns an upper estimate within num::kBisectTol.
double chernoff_d(double m, double x);

/// Largest mu in (0,1) with exp((1-mu)c) * mu^c < 1/(T(N+1)) (strictly),
/// i.e. the paper's inequality (6) with c the minimum positive capacity in
/// normalized rate units, T slots and N edges.  Returns 0 when even
/// arbitrarily small mu cannot satisfy it (c too small).
double choose_mu(double c, int num_slots, int num_edges);

}  // namespace metis::core
