#include "core/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/numeric.h"

namespace metis::core {

namespace {
/// exp with saturation: keeps saturated terms comparable instead of inf/nan.
/// The cap is derived from the type's actual overflow point rather than a
/// hardcoded constant: 11000 was only valid for 80-bit x87 long double and
/// would overflow to inf on platforms where long double is IEEE binary64
/// (log(DBL_MAX) ~ 709) or binary128.
long double safe_exp(long double x) {
  // The extra -1 is headroom: log(max) rounds to the nearest long double,
  // which can land above the true logarithm, making exp(log(max)) == inf.
  static const long double kMaxExponent =
      std::log(std::numeric_limits<long double>::max()) - 1.0L;
  return std::exp(std::min(x, kMaxExponent));
}
}  // namespace

PessimisticEstimator::PessimisticEstimator(
    const SpmInstance& instance, const ChargingPlan& capacities,
    const std::vector<std::vector<double>>& x_hat,
    const std::vector<bool>& accepted, const Config& config)
    : instance_(&instance), config_(config) {
  const int K = instance.num_requests();
  const int E = instance.num_edges();
  const int T = instance.num_slots();
  if (static_cast<int>(x_hat.size()) != K ||
      static_cast<int>(accepted.size()) != K ||
      static_cast<int>(capacities.units.size()) != E) {
    throw std::invalid_argument("PessimisticEstimator: shape mismatch");
  }
  if (config_.mu <= 0 || config_.mu > 1) {
    throw std::invalid_argument("PessimisticEstimator: mu out of (0,1]");
  }

  // Scale probabilities by mu.
  x_hat_.resize(K);
  for (int i = 0; i < K; ++i) {
    x_hat_[i].assign(instance.num_paths(i), 0.0);
    if (!accepted[i]) continue;
    if (static_cast<int>(x_hat[i].size()) != instance.num_paths(i)) {
      throw std::invalid_argument("PessimisticEstimator: x_hat row mismatch");
    }
    for (int j = 0; j < instance.num_paths(i); ++j) {
      x_hat_[i][j] = std::clamp(x_hat[i][j], 0.0, 1.0) * config_.mu;
    }
  }

  // Terms: 0 = revenue; one per (e,t) pair that some participating request
  // can load.
  term_of_.assign(E, std::vector<int>(T, -1));
  term_edge_.push_back(-1);
  term_slot_.push_back(-1);
  for (int i = 0; i < K; ++i) {
    if (!accepted[i]) continue;
    const workload::Request& r = instance.request(i);
    for (int j = 0; j < instance.num_paths(i); ++j) {
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) {
          if (term_of_[e][t] == -1) {
            term_of_[e][t] = static_cast<int>(term_edge_.size());
            term_edge_.push_back(e);
            term_slot_.push_back(t);
          }
        }
      }
    }
  }
  const int M = static_cast<int>(term_edge_.size());
  log_sum_.assign(M, 0.0L);
  log_factor_.assign(M, std::vector<double>(K, 0.0));
  presence_.assign(K, {});
  fixed_.assign(K, false);

  // Constants: revenue term e^{t0 I_B}; capacity terms e^{-tk c'_e}.
  log_sum_[0] = config_.t0 * config_.i_b;
  for (int k = 1; k < M; ++k) {
    const double c_norm = capacities.units[term_edge_[k]] / config_.r_max;
    log_sum_[k] = -config_.tk * c_norm;
  }

  // Unfixed factors.
  for (int i = 0; i < K; ++i) {
    if (!accepted[i]) continue;
    const workload::Request& r = instance.request(i);
    double p_total = 0;
    for (double p : x_hat_[i]) p_total += p;

    // Revenue term factor: sum_j mu x e^{-t0 v'} + 1 - sum_j mu x.
    const double v_norm = r.value / config_.v_max;
    const double f0 = p_total * std::exp(-config_.t0 * v_norm) + 1.0 - p_total;
    log_factor_[0][i] = std::log(std::max(f0, num::kTinyFloor));
    presence_[i].push_back(0);
    log_sum_[0] += log_factor_[0][i];

    // Capacity term factors: 1 + sum over paths through (e,t) of
    // mu x (e^{tk r'} - 1).
    const double r_norm = r.rate / config_.r_max;
    const double bump = std::exp(config_.tk * r_norm) - 1.0;
    // Collect per-term probability mass of request i.
    std::vector<std::pair<int, double>> mass;  // (term, sum of probs)
    for (int j = 0; j < instance.num_paths(i); ++j) {
      if (x_hat_[i][j] <= 0) continue;
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) {
          const int k = term_of_[e][t];
          auto it = std::find_if(mass.begin(), mass.end(),
                                 [k](const auto& kv) { return kv.first == k; });
          if (it == mass.end()) {
            mass.emplace_back(k, x_hat_[i][j]);
          } else {
            it->second += x_hat_[i][j];
          }
        }
      }
    }
    for (const auto& [k, p] : mass) {
      const double fk = 1.0 + p * bump;
      log_factor_[k][i] = std::log(fk);
      presence_[i].push_back(k);
      log_sum_[k] += log_factor_[k][i];
    }
  }

  total_ = 0;
  for (int k = 0; k < M; ++k) total_ += safe_exp(log_sum_[k]);
}

double PessimisticEstimator::fixed_log_factor(int i, int choice, int term) const {
  const workload::Request& r = instance_->request(i);
  if (choice == kDeclined) return 0.0;
  if (term == 0) return -config_.t0 * (r.value / config_.v_max);
  const net::EdgeId e = term_edge_[term];
  const int t = term_slot_[term];
  if (!r.active_at(t) || !instance_->path_uses_edge(i, choice, e)) return 0.0;
  return config_.tk * (r.rate / config_.r_max);
}

double PessimisticEstimator::value() const {
  return static_cast<double>(total_);
}

double PessimisticEstimator::candidate_value(int i, int choice) const {
  if (fixed_.at(i)) {
    throw std::invalid_argument("candidate_value: request already fixed");
  }
  long double u = total_;
  // Terms where either the unfixed factor or the candidate factor differ
  // from 1: presence_ covers the former; the candidate's own terms (its path
  // edges x active slots) are a subset of presence_ because the candidate
  // path has x_hat mass only if... (not necessarily: a path with x_hat == 0
  // is absent from presence terms).  Handle both sets.
  std::vector<char> seen(log_sum_.size(), 0);
  for (int k : presence_.at(i)) {
    seen[k] = 1;
    u -= safe_exp(log_sum_[k]);
    u += safe_exp(log_sum_[k] - log_factor_[k][i] +
                  fixed_log_factor(i, choice, k));
  }
  if (choice != kDeclined) {
    const workload::Request& r = instance_->request(i);
    if (!seen[0]) {
      u -= safe_exp(log_sum_[0]);
      u += safe_exp(log_sum_[0] + fixed_log_factor(i, choice, 0));
    }
    for (net::EdgeId e : instance_->paths(i)[choice].edges) {
      for (int t = r.start_slot; t <= r.end_slot; ++t) {
        const int k = term_of_[e][t];
        if (k < 0 || seen[k]) continue;
        seen[k] = 1;
        u -= safe_exp(log_sum_[k]);
        u += safe_exp(log_sum_[k] + fixed_log_factor(i, choice, k));
      }
    }
  }
  return static_cast<double>(u);
}

void PessimisticEstimator::fix(int i, int choice) {
  if (fixed_.at(i)) throw std::invalid_argument("fix: request already fixed");
  std::vector<char> seen(log_sum_.size(), 0);
  auto update_term = [&](int k) {
    if (seen[k]) return;
    seen[k] = 1;
    total_ -= safe_exp(log_sum_[k]);
    const double lf_new = fixed_log_factor(i, choice, k);
    log_sum_[k] += lf_new - log_factor_[k][i];
    log_factor_[k][i] = lf_new;
    total_ += safe_exp(log_sum_[k]);
  };
  for (int k : presence_.at(i)) update_term(k);
  if (choice != kDeclined) {
    update_term(0);
    const workload::Request& r = instance_->request(i);
    for (net::EdgeId e : instance_->paths(i)[choice].edges) {
      for (int t = r.start_slot; t <= r.end_slot; ++t) {
        const int k = term_of_[e][t];
        if (k >= 0) update_term(k);
      }
    }
  }
  fixed_[i] = true;
}

}  // namespace metis::core
