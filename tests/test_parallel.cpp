// Tests for the deterministic parallel execution layer (util/parallel.h):
// index coverage, order-independence of parallel_map, exception
// propagation, nested calls, and pool reuse.  Labeled `concurrency` so a
// TSan build can run them as a dedicated stage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace metis {
namespace {

TEST(ResolveThreads, ExplicitCountsPassThrough) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(8), 8);
}

TEST(ResolveThreads, ZeroMeansHardwareAndAtLeastOne) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-4), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const int n = 500;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for(n, [&](int i) { hits[i].fetch_add(1); }, threads);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ZeroAndSingleItemAreFine) {
  int calls = 0;
  parallel_for(0, [&](int) { ++calls; }, 8);
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](int i) { calls += 1 + i; }, 8);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMap, ResultIndexedByInputIndex) {
  const auto squares = parallel_map(100, [](int i) { return i * i; }, 4);
  ASSERT_EQ(squares.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, IdenticalAcrossThreadCounts) {
  // The determinism contract: with index-addressed streams, the output is
  // bit-identical no matter how many workers execute the loop.
  const Rng base(2024);
  auto draw = [&](int i) {
    Rng rng = base.split(static_cast<std::uint64_t>(i));
    return rng.uniform(0, 1);
  };
  const auto serial = parallel_map(200, draw, 1);
  for (int threads : {2, 8}) {
    EXPECT_EQ(parallel_map(200, draw, threads), serial)
        << "threads " << threads;
  }
}

TEST(ParallelFor, FirstExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](int i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, RemainingIndicesRunDespiteException) {
  std::atomic<int> executed{0};
  try {
    parallel_for(
        64,
        [&](int i) {
          executed.fetch_add(1);
          if (i == 0) throw std::runtime_error("early");
        },
        4);
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  const int outer = 8, inner = 16;
  std::vector<std::atomic<int>> hits(outer * inner);
  for (auto& h : hits) h.store(0);
  parallel_for(
      outer,
      [&](int o) {
        parallel_for(
            inner, [&](int i) { hits[o * inner + i].fetch_add(1); }, 8);
      },
      8);
  for (int i = 0; i < outer * inner; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, RunsManyJobsBackToBack) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long long> sum{0};
    pool.run(100, 4, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, HonorsWorkerCapOfOne) {
  // max_workers=1 must run inline on the caller: observable as strictly
  // sequential index order.
  ThreadPool pool(4);
  std::vector<int> order;
  pool.run(32, 1, [&](int i) { order.push_back(i); });
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, SharedPoolHasAtLeastTwoThreads) {
  // Even on single-core hosts the shared pool keeps the parallel code paths
  // genuinely concurrent (and TSan-exercised).
  EXPECT_GE(ThreadPool::shared().size(), 2);
}

TEST(ParallelFor, HeavilyContendedSharedCounterIsExact) {
  // Not a determinism property — a smoke test that the pool actually runs
  // bodies concurrently-safe and the completion barrier holds.
  std::atomic<long long> sum{0};
  const int n = 10000;
  parallel_for(n, [&](int i) { sum.fetch_add(i + 1); }, 8);
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n + 1) / 2);
}

}  // namespace
}  // namespace metis
