// End-to-end oracle: on tiny instances, enumerate EVERY possible decision
// (all (L_i + 1)^K acceptance/routing combinations), evaluate each with the
// accounting module, and check that
//   * run_opt_spm finds exactly the maximum profit,
//   * run_opt_rl_spm finds exactly the minimum accept-all cost,
//   * Metis and every baseline never exceed the true optimum and always
//     produce feasible decisions.
// This closes the loop between the ILP formulations, the branch & bound
// solver, the accounting code and the heuristics — if any of them drifts,
// the exhaustive truth catches it.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ecoflow.h"
#include "baselines/mincost.h"
#include "baselines/opt.h"
#include "core/accounting.h"
#include "core/metis.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace metis {
namespace {

struct Truth {
  double best_profit = 0;           // over all decisions (declining allowed)
  double best_accept_all_cost = 0;  // over all-accepted routings
  core::Schedule best_schedule;
};

/// Exhaustive enumeration of all (L_i + 1)^K schedules.
Truth enumerate(const core::SpmInstance& instance) {
  Truth truth;
  truth.best_profit = 0;  // declining everything is always available
  truth.best_accept_all_cost = lp::kInfinity;
  const int k = instance.num_requests();
  core::Schedule schedule = core::Schedule::all_declined(k);
  truth.best_schedule = schedule;

  // Odometer over choices in [-1, L_i).
  std::vector<int> choice(k, -1);
  while (true) {
    for (int i = 0; i < k; ++i) schedule.path_choice[i] = choice[i];
    const core::ProfitBreakdown pb = core::evaluate(instance, schedule);
    if (pb.profit > truth.best_profit) {
      truth.best_profit = pb.profit;
      truth.best_schedule = schedule;
    }
    if (pb.accepted == k && pb.cost < truth.best_accept_all_cost) {
      truth.best_accept_all_cost = pb.cost;
    }
    // Increment the odometer.
    int pos = 0;
    while (pos < k) {
      if (++choice[pos] < instance.num_paths(pos)) break;
      choice[pos] = -1;
      ++pos;
    }
    if (pos == k) break;
  }
  return truth;
}

core::SpmInstance tiny_instance(std::uint64_t seed, int k) {
  sim::Scenario scenario;
  scenario.network = sim::Network::SubB4;
  scenario.num_requests = k;
  scenario.seed = seed;
  scenario.instance.max_paths = 3;
  return sim::make_instance(scenario);
}

class OptOracle : public ::testing::TestWithParam<int> {};

TEST_P(OptOracle, BranchAndBoundMatchesExhaustiveTruth) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SpmInstance instance = tiny_instance(seed, 6);
  const Truth truth = enumerate(instance);

  const baselines::OptResult opt = baselines::run_opt_spm(instance);
  ASSERT_TRUE(opt.exact) << "seed " << seed;
  EXPECT_NEAR(opt.breakdown.profit, truth.best_profit, 1e-6) << "seed " << seed;

  const baselines::OptResult rl = baselines::run_opt_rl_spm(instance);
  ASSERT_TRUE(rl.exact) << "seed " << seed;
  EXPECT_NEAR(rl.breakdown.cost, truth.best_accept_all_cost, 1e-6)
      << "seed " << seed;
}

TEST_P(OptOracle, HeuristicsNeverBeatTheTruth) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SpmInstance instance = tiny_instance(seed, 6);
  const Truth truth = enumerate(instance);

  Rng rng(seed * 7 + 1);
  const core::MetisResult metis = core::run_metis(instance, rng);
  EXPECT_LE(metis.best.profit, truth.best_profit + 1e-6) << "seed " << seed;
  EXPECT_GE(metis.best.profit, -1e-9);

  const baselines::EcoFlowResult eco = baselines::run_ecoflow(instance);
  EXPECT_LE(eco.profit, truth.best_profit + 1e-6) << "seed " << seed;

  const baselines::MinCostResult mc = baselines::run_mincost(instance);
  EXPECT_GE(mc.cost, truth.best_accept_all_cost - 1e-6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptOracle, ::testing::Range(1, 11));

TEST(OptOracle, MetisCloseToTruthOnAverage) {
  // Aggregate quality check: over several tiny instances Metis recovers a
  // large fraction of the optimal profit (the paper reports ~89% of OPT).
  double metis_total = 0, truth_total = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const core::SpmInstance instance = tiny_instance(seed, 6);
    const Truth truth = enumerate(instance);
    Rng rng(seed);
    const core::MetisResult metis = core::run_metis(instance, rng);
    metis_total += metis.best.profit;
    truth_total += truth.best_profit;
  }
  ASSERT_GT(truth_total, 0);
  EXPECT_GT(metis_total / truth_total, 0.75);
}

}  // namespace
}  // namespace metis
