// Tests for the workload substrate: Request validation, the synthetic
// generator's distributions, and workload I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "net/topologies.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/request.h"
#include "workload/workload_io.h"

namespace metis::workload {
namespace {

// ------------------------------------------------------------ Request ----

TEST(Request, ActiveWindowAndDuration) {
  Request r{0, 1, 3, 7, 0.2, 1.0};
  EXPECT_EQ(r.duration(), 5);
  EXPECT_FALSE(r.active_at(2));
  EXPECT_TRUE(r.active_at(3));
  EXPECT_TRUE(r.active_at(7));
  EXPECT_FALSE(r.active_at(8));
  EXPECT_DOUBLE_EQ(r.rate_at(5), 0.2);
  EXPECT_DOUBLE_EQ(r.rate_at(8), 0.0);
}

TEST(Request, ValidationCatchesMalformedRequests) {
  const int nodes = 6, slots = 12;
  validate_request({0, 1, 0, 11, 0.1, 1.0}, nodes, slots);  // ok
  EXPECT_THROW(validate_request({0, 0, 0, 1, 0.1, 1}, nodes, slots),
               std::invalid_argument);  // src == dst
  EXPECT_THROW(validate_request({0, 9, 0, 1, 0.1, 1}, nodes, slots),
               std::invalid_argument);  // bad node
  EXPECT_THROW(validate_request({0, 1, 5, 3, 0.1, 1}, nodes, slots),
               std::invalid_argument);  // start > end
  EXPECT_THROW(validate_request({0, 1, 0, 12, 0.1, 1}, nodes, slots),
               std::invalid_argument);  // end beyond cycle
  EXPECT_THROW(validate_request({0, 1, 0, 1, 0.0, 1}, nodes, slots),
               std::invalid_argument);  // zero rate
  EXPECT_THROW(validate_request({0, 1, 0, 1, 0.1, -1}, nodes, slots),
               std::invalid_argument);  // negative value
}

// ---------------------------------------------------------- generator ----

TEST(Generator, DeterministicForSeed) {
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng a(42), b(42);
  EXPECT_EQ(gen.generate(50, a), gen.generate(50, b));
}

TEST(Generator, DifferentSeedsDiffer) {
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng a(1), b(2);
  EXPECT_NE(gen.generate(50, a), gen.generate(50, b));
}

TEST(Generator, ExactCountAndValidity) {
  const net::Topology topo = net::make_b4();
  GeneratorConfig config;
  const RequestGenerator gen(topo, config);
  Rng rng(7);
  const auto requests = gen.generate(200, rng);
  ASSERT_EQ(requests.size(), 200u);
  for (const Request& r : requests) {
    validate_request(r, topo.num_nodes(), config.num_slots);
    EXPECT_GE(r.rate, config.min_rate);
    EXPECT_LE(r.rate, config.max_rate);
    EXPECT_GT(r.value, 0);
  }
}

TEST(Generator, ValueScalesWithVolume) {
  const net::Topology topo = net::make_b4();
  GeneratorConfig config;
  config.value_noise = 0.0;        // make the value model deterministic
  config.low_value_fraction = 0.0;  // no bargain segment
  const RequestGenerator gen(topo, config);
  Rng rng(3);
  for (const Request& r : gen.generate(100, rng)) {
    EXPECT_NEAR(r.value, r.rate * r.duration() * config.value_per_unit_slot,
                1e-9);
  }
}

TEST(Generator, LowValueSegmentPresent) {
  const net::Topology topo = net::make_b4();
  GeneratorConfig config;
  config.value_noise = 0.0;
  config.low_value_fraction = 0.5;
  const RequestGenerator gen(topo, config);
  Rng rng(5);
  int low = 0, full = 0;
  for (const Request& r : gen.generate(400, rng)) {
    const double market = r.rate * r.duration() * config.value_per_unit_slot;
    if (std::abs(r.value - market) < 1e-9) {
      ++full;
    } else {
      EXPECT_LT(r.value, market);  // bargains bid strictly below market
      EXPECT_GE(r.value, market * config.low_value_min - 1e-9);
      ++low;
    }
  }
  // Roughly half of each; loose bounds.
  EXPECT_GT(low, 120);
  EXPECT_GT(full, 120);
}

TEST(Generator, RejectsBadLowValueConfig) {
  const net::Topology topo = net::make_b4();
  GeneratorConfig bad;
  bad.low_value_fraction = 1.5;
  EXPECT_THROW(RequestGenerator(topo, bad), std::invalid_argument);
  bad = {};
  bad.low_value_min = 0.5;
  bad.low_value_max = 0.2;
  EXPECT_THROW(RequestGenerator(topo, bad), std::invalid_argument);
}

TEST(Generator, PoissonTotalNearExpectation) {
  const net::Topology topo = net::make_sub_b4();
  GeneratorConfig config;
  const RequestGenerator gen(topo, config);
  Rng rng(11);
  double total = 0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    total += static_cast<double>(gen.generate_poisson(5.0, rng).size());
  }
  // Expected 12 slots * 5 arrivals = 60 per cycle.
  EXPECT_NEAR(total / reps, 60.0, 2.0);
}

TEST(Generator, StartSlotsCoverCycle) {
  const net::Topology topo = net::make_sub_b4();
  const RequestGenerator gen(topo, {});
  Rng rng(13);
  std::vector<int> counts(12, 0);
  for (const Request& r : gen.generate(2400, rng)) ++counts[r.start_slot];
  for (int slot = 0; slot < 12; ++slot) {
    EXPECT_GT(counts[slot], 100) << "slot " << slot;  // ~200 expected
  }
}

TEST(Generator, EndSlotNeverBeforeStart) {
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng rng(17);
  for (const Request& r : gen.generate(500, rng)) {
    EXPECT_LE(r.start_slot, r.end_slot);
    EXPECT_LT(r.end_slot, 12);
  }
}

TEST(Generator, RejectsBadConfig) {
  const net::Topology topo = net::make_b4();
  GeneratorConfig bad;
  bad.num_slots = 0;
  EXPECT_THROW(RequestGenerator(topo, bad), std::invalid_argument);
  bad = {};
  bad.min_rate = 0;
  EXPECT_THROW(RequestGenerator(topo, bad), std::invalid_argument);
  bad = {};
  bad.min_rate = 2;
  bad.max_rate = 1;
  EXPECT_THROW(RequestGenerator(topo, bad), std::invalid_argument);
  bad = {};
  bad.value_noise = 1.0;
  EXPECT_THROW(RequestGenerator(topo, bad), std::invalid_argument);
}

TEST(Generator, NegativeCountThrows) {
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng rng(1);
  EXPECT_THROW(gen.generate(-1, rng), std::invalid_argument);
  EXPECT_THROW(gen.generate_poisson(0, rng), std::invalid_argument);
}

// ----------------------------------------------------- arrival stream ----

TEST(Arrivals, SortedAndTimestampedWithinStartSlot) {
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng rng(5);
  const std::vector<Arrival> stream = gen.generate_arrivals(5.0, rng);
  ASSERT_FALSE(stream.empty());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Arrival& a = stream[i];
    // A request arrives during the slot its reservation starts in.
    EXPECT_GE(a.arrival_time, a.request.start_slot);
    EXPECT_LT(a.arrival_time, a.request.start_slot + 1);
    if (i > 0) EXPECT_LE(stream[i - 1].arrival_time, a.arrival_time);
  }
}

TEST(Arrivals, ZeroRateIsAnIdleCycleNotAnError) {
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng rng(5);
  EXPECT_TRUE(gen.generate_arrivals(0.0, rng).empty());
  EXPECT_THROW(gen.generate_arrivals(-1.0, rng), std::invalid_argument);
}

TEST(Arrivals, SingleSlotCycleProducesSingleSlotRequests) {
  const net::Topology topo = net::make_b4();
  GeneratorConfig config;
  config.num_slots = 1;
  const RequestGenerator gen(topo, config);
  Rng rng(7);
  const std::vector<Arrival> stream = gen.generate_arrivals(20.0, rng);
  ASSERT_FALSE(stream.empty());
  for (const Arrival& a : stream) {
    // T == 1 forces ts == td on every request.
    EXPECT_EQ(a.request.start_slot, 0);
    EXPECT_EQ(a.request.end_slot, 0);
    EXPECT_EQ(a.request.duration(), 1);
  }
}

TEST(Arrivals, DeterministicForSeed) {
  const net::Topology topo = net::make_sub_b4();
  const RequestGenerator gen(topo, {});
  Rng a(42), b(42);
  const auto sa = gen.generate_arrivals(4.0, a);
  const auto sb = gen.generate_arrivals(4.0, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].request, sb[i].request);
    EXPECT_EQ(sa[i].arrival_time, sb[i].arrival_time);
  }
}

TEST(Arrivals, CallerGeneratorAdvancesExactlyOnceForAnyRate) {
  // generate_arrivals draws from split() streams of a single fork, so the
  // caller's generator ends in the same state whatever the rate — the code
  // after the stream draw stays reproducible when the rate is swept.
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng a(9), b(9), c(9);
  gen.generate_arrivals(0.0, a);
  gen.generate_arrivals(3.0, b);
  gen.generate_arrivals(12.0, c);
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  Rng b2(9);
  gen.generate_arrivals(3.0, b2);
  EXPECT_EQ(c.uniform_int(0, 1 << 30), b2.uniform_int(0, 1 << 30));
}

TEST(Arrivals, SlotStreamsAreSplitAddressed) {
  // The per-slot substreams are keyed by slot index on a fork of the
  // caller's rng: two generators fed identically seeded rngs produce
  // identical per-slot arrival blocks even if compared slot by slot.
  const net::Topology topo = net::make_sub_b4();
  const RequestGenerator gen(topo, {});
  Rng a(31), b(31);
  const auto stream = gen.generate_arrivals(6.0, a);
  const auto again = gen.generate_arrivals(6.0, b);
  ASSERT_EQ(stream.size(), again.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].arrival_time, again[i].arrival_time);
  }
}

// ----------------------------------------------------------------- IO ----

TEST(WorkloadIo, RoundTrip) {
  const net::Topology topo = net::make_b4();
  const RequestGenerator gen(topo, {});
  Rng rng(23);
  Workload original;
  original.num_slots = 12;
  original.requests = gen.generate(40, rng);

  std::stringstream buffer;
  write_workload(buffer, original);
  const Workload parsed = read_workload(buffer);
  ASSERT_EQ(parsed.num_slots, original.num_slots);
  ASSERT_EQ(parsed.requests.size(), original.requests.size());
  for (std::size_t i = 0; i < parsed.requests.size(); ++i) {
    EXPECT_EQ(parsed.requests[i].src, original.requests[i].src);
    EXPECT_EQ(parsed.requests[i].dst, original.requests[i].dst);
    EXPECT_EQ(parsed.requests[i].start_slot, original.requests[i].start_slot);
    EXPECT_EQ(parsed.requests[i].end_slot, original.requests[i].end_slot);
    EXPECT_NEAR(parsed.requests[i].rate, original.requests[i].rate, 1e-6);
    EXPECT_NEAR(parsed.requests[i].value, original.requests[i].value, 1e-6);
  }
}

TEST(WorkloadIo, RejectsMalformedInput) {
  std::stringstream no_slots("request 0 1 0 1 0.5 1.0\n");
  EXPECT_THROW(read_workload(no_slots), std::runtime_error);
  std::stringstream bad_window("slots 12\nrequest 0 1 5 3 0.5 1.0\n");
  EXPECT_THROW(read_workload(bad_window), std::runtime_error);
  std::stringstream bad_fields("slots 12\nrequest 0 1 zero\n");
  EXPECT_THROW(read_workload(bad_fields), std::runtime_error);
}

TEST(WorkloadIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# workload\n"
      "slots 12\n"
      "\n"
      "request 0 1 2 5 0.25 1.5  # a request\n");
  const Workload w = read_workload(in);
  ASSERT_EQ(w.requests.size(), 1u);
  EXPECT_EQ(w.requests[0].end_slot, 5);
}

}  // namespace
}  // namespace metis::workload
