// Differential fuzz oracle for the sparse simplex solver (label: numeric).
//
// Two layers:
//  * sanity tests pinning the dense reference solver itself to hand-checked
//    optima — the oracle must be trustworthy before it is used as one;
//  * the seeded sweep: >= 500 generated SPM-shaped LPs (benign, degenerate,
//    near-singular, fault-mutated, badly scaled), each solved by the sparse
//    solver (Harris ratio test on AND off) and the dense textbook reference,
//    cross-checking status, objective, primal feasibility and the full KKT
//    certificate of the sparse solution.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp_reference.h"
#include "util/numeric.h"

namespace metis::lp {
namespace {

// ---------------------------------------------------------------------------
// Reference-solver sanity: the oracle against hand-checked optima.

TEST(LpReference, SolvesTextbookMin) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
  // Optimum at (2, 2) with objective -6.
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(0, 3, -1);
  const int y = p.add_variable(0, 2, -2);
  p.add_row(RowType::LessEqual, 4, {{x, 1}, {y, 1}});
  const reference::ReferenceSolution ref = reference::solve_reference(p);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  EXPECT_NEAR(ref.objective, -6.0, 1e-9);
  EXPECT_NEAR(ref.x[x], 2.0, 1e-9);
  EXPECT_NEAR(ref.x[y], 2.0, 1e-9);
}

TEST(LpReference, SolvesMaximizeWithEquality) {
  // max 3x + y  s.t. x + y = 2, x <= 1.5, x,y >= 0.  Optimum (1.5, 0.5) -> 5.
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, 1.5, 3);
  const int y = p.add_variable(0, kInfinity, 1);
  p.add_row(RowType::Equal, 2, {{x, 1}, {y, 1}});
  const reference::ReferenceSolution ref = reference::solve_reference(p);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  EXPECT_NEAR(ref.objective, 5.0, 1e-9);
}

TEST(LpReference, HandlesFreeAndNegativeBounds) {
  // min x + y with x free, y in [-5, -1], x >= y - 1 (i.e. -x + y <= 1... )
  // Constraint: x - y >= 2.  Optimum: y = -5, x = -3 -> objective -8.
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(-kInfinity, kInfinity, 1);
  const int y = p.add_variable(-5, -1, 1);
  p.add_row(RowType::GreaterEqual, 2, {{x, 1}, {y, -1}});
  const reference::ReferenceSolution ref = reference::solve_reference(p);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  EXPECT_NEAR(ref.objective, -8.0, 1e-9);
  EXPECT_NEAR(ref.x[x], -3.0, 1e-9);
  EXPECT_NEAR(ref.x[y], -5.0, 1e-9);
}

TEST(LpReference, DetectsInfeasible) {
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(0, 1, 1);
  p.add_row(RowType::GreaterEqual, 5, {{x, 1}});
  EXPECT_EQ(reference::solve_reference(p).status, SolveStatus::Infeasible);
}

TEST(LpReference, DetectsUnbounded) {
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(-kInfinity, kInfinity, 1);
  p.add_row(RowType::LessEqual, 1, {{x, 1}});
  EXPECT_EQ(reference::solve_reference(p).status, SolveStatus::Unbounded);
}

TEST(LpReference, HandlesFixedColumns) {
  // x fixed at 2 contributes through the row; only y is decided.
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(2, 2, 10);
  const int y = p.add_variable(0, kInfinity, 1);
  p.add_row(RowType::GreaterEqual, 5, {{x, 1}, {y, 1}});
  const reference::ReferenceSolution ref = reference::solve_reference(p);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  EXPECT_NEAR(ref.x[x], 2.0, 1e-12);
  EXPECT_NEAR(ref.x[y], 3.0, 1e-9);
  EXPECT_NEAR(ref.objective, 23.0, 1e-9);
}

// The certificate checker must reject a corrupted dual vector — otherwise a
// silently wrong sparse solver would sail through the sweep.
TEST(LpReference, CertificateCheckerCatchesBadDuals) {
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(0, 3, -1);
  const int y = p.add_variable(0, 2, -2);
  p.add_row(RowType::LessEqual, 4, {{x, 1}, {y, 1}});
  LpSolution sol = SimplexSolver().solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  ASSERT_TRUE(reference::check_certificates(p, sol).empty());
  sol.duals[0] += 1.0;  // corrupt: breaks sign and/or strong duality
  EXPECT_FALSE(reference::check_certificates(p, sol).empty());
}

// ---------------------------------------------------------------------------
// The differential sweep.

constexpr unsigned long long kNumCases = 600;  // acceptance floor is 500

TEST(LpFuzz, SparseMatchesReferenceOverSeededSweep) {
  // Four sparse-solver paths against the dense oracle: pricing rule
  // (devex partial pricing / Dantzig full scan) crossed with the ratio
  // test (Harris two-pass / textbook).  Devex and Dantzig may stop at
  // different vertices of a shared optimal face, so only status and
  // objective value are cross-checked — plus primal feasibility and the
  // full KKT certificate, which every path must produce on its own.
  struct SolverPath {
    const char* name;
    PricingRule pricing;
    bool harris;
  };
  constexpr SolverPath kPaths[] = {
      {"devex+harris", PricingRule::Devex, true},
      {"devex+textbook", PricingRule::Devex, false},
      {"dantzig+harris", PricingRule::Dantzig, true},
      {"dantzig+textbook", PricingRule::Dantzig, false},
  };
  int optimal = 0, infeasible = 0;
  for (unsigned long long seed = 1; seed <= kNumCases; ++seed) {
    const reference::FuzzCase fc = reference::make_fuzz_case(seed);
    const reference::ReferenceSolution ref =
        reference::solve_reference(fc.problem);
    ASSERT_NE(ref.status, SolveStatus::IterationLimit) << fc.label;
    if (ref.status == SolveStatus::Optimal) {
      ++optimal;
    } else {
      ++infeasible;
    }

    for (const SolverPath& path : kPaths) {
      SimplexOptions opt;
      opt.pricing = path.pricing;
      opt.harris = path.harris;
      const LpSolution sol = SimplexSolver(opt).solve(fc.problem);
      ASSERT_EQ(sol.status, ref.status) << fc.label << " (" << path.name
                                        << ')';
      if (ref.status != SolveStatus::Optimal) continue;

      const double obj_tol = num::kOptTol * num::rel_scale(ref.objective);
      EXPECT_NEAR(sol.objective, ref.objective, obj_tol)
          << fc.label << " (" << path.name << ')';
      EXPECT_TRUE(fc.problem.is_feasible(sol.x, num::kOptTol))
          << fc.label << " (" << path.name << ')';

      const std::vector<std::string> bad =
          reference::check_certificates(fc.problem, sol);
      EXPECT_TRUE(bad.empty()) << fc.label << " (" << path.name
                               << "): " << (bad.empty() ? "" : bad[0]);
    }
  }
  // The generator must actually exercise both outcomes: an all-Optimal (or
  // all-Infeasible) sweep means a generator class silently collapsed.
  EXPECT_GE(optimal, 300) << "generator stopped producing solvable cases";
  EXPECT_GE(infeasible, 10) << "fault-mutated class stopped producing "
                               "infeasible cases";
}

// Warm starts under fuzz: re-solving the same problem from its own optimal
// basis must reproduce the optimum without drifting.
TEST(LpFuzz, WarmRestartReproducesOptimum) {
  for (unsigned long long seed = 1; seed <= 60; ++seed) {
    const reference::FuzzCase fc = reference::make_fuzz_case(seed);
    Basis basis;
    const LpSolution cold = SimplexSolver().solve(fc.problem, &basis);
    if (cold.status != SolveStatus::Optimal || basis.empty()) continue;
    const LpSolution warm = SimplexSolver().solve(fc.problem, &basis);
    ASSERT_EQ(warm.status, SolveStatus::Optimal) << fc.label;
    EXPECT_NEAR(warm.objective, cold.objective,
                num::kOptTol * num::rel_scale(cold.objective))
        << fc.label;
    EXPECT_LE(warm.iterations, cold.iterations) << fc.label;
  }
}

}  // namespace
}  // namespace metis::lp
