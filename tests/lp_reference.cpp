#include "lp_reference.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>

#include "util/numeric.h"

namespace metis::lp::reference {

namespace {

// Tolerances for the reference path.  Deliberately the same named policy the
// production solver uses (util/numeric.h) so a disagreement between the two
// is a logic difference, not a tolerance difference.
constexpr double kDTol = num::kFeasTol;      // reduced-cost threshold
constexpr double kPivTol = num::kPivotTol;   // pivot magnitude floor

/// The standard-form image of a LinearProblem:
///   min c^T s   s.t.  A s = b,  s >= 0,  b >= 0,
/// with the original columns recovered as x_j = shift_j + dir_j * s_pos  or
/// x_j = s_pos - s_neg for free columns.
struct Standard {
  std::vector<std::vector<double>> a;  // m x n, dense
  std::vector<double> b;               // m, nonnegative
  std::vector<double> c;               // n, minimization costs
  struct BackMap {
    double shift = 0;
    double dir = 1;      // +1 or -1
    int pos = -1;        // standard column carrying the variable; -1 = fixed
    int neg = -1;        // second column of a free split
  };
  std::vector<BackMap> map;  // one per original column
  int n = 0;
  int m = 0;
};

Standard to_standard(const LinearProblem& p) {
  Standard s;
  const double sign = p.sense() == Sense::Minimize ? 1.0 : -1.0;
  const int n_orig = p.num_variables();
  s.map.resize(n_orig);

  // Pass 1: allocate standard columns and record bound rows to add.
  struct BoundRow {
    int col;
    double range;
  };
  std::vector<BoundRow> bound_rows;
  for (int j = 0; j < n_orig; ++j) {
    const double lb = p.lower_bound(j);
    const double ub = p.upper_bound(j);
    Standard::BackMap& bm = s.map[j];
    if (std::isfinite(lb) && std::isfinite(ub) && ub - lb <= 0) {
      bm.shift = lb;  // fixed column: no standard variable at all
      continue;
    }
    if (std::isfinite(lb)) {
      bm.shift = lb;
      bm.dir = 1;
      bm.pos = s.n++;
      if (std::isfinite(ub)) bound_rows.push_back({bm.pos, ub - lb});
    } else if (std::isfinite(ub)) {
      bm.shift = ub;  // x = ub - s, s >= 0
      bm.dir = -1;
      bm.pos = s.n++;
    } else {
      bm.dir = 1;  // free: x = s_pos - s_neg
      bm.pos = s.n++;
      bm.neg = s.n++;
    }
  }

  // Costs in minimization form.
  s.c.assign(s.n, 0.0);
  for (int j = 0; j < n_orig; ++j) {
    const Standard::BackMap& bm = s.map[j];
    if (bm.pos < 0) continue;
    const double cj = sign * p.objective_coef(j);
    s.c[bm.pos] += cj * bm.dir;
    if (bm.neg >= 0) s.c[bm.neg] -= cj;
  }

  // Constraint rows: substitute the column mapping, then append one slack
  // (LessEqual +1 / GreaterEqual -1) per inequality.  Slack columns are
  // appended after all structural columns so indices stay stable.
  const int num_rows = p.num_rows() + static_cast<int>(bound_rows.size());
  int n_slack = 0;
  for (int r = 0; r < p.num_rows(); ++r) {
    if (p.row(r).type != RowType::Equal) ++n_slack;
  }
  n_slack += static_cast<int>(bound_rows.size());
  const int slack_base = s.n;
  s.n += n_slack;
  s.c.resize(s.n, 0.0);

  s.a.assign(num_rows, std::vector<double>(s.n, 0.0));
  s.b.assign(num_rows, 0.0);
  int next_slack = slack_base;
  for (int r = 0; r < p.num_rows(); ++r) {
    const Row& row = p.row(r);
    double rhs = row.rhs;
    for (const RowEntry& e : row.entries) {
      const Standard::BackMap& bm = s.map[e.col];
      rhs -= e.coef * bm.shift;
      if (bm.pos < 0) continue;
      s.a[r][bm.pos] += e.coef * bm.dir;
      if (bm.neg >= 0) s.a[r][bm.neg] -= e.coef;
    }
    s.b[r] = rhs;
    if (row.type == RowType::LessEqual) s.a[r][next_slack++] = 1.0;
    if (row.type == RowType::GreaterEqual) s.a[r][next_slack++] = -1.0;
  }
  for (std::size_t k = 0; k < bound_rows.size(); ++k) {
    const int r = p.num_rows() + static_cast<int>(k);
    s.a[r][bound_rows[k].col] = 1.0;
    s.b[r] = bound_rows[k].range;
    s.a[r][next_slack++] = 1.0;
  }

  // Normalize to b >= 0.
  for (int r = 0; r < num_rows; ++r) {
    if (s.b[r] < 0) {
      s.b[r] = -s.b[r];
      for (double& v : s.a[r]) v = -v;
    }
  }
  s.m = num_rows;
  return s;
}

/// Full-tableau simplex state: m rows of [columns | rhs], a reduced-cost
/// row `d` and the (negated) objective value, pivoted in lockstep.
struct Tableau {
  std::vector<std::vector<double>> t;  // m x (n_total + 1); last col = rhs
  std::vector<double> d;               // n_total reduced costs
  double obj = 0;                      // current objective value
  std::vector<int> basis;              // m basic column indices
  int n_total = 0;

  void pivot(int row, int col) {
    const double piv = t[row][col];
    for (double& v : t[row]) v /= piv;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (static_cast<int>(i) == row) continue;
      const double f = t[i][col];
      if (f == 0) continue;
      for (int j = 0; j <= n_total; ++j) t[i][j] -= f * t[row][j];
    }
    const double fd = d[col];
    if (fd != 0) {
      for (int j = 0; j < n_total; ++j) d[j] -= fd * t[row][j];
      obj += fd * t[row][n_total];
    }
    basis[row] = col;
  }
};

/// One Bland-rule phase over columns [0, limit).  Returns Optimal when no
/// entering column remains, Unbounded when a column can grow forever, or
/// IterationLimit on a pivot-count blowup (should be unreachable: Bland's
/// rule excludes cycling).
SolveStatus run_phase(Tableau& tab, int limit) {
  const long max_pivots =
      2000L * (static_cast<long>(tab.t.size()) + limit) + 10000;
  for (long it = 0; it < max_pivots; ++it) {
    // Bland entering rule: smallest-index column with negative reduced cost.
    int enter = -1;
    for (int j = 0; j < limit; ++j) {
      if (tab.d[j] < -kDTol) {
        enter = j;
        break;
      }
    }
    if (enter < 0) return SolveStatus::Optimal;
    // Bland leaving rule: smallest ratio, ties to smallest basis index.
    int leave = -1;
    double best = 0;
    for (std::size_t i = 0; i < tab.t.size(); ++i) {
      const double a = tab.t[i][enter];
      if (a <= kPivTol) continue;
      const double ratio = tab.t[i][tab.n_total] / a;
      if (leave < 0 || ratio < best - num::kTieTol ||
          (ratio <= best + num::kTieTol && tab.basis[i] < tab.basis[leave])) {
        leave = static_cast<int>(i);
        best = ratio;
      }
    }
    if (leave < 0) return SolveStatus::Unbounded;
    tab.pivot(leave, enter);
  }
  return SolveStatus::IterationLimit;
}

}  // namespace

ReferenceSolution solve_reference(const LinearProblem& problem) {
  problem.validate();
  ReferenceSolution out;
  const Standard s = to_standard(problem);

  // Build the phase-1 tableau: one artificial per row, basis = artificials.
  Tableau tab;
  const int n_art = s.m;
  tab.n_total = s.n + n_art;
  tab.t.assign(s.m, std::vector<double>(tab.n_total + 1, 0.0));
  tab.basis.resize(s.m);
  for (int r = 0; r < s.m; ++r) {
    for (int j = 0; j < s.n; ++j) tab.t[r][j] = s.a[r][j];
    tab.t[r][s.n + r] = 1.0;
    tab.t[r][tab.n_total] = s.b[r];
    tab.basis[r] = s.n + r;
  }
  // Phase-1 reduced costs: minimize the artificial sum, so d_j = -sum_i a_ij
  // for structural columns, 0 for artificials (already basic).
  tab.d.assign(tab.n_total, 0.0);
  double b_scale = 1.0;
  tab.obj = 0;
  for (int r = 0; r < s.m; ++r) {
    for (int j = 0; j < s.n; ++j) tab.d[j] -= tab.t[r][j];
    tab.obj += tab.t[r][tab.n_total];
    b_scale = std::max(b_scale, std::abs(s.b[r]));
  }

  SolveStatus st = run_phase(tab, s.n);  // artificials may never re-enter
  if (st == SolveStatus::IterationLimit) {
    out.status = st;
    return out;
  }
  if (tab.obj > num::kOptTol * b_scale) {
    out.status = SolveStatus::Infeasible;
    return out;
  }

  // Drive leftover (zero-valued) artificials out of the basis; a row where
  // no structural pivot exists is redundant and is dropped.
  for (int r = static_cast<int>(tab.t.size()) - 1; r >= 0; --r) {
    if (tab.basis[r] < s.n) continue;
    int enter = -1;
    for (int j = 0; j < s.n; ++j) {
      if (std::abs(tab.t[r][j]) > kPivTol) {
        enter = j;
        break;
      }
    }
    if (enter >= 0) {
      tab.pivot(r, enter);
    } else {
      tab.t.erase(tab.t.begin() + r);
      tab.basis.erase(tab.basis.begin() + r);
    }
  }

  // Phase-2 reduced costs from scratch: d_j = c_j - c_B^T (B^{-1} A)_j.
  tab.d.assign(tab.n_total, 0.0);
  for (int j = 0; j < s.n; ++j) tab.d[j] = s.c[j];
  tab.obj = 0;
  for (std::size_t r = 0; r < tab.t.size(); ++r) {
    const double cb = tab.basis[r] < s.n ? s.c[tab.basis[r]] : 0.0;
    if (cb == 0) continue;
    for (int j = 0; j < s.n; ++j) tab.d[j] -= cb * tab.t[r][j];
    tab.obj += cb * tab.t[r][tab.n_total];
  }
  st = run_phase(tab, s.n);
  if (st != SolveStatus::Optimal) {
    out.status = st;
    return out;
  }

  // Recover the original columns.
  std::vector<double> sval(s.n, 0.0);
  for (std::size_t r = 0; r < tab.t.size(); ++r) {
    if (tab.basis[r] < s.n) sval[tab.basis[r]] = tab.t[r][tab.n_total];
  }
  out.x.assign(problem.num_variables(), 0.0);
  for (int j = 0; j < problem.num_variables(); ++j) {
    const auto& bm = s.map[j];
    double v = bm.shift;
    if (bm.pos >= 0) v += bm.dir * sval[bm.pos];
    if (bm.neg >= 0) v -= sval[bm.neg];
    out.x[j] = v;
  }
  out.objective = problem.objective_value(out.x);
  out.status = SolveStatus::Optimal;
  return out;
}

std::vector<std::string> check_certificates(const LinearProblem& problem,
                                            const LpSolution& sol) {
  std::vector<std::string> bad;
  auto fail = [&bad](const std::string& msg) { bad.push_back(msg); };
  if (sol.status != SolveStatus::Optimal) {
    fail("certificate check requires an Optimal solution");
    return bad;
  }
  if (static_cast<int>(sol.x.size()) != problem.num_variables() ||
      static_cast<int>(sol.duals.size()) != problem.num_rows()) {
    fail("primal/dual vector size mismatch");
    return bad;
  }
  // Checking tolerance: one order looser than the certified quantity so the
  // check flags logic bugs, not honest round-off.
  const double tol = 10 * num::kOptTol;

  if (!problem.is_feasible(sol.x, num::kOptTol)) {
    fail("primal solution violates a row or bound");
  }

  // Work in minimization form.
  const double sign = problem.sense() == Sense::Minimize ? 1.0 : -1.0;
  std::vector<double> y(problem.num_rows());
  for (int r = 0; r < problem.num_rows(); ++r) y[r] = sign * sol.duals[r];

  std::vector<double> d(problem.num_variables());
  for (int j = 0; j < problem.num_variables(); ++j) {
    d[j] = sign * problem.objective_coef(j);
  }
  double y_scale = 1.0;
  for (int r = 0; r < problem.num_rows(); ++r) {
    y_scale = std::max(y_scale, std::abs(y[r]));
    for (const RowEntry& e : problem.row(r).entries) {
      d[e.col] -= y[r] * e.coef;
    }
  }

  // Row dual signs + complementary slackness.
  for (int r = 0; r < problem.num_rows(); ++r) {
    const Row& row = problem.row(r);
    const double activity = problem.row_activity(r, sol.x);
    const double slack = row.rhs - activity;
    const double slack_tol = tol * num::rel_scale(row.rhs);
    std::ostringstream os;
    switch (row.type) {
      case RowType::LessEqual:
        if (y[r] > tol * y_scale) {
          os << "row " << r << " (<=): dual " << y[r] << " must be <= 0";
          fail(os.str());
        } else if (slack > slack_tol && std::abs(y[r]) > tol * y_scale) {
          os << "row " << r << ": slack " << slack << " with nonzero dual "
             << y[r];
          fail(os.str());
        }
        break;
      case RowType::GreaterEqual:
        if (y[r] < -tol * y_scale) {
          os << "row " << r << " (>=): dual " << y[r] << " must be >= 0";
          fail(os.str());
        } else if (slack < -slack_tol && std::abs(y[r]) > tol * y_scale) {
          os << "row " << r << ": surplus " << -slack << " with nonzero dual "
             << y[r];
          fail(os.str());
        }
        break;
      case RowType::Equal:
        break;  // free dual
    }
  }

  // Reduced-cost signs by variable position, and the dual objective's bound
  // contributions along the way.
  double d_scale = 1.0;
  for (double v : d) d_scale = std::max(d_scale, std::abs(v));
  double dual_obj = 0;
  for (int r = 0; r < problem.num_rows(); ++r) {
    dual_obj += y[r] * problem.row(r).rhs;
  }
  for (int j = 0; j < problem.num_variables(); ++j) {
    const double lb = problem.lower_bound(j);
    const double ub = problem.upper_bound(j);
    const double xj = sol.x[j];
    const double btol = tol * num::rel_scale(std::max(std::abs(lb),
                                                      std::abs(ub)));
    const bool at_lower = std::isfinite(lb) && xj <= lb + btol;
    const bool at_upper = std::isfinite(ub) && xj >= ub - btol;
    std::ostringstream os;
    if (!(at_lower && at_upper)) {  // fixed columns admit any reduced cost
      if (at_lower && d[j] < -tol * d_scale) {
        os << "col " << j << " at lower bound with reduced cost " << d[j];
        fail(os.str());
      } else if (at_upper && !at_lower && d[j] > tol * d_scale) {
        os << "col " << j << " at upper bound with reduced cost " << d[j];
        fail(os.str());
      } else if (!at_lower && !at_upper && std::abs(d[j]) > tol * d_scale) {
        os << "col " << j << " interior with reduced cost " << d[j];
        fail(os.str());
      }
    }
    // Bound contribution: positive reduced costs lean on the lower bound,
    // negative on the upper.  A significant reduced cost on a missing bound
    // cannot happen at a true optimum.
    if (d[j] > tol * d_scale) {
      if (!std::isfinite(lb)) {
        os << "col " << j << ": positive reduced cost with no lower bound";
        fail(os.str());
      } else {
        dual_obj += d[j] * lb;
      }
    } else if (d[j] < -tol * d_scale) {
      if (!std::isfinite(ub)) {
        os << "col " << j << ": negative reduced cost with no upper bound";
        fail(os.str());
      } else {
        dual_obj += d[j] * ub;
      }
    }
  }

  // Strong duality in minimization form.
  const double primal = sign * sol.objective;
  if (std::abs(primal - dual_obj) > tol * num::rel_scale(primal)) {
    std::ostringstream os;
    os << "strong duality gap: primal " << primal << " vs dual " << dual_obj;
    fail(os.str());
  }
  return bad;
}

namespace {

/// A tiny synthetic SPM instance: E edges, T slots, K requests, each with a
/// couple of candidate "paths" (random edge subsets) and an active window.
struct MiniSpm {
  int num_edges = 0;
  int num_slots = 0;
  struct Request {
    double value = 0;
    double rate = 0;
    int t0 = 0, t1 = 0;
    std::vector<std::vector<int>> paths;  // edge lists
  };
  std::vector<Request> requests;
  std::vector<double> cap;  // per-edge capacity
  std::vector<double> price;
};

MiniSpm make_mini(std::mt19937_64& rng, bool tie_heavy, double scale) {
  std::uniform_int_distribution<int> edges_d(2, 5), slots_d(2, 4),
      reqs_d(3, 8), paths_d(1, 3);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  MiniSpm spm;
  spm.num_edges = edges_d(rng);
  spm.num_slots = slots_d(rng);
  const int K = reqs_d(rng);
  for (int e = 0; e < spm.num_edges; ++e) {
    spm.cap.push_back(tie_heavy ? 2.0 * scale
                                : (1.0 + 3.0 * unit(rng)) * scale);
    spm.price.push_back(tie_heavy ? 1.0 : 0.5 + unit(rng));
  }
  for (int i = 0; i < K; ++i) {
    MiniSpm::Request r;
    r.value = (tie_heavy ? 1.0 : 0.5 + unit(rng)) * scale;
    r.rate = (tie_heavy ? 1.0 : 0.2 + unit(rng)) * scale;
    r.t0 = std::uniform_int_distribution<int>(0, spm.num_slots - 1)(rng);
    r.t1 = std::uniform_int_distribution<int>(r.t0, spm.num_slots - 1)(rng);
    const int P = paths_d(rng);
    for (int jp = 0; jp < P; ++jp) {
      std::vector<int> path;
      for (int e = 0; e < spm.num_edges; ++e) {
        if (unit(rng) < 0.45) path.push_back(e);
      }
      if (path.empty()) {
        path.push_back(
            std::uniform_int_distribution<int>(0, spm.num_edges - 1)(rng));
      }
      r.paths.push_back(std::move(path));
    }
    spm.requests.push_back(std::move(r));
  }
  return spm;
}

/// BL-SPM shape: maximize accepted value under fixed per-edge capacities.
///   max sum_i v_i sum_j x_ij
///   s.t. sum_j x_ij <= 1 per request; per (e,t): sum loads <= cap_e;
///        x_ij in [0, 1].
LinearProblem build_bl(const MiniSpm& spm) {
  LinearProblem p(Sense::Maximize);
  std::vector<std::vector<int>> var(spm.requests.size());
  for (std::size_t i = 0; i < spm.requests.size(); ++i) {
    for (std::size_t j = 0; j < spm.requests[i].paths.size(); ++j) {
      var[i].push_back(p.add_variable(0.0, 1.0, spm.requests[i].value));
    }
  }
  for (std::size_t i = 0; i < spm.requests.size(); ++i) {
    std::vector<RowEntry> row;
    for (int v : var[i]) row.push_back({v, 1.0});
    p.add_row(RowType::LessEqual, 1.0, std::move(row));
  }
  for (int e = 0; e < spm.num_edges; ++e) {
    for (int t = 0; t < spm.num_slots; ++t) {
      std::vector<RowEntry> row;
      for (std::size_t i = 0; i < spm.requests.size(); ++i) {
        const auto& r = spm.requests[i];
        if (t < r.t0 || t > r.t1) continue;
        for (std::size_t j = 0; j < r.paths.size(); ++j) {
          if (std::count(r.paths[j].begin(), r.paths[j].end(), e)) {
            row.push_back({var[i][j], r.rate});
          }
        }
      }
      if (!row.empty()) {
        p.add_row(RowType::LessEqual, spm.cap[e], std::move(row));
      }
    }
  }
  return p;
}

/// RL-SPM shape: all requests must be fully routed; minimize purchase cost.
///   min sum_e u_e c_e
///   s.t. sum_j x_ij = 1 per request; per (e,t): load - c_e <= 0;
///        x_ij in [0,1], c_e in [0, cap_e].
LinearProblem build_rl(const MiniSpm& spm, bool zero_some_caps,
                       std::mt19937_64& rng) {
  LinearProblem p(Sense::Minimize);
  std::vector<std::vector<int>> var(spm.requests.size());
  for (std::size_t i = 0; i < spm.requests.size(); ++i) {
    for (std::size_t j = 0; j < spm.requests[i].paths.size(); ++j) {
      var[i].push_back(p.add_variable(0.0, 1.0, 0.0));
    }
  }
  std::vector<int> cvar(spm.num_edges);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int e = 0; e < spm.num_edges; ++e) {
    const bool faulted = zero_some_caps && unit(rng) < 0.3;
    // A faulted edge models a post-fault topology: the purchase column is
    // pinned to zero, so any route over it must be priced out by phase 1.
    cvar[e] = p.add_variable(0.0, faulted ? 0.0 : spm.cap[e], spm.price[e]);
  }
  for (std::size_t i = 0; i < spm.requests.size(); ++i) {
    std::vector<RowEntry> row;
    for (int v : var[i]) row.push_back({v, 1.0});
    p.add_row(RowType::Equal, 1.0, std::move(row));
  }
  for (int e = 0; e < spm.num_edges; ++e) {
    for (int t = 0; t < spm.num_slots; ++t) {
      std::vector<RowEntry> row;
      for (std::size_t i = 0; i < spm.requests.size(); ++i) {
        const auto& r = spm.requests[i];
        if (t < r.t0 || t > r.t1) continue;
        for (std::size_t j = 0; j < r.paths.size(); ++j) {
          if (std::count(r.paths[j].begin(), r.paths[j].end(), e)) {
            row.push_back({var[i][j], r.rate});
          }
        }
      }
      if (!row.empty()) {
        row.push_back({cvar[e], -1.0});
        p.add_row(RowType::LessEqual, 0.0, std::move(row));
      }
    }
  }
  return p;
}

}  // namespace

FuzzCase make_fuzz_case(unsigned long long seed) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  const int cls = static_cast<int>(seed % 6);
  FuzzCase out{LinearProblem(), ""};
  std::ostringstream label;
  switch (cls) {
    case 0: {  // benign BL shape
      out.problem = build_bl(make_mini(rng, false, 1.0));
      label << "bl";
      break;
    }
    case 1: {  // benign RL shape (equality rows + linked purchase columns)
      MiniSpm spm = make_mini(rng, false, 1.0);
      out.problem = build_rl(spm, false, rng);
      label << "rl";
      break;
    }
    case 2: {  // degenerate: identical values/rates/caps -> massive ties
      out.problem = build_bl(make_mini(rng, true, 1.0));
      label << "degenerate-ties";
      break;
    }
    case 3: {  // near-singular: duplicate a row with a vanishing perturbation
      out.problem = build_bl(make_mini(rng, false, 1.0));
      if (out.problem.num_rows() > 0) {
        std::uniform_int_distribution<int> pick(0, out.problem.num_rows() - 1);
        const Row src = out.problem.row(pick(rng));
        std::vector<RowEntry> entries = src.entries;
        if (!entries.empty()) {
          entries.front().coef *= 1.0 + num::kSingularTol;
        }
        out.problem.add_row(src.type, src.rhs, std::move(entries));
      }
      label << "near-singular";
      break;
    }
    case 4: {  // fault-mutated RL: some purchase columns pinned to zero
      MiniSpm spm = make_mini(rng, false, 1.0);
      out.problem = build_rl(spm, true, rng);
      label << "fault-mutated";
      break;
    }
    default: {  // badly scaled: unit-sized rates against million-sized bids
      out.problem = build_bl(make_mini(rng, false, 1000.0));
      label << "large-scale";
      break;
    }
  }
  label << " seed=" << seed;
  out.label = label.str();
  return out;
}

}  // namespace metis::lp::reference
