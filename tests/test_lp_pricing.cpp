// Pricing-layer suite for the sparse simplex (labels: lp, numeric).
//
// Devex partial pricing must be a pure work optimization: for every
// generator class of the fuzz corpus it has to reach an optimum of the same
// value as the Dantzig full scan (the *vertex* may legitimately differ —
// these LPs have alternate optima), the rotating candidate window must not
// be able to hide an attractive column (the scan falls through to a full
// ring pass, so optimality certification is exactly the Dantzig one), and
// the weight-reset-on-refactorization invariant must not change the
// optimum.  The deterministic contract — identical repeat solves — is
// pinned bitwise.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lp_builder.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp_reference.h"
#include "sim/scenario.h"
#include "util/numeric.h"

namespace metis::lp {
namespace {

LpSolution solve_with(const LinearProblem& p, PricingRule rule,
                      int window = 0) {
  SimplexOptions o;
  o.pricing = rule;
  o.pricing_window = window;
  return SimplexSolver(o).solve(p);
}

// ---------------------------------------------------------------------------
// Decision equivalence over the fuzz generator classes.

TEST(Pricing, DevexMatchesDantzigOptimaOverFuzzClasses) {
  int optimal = 0;
  for (unsigned long long seed = 1; seed <= 150; ++seed) {
    const reference::FuzzCase fc = reference::make_fuzz_case(seed);
    const LpSolution dantzig = solve_with(fc.problem, PricingRule::Dantzig);
    const LpSolution devex = solve_with(fc.problem, PricingRule::Devex);
    ASSERT_EQ(devex.status, dantzig.status) << fc.label;
    if (dantzig.status != SolveStatus::Optimal) continue;
    ++optimal;
    EXPECT_NEAR(devex.objective, dantzig.objective,
                num::kOptTol * num::rel_scale(dantzig.objective))
        << fc.label;
    EXPECT_TRUE(fc.problem.is_feasible(devex.x, num::kOptTol)) << fc.label;
  }
  EXPECT_GE(optimal, 75) << "fuzz generator stopped producing solvable cases";
}

// Tiny windows force many ring rotations and frequent full passes; the
// optimum must not depend on the window size.
TEST(Pricing, WindowSizeNeverChangesTheOptimum) {
  for (unsigned long long seed = 1; seed <= 40; ++seed) {
    const reference::FuzzCase fc = reference::make_fuzz_case(seed);
    const LpSolution wide = solve_with(fc.problem, PricingRule::Devex);
    for (int window : {1, 3, 8}) {
      const LpSolution narrow =
          solve_with(fc.problem, PricingRule::Devex, window);
      ASSERT_EQ(narrow.status, wide.status)
          << fc.label << " window=" << window;
      if (wide.status != SolveStatus::Optimal) continue;
      EXPECT_NEAR(narrow.objective, wide.objective,
                  num::kOptTol * num::rel_scale(wide.objective))
          << fc.label << " window=" << window;
    }
  }
}

// ---------------------------------------------------------------------------
// Weight lifecycle.

TEST(Pricing, WeightResetOnRefactorizationKeepsTheOptimum) {
  // refactor_interval = 1 resets the devex reference framework on every
  // pivot (the weights never leave their initial value); the path through
  // the polytope changes but the optimum must not.
  for (unsigned long long seed = 1; seed <= 40; ++seed) {
    const reference::FuzzCase fc = reference::make_fuzz_case(seed);
    SimplexOptions fresh;
    fresh.pricing = PricingRule::Devex;
    fresh.refactor_interval = 1;
    const LpSolution reset_every_pivot = SimplexSolver(fresh).solve(fc.problem);
    const LpSolution normal = solve_with(fc.problem, PricingRule::Devex);
    ASSERT_EQ(reset_every_pivot.status, normal.status) << fc.label;
    if (normal.status != SolveStatus::Optimal) continue;
    EXPECT_NEAR(reset_every_pivot.objective, normal.objective,
                num::kOptTol * num::rel_scale(normal.objective))
        << fc.label;
  }
}

// ---------------------------------------------------------------------------
// Window fallback: a candidate window must not be able to hide the only
// attractive column.

TEST(Pricing, FallbackFindsAttractiveColumnOutsideEveryWindow) {
  // Twelve structurals; only the LAST one improves the objective, so with
  // pricing_window = 4 the first windows find nothing and the scan must
  // walk the whole ring (a full fallback) to reach it.  Presolve is off so
  // the zero-objective columns actually reach the simplex.
  LinearProblem p(Sense::Maximize);
  std::vector<int> cols;
  for (int j = 0; j < 11; ++j) {
    cols.push_back(p.add_variable(0.0, 1.0, 0.0));
  }
  const int star = p.add_variable(0.0, 5.0, 1.0);
  std::vector<RowEntry> entries;
  for (int j : cols) entries.push_back({j, 1.0});
  entries.push_back({star, 1.0});
  p.add_row(RowType::LessEqual, 3.0, entries);

  SimplexOptions o;
  o.pricing = PricingRule::Devex;
  o.pricing_window = 4;
  o.presolve = false;
  const LpSolution sol = SimplexSolver(o).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 3.0, num::kOptTol);
  EXPECT_NEAR(sol.x[star], 3.0, num::kOptTol);
  // At least the final certification pass (no attractive column anywhere)
  // walks the full ring.
  EXPECT_GE(sol.stats.full_fallbacks, 1);
  EXPECT_EQ(sol.stats.pricing_passes,
            sol.stats.partial_hits + sol.stats.full_fallbacks);
}

TEST(Pricing, PartialWindowSatisfiesPassesOnSpmRelaxation) {
  // On a real RL-SPM relaxation the rotating window should answer most
  // pricing passes without walking the full nonbasic ring — that is the
  // entire point of partial pricing.
  sim::Scenario sc;
  sc.network = sim::Network::B4;
  sc.num_requests = 60;
  sc.seed = 1;
  const auto instance = sim::make_instance(sc);
  const auto model = core::build_rl_spm(instance);
  const LpSolution sol = solve_with(model.problem, PricingRule::Devex);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_GT(sol.stats.partial_hits, 0);
  EXPECT_GE(sol.stats.full_fallbacks, 1);
  EXPECT_GT(sol.stats.partial_hits, sol.stats.full_fallbacks);
}

// ---------------------------------------------------------------------------
// Determinism: repeat solves are bit-identical.

TEST(Pricing, RepeatDevexSolvesAreBitIdentical) {
  sim::Scenario sc;
  sc.network = sim::Network::B4;
  sc.num_requests = 50;
  sc.seed = 3;
  const auto instance = sim::make_instance(sc);
  const auto model = core::build_rl_spm(instance);
  const LpSolution a = solve_with(model.problem, PricingRule::Devex);
  const LpSolution b = solve_with(model.problem, PricingRule::Devex);
  ASSERT_EQ(a.status, SolveStatus::Optimal);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.objective, b.objective);  // bitwise, not within tolerance
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t j = 0; j < a.x.size(); ++j) EXPECT_EQ(a.x[j], b.x[j]);
  EXPECT_EQ(a.stats.pricing_passes, b.stats.pricing_passes);
  EXPECT_EQ(a.stats.partial_hits, b.stats.partial_hits);
  EXPECT_EQ(a.stats.full_fallbacks, b.stats.full_fallbacks);
}

// ---------------------------------------------------------------------------
// Singular-basis repair: the configuration that used to throw.

TEST(Pricing, BasisRepairRecoversHistoricallySingularRun) {
  // Devex with an explicit 48-column window on the K=100 B4 relaxation
  // drives the basis numerically singular mid-run (tiny normalized pivots
  // accumulate); refactorize() used to throw "singular basis during
  // refactorize" here.  The deterministic slack swap-in repair must finish
  // the solve at the same optimum the Dantzig scan proves.  (This is the
  // long test of the suite — the degenerate struggle runs tens of
  // thousands of Bland-guarded pivots — but it is the only known
  // in-distribution reproducer of the repair path.)
  sim::Scenario sc;
  sc.network = sim::Network::B4;
  sc.num_requests = 100;
  sc.seed = 1;
  const auto instance = sim::make_instance(sc);
  const auto model = core::build_rl_spm(instance);
  const LpSolution dantzig = solve_with(model.problem, PricingRule::Dantzig);
  ASSERT_EQ(dantzig.status, SolveStatus::Optimal);
  const LpSolution repaired =
      solve_with(model.problem, PricingRule::Devex, /*window=*/48);
  ASSERT_EQ(repaired.status, SolveStatus::Optimal);
  EXPECT_NEAR(repaired.objective, dantzig.objective,
              num::kOptTol * num::rel_scale(dantzig.objective));
  EXPECT_TRUE(model.problem.is_feasible(repaired.x, num::kOptTol));
}

}  // namespace
}  // namespace metis::lp
