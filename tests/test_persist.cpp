// The persistence subsystem (src/persist/): serialization primitives, the
// sectioned container format, checkpoint codecs, and the kill/restore
// contract — interrupt a replay at any slot boundary, restore from the
// snapshot, and the finished run must equal the uninterrupted one byte for
// byte (profit, schedule, LP iteration counts, telemetry decision
// counters), with and without fault injection, for any thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/paths.h"
#include "net/topologies.h"
#include "persist/checkpoint.h"
#include "persist/snapshot.h"
#include "sim/online.h"
#include "sim/simulator.h"
#include "util/serialize.h"
#include "util/telemetry.h"

namespace metis {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- serialization primitives --------------------------------------------

TEST(Serialize, PrimitiveRoundTrip) {
  serialize::ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(-0.1);
  w.boolean(true);
  w.boolean(false);
  w.str("hello\0world");  // string_view stops at the NUL here, and that's fine
  w.str("");

  serialize::ByteReader r(w.bytes(), "test");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serialize, DoubleBitExactness) {
  // The byte-identity contract rests on doubles round-tripping through
  // their bit pattern: denormals, infinities and NaN payloads included.
  const double values[] = {0.0, -0.0, 1e-308, 1e308, 0.1,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (double v : values) {
    serialize::ByteWriter w;
    w.f64(v);
    serialize::ByteReader r(w.bytes(), "test");
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Serialize, TruncationThrows) {
  serialize::ByteWriter w;
  w.u64(7);
  const std::vector<std::uint8_t>& full = w.bytes();
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    std::vector<std::uint8_t> cut(full.begin(), full.begin() + keep);
    serialize::ByteReader r(cut, "test");
    EXPECT_THROW(r.u64(), serialize::SerializeError) << "kept " << keep;
  }
}

TEST(Serialize, BadBooleanThrows) {
  const std::vector<std::uint8_t> bytes = {2};
  serialize::ByteReader r(bytes, "test");
  EXPECT_THROW(r.boolean(), serialize::SerializeError);
}

TEST(Serialize, OversizedLengthPrefixThrows) {
  // A corrupted length prefix must be caught before any allocation.
  serialize::ByteWriter w;
  w.u64(~0ULL);
  serialize::ByteReader r(w.bytes(), "test");
  EXPECT_THROW(r.str(), serialize::SerializeError);
}

TEST(Serialize, TrailingBytesThrow) {
  serialize::ByteWriter w;
  w.u32(1);
  w.u8(0);
  serialize::ByteReader r(w.bytes(), "test");
  r.u32();
  EXPECT_THROW(r.expect_done(), serialize::SerializeError);
}

TEST(Serialize, Crc32CheckVector) {
  const std::string check = "123456789";
  EXPECT_EQ(serialize::crc32(
                reinterpret_cast<const std::uint8_t*>(check.data()),
                check.size()),
            0xCBF43926u);
}

TEST(Serialize, FingerprintIsOrderSensitive) {
  serialize::Fingerprint a;
  a.mix(1).mix(2);
  serialize::Fingerprint b;
  b.mix(2).mix(1);
  EXPECT_NE(a.value(), b.value());
}

// --- the sectioned container ---------------------------------------------

std::vector<std::uint8_t> sample_container() {
  persist::SnapshotWriter w;
  w.section(1, {1, 2, 3});
  w.section(5, {});
  w.section(9, {42});
  return w.to_bytes();
}

TEST(Snapshot, RoundTrip) {
  const persist::SnapshotReader r(sample_container(), "test");
  EXPECT_EQ(r.section_ids(), (std::vector<std::uint32_t>{1, 5, 9}));
  EXPECT_EQ(r.section(1), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.section(5).empty());
  EXPECT_EQ(r.section(9), (std::vector<std::uint8_t>{42}));
  EXPECT_TRUE(r.has_section(5));
  EXPECT_FALSE(r.has_section(2));
  EXPECT_THROW(r.section(2), persist::SnapshotError);
}

TEST(Snapshot, WriterRejectsOutOfOrderSections) {
  persist::SnapshotWriter w;
  w.section(5, {});
  EXPECT_THROW(w.section(3, {}), persist::SnapshotError);
  EXPECT_THROW(w.section(5, {}), persist::SnapshotError);  // duplicates too
}

TEST(Snapshot, TruncationAtEveryLengthThrows) {
  const std::vector<std::uint8_t> full = sample_container();
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    std::vector<std::uint8_t> cut(full.begin(), full.begin() + keep);
    EXPECT_THROW(persist::SnapshotReader(std::move(cut), "test"),
                 persist::SnapshotError)
        << "kept " << keep;
  }
}

TEST(Snapshot, EveryFlippedByteIsDetected) {
  // Every byte of the container is covered by a checksum or a structural
  // invariant: flipping any single byte must fail validation.  (A flip in
  // a section id that keeps the ordering valid is caught by its absence
  // from the expected id set — here ids are part of the CRC'd framing
  // check below, so we just require *parse-or-differ*.)
  const std::vector<std::uint8_t> full = sample_container();
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    std::vector<std::uint8_t> bad = full;
    bad[pos] ^= 0x01;
    bool failed = false;
    try {
      const persist::SnapshotReader r(std::move(bad), "test");
      // Parsed despite the flip: the mutated byte must be a section id that
      // still satisfies the ordering invariant; the payload set then
      // differs from the original (the flip cannot be silent).
      failed = r.section_ids() != (std::vector<std::uint32_t>{1, 5, 9});
    } catch (const persist::SnapshotError&) {
      failed = true;
    }
    EXPECT_TRUE(failed) << "silent corruption at byte " << pos;
  }
}

TEST(Snapshot, WrongVersionRejected) {
  std::vector<std::uint8_t> bytes = sample_container();
  // Bump the version field (offset 8) and fix the header CRC up so only
  // the version check can reject it.
  bytes[8] = static_cast<std::uint8_t>(persist::kSnapshotVersion + 1);
  const std::uint32_t crc = serialize::crc32(bytes.data(), 16);
  for (int i = 0; i < 4; ++i) {
    bytes[16 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  try {
    const persist::SnapshotReader r(std::move(bytes), "test");
    FAIL() << "unsupported version parsed";
  } catch (const persist::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Snapshot, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = sample_container();
  bytes[0] = 'X';
  EXPECT_THROW(persist::SnapshotReader(std::move(bytes), "test"),
               persist::SnapshotError);
}

TEST(Snapshot, TrailingBytesRejected) {
  std::vector<std::uint8_t> bytes = sample_container();
  bytes.push_back(0);
  EXPECT_THROW(persist::SnapshotReader(std::move(bytes), "test"),
               persist::SnapshotError);
}

TEST(Snapshot, DiagnosticNamesTheSource) {
  std::vector<std::uint8_t> bytes = sample_container();
  bytes[0] = 'X';
  try {
    const persist::SnapshotReader r(std::move(bytes), "ckpt.bin");
    FAIL() << "bad magic parsed";
  } catch (const persist::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("ckpt.bin"), std::string::npos);
  }
}

TEST(Snapshot, MissingFileThrows) {
  EXPECT_THROW(persist::SnapshotReader::from_file(tmp_path("no_such.ckpt")),
               persist::SnapshotError);
}

TEST(Snapshot, AtomicFileRoundTrip) {
  const std::string path = tmp_path("snapshot_roundtrip.ckpt");
  persist::SnapshotWriter w;
  w.section(3, {9, 8, 7});
  w.write_file(path);
  const persist::SnapshotReader r = persist::SnapshotReader::from_file(path);
  EXPECT_EQ(r.section(3), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(r.source(), path);
}

// --- subsystem restore units ---------------------------------------------

TEST(TopologyRestore, SettersPreserveEpoch) {
  net::Topology topo = net::make_b4();
  const std::uint64_t before = topo.epoch();
  topo.restore_edge_state(0, 3.5, 7, false);
  topo.restore_node_state(0, false);
  EXPECT_EQ(topo.epoch(), before);
  EXPECT_EQ(topo.edge(0).price, 3.5);
  EXPECT_EQ(topo.edge(0).capacity_units, 7);
  EXPECT_FALSE(topo.edge_enabled(0));
  EXPECT_FALSE(topo.node_enabled(0));
  topo.restore_epoch(before + 100);
  EXPECT_EQ(topo.epoch(), before + 100);
}

TEST(PathCacheRestore, RoundTripPreservesCountersAndEntries) {
  net::Topology topo = net::make_b4();
  net::PathCache cache(topo);
  (void)cache.paths(0, 5, 3);
  (void)cache.paths(0, 5, 3);  // hit
  (void)cache.paths(2, 7, 3);
  const net::PathCache::Dump dump = cache.dump();

  net::PathCache fresh(topo);
  fresh.restore(dump);
  EXPECT_EQ(fresh.hits(), cache.hits());
  EXPECT_EQ(fresh.misses(), cache.misses());
  // Restored entries serve lookups without new misses.
  const std::size_t misses_before = fresh.misses();
  EXPECT_EQ(fresh.paths(0, 5, 3), cache.paths(0, 5, 3));
  EXPECT_EQ(fresh.misses(), misses_before);
}

TEST(PathCacheRestore, FutureEpochRejected) {
  net::Topology topo = net::make_b4();
  net::PathCache cache(topo);
  (void)cache.paths(0, 5, 3);
  net::PathCache::Dump dump = cache.dump();
  dump.epoch += 1;  // an image "from the future" cannot be a snapshot of topo
  net::PathCache fresh(topo);
  EXPECT_THROW(fresh.restore(dump), std::invalid_argument);
}

TEST(PathCacheRestore, LaggingEpochFlushesOnFirstLookup) {
  // A snapshot taken between a topology mutation and the next lookup holds
  // the pre-mutation epoch; restoring it must reproduce the live cache's
  // lazy flush (stale counter included), not fail.
  net::Topology topo = net::make_b4();
  net::PathCache cache(topo);
  (void)cache.paths(0, 5, 3);
  const net::PathCache::Dump dump = cache.dump();
  topo.disable_edge(0);  // bumps the epoch past the image's

  net::PathCache restored(topo);
  restored.restore(dump);
  (void)restored.paths(0, 5, 3);
  (void)cache.paths(0, 5, 3);
  EXPECT_EQ(restored.stale(), cache.stale());
  EXPECT_EQ(restored.misses(), cache.misses());
}

TEST(MetricsRestore, SnapshotRestoreRoundTrip) {
  telemetry::Registry& reg = telemetry::Registry::global();
  reg.restore(telemetry::MetricsSnapshot{});
  telemetry::count("persist_test.counter", 3);
  telemetry::gauge_set("persist_test.gauge", 2.5);
  telemetry::observe("persist_test.histogram", 1.25);
  const telemetry::MetricsSnapshot snap = reg.snapshot();

  telemetry::count("persist_test.counter", 10);  // diverge
  reg.restore(snap);
  const telemetry::MetricsSnapshot again = reg.snapshot();
  EXPECT_EQ(again.counters, snap.counters);
  EXPECT_EQ(again.gauges, snap.gauges);
  ASSERT_EQ(again.histograms.size(), snap.histograms.size());
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    EXPECT_EQ(again.histograms[i].name, snap.histograms[i].name);
    EXPECT_EQ(again.histograms[i].samples, snap.histograms[i].samples);
  }
  reg.restore(telemetry::MetricsSnapshot{});
}

// --- checkpoint codecs ----------------------------------------------------

persist::OnlineCheckpoint sample_online_checkpoint() {
  persist::OnlineCheckpoint ckpt;
  ckpt.config_fingerprint = 0x1122334455667788ULL;
  ckpt.fault_mode = true;
  ckpt.boundary_time = 4;
  ckpt.next_arrival = 17;
  ckpt.next_fault_event = 3;
  ckpt.repair_index = 2;
  ckpt.surge_index = 1;
  ckpt.oldest_queued = 3.75;
  ckpt.total_arrivals = 21;
  ckpt.total_accepted = 9;
  persist::BatchState batch;
  batch.batch = 0;
  batch.arrivals = 4;
  batch.flush_time = 1.5;
  batch.accepted = 3;
  batch.profit = 123.5;
  batch.lp_stats.iterations = 77;
  batch.lp_stats.warm_starts = 2;
  ckpt.batches.push_back(batch);
  workload::Request req;
  req.src = 1;
  req.dst = 5;
  req.start_slot = 0;
  req.end_slot = 3;
  req.rate = 2.5;
  req.value = 40;
  ckpt.book.push_back(req);
  ckpt.inc.committed = {0, core::kDeclined};
  ckpt.schedule.path_choice = {0, core::kDeclined};
  ckpt.plan.units = {1, 0, 2};
  ckpt.profit.revenue = 40;
  ckpt.profit.cost = 10;
  ckpt.profit.profit = 30;
  ckpt.profit.accepted = 1;
  persist::BookEntryState entry;
  entry.request = req;
  entry.status = 1;
  entry.path = net::Path{{0, 2, 5}};
  entry.was_committed = true;
  ckpt.entries.push_back(entry);
  ckpt.topology.price = {1.0, 2.0};
  ckpt.topology.capacity_units = {0, 3};
  ckpt.topology.edge_enabled = {1, 0};
  ckpt.topology.node_enabled = {1, 1, 0};
  ckpt.topology.epoch = 12;
  ckpt.refunds.refunded = 5.5;
  ckpt.fault_stats.injected = 4;
  ckpt.fault_stats.dropped = 1;
  ckpt.book_lp_stats.iterations = 200;
  return ckpt;
}

TEST(CheckpointCodec, OnlineRoundTrip) {
  const persist::OnlineCheckpoint ckpt = sample_online_checkpoint();
  const std::vector<std::uint8_t> bytes = persist::encode(ckpt);
  const persist::SnapshotReader reader(bytes, "test");
  EXPECT_EQ(persist::kind_of(reader), persist::CheckpointKind::Online);
  const persist::OnlineCheckpoint back = persist::decode_online(reader);

  EXPECT_EQ(back.config_fingerprint, ckpt.config_fingerprint);
  EXPECT_EQ(back.fault_mode, ckpt.fault_mode);
  EXPECT_EQ(back.boundary_time, ckpt.boundary_time);
  EXPECT_EQ(back.next_arrival, ckpt.next_arrival);
  EXPECT_EQ(back.next_fault_event, ckpt.next_fault_event);
  EXPECT_EQ(back.repair_index, ckpt.repair_index);
  EXPECT_EQ(back.surge_index, ckpt.surge_index);
  EXPECT_EQ(back.oldest_queued, ckpt.oldest_queued);
  ASSERT_EQ(back.batches.size(), 1u);
  EXPECT_EQ(back.batches[0].profit, 123.5);
  EXPECT_EQ(back.batches[0].lp_stats.iterations, 77);
  ASSERT_EQ(back.book.size(), 1u);
  EXPECT_EQ(back.book[0].rate, 2.5);
  EXPECT_EQ(back.inc.committed, ckpt.inc.committed);
  EXPECT_EQ(back.schedule.path_choice, ckpt.schedule.path_choice);
  EXPECT_EQ(back.plan.units, ckpt.plan.units);
  EXPECT_EQ(back.profit.profit, 30);
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_EQ(back.entries[0].status, 1);
  EXPECT_EQ(back.entries[0].path, (net::Path{{0, 2, 5}}));
  EXPECT_TRUE(back.entries[0].was_committed);
  EXPECT_EQ(back.topology.price, ckpt.topology.price);
  EXPECT_EQ(back.topology.epoch, 12u);
  EXPECT_EQ(back.refunds.refunded, 5.5);
  EXPECT_EQ(back.fault_stats.injected, 4);
  EXPECT_EQ(back.book_lp_stats.iterations, 200);

  // Re-encoding the decoded image is byte-identical: the codec is
  // canonical, which is what lets ckpt_inspect diff files bit for bit.
  EXPECT_EQ(persist::encode(back), bytes);
}

TEST(CheckpointCodec, KindMismatchRejected) {
  persist::MultiCycleCheckpoint mc;
  mc.config_fingerprint = 1;
  mc.num_policies = 2;
  const std::vector<std::uint8_t> bytes = persist::encode(mc);
  const persist::SnapshotReader reader(bytes, "test");
  EXPECT_EQ(persist::kind_of(reader), persist::CheckpointKind::MultiCycle);
  EXPECT_THROW(persist::decode_online(reader), persist::SnapshotError);
}

TEST(CheckpointCodec, MultiCycleRoundTrip) {
  persist::MultiCycleCheckpoint ckpt;
  ckpt.config_fingerprint = 99;
  ckpt.cycles_done = 2;
  ckpt.num_policies = 1;
  persist::CycleCellState cell;
  cell.cycle = 1;
  cell.policy = 0;
  cell.offered_requests = 50;
  cell.result.profit = 77.25;
  cell.net_profit = 70.25;
  cell.refunds = 7;
  cell.fault_stats.victims = 3;
  ckpt.cells.push_back(cell);
  const std::vector<std::uint8_t> bytes = persist::encode(ckpt);
  const persist::MultiCycleCheckpoint back =
      persist::decode_multi_cycle(persist::SnapshotReader(bytes, "test"));
  EXPECT_EQ(back.cycles_done, 2);
  ASSERT_EQ(back.cells.size(), 1u);
  EXPECT_EQ(back.cells[0].result.profit, 77.25);
  EXPECT_EQ(back.cells[0].fault_stats.victims, 3);
  EXPECT_EQ(persist::encode(back), bytes);
}

TEST(CheckpointCodec, DebugJsonRenders) {
  const std::vector<std::uint8_t> bytes =
      persist::encode(sample_online_checkpoint());
  std::ostringstream os;
  persist::write_debug_json(persist::SnapshotReader(bytes, "test"), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"kind\":\"online\""), std::string::npos);
  EXPECT_NE(json.find("\"sections\""), std::string::npos);
  EXPECT_NE(json.find("0x1122334455667788"), std::string::npos);
}

// --- the kill/restore contract -------------------------------------------

bool same_lp_stats(const lp::SolveStats& a, const lp::SolveStats& b) {
  return a.iterations == b.iterations && a.factorizations == b.factorizations &&
         a.warm_starts == b.warm_starts && a.cold_starts == b.cold_starts &&
         a.pricing_passes == b.pricing_passes &&
         a.partial_hits == b.partial_hits &&
         a.full_fallbacks == b.full_fallbacks &&
         a.basis_repairs == b.basis_repairs;
}

void expect_identical(const sim::OnlineResult& a, const sim::OnlineResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_arrivals, b.total_arrivals) << label;
  EXPECT_EQ(a.total_accepted, b.total_accepted) << label;
  EXPECT_EQ(a.profit.profit, b.profit.profit) << label;
  EXPECT_EQ(a.refunds, b.refunds) << label;
  EXPECT_EQ(a.net_profit, b.net_profit) << label;
  EXPECT_EQ(a.schedule.path_choice, b.schedule.path_choice) << label;
  EXPECT_EQ(a.plan.units, b.plan.units) << label;
  EXPECT_TRUE(same_lp_stats(a.lp_stats, b.lp_stats)) << label;
  ASSERT_EQ(a.batches.size(), b.batches.size()) << label;
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].batch, b.batches[i].batch) << label;
    EXPECT_EQ(a.batches[i].arrivals, b.batches[i].arrivals) << label;
    EXPECT_EQ(a.batches[i].flush_time, b.batches[i].flush_time) << label;
    EXPECT_EQ(a.batches[i].accepted, b.batches[i].accepted) << label;
    EXPECT_EQ(a.batches[i].profit, b.batches[i].profit) << label;
    EXPECT_TRUE(same_lp_stats(a.batches[i].lp_stats, b.batches[i].lp_stats))
        << label << " batch " << i;
  }
  EXPECT_EQ(a.fault_paths, b.fault_paths) << label;
  EXPECT_EQ(a.fault_stats.injected, b.fault_stats.injected) << label;
  EXPECT_EQ(a.fault_stats.dropped, b.fault_stats.dropped) << label;
  EXPECT_EQ(a.fault_stats.rerouted, b.fault_stats.rerouted) << label;
  EXPECT_EQ(a.fault_stats.surge_arrivals, b.fault_stats.surge_arrivals)
      << label;
}

/// Decision counters: every counter except persist.* (checkpointing runs
/// record extra save/load events by design).
std::vector<std::pair<std::string, std::int64_t>> decision_counters() {
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, value] :
       telemetry::Registry::global().snapshot().counters) {
    if (name.rfind("persist.", 0) != 0) out.emplace_back(name, value);
  }
  return out;
}

void reset_registry() {
  telemetry::Registry::global().restore(telemetry::MetricsSnapshot{});
}

sim::OnlineConfig small_online_config(double fault_rate) {
  sim::OnlineConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = 18;
  config.base.seed = 11;
  config.batch_size = 4;
  config.max_batch_delay = 0.75;
  config.faults.rate = fault_rate;
  return config;
}

void check_kill_restore(double fault_rate, const std::string& tag) {
  sim::OnlineConfig config = small_online_config(fault_rate);

  reset_registry();
  const sim::OnlineResult reference =
      sim::OnlineAdmissionSimulator(config).run();
  const auto ref_counters = decision_counters();

  sim::OnlineConfig writer = config;
  writer.checkpoint_every = 1;
  writer.checkpoint_path = tmp_path("kill_restore_" + tag + ".ckpt");
  writer.checkpoint_keep_all = true;
  reset_registry();
  const sim::OnlineResult uninterrupted =
      sim::OnlineAdmissionSimulator(writer).run();
  expect_identical(reference, uninterrupted, tag + " checkpointing run");
  EXPECT_EQ(decision_counters(), ref_counters) << tag;

  const int num_slots = config.base.instance.num_slots;
  for (int boundary = 1; boundary < num_slots; ++boundary) {
    sim::OnlineConfig resumed = config;
    resumed.resume_path =
        writer.checkpoint_path + ".slot" + std::to_string(boundary);
    reset_registry();
    const sim::OnlineResult result =
        sim::OnlineAdmissionSimulator(resumed).run();
    expect_identical(reference, result,
                     tag + " resume from slot " + std::to_string(boundary));
    EXPECT_EQ(decision_counters(), ref_counters)
        << tag << " resume from slot " << boundary;
  }
  reset_registry();
}

TEST(KillRestore, FaultFreeEveryBoundaryIsByteIdentical) {
  check_kill_restore(0, "fault_free");
}

TEST(KillRestore, FaultModeEveryBoundaryIsByteIdentical) {
  check_kill_restore(0.6, "faults");
}

TEST(KillRestore, ThreadCountInvariant) {
  // Checkpoint under one thread count, resume under others: the restored
  // replay must reproduce the serial reference bit for bit.
  sim::OnlineConfig config = small_online_config(0.4);
  config.metis.maa.threads = 1;
  const sim::OnlineResult reference =
      sim::OnlineAdmissionSimulator(config).run();

  sim::OnlineConfig writer = config;
  writer.metis.maa.threads = 2;
  writer.checkpoint_every = 4;
  writer.checkpoint_path = tmp_path("kill_restore_threads.ckpt");
  writer.checkpoint_keep_all = true;
  (void)sim::OnlineAdmissionSimulator(writer).run();

  for (int threads : {1, 3}) {
    sim::OnlineConfig resumed = config;
    resumed.metis.maa.threads = threads;
    resumed.resume_path = writer.checkpoint_path + ".slot4";
    const sim::OnlineResult result =
        sim::OnlineAdmissionSimulator(resumed).run();
    expect_identical(reference, result,
                     "threads=" + std::to_string(threads));
  }
  reset_registry();
}

TEST(KillRestore, FingerprintMismatchRejected) {
  sim::OnlineConfig config = small_online_config(0);
  config.checkpoint_every = 4;
  config.checkpoint_path = tmp_path("fingerprint.ckpt");
  (void)sim::OnlineAdmissionSimulator(config).run();

  sim::OnlineConfig other = config;
  other.checkpoint_every = 0;
  other.checkpoint_path.clear();
  other.base.seed += 1;  // different arrival stream
  other.resume_path = config.checkpoint_path;
  try {
    (void)sim::OnlineAdmissionSimulator(other).run();
    FAIL() << "resume under a different config was not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
  reset_registry();
}

TEST(KillRestore, ModeMismatchRejected) {
  sim::OnlineConfig config = small_online_config(0);
  config.checkpoint_every = 4;
  config.checkpoint_path = tmp_path("mode_mismatch.ckpt");
  (void)sim::OnlineAdmissionSimulator(config).run();

  // Resuming a fault-free snapshot into a fault-mode run must be rejected
  // (faults.rate is fingerprinted, so this surfaces as a fingerprint
  // mismatch before the mode check can even be reached).
  sim::OnlineConfig faulty = config;
  faulty.checkpoint_every = 0;
  faulty.checkpoint_path.clear();
  faulty.faults.rate = 0.5;
  faulty.resume_path = config.checkpoint_path;
  EXPECT_THROW((void)sim::OnlineAdmissionSimulator(faulty).run(),
               std::runtime_error);
  reset_registry();
}

TEST(KillRestore, MultiCycleResumeMatchesUninterrupted) {
  sim::SimulationConfig config;
  config.base.network = sim::Network::B4;
  config.base.num_requests = 30;
  config.base.seed = 5;
  config.cycles = 3;
  config.demand_growth = 0.2;

  const sim::BillingCycleSimulator simulator(config);
  const std::vector<sim::PolicyOutcome> reference =
      simulator.run(sim::standard_policies());

  sim::SimulationConfig writer_config = config;
  writer_config.checkpoint_every = 1;
  writer_config.checkpoint_path = tmp_path("multi_cycle.ckpt");
  writer_config.checkpoint_keep_all = true;
  const std::vector<sim::PolicyOutcome> uninterrupted =
      sim::BillingCycleSimulator(writer_config).run(sim::standard_policies());

  const auto expect_same = [&](const std::vector<sim::PolicyOutcome>& got,
                               const std::string& label) {
    ASSERT_EQ(got.size(), reference.size()) << label;
    for (std::size_t p = 0; p < reference.size(); ++p) {
      EXPECT_EQ(got[p].policy, reference[p].policy) << label;
      EXPECT_EQ(got[p].total_profit, reference[p].total_profit) << label;
      EXPECT_EQ(got[p].total_net_profit, reference[p].total_net_profit)
          << label;
      EXPECT_EQ(got[p].total_accepted, reference[p].total_accepted) << label;
      ASSERT_EQ(got[p].cycles.size(), reference[p].cycles.size()) << label;
      for (std::size_t c = 0; c < reference[p].cycles.size(); ++c) {
        EXPECT_EQ(got[p].cycles[c].result.profit,
                  reference[p].cycles[c].result.profit)
            << label << " cycle " << c;
        EXPECT_EQ(got[p].cycles[c].offered_requests,
                  reference[p].cycles[c].offered_requests)
            << label << " cycle " << c;
      }
    }
  };
  expect_same(uninterrupted, "checkpointing run");

  for (int done = 1; done < config.cycles; ++done) {
    sim::SimulationConfig resumed = config;
    resumed.resume_path =
        writer_config.checkpoint_path + ".cycle" + std::to_string(done);
    expect_same(
        sim::BillingCycleSimulator(resumed).run(sim::standard_policies()),
        "resume after cycle " + std::to_string(done));
  }
  reset_registry();
}

TEST(KillRestore, MultiCycleFingerprintCoversPolicyRoster) {
  sim::SimulationConfig config;
  config.base.num_requests = 20;
  config.cycles = 2;
  config.checkpoint_every = 1;
  config.checkpoint_path = tmp_path("multi_cycle_roster.ckpt");
  (void)sim::BillingCycleSimulator(config).run(sim::standard_policies());

  sim::SimulationConfig resumed = config;
  resumed.checkpoint_every = 0;
  resumed.checkpoint_path.clear();
  resumed.resume_path = config.checkpoint_path;
  // A different roster (fewer policies) must be rejected even though the
  // SimulationConfig itself is identical.
  std::vector<std::unique_ptr<sim::Policy>> fewer;
  fewer.push_back(std::move(sim::standard_policies().front()));
  EXPECT_THROW((void)sim::BillingCycleSimulator(resumed).run(fewer),
               std::runtime_error);
  reset_registry();
}

}  // namespace
}  // namespace metis
