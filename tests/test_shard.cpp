// Tests for the sharded decomposition (core/shard.h) and the dual-price
// coordination loop (core/coordinate.h): partition validity/determinism,
// bit-identity of the shards == 1 path, thread-count invariance at fixed
// K > 1, the duality-gap contract, every fallback trigger, and the two
// schedule-repair helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/accounting.h"
#include "core/coordinate.h"
#include "core/metis.h"
#include "core/shard.h"
#include "sim/scenario.h"
#include "sim/validate.h"
#include "util/rng.h"

namespace metis::core {
namespace {

SpmInstance instance_for(std::uint64_t seed, int k,
                         sim::Network net = sim::Network::B4) {
  sim::Scenario s;
  s.network = net;
  s.num_requests = k;
  s.seed = seed;
  return sim::make_instance(s);
}

bool same_decision(const MetisResult& a, const MetisResult& b) {
  return a.schedule.path_choice == b.schedule.path_choice &&
         a.plan.units == b.plan.units && a.best.profit == b.best.profit &&
         a.best.accepted == b.best.accepted;
}

// ---- partition ------------------------------------------------------------

TEST(Partition, CoversEveryNodeAndRequest) {
  const SpmInstance instance = instance_for(1, 60);
  for (int k : {1, 2, 3, 4}) {
    const ShardPlan plan = partition_instance(instance, k);
    ASSERT_EQ(plan.num_shards, k);
    ASSERT_EQ(static_cast<int>(plan.node_shard.size()),
              instance.topology().num_nodes());
    for (int s : plan.node_shard) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, k);
    }
    int listed = 0;
    for (int s = 0; s < k; ++s) {
      for (std::size_t i = 1; i < plan.shard_requests[s].size(); ++i) {
        EXPECT_LT(plan.shard_requests[s][i - 1], plan.shard_requests[s][i]);
      }
      for (int orig : plan.shard_requests[s]) {
        EXPECT_EQ(plan.request_shard[orig], s);
        EXPECT_EQ(plan.node_shard[instance.request(orig).src], s);
      }
      listed += static_cast<int>(plan.shard_requests[s].size());
    }
    EXPECT_EQ(listed, instance.num_requests());
  }
}

TEST(Partition, DeterministicAndNonTrivial) {
  const SpmInstance instance = instance_for(2, 40);
  const ShardPlan a = partition_instance(instance, 3);
  const ShardPlan b = partition_instance(instance, 3);
  EXPECT_EQ(a.node_shard, b.node_shard);
  EXPECT_EQ(a.request_shard, b.request_shard);
  EXPECT_EQ(a.edge_shared, b.edge_shared);
  EXPECT_EQ(a.cut_fraction, b.cut_fraction);
  // B4 is connected, so a 3-way split must actually use three shards.
  std::vector<int> sizes(3, 0);
  for (int s : a.node_shard) ++sizes[s];
  for (int size : sizes) EXPECT_GT(size, 0);
  EXPECT_GT(a.used_edges, 0);
}

TEST(Partition, ClampsShardCountToNodes) {
  const SpmInstance instance = instance_for(3, 10, sim::Network::SubB4);
  const int n = instance.topology().num_nodes();
  const ShardPlan plan = partition_instance(instance, n + 50);
  EXPECT_LE(plan.num_shards, n);
}

// ---- shards == 1 and fallback bit-identity --------------------------------

TEST(ShardedMetis, ShardsOneIsBitIdenticalToMonolithic) {
  const SpmInstance instance = instance_for(4, 50);
  MetisOptions mono;
  MetisOptions one = mono;
  one.shards = 1;
  Rng rng_a(7);
  Rng rng_b(7);
  const MetisResult a = run_metis(instance, rng_a, mono);
  const MetisResult b = run_metis(instance, rng_b, one);
  EXPECT_TRUE(same_decision(a, b));
  EXPECT_FALSE(b.shard.sharded);
  EXPECT_FALSE(b.shard.fell_back);
  // The rng must have advanced identically too.
  EXPECT_EQ(rng_a.engine()(), rng_b.engine()());
}

TEST(ShardedMetis, DenseCutFallbackReproducesMonolithic) {
  const SpmInstance instance = instance_for(5, 40);
  MetisOptions mono;
  MetisOptions sharded = mono;
  sharded.shards = 2;
  sharded.shard.max_cut_fraction = 0.0;  // force the up-front fallback
  Rng rng_a(3);
  Rng rng_b(3);
  const MetisResult a = run_metis(instance, rng_a, mono);
  const MetisResult b = run_metis(instance, rng_b, sharded);
  EXPECT_TRUE(same_decision(a, b));
  EXPECT_TRUE(b.shard.fell_back);
  EXPECT_FALSE(b.shard.sharded);
  EXPECT_EQ(b.shard.fallback_reason, "cut too dense to decompose");
  EXPECT_EQ(rng_a.engine()(), rng_b.engine()());
}

TEST(ShardedMetis, GapFallbackReproducesMonolithic) {
  const SpmInstance instance = instance_for(6, 40);
  MetisOptions mono;
  MetisOptions sharded = mono;
  sharded.shards = 2;
  sharded.shard.gap_tol = -1.0;       // never converge early
  sharded.shard.fallback_gap = -1.0;  // any gap >= 0 trips the fallback
  Rng rng_a(9);
  Rng rng_b(9);
  const MetisResult a = run_metis(instance, rng_a, mono);
  const MetisResult b = run_metis(instance, rng_b, sharded);
  EXPECT_TRUE(same_decision(a, b));
  EXPECT_TRUE(b.shard.fell_back);
  EXPECT_EQ(b.shard.fallback_reason, "coordination gap failed to converge");
  EXPECT_EQ(rng_a.engine()(), rng_b.engine()());
}

TEST(ShardedMetis, SinglePopulatedShardFallsBack) {
  // Every request from one DC: the partition can't spread them, so the
  // coordinated path must detect a one-sided split and fall back.
  net::Topology topo(4);
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  topo.add_link(2, 3, 1.0);
  std::vector<workload::Request> requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back({0, 3, 0, 3, 0.4, 3.0});
  }
  const SpmInstance instance(std::move(topo), std::move(requests), {});
  MetisOptions options;
  options.shards = 2;
  Rng rng(1);
  const MetisResult result = run_metis(instance, rng, options);
  EXPECT_TRUE(result.shard.fell_back);
  EXPECT_EQ(result.shard.fallback_reason, "fewer than two populated shards");
}

// ---- the coordinated solve ------------------------------------------------

TEST(ShardedMetis, CoordinatedSolveIsValidAndCompetitive) {
  const SpmInstance instance = instance_for(1, 80);
  MetisOptions mono;
  Rng rng_mono(11);
  const MetisResult monolithic = run_metis(instance, rng_mono, mono);

  for (int k : {2, 4}) {
    MetisOptions options = mono;
    options.shards = k;
    // k=4 on this instance cuts 0.895 — inside the default-threshold gray
    // zone (see ShardOptions::max_cut_fraction).  Raise the threshold to
    // exercise genuine 4-way coordination; the 0.95 profit guard below is
    // exactly what the gray zone still delivers.
    options.shard.max_cut_fraction = 0.92;
    Rng rng(11);
    const MetisResult sharded = run_metis(instance, rng, options);
    ASSERT_FALSE(sharded.shard.fell_back) << "k=" << k;
    ASSERT_TRUE(sharded.shard.sharded) << "k=" << k;
    EXPECT_EQ(sharded.shard.shards_requested, k);
    EXPECT_GE(sharded.shard.rounds, 1);
    EXPECT_EQ(static_cast<int>(sharded.shard.round_gaps.size()),
              sharded.shard.rounds);
    // The duality-gap contract: a sharded (non-fallback) result's final gap
    // is within the fallback bound, and the recorded gap matches the trace.
    EXPECT_LE(sharded.shard.duality_gap, options.shard.fallback_gap);
    EXPECT_EQ(sharded.shard.duality_gap, sharded.shard.round_gaps.back());
    // The decision is a real schedule: plan covers the loads, profit
    // matches a re-evaluation.
    EXPECT_TRUE(
        sim::check_plan_covers_schedule(instance, sharded.schedule, sharded.plan)
            .empty());
    const ProfitBreakdown check =
        evaluate_with_plan(instance, sharded.schedule, sharded.plan);
    EXPECT_DOUBLE_EQ(check.profit, sharded.best.profit);
    // Coordination must stay close to the monolithic profit (the bench
    // enforces the 1% acceptance bound on the Fig-5 workload; keep a
    // looser guard here so the unit test isn't seed-brittle).
    EXPECT_GE(sharded.best.profit, 0.95 * monolithic.best.profit)
        << "k=" << k;
  }
}

TEST(ShardedMetis, ThreadCountInvariantAtFixedK) {
  const SpmInstance instance = instance_for(7, 60);
  std::vector<MetisResult> results;
  for (int threads : {1, 2, 4}) {
    MetisOptions options;
    options.shards = 2;
    options.shard.threads = threads;
    Rng rng(5);
    results.push_back(run_metis(instance, rng, options));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(same_decision(results[0], results[i])) << "threads case " << i;
    EXPECT_EQ(results[0].shard.rounds, results[i].shard.rounds);
    EXPECT_EQ(results[0].shard.round_gaps, results[i].shard.round_gaps);
    EXPECT_EQ(results[0].shard.fell_back, results[i].shard.fell_back);
  }
}

TEST(ShardedMetis, RepeatedRunsAreBitIdentical) {
  const SpmInstance instance = instance_for(8, 50);
  MetisOptions options;
  options.shards = 4;
  Rng rng_a(2);
  Rng rng_b(2);
  const MetisResult a = run_metis(instance, rng_a, options);
  const MetisResult b = run_metis(instance, rng_b, options);
  EXPECT_TRUE(same_decision(a, b));
  EXPECT_EQ(a.shard.round_gaps, b.shard.round_gaps);
}

TEST(ShardedMetis, IncrementalRespectsCommitments) {
  const SpmInstance instance = instance_for(9, 40);
  MetisOptions mono;
  Rng seed_rng(4);
  const MetisResult first = run_metis(instance, seed_rng, mono);
  const int committed = instance.num_requests() / 2;

  IncrementalState state;
  state.committed.assign(first.schedule.path_choice.begin(),
                         first.schedule.path_choice.begin() + committed);
  MetisOptions options;
  options.shards = 2;
  Rng rng(4);
  const MetisResult result = run_metis_incremental(instance, state, rng, options);
  ASSERT_EQ(static_cast<int>(result.schedule.path_choice.size()),
            instance.num_requests());
  for (int i = 0; i < committed; ++i) {
    EXPECT_EQ(result.schedule.path_choice[i], state.committed[i]) << "i=" << i;
  }
  EXPECT_TRUE(
      sim::check_plan_covers_schedule(instance, result.schedule, result.plan)
          .empty());
}

// ---- repair helpers -------------------------------------------------------

TEST(AdmitProfitable, AcceptsFreeRiderAndStopsAtCost) {
  // One link, one unit purchased by request 0; request 1 fits inside the
  // same unit (free to admit), request 2 would force a second unit its bid
  // cannot pay for.
  net::Topology topo(2);
  topo.add_edge(0, 1, 2.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 1, 0.6, 5.0},
      {0, 1, 0, 1, 0.3, 0.5},  // 0.6 + 0.3 < 1 unit: rides free
      {0, 1, 0, 1, 0.9, 1.0},  // forces charged 2 units (+2.0) for value 1.0
  };
  InstanceConfig config;
  config.num_slots = 2;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule schedule = Schedule::all_declined(3);
  schedule.path_choice[0] = 0;
  const double before = evaluate(instance, schedule).profit;
  EXPECT_EQ(admit_profitable(instance, schedule), 1);
  EXPECT_TRUE(schedule.accepted(1));
  EXPECT_FALSE(schedule.accepted(2));
  EXPECT_GT(evaluate(instance, schedule).profit, before);
  // Fixpoint: nothing more to admit.
  EXPECT_EQ(admit_profitable(instance, schedule), 0);
}

TEST(AdmitProfitable, RespectsEdgeCapacity) {
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 1, 0.9, 5.0},
      {0, 1, 0, 1, 0.9, 5.0},  // profitable, but needs a 2nd unit
  };
  InstanceConfig config;
  config.num_slots = 2;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule schedule = Schedule::all_declined(2);
  schedule.path_choice[0] = 0;
  const std::vector<int> cap = {1};
  EXPECT_EQ(admit_profitable(instance, schedule, 0, &cap), 0);
  EXPECT_FALSE(schedule.accepted(1));
  // Uncapacitated, the same admission goes through.
  EXPECT_EQ(admit_profitable(instance, schedule), 1);
}

TEST(EnforceEdgeCapacity, DropsLowestValueUntilFit) {
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 1, 0.9, 9.0},
      {0, 1, 0, 1, 0.9, 1.0},  // cheapest: first to go
      {0, 1, 0, 1, 0.9, 4.0},
  };
  InstanceConfig config;
  config.num_slots = 2;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule schedule = Schedule::all_declined(3);
  for (int i = 0; i < 3; ++i) schedule.path_choice[i] = 0;
  std::vector<int> cap = {2};
  EXPECT_EQ(enforce_edge_capacity(instance, schedule, cap, 0), 1);
  EXPECT_TRUE(schedule.accepted(0));
  EXPECT_FALSE(schedule.accepted(1));
  EXPECT_TRUE(schedule.accepted(2));
  const LoadMatrix loads = compute_loads(instance, schedule);
  EXPECT_LE(charged_units(loads.peak(0)), 2);
}

TEST(EnforceEdgeCapacity, NeverTouchesCommitments) {
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 1, 0.9, 1.0},  // committed (cheap, but untouchable)
      {0, 1, 0, 1, 0.9, 9.0},
  };
  InstanceConfig config;
  config.num_slots = 2;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule schedule = Schedule::all_declined(2);
  schedule.path_choice[0] = 0;
  schedule.path_choice[1] = 0;
  std::vector<int> cap = {1};
  EXPECT_EQ(enforce_edge_capacity(instance, schedule, cap, /*first_mutable=*/1),
            1);
  EXPECT_TRUE(schedule.accepted(0));   // commitment survives
  EXPECT_FALSE(schedule.accepted(1));  // the free request is shed instead
}

}  // namespace
}  // namespace metis::core
