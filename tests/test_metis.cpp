// Tests for the Metis alternation framework: SP-updater semantics, the BW
// limiter rule, convergence/termination, and monotonicity of the recorded
// best profit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/accounting.h"
#include "core/maa.h"
#include "core/metis.h"
#include "sim/scenario.h"
#include "sim/validate.h"
#include "util/rng.h"

namespace metis::core {
namespace {

SpmInstance instance_for(std::uint64_t seed, int k,
                         sim::Network net = sim::Network::SubB4) {
  sim::Scenario s;
  s.network = net;
  s.num_requests = k;
  s.seed = seed;
  return sim::make_instance(s);
}

TEST(BwLimiter, TrimsMinUtilizationLink) {
  const SpmInstance instance = instance_for(1, 30);
  Rng rng(5);
  const MaaResult maa = run_maa(instance, rng);
  ASSERT_TRUE(maa.ok());
  ChargingPlan plan = maa.plan;
  const LoadMatrix loads = compute_loads(instance, maa.schedule);
  // Determine the expected argmin by hand.
  int expected = -1;
  double lowest = 0;
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    if (plan.units[e] <= 0) continue;
    const double util = loads.mean(e) / plan.units[e];
    if (expected == -1 || util < lowest) {
      lowest = util;
      expected = e;
    }
  }
  const int before = plan.units[expected];
  const int trimmed = trim_min_utilization_link(instance, maa.schedule, plan);
  EXPECT_EQ(trimmed, expected);
  EXPECT_EQ(plan.units[expected], before - 1);
}

TEST(BwLimiter, NoPurchasableLinkReturnsMinusOne) {
  const SpmInstance instance = instance_for(2, 10);
  ChargingPlan plan = ChargingPlan::none(instance.num_edges());
  const Schedule schedule = Schedule::all_declined(instance.num_requests());
  EXPECT_EQ(trim_min_utilization_link(instance, schedule, plan), -1);
}

TEST(BwLimiter, TrimFloorsAtZero) {
  const SpmInstance instance = instance_for(3, 10);
  Rng rng(5);
  const MaaResult maa = run_maa(instance, rng);
  ChargingPlan plan = maa.plan;
  const int e = trim_min_utilization_link(instance, maa.schedule, plan, 1000);
  ASSERT_GE(e, 0);
  EXPECT_EQ(plan.units[e], 0);
}

TEST(BwLimiter, RejectsNonPositiveUnits) {
  const SpmInstance instance = instance_for(4, 10);
  ChargingPlan plan = ChargingPlan::none(instance.num_edges());
  const Schedule schedule = Schedule::all_declined(instance.num_requests());
  EXPECT_THROW(trim_min_utilization_link(instance, schedule, plan, 0),
               std::invalid_argument);
}

TEST(Pruning, RemovesOnlyValueNegativeRequests) {
  // Hand-built: two requests on one link; the cheap bid cannot pay for the
  // second charged unit it forces.
  net::Topology topo(2);
  topo.add_edge(0, 1, 2.0);
  topo.add_edge(1, 0, 2.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 1, 0.9, 5.0},   // worth its unit
      {0, 1, 0, 1, 0.9, 0.5},   // forces a 2nd unit (cost 2) for value 0.5
  };
  InstanceConfig config;
  config.num_slots = 2;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule schedule = Schedule::all_declined(2);
  schedule.path_choice[0] = 0;
  schedule.path_choice[1] = 0;
  const double before = evaluate(instance, schedule).profit;
  const int pruned = prune_unprofitable(instance, schedule);
  EXPECT_EQ(pruned, 1);
  EXPECT_TRUE(schedule.accepted(0));
  EXPECT_FALSE(schedule.accepted(1));
  EXPECT_GT(evaluate(instance, schedule).profit, before);
}

TEST(Pruning, NeverDecreasesProfit) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const SpmInstance instance = instance_for(seed, 50, sim::Network::B4);
    Rng rng(seed);
    const MaaResult maa = run_maa(instance, rng);
    ASSERT_TRUE(maa.ok());
    Schedule schedule = maa.schedule;
    const double before = evaluate(instance, schedule).profit;
    prune_unprofitable(instance, schedule);
    const double after = evaluate(instance, schedule).profit;
    EXPECT_GE(after, before - 1e-9) << "seed " << seed;
  }
}

TEST(Pruning, FixpointIsStable) {
  const SpmInstance instance = instance_for(3, 40, sim::Network::B4);
  Rng rng(3);
  const MaaResult maa = run_maa(instance, rng);
  Schedule schedule = maa.schedule;
  prune_unprofitable(instance, schedule);
  // A second pass finds nothing more to remove.
  EXPECT_EQ(prune_unprofitable(instance, schedule), 0);
}

// Reference prune predating the per-edge range-max trees: full O(T) rescan
// per (candidate, edge) inside the fixed-point loop.  The tree-based
// prune_unprofitable must reproduce its decisions exactly — same requests
// declined, in the same order.
double reference_removal_saving(const SpmInstance& instance,
                                const LoadMatrix& loads, net::EdgeId e,
                                int start, int end, double rate) {
  double peak_with = 0, peak_without = 0;
  for (int t = 0; t < instance.num_slots(); ++t) {
    const double load = loads.at(e, t);
    peak_with = std::max(peak_with, load);
    const bool in_window = t >= start && t <= end;
    peak_without = std::max(peak_without, in_window ? load - rate : load);
  }
  return instance.topology().edge(e).price *
         (charged_units(peak_with) - charged_units(peak_without));
}

int reference_prune(const SpmInstance& instance, Schedule& schedule) {
  LoadMatrix loads = compute_loads(instance, schedule);
  int pruned = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    int worst = -1;
    double worst_margin = -1e-9;
    for (int i = 0; i < instance.num_requests(); ++i) {
      const int j = schedule.path_choice[i];
      if (j == kDeclined) continue;
      const workload::Request& r = instance.request(i);
      double saving = 0;
      for (net::EdgeId e : instance.paths(i)[j].edges) {
        saving += reference_removal_saving(instance, loads, e, r.start_slot,
                                           r.end_slot, r.rate);
      }
      if (r.value - saving < worst_margin) {
        worst_margin = r.value - saving;
        worst = i;
      }
    }
    if (worst >= 0) {
      const workload::Request& r = instance.request(worst);
      for (net::EdgeId e : instance.paths(worst)[schedule.path_choice[worst]].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) {
          loads.add(e, t, -r.rate);
        }
      }
      schedule.path_choice[worst] = kDeclined;
      ++pruned;
      changed = true;
    }
  }
  return pruned;
}

TEST(Pruning, TreeMatchesReferenceDecisions) {
  // All-accepted-on-first-path schedules force many removals; MAA schedules
  // exercise the near-fixpoint regime.  Both must prune identically.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const SpmInstance instance = instance_for(seed, 60, sim::Network::B4);
    Schedule greedy = Schedule::all_declined(instance.num_requests());
    for (int i = 0; i < instance.num_requests(); ++i) greedy.path_choice[i] = 0;
    Schedule expected = greedy;
    const int ref = reference_prune(instance, expected);
    const int got = prune_unprofitable(instance, greedy);
    EXPECT_EQ(got, ref) << "seed " << seed;
    EXPECT_EQ(greedy.path_choice, expected.path_choice) << "seed " << seed;

    Rng rng(seed);
    const MaaResult maa = run_maa(instance, rng);
    ASSERT_TRUE(maa.ok());
    Schedule tree_schedule = maa.schedule;
    Schedule ref_schedule = maa.schedule;
    EXPECT_EQ(prune_unprofitable(instance, tree_schedule),
              reference_prune(instance, ref_schedule))
        << "seed " << seed;
    EXPECT_EQ(tree_schedule.path_choice, ref_schedule.path_choice)
        << "seed " << seed;
  }
}

TEST(Pruning, EmptyScheduleUntouched) {
  const SpmInstance instance = instance_for(4, 10);
  Schedule schedule = Schedule::all_declined(instance.num_requests());
  EXPECT_EQ(prune_unprofitable(instance, schedule), 0);
}

TEST(Reroute, NeverIncreasesCostAndKeepsAcceptance) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const SpmInstance instance = instance_for(seed, 60, sim::Network::B4);
    Rng rng(seed);
    MaaOptions single;
    single.rounding_trials = 1;
    const MaaResult maa = run_maa(instance, {}, rng, single);
    ASSERT_TRUE(maa.ok());
    Schedule schedule = maa.schedule;
    const ProfitBreakdown before = evaluate(instance, schedule);
    reroute_cheaper(instance, schedule);
    const ProfitBreakdown after = evaluate(instance, schedule);
    EXPECT_LE(after.cost, before.cost + 1e-9) << "seed " << seed;
    EXPECT_EQ(after.accepted, before.accepted);
    EXPECT_DOUBLE_EQ(after.revenue, before.revenue);
  }
}

TEST(Reroute, FindsTheObviousMove) {
  // Two parallel routes; one already charged, the other empty: a request
  // sitting alone on the empty route should be folded onto the shared one.
  net::Topology topo(4);
  topo.add_edge(0, 1, 1.0);
  topo.add_edge(1, 3, 1.0);
  topo.add_edge(0, 2, 1.0);
  topo.add_edge(2, 3, 1.0);
  std::vector<workload::Request> requests = {
      {0, 3, 0, 1, 0.4, 3.0},
      {0, 3, 0, 1, 0.4, 3.0},
  };
  InstanceConfig config;
  config.num_slots = 2;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  ASSERT_EQ(instance.num_paths(0), 2);
  Schedule schedule = Schedule::all_declined(2);
  schedule.path_choice[0] = 0;
  schedule.path_choice[1] = 1;  // needlessly on the second route
  const double cost_before = evaluate(instance, schedule).cost;
  const int moves = reroute_cheaper(instance, schedule);
  EXPECT_GE(moves, 1);
  EXPECT_EQ(schedule.path_choice[0], schedule.path_choice[1]);
  EXPECT_LT(evaluate(instance, schedule).cost, cost_before);
}

TEST(Reroute, FixpointIsStable) {
  const SpmInstance instance = instance_for(5, 40, sim::Network::B4);
  Rng rng(5);
  const MaaResult maa = run_maa(instance, rng);
  Schedule schedule = maa.schedule;
  reroute_cheaper(instance, schedule);
  EXPECT_EQ(reroute_cheaper(instance, schedule), 0);
}

TEST(Metis, PruneOptionNeverHurts) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SpmInstance instance = instance_for(seed, 40);
    MetisOptions with, without;
    with.prune = true;
    without.prune = false;
    Rng a(seed), b(seed);
    const MetisResult r_with = run_metis(instance, a, with);
    const MetisResult r_without = run_metis(instance, b, without);
    EXPECT_GE(r_with.best.profit, r_without.best.profit - 1e-9)
        << "seed " << seed;
  }
}

TEST(Metis, ProfitNeverNegative) {
  // SP Updater starts from the zero decision, so the best profit can never
  // fall below 0 regardless of how unprofitable the workload is.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const SpmInstance instance = instance_for(seed, 40);
    Rng rng(seed);
    const MetisResult result = run_metis(instance, rng);
    EXPECT_GE(result.best.profit, 0.0) << "seed " << seed;
  }
}

TEST(Metis, OutputsFeasibleDecision) {
  const SpmInstance instance = instance_for(7, 50);
  Rng rng(7);
  const MetisResult result = run_metis(instance, rng);
  EXPECT_TRUE(sim::check_schedule(instance, result.schedule, result.plan).empty());
  EXPECT_TRUE(
      sim::check_plan_covers_schedule(instance, result.schedule, result.plan)
          .empty());
}

TEST(Metis, BestMatchesRecordedScheduleAndPlan) {
  const SpmInstance instance = instance_for(8, 40);
  Rng rng(8);
  const MetisResult result = run_metis(instance, rng);
  const ProfitBreakdown pb =
      evaluate_with_plan(instance, result.schedule, result.plan);
  EXPECT_NEAR(pb.profit, result.best.profit, 1e-9);
  EXPECT_NEAR(pb.revenue, result.best.revenue, 1e-9);
  EXPECT_NEAR(pb.cost, result.best.cost, 1e-9);
  EXPECT_EQ(pb.accepted, result.best.accepted);
}

TEST(Metis, RunsAtMostThetaIterations) {
  const SpmInstance instance = instance_for(9, 30);
  for (int theta : {1, 3, 6}) {
    Rng rng(9);
    MetisOptions options;
    options.theta = theta;
    const MetisResult result = run_metis(instance, rng, options);
    EXPECT_LE(result.iterations_run, theta);
    EXPECT_EQ(static_cast<int>(result.history.size()), result.iterations_run);
  }
}

TEST(Metis, BestProfitAtLeastFirstMaaPass) {
  // The first loop records the all-accepted MAA schedule, so the final best
  // can only improve on it.
  const SpmInstance instance = instance_for(10, 40);
  Rng rng_metis(10), rng_maa(10);
  const MetisResult metis = run_metis(instance, rng_metis);
  const MaaResult maa = run_maa(instance, rng_maa);
  ASSERT_TRUE(maa.ok());
  const double maa_profit =
      evaluate_with_plan(instance, maa.schedule, maa.plan).profit;
  EXPECT_GE(metis.best.profit, maa_profit - 1e-9);
}

TEST(Metis, HistoryRecordsTrimmedEdges) {
  const SpmInstance instance = instance_for(11, 40);
  Rng rng(11);
  MetisOptions options;
  options.theta = 4;
  const MetisResult result = run_metis(instance, rng, options);
  ASSERT_GE(result.iterations_run, 1);
  for (const MetisIteration& iter : result.history) {
    // Every completed iteration trimmed a real edge (or stopped the loop).
    EXPECT_GE(iter.trimmed_edge, -1);
    EXPECT_LT(iter.trimmed_edge, instance.num_edges());
  }
}

TEST(Metis, DeterministicGivenSeed) {
  const SpmInstance instance = instance_for(12, 35);
  Rng a(99), b(99);
  const MetisResult ra = run_metis(instance, a);
  const MetisResult rb = run_metis(instance, b);
  EXPECT_EQ(ra.schedule.path_choice, rb.schedule.path_choice);
  EXPECT_EQ(ra.plan.units, rb.plan.units);
  EXPECT_DOUBLE_EQ(ra.best.profit, rb.best.profit);
}

TEST(Metis, SurfacesInnerSolveStatusAndStats) {
  const SpmInstance instance = instance_for(16, 30);
  Rng rng(16);
  const MetisResult result = run_metis(instance, rng);
  ASSERT_GE(result.iterations_run, 1);
  // A completed run leaves both stages' last statuses at Optimal and
  // accounts for every relaxation solved across the loop.
  EXPECT_EQ(result.maa_status, lp::SolveStatus::Optimal);
  EXPECT_EQ(result.taa_status, lp::SolveStatus::Optimal);
  EXPECT_GT(result.lp_stats.iterations, 0);
  EXPECT_GE(result.lp_stats.cold_starts, 1);
  // Each loop solves one MAA and (unless it stopped at the trim step) one
  // TAA relaxation; every solve is either warm or cold.
  const int solves =
      result.lp_stats.cold_starts + result.lp_stats.warm_starts;
  EXPECT_GE(solves, result.iterations_run);
  EXPECT_LE(solves, 2 * result.iterations_run);
}

TEST(Metis, IterationLimitedMaaStopsLoopWithStatus) {
  // A crippled MAA iteration cap must be reported as IterationLimit — not
  // conflated with infeasibility — and the loop still returns the safe
  // zero decision.
  const SpmInstance instance = instance_for(17, 25);
  Rng rng(17);
  MetisOptions options;
  options.maa.lp.max_iterations = 1;
  const MetisResult result = run_metis(instance, rng, options);
  EXPECT_EQ(result.maa_status, lp::SolveStatus::IterationLimit);
  EXPECT_EQ(result.taa_status, lp::SolveStatus::NotSolved);
  EXPECT_EQ(result.iterations_run, 0);
  EXPECT_GE(result.best.profit, 0.0);
  EXPECT_EQ(result.schedule.num_accepted(), 0);
}

TEST(Metis, WarmStartMatchesColdProfitWithLessWork) {
  // The basis carried across alternation iterations changes how the optimum
  // is reached, never which optimum: profits agree to LP tolerance and the
  // warm run does at most the cold run's simplex work.
  for (std::uint64_t seed = 18; seed <= 20; ++seed) {
    const SpmInstance instance = instance_for(seed, 40);
    MetisOptions warm, cold;
    warm.warm_start = true;
    cold.warm_start = false;
    Rng a(seed), b(seed);
    const MetisResult r_warm = run_metis(instance, a, warm);
    const MetisResult r_cold = run_metis(instance, b, cold);
    const double scale = std::max(1.0, std::abs(r_cold.best.profit));
    EXPECT_NEAR(r_warm.best.profit, r_cold.best.profit, 1e-6 * scale)
        << "seed " << seed;
    EXPECT_LE(r_warm.lp_stats.iterations, r_cold.lp_stats.iterations)
        << "seed " << seed;
    EXPECT_EQ(r_cold.lp_stats.warm_starts, 0) << "seed " << seed;
  }
}

TEST(Metis, RejectsNegativeTheta) {
  const SpmInstance instance = instance_for(13, 10);
  Rng rng(1);
  MetisOptions bad;
  bad.theta = -1;
  EXPECT_THROW(run_metis(instance, rng, bad), std::invalid_argument);
}

TEST(Metis, ConvergenceModeBoundedByK) {
  const SpmInstance instance = instance_for(13, 20);
  Rng rng(1);
  MetisOptions options;
  options.theta = 0;  // convergence mode
  const MetisResult result = run_metis(instance, rng, options);
  EXPECT_LE(result.iterations_run, instance.num_requests());
  EXPECT_GE(result.iterations_run, 1);
  EXPECT_GE(result.best.profit, 0);
  EXPECT_TRUE(sim::check_schedule(instance, result.schedule, result.plan).empty());
}

TEST(Metis, ConvergenceModeAtLeastAsGoodAsOneLoop) {
  const SpmInstance instance = instance_for(15, 30);
  MetisOptions conv, single;
  conv.theta = 0;
  single.theta = 1;
  Rng a(9), b(9);
  const MetisResult r_conv = run_metis(instance, a, conv);
  const MetisResult r_single = run_metis(instance, b, single);
  EXPECT_GE(r_conv.best.profit, r_single.best.profit - 1e-9);
}

TEST(Metis, MoreThetaNeverHurtsMuch) {
  // The SP updater keeps the best decision, so larger theta with the same
  // RNG prefix yields profit >= the shorter run's (same first iterations).
  const SpmInstance instance = instance_for(14, 40);
  MetisOptions short_opts, long_opts;
  short_opts.theta = 2;
  long_opts.theta = 6;
  Rng rng_short(7), rng_long(7);
  const MetisResult r_short = run_metis(instance, rng_short, short_opts);
  const MetisResult r_long = run_metis(instance, rng_long, long_opts);
  EXPECT_GE(r_long.best.profit, r_short.best.profit - 1e-9);
}

}  // namespace
}  // namespace metis::core
