// Tests for the SPM / RL-SPM / BL-SPM model builders: shapes, solution
// extraction, and end-to-end sanity of the exact formulations on tiny
// instances.
#include <gtest/gtest.h>

#include "core/accounting.h"
#include "core/instance.h"
#include "core/lp_builder.h"
#include "lp/mip.h"
#include "lp/simplex.h"

namespace metis::core {
namespace {

net::Topology diamond() {
  net::Topology topo(4);
  topo.add_edge(0, 1, 1.0);
  topo.add_edge(1, 3, 1.0);
  topo.add_edge(0, 2, 2.0);
  topo.add_edge(2, 3, 2.0);
  return topo;
}

SpmInstance tiny_instance() {
  std::vector<workload::Request> requests = {
      {0, 3, 0, 3, 0.6, 5.0},
      {0, 3, 2, 5, 0.7, 4.0},
      {1, 3, 1, 1, 0.3, 2.0},
  };
  InstanceConfig config;
  config.num_slots = 6;
  config.max_paths = 3;
  return SpmInstance(diamond(), std::move(requests), config);
}

// --------------------------------------------------------------- shapes ---

TEST(Builder, RlSpmShape) {
  const SpmInstance instance = tiny_instance();
  const SpmModel model = build_rl_spm(instance);
  // x vars: 2 + 2 + 1 paths; c vars: 4 edges.
  EXPECT_EQ(model.problem.num_variables(), 5 + 4);
  EXPECT_EQ(static_cast<int>(model.x_columns().size()), 5);
  EXPECT_EQ(static_cast<int>(model.integer_columns().size()), 9);
  EXPECT_EQ(model.problem.sense(), lp::Sense::Minimize);
  // The objective touches only c columns.
  for (int col : model.x_columns()) {
    EXPECT_DOUBLE_EQ(model.problem.objective_coef(col), 0.0);
  }
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(model.problem.objective_coef(model.c_var[e]),
                     instance.topology().edge(e).price);
  }
}

TEST(Builder, BlSpmShape) {
  const SpmInstance instance = tiny_instance();
  ChargingPlan caps = ChargingPlan::none(instance.num_edges());
  caps.units.assign(instance.num_edges(), 2);
  const SpmModel model = build_bl_spm(instance, caps);
  EXPECT_EQ(model.problem.num_variables(), 5);  // x only
  EXPECT_TRUE(model.c_var.empty());
  EXPECT_EQ(model.problem.sense(), lp::Sense::Maximize);
  // Objective carries the request values.
  EXPECT_DOUBLE_EQ(model.problem.objective_coef(model.x_var[0][0]), 5.0);
  EXPECT_DOUBLE_EQ(model.problem.objective_coef(model.x_var[2][0]), 2.0);
}

TEST(Builder, BlSpmValidatesCapacitySize) {
  const SpmInstance instance = tiny_instance();
  EXPECT_THROW(build_bl_spm(instance, ChargingPlan{{1}}), std::invalid_argument);
}

TEST(Builder, AcceptedMaskExcludesRequests) {
  const SpmInstance instance = tiny_instance();
  const std::vector<bool> accepted = {true, false, true};
  const SpmModel model = build_rl_spm(instance, accepted);
  EXPECT_EQ(static_cast<int>(model.x_columns().size()), 3);  // 2 + 1 paths
  EXPECT_EQ(model.x_var[1][0], -1);
}

TEST(Builder, BadMaskSizeThrows) {
  const SpmInstance instance = tiny_instance();
  EXPECT_THROW(build_rl_spm(instance, std::vector<bool>{true}),
               std::invalid_argument);
}

// ----------------------------------------------------- LP relaxations -----

TEST(Builder, RlSpmRelaxationLowerBoundsCost) {
  const SpmInstance instance = tiny_instance();
  const SpmModel model = build_rl_spm(instance);
  const lp::LpSolution sol = lp::SimplexSolver().solve(model.problem);
  ASSERT_TRUE(sol.ok());
  // Cheapest conceivable: all three on price-2 route 0->1->3 needs at least
  // 1 unit on two edges = 2; LP can be fractional but >= some positive cost.
  EXPECT_GT(sol.objective, 0.0);
  EXPECT_LE(sol.objective, 8.0);  // sanity ceiling (expensive route cost)
  // Assignment rows hold: each accepted request fully routed.
  for (int i = 0; i < instance.num_requests(); ++i) {
    double total = 0;
    for (int j = 0; j < instance.num_paths(i); ++j) {
      total += sol.x[model.x_var[i][j]];
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(Builder, BlSpmRelaxationBoundedByTotalValue) {
  const SpmInstance instance = tiny_instance();
  ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 10);
  const SpmModel model = build_bl_spm(instance, caps);
  const lp::LpSolution sol = lp::SimplexSolver().solve(model.problem);
  ASSERT_TRUE(sol.ok());
  // Ample capacity: everything fits, revenue = total value = 11.
  EXPECT_NEAR(sol.objective, 11.0, 1e-6);
}

TEST(Builder, BlSpmZeroCapacityForcesDecline) {
  const SpmInstance instance = tiny_instance();
  const ChargingPlan caps = ChargingPlan::none(instance.num_edges());
  const SpmModel model = build_bl_spm(instance, caps);
  const lp::LpSolution sol = lp::SimplexSolver().solve(model.problem);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 0.0, 1e-6);
}

TEST(Builder, RlSpmPurchaseCapBoundsColumns) {
  const SpmInstance instance = tiny_instance();
  // Cap every edge at 1 unit: the c columns get hard upper bounds and the
  // LP still routes everything (loads fit in one unit per edge).
  const std::vector<int> caps(static_cast<std::size_t>(instance.num_edges()), 1);
  const SpmModel model = build_rl_spm(instance, {}, nullptr, &caps);
  const lp::LpSolution sol = lp::SimplexSolver().solve(model.problem);
  ASSERT_TRUE(sol.ok());
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    EXPECT_LE(sol.x[model.c_var[e]], 1.0 + 1e-9);
  }
  // Entry -1 = uncapacitated; wrong size throws.
  const std::vector<int> open(static_cast<std::size_t>(instance.num_edges()),
                              -1);
  const SpmModel free_model = build_rl_spm(instance, {}, nullptr, &open);
  const lp::LpSolution free_sol = lp::SimplexSolver().solve(free_model.problem);
  ASSERT_TRUE(free_sol.ok());
  // All-(-1) equals the unbounded model; binding caps can only raise cost
  // (here they do: requests 1 and 2 overlap at 1.3 units, forcing the
  // expensive detour).
  const SpmModel unbounded = build_rl_spm(instance);
  const lp::LpSolution unbounded_sol =
      lp::SimplexSolver().solve(unbounded.problem);
  ASSERT_TRUE(unbounded_sol.ok());
  EXPECT_NEAR(free_sol.objective, unbounded_sol.objective, 1e-9);
  EXPECT_GE(sol.objective, free_sol.objective - 1e-9);
  const std::vector<int> short_caps(2, 1);
  EXPECT_THROW(build_rl_spm(instance, {}, nullptr, &short_caps),
               std::invalid_argument);
}

TEST(Builder, BlSpmPinnedAboveCapacityClampsToZero) {
  // Regression for the fault path: a link degrade can shrink cap_e below
  // the already-committed load.  The BL-SPM capacity row's RHS
  // (cap − pinned) used to go negative, making the whole model infeasible;
  // it must clamp to zero (free load barred from the edge, commitments
  // honored elsewhere).
  const SpmInstance instance = tiny_instance();
  LoadMatrix pinned(instance.num_edges(), instance.num_slots());
  pinned.add(0, 0, 3.0);  // committed load far above the cap below
  ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 1);
  const SpmModel model = build_bl_spm(instance, caps, {}, {}, &pinned);
  const lp::LpSolution sol = lp::SimplexSolver().solve(model.problem);
  // Feasible: the clamped row only forbids *new* load on the shrunk edge.
  ASSERT_TRUE(sol.ok());
}

// ------------------------------------------------------ exact (B&B) ------

TEST(Builder, SpmIlpFindsProfitablePlan) {
  const SpmInstance instance = tiny_instance();
  const SpmModel model = build_spm(instance);
  const lp::MipResult mip =
      lp::MipSolver().solve(model.problem, model.integer_columns());
  ASSERT_TRUE(mip.ok());
  const Schedule schedule = schedule_from_solution(instance, model, mip.x);
  const ChargingPlan plan = plan_from_solution(instance, model, mip.x);
  const ProfitBreakdown pb = evaluate_with_plan(instance, schedule, plan);
  EXPECT_NEAR(pb.profit, mip.objective, 1e-5);
  EXPECT_GT(pb.profit, 0.0);
  // The tiny instance is profitable enough that OPT accepts everything on
  // the cheap route: revenue 11, cost 2 units x 2 edges x price 1 = 4.
  EXPECT_NEAR(pb.profit, 7.0, 1e-5);
}

TEST(Builder, RlSpmIlpCostAtLeastLpBound) {
  const SpmInstance instance = tiny_instance();
  const SpmModel model = build_rl_spm(instance);
  const lp::LpSolution lp_sol = lp::SimplexSolver().solve(model.problem);
  const lp::MipResult mip =
      lp::MipSolver().solve(model.problem, model.integer_columns());
  ASSERT_TRUE(lp_sol.ok());
  ASSERT_TRUE(mip.ok());
  EXPECT_GE(mip.objective, lp_sol.objective - 1e-6);
  const Schedule schedule = schedule_from_solution(instance, model, mip.x);
  EXPECT_EQ(schedule.num_accepted(), instance.num_requests());
}

// -------------------------------------------------- solution extraction --

TEST(Builder, ScheduleFromSolutionThreshold) {
  const SpmInstance instance = tiny_instance();
  const SpmModel model = build_rl_spm(instance);
  std::vector<double> x(model.problem.num_variables(), 0.0);
  x[model.x_var[0][1]] = 1.0;
  x[model.x_var[2][0]] = 0.9;
  // request 1 fractional below threshold everywhere -> declined.
  x[model.x_var[1][0]] = 0.4;
  x[model.x_var[1][1]] = 0.4;
  const Schedule schedule = schedule_from_solution(instance, model, x);
  EXPECT_EQ(schedule.path_choice[0], 1);
  EXPECT_EQ(schedule.path_choice[1], kDeclined);
  EXPECT_EQ(schedule.path_choice[2], 0);
}

TEST(Builder, PlanFromSolutionRoundsC) {
  const SpmInstance instance = tiny_instance();
  const SpmModel model = build_rl_spm(instance);
  std::vector<double> x(model.problem.num_variables(), 0.0);
  x[model.c_var[0]] = 2.0000001;
  x[model.c_var[3]] = 0.9999999;
  const ChargingPlan plan = plan_from_solution(instance, model, x);
  EXPECT_EQ(plan.units[0], 2);
  EXPECT_EQ(plan.units[3], 1);
  EXPECT_EQ(plan.units[1], 0);
}

TEST(Builder, CostWeightLowersPathCoefficients) {
  const SpmInstance instance = tiny_instance();
  ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 5);
  BlSpmOptions options;
  options.cost_weight = 1.0;
  const SpmModel plain = build_bl_spm(instance, caps);
  const SpmModel aware = build_bl_spm(instance, caps, {}, options);
  for (int i = 0; i < instance.num_requests(); ++i) {
    for (int j = 0; j < instance.num_paths(i); ++j) {
      const double c_plain = plain.problem.objective_coef(plain.x_var[i][j]);
      const double c_aware = aware.problem.objective_coef(aware.x_var[i][j]);
      EXPECT_LT(c_aware, c_plain);  // footprint subtracted
      // Expensive paths are penalized more than cheap ones.
    }
    if (instance.num_paths(i) >= 2) {
      const double cheap = aware.problem.objective_coef(aware.x_var[i][0]);
      const double dear = aware.problem.objective_coef(aware.x_var[i][1]);
      EXPECT_GE(cheap, dear);  // Yen order: path 0 is the cheapest
    }
  }
}

TEST(Builder, CostWeightNegativeThrows) {
  const SpmInstance instance = tiny_instance();
  ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 5);
  BlSpmOptions bad;
  bad.cost_weight = -0.5;
  EXPECT_THROW(build_bl_spm(instance, caps, {}, bad), std::invalid_argument);
}

TEST(Builder, ColumnsFromDecisionRoundTrips) {
  const SpmInstance instance = tiny_instance();
  const SpmModel model = build_spm(instance);
  Schedule schedule = Schedule::all_declined(instance.num_requests());
  schedule.path_choice[0] = 1;
  schedule.path_choice[2] = 0;
  const std::vector<double> cols = columns_from_decision(instance, model, schedule);
  // x side: schedule_from_solution inverts it.
  const Schedule back = schedule_from_solution(instance, model, cols);
  EXPECT_EQ(back.path_choice, schedule.path_choice);
  // c side: matches the ceiled loads.
  const ChargingPlan expected =
      charging_from_loads(compute_loads(instance, schedule));
  const ChargingPlan plan = plan_from_solution(instance, model, cols);
  EXPECT_EQ(plan.units, expected.units);
  // And the encoded point is feasible for the model.
  EXPECT_TRUE(model.problem.is_feasible(cols, 1e-9));
}

TEST(Builder, ColumnsFromDecisionRejectsMaskedRequests) {
  const SpmInstance instance = tiny_instance();
  const std::vector<bool> accepted = {true, false, true};
  const SpmModel model = build_rl_spm(instance, accepted);
  Schedule schedule = Schedule::all_declined(instance.num_requests());
  schedule.path_choice[1] = 0;  // request 1 is outside the model
  EXPECT_THROW(columns_from_decision(instance, model, schedule),
               std::invalid_argument);
}

TEST(Builder, CapRowMapsEdgesAndSlots) {
  const SpmInstance instance = tiny_instance();
  ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 2);
  const SpmModel model = build_bl_spm(instance, caps);
  ASSERT_EQ(static_cast<int>(model.cap_row.size()), instance.num_edges());
  int rows_found = 0;
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    ASSERT_EQ(static_cast<int>(model.cap_row[e].size()), instance.num_slots());
    for (int t = 0; t < instance.num_slots(); ++t) {
      const int row = model.cap_row[e][t];
      if (row < 0) continue;
      ++rows_found;
      // The mapped row really is the (e, t) capacity constraint: rhs is the
      // edge capacity and all entries are request rates of slot-t-active
      // requests whose paths use e.
      const lp::Row& r = model.problem.row(row);
      EXPECT_EQ(r.type, lp::RowType::LessEqual);
      EXPECT_DOUBLE_EQ(r.rhs, 2.0);
      for (const lp::RowEntry& entry : r.entries) {
        bool matched = false;
        for (int i = 0; i < instance.num_requests() && !matched; ++i) {
          for (int j = 0; j < instance.num_paths(i) && !matched; ++j) {
            if (model.x_var[i][j] == entry.col) {
              matched = true;
              EXPECT_TRUE(instance.request(i).active_at(t));
              EXPECT_TRUE(instance.path_uses_edge(i, j, e));
              EXPECT_DOUBLE_EQ(entry.coef, instance.request(i).rate);
            }
          }
        }
        EXPECT_TRUE(matched) << "row entry not an x column";
      }
    }
  }
  EXPECT_GT(rows_found, 0);
}

TEST(Builder, CapacityDualsAreShadowPrices) {
  // Pin a single bottleneck: one edge, two requests, one unit: the dual of
  // the binding slot equals the marginal revenue of relaxing it (the value
  // of the displaced request per unit of its rate).
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 0, 1.0, 6.0},
      {0, 1, 0, 0, 1.0, 2.0},
  };
  InstanceConfig config;
  config.num_slots = 1;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  ChargingPlan caps;
  caps.units = {1};
  const SpmModel model = build_bl_spm(instance, caps);
  const lp::LpSolution sol = lp::SimplexSolver().solve(model.problem);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 6.0, 1e-6);  // only the high bid fits
  const int row = model.cap_row[0][0];
  ASSERT_GE(row, 0);
  // One more unit admits the displaced bid worth 2 (its rate is 1).
  EXPECT_NEAR(std::abs(sol.duals[row]), 2.0, 1e-6);
}

TEST(Builder, PlanFromSolutionRequiresCVars) {
  const SpmInstance instance = tiny_instance();
  ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 1);
  const SpmModel model = build_bl_spm(instance, caps);
  const std::vector<double> x(model.problem.num_variables(), 0.0);
  EXPECT_THROW(plan_from_solution(instance, model, x), std::invalid_argument);
}

}  // namespace
}  // namespace metis::core
