// Stress tests of the simplex solver on harder LPs than the unit suite:
// larger random programs (certified by KKT), heavy degeneracy, extreme
// coefficient magnitudes, and the real SPM relaxations at bench scale.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lp_builder.h"
#include "lp/presolve.h"
#include "lp/simplex.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace metis::lp {
namespace {

constexpr double kTol = 1e-5;

LinearProblem doubling_chain(int length);  // defined below

/// Condensed KKT certificate (same logic as test_lp_simplex, tolerances
/// loosened for larger/badly-scaled systems).
void expect_kkt(const LinearProblem& problem, const LpSolution& sol,
                double tol) {
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_TRUE(problem.is_feasible(sol.x, tol));
  const double sign = problem.sense() == Sense::Minimize ? 1.0 : -1.0;
  std::vector<double> d(problem.num_variables());
  for (int j = 0; j < problem.num_variables(); ++j) {
    d[j] = sign * problem.objective_coef(j);
  }
  for (int r = 0; r < problem.num_rows(); ++r) {
    const double y = sign * sol.duals[r];
    for (const RowEntry& e : problem.row(r).entries) {
      d[e.col] -= y * e.coef;
    }
  }
  for (int j = 0; j < problem.num_variables(); ++j) {
    const double lb = problem.lower_bound(j);
    const double ub = problem.upper_bound(j);
    const double xj = sol.x[j];
    const bool at_lower = std::isfinite(lb) && xj <= lb + tol;
    const bool at_upper = std::isfinite(ub) && xj >= ub - tol;
    if (at_lower && at_upper) continue;
    if (at_lower) {
      EXPECT_GE(d[j], -10 * tol) << "col " << j;
    } else if (at_upper) {
      EXPECT_LE(d[j], 10 * tol) << "col " << j;
    } else {
      EXPECT_NEAR(d[j], 0, 10 * tol) << "col " << j;
    }
  }
}

class LargeRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(LargeRandomLp, SolvedAndCertified) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 265443u + 97);
  const int n = rng.uniform_int(20, 40);
  const int m = rng.uniform_int(20, 60);
  LinearProblem p(rng.bernoulli(0.5) ? Sense::Minimize : Sense::Maximize);
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    const double lb = rng.uniform(-10, 0);
    const double ub = rng.uniform(0.5, 10);
    p.add_variable(lb, ub, rng.uniform(-5, 5));
    x0[j] = rng.uniform(lb, ub);
  }
  for (int r = 0; r < m; ++r) {
    std::vector<RowEntry> entries;
    double activity = 0;
    for (int j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.3)) continue;
      const double coef = rng.uniform(-3, 3);
      entries.push_back({j, coef});
      activity += coef * x0[j];
    }
    if (entries.empty()) continue;
    const double margin = rng.uniform(0, 1);
    switch (rng.uniform_int(0, 2)) {
      case 0: p.add_row(RowType::LessEqual, activity + margin, entries); break;
      case 1: p.add_row(RowType::GreaterEqual, activity - margin, entries); break;
      default: p.add_row(RowType::Equal, activity, entries); break;
    }
  }
  const LpSolution sol = SimplexSolver().solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal) << "seed " << GetParam();
  expect_kkt(p, sol, kTol);
  const double witness = p.objective_value(x0);
  if (p.sense() == Sense::Minimize) {
    EXPECT_LE(sol.objective, witness + kTol);
  } else {
    EXPECT_GE(sol.objective, witness - kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LargeRandomLp, ::testing::Range(0, 25));

TEST(SimplexStress, HeavyDegeneracy) {
  // Many coincident constraints through the optimum: classic cycling bait.
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, kInfinity, 1);
  const int y = p.add_variable(0, kInfinity, 1);
  const int z = p.add_variable(0, kInfinity, 1);
  for (int i = 1; i <= 12; ++i) {
    p.add_row(RowType::LessEqual, 6,
              {{x, static_cast<double>(i)},
               {y, static_cast<double>(i)},
               {z, static_cast<double>(i)}});
  }
  p.add_row(RowType::LessEqual, 6, {{x, 1}, {y, 2}, {z, 3}});
  const LpSolution sol = SimplexSolver().solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  // Tightest cover: 12(x+y+z) <= 6 => x+y+z <= 0.5.
  EXPECT_NEAR(sol.objective, 0.5, 1e-6);
}

TEST(SimplexStress, ExtremeCoefficientScales) {
  // Mixed magnitudes spanning 8 orders: min cx st big*x + small*y >= b.
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(0, kInfinity, 1e4);
  const int y = p.add_variable(0, kInfinity, 1e-3);
  p.add_row(RowType::GreaterEqual, 5, {{x, 1e4}, {y, 1e-4}});
  const LpSolution sol = SimplexSolver().solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  // Either buy 5e-4 of x (cost 5) or 5e4 of y (cost 50): x wins.
  EXPECT_NEAR(sol.objective, 5.0, 1e-4);
}

TEST(SimplexStress, EquilibrationScalingAgreesWithDirectSolve) {
  // Opt-in scaling must not change verdicts or optima; sweep random LPs.
  Rng rng(424242);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.uniform_int(2, 6);
    LinearProblem p(rng.bernoulli(0.5) ? Sense::Minimize : Sense::Maximize);
    std::vector<double> x0(n);
    for (int j = 0; j < n; ++j) {
      const double lb = rng.uniform(-3, 0);
      const double ub = rng.uniform(0.5, 4);
      // Badly scaled objective on purpose.
      p.add_variable(lb, ub, rng.uniform(-2, 2) * std::pow(10, rng.uniform_int(-3, 3)));
      x0[j] = rng.uniform(lb, ub);
    }
    for (int r = 0; r < 5; ++r) {
      std::vector<RowEntry> entries;
      double activity = 0;
      for (int j = 0; j < n; ++j) {
        if (!rng.bernoulli(0.6)) continue;
        const double coef =
            rng.uniform(-2, 2) * std::pow(10, rng.uniform_int(-3, 3));
        entries.push_back({j, coef});
        activity += coef * x0[j];
      }
      if (entries.empty()) continue;
      p.add_row(RowType::LessEqual, activity + rng.uniform(0, 1), entries);
    }
    SimplexOptions scaled;
    scaled.scale = true;
    const LpSolution direct = SimplexSolver().solve(p);
    const LpSolution via = SimplexSolver(scaled).solve(p);
    ASSERT_EQ(direct.status, SolveStatus::Optimal) << "trial " << trial;
    ASSERT_EQ(via.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(direct.objective, via.objective,
                1e-4 * (1 + std::abs(direct.objective)))
        << "trial " << trial;
    EXPECT_TRUE(p.is_feasible(via.x, 1e-5));
  }
}

TEST(SimplexStress, ScalingExtendsConditioningReach) {
  // With equilibration on, the doubling chain solves a little further than
  // the bare solver manages (the coefficients themselves are fine, so the
  // gain is modest — presolve remains the real answer, see below).
  const LinearProblem p = doubling_chain(22);
  SimplexOptions scaled;
  scaled.scale = true;
  const LpSolution sol = SimplexSolver(scaled).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, std::pow(2.0, 22), 1e-2);
}

LinearProblem doubling_chain(int length) {
  // x_0 = 1, x_{i+1} = 2 x_i: the value doubles through `length` equalities,
  // so the solution spans 2^length while every coefficient is 1 or 2 — an
  // intrinsically ill-conditioned system that no equilibration can fix.
  LinearProblem p(Sense::Minimize);
  std::vector<int> cols;
  for (int i = 0; i <= length; ++i) {
    cols.push_back(
        p.add_variable(-kInfinity, kInfinity, i == length ? 1.0 : 0.0));
  }
  p.add_row(RowType::Equal, 1, {{cols[0], 1}});
  for (int i = 0; i < length; ++i) {
    p.add_row(RowType::Equal, 0, {{cols[i + 1], 1}, {cols[i], -2}});
  }
  return p;
}

TEST(SimplexStress, DoublingChainWithinConditioningLimit) {
  // The bare simplex handles ~6 orders of magnitude of solution spread.
  const LinearProblem p = doubling_chain(20);
  const LpSolution sol = SimplexSolver().solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, std::pow(2.0, 20), 1e-3);
}

TEST(SimplexStress, DoublingChainBeyondLimitNeedsPresolve) {
  // At 2^30 the phase-1 reduced costs shrink below any safe pricing
  // tolerance — the textbook case for presolve, whose singleton-equality
  // substitution eliminates the chain entirely in exact arithmetic.
  const LinearProblem p = doubling_chain(30);
  const PresolveResult pr = presolve(p);
  ASSERT_FALSE(pr.infeasible);
  EXPECT_EQ(pr.reduced.num_variables(), 0);  // fully eliminated
  EXPECT_EQ(pr.reduced.num_rows(), 0);
  EXPECT_NEAR(pr.objective_offset, std::pow(2.0, 30), 1.0);
  EXPECT_NEAR(pr.fixed_value.back(), std::pow(2.0, 30), 1.0);
}

TEST(SimplexStress, BenchScaleRlSpmCertified) {
  // The real K=200 B4 relaxation (the workhorse LP of every figure),
  // certified by KKT rather than just trusted.
  sim::Scenario scenario;
  scenario.network = sim::Network::B4;
  scenario.num_requests = 200;
  scenario.seed = 3;
  const core::SpmInstance instance = sim::make_instance(scenario);
  const core::SpmModel model = core::build_rl_spm(instance);
  const LpSolution sol = SimplexSolver().solve(model.problem);
  expect_kkt(model.problem, sol, 1e-5);
}

TEST(SimplexStress, PresolvedBenchScaleAgrees) {
  sim::Scenario scenario;
  scenario.network = sim::Network::B4;
  scenario.num_requests = 150;
  scenario.seed = 5;
  const core::SpmInstance instance = sim::make_instance(scenario);
  const core::SpmModel model = core::build_rl_spm(instance);
  const PresolveResult pr = presolve(model.problem);
  ASSERT_FALSE(pr.infeasible);
  const LpSolution direct = SimplexSolver().solve(model.problem);
  const LpSolution reduced = SimplexSolver().solve(pr.reduced);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(reduced.ok());
  EXPECT_NEAR(direct.objective, reduced.objective + pr.objective_offset, 1e-4);
}

}  // namespace
}  // namespace metis::lp
