// Tests for the pessimistic estimator: the incremental log-space
// implementation is cross-checked against an independent brute-force
// recomputation of u_root, and the conditional-probability invariant
// (min over choices <= current value) is verified along whole walks.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/estimator.h"
#include "core/instance.h"
#include "net/topologies.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace metis::core {
namespace {

struct Fixture {
  SpmInstance instance;
  ChargingPlan caps;
  std::vector<std::vector<double>> x_hat;  // unscaled fractional solution
  std::vector<bool> accepted;
  PessimisticEstimator::Config config;
};

Fixture make_fixture(std::uint64_t seed, int num_requests) {
  net::Topology topo = net::make_sub_b4();
  workload::GeneratorConfig gen_config;
  const workload::RequestGenerator gen(topo, gen_config);
  Rng rng(seed);
  auto requests = gen.generate(num_requests, rng);
  SpmInstance instance(std::move(topo), std::move(requests), {});

  Fixture f{std::move(instance), {}, {}, {}, {}};
  f.caps.units.assign(f.instance.num_edges(), 3);
  f.accepted.assign(f.instance.num_requests(), true);
  // Random fractional solution with sum <= 1 per request.
  f.x_hat.resize(f.instance.num_requests());
  for (int i = 0; i < f.instance.num_requests(); ++i) {
    f.x_hat[i].assign(f.instance.num_paths(i), 0.0);
    double remaining = 1.0;
    for (int j = 0; j < f.instance.num_paths(i); ++j) {
      const double p = rng.uniform(0, remaining);
      f.x_hat[i][j] = p;
      remaining -= p;
    }
  }
  double r_max = 0, v_max = 0;
  for (const auto& r : f.instance.requests()) {
    r_max = std::max(r_max, r.rate);
    v_max = std::max(v_max, r.value);
  }
  f.config.mu = 0.6;
  f.config.tk = std::log(1.0 / f.config.mu);
  f.config.t0 = 0.4;
  f.config.i_b = 0.8;
  f.config.r_max = r_max;
  f.config.v_max = v_max;
  return f;
}

/// Independent slow recomputation of u_root for a partial assignment
/// (fixed[i] present => request i fixed to that choice).
double brute_u(const Fixture& f, const std::map<int, int>& fixed) {
  const SpmInstance& inst = f.instance;
  // Term set: (e,t) pairs touched by any candidate path of any participant.
  std::set<std::pair<int, int>> touched;
  for (int i = 0; i < inst.num_requests(); ++i) {
    if (!f.accepted[i]) continue;
    const auto& r = inst.request(i);
    for (int j = 0; j < inst.num_paths(i); ++j) {
      for (net::EdgeId e : inst.paths(i)[j].edges) {
        for (int t = r.start_slot; t <= r.end_slot; ++t) {
          touched.insert({e, t});
        }
      }
    }
  }
  const double mu = f.config.mu;
  // Revenue term.
  double u = 0;
  {
    double term = std::exp(f.config.t0 * f.config.i_b);
    for (int i = 0; i < inst.num_requests(); ++i) {
      if (!f.accepted[i]) continue;
      const double v = inst.request(i).value / f.config.v_max;
      const auto it = fixed.find(i);
      if (it != fixed.end()) {
        term *= it->second == kDeclined ? 1.0 : std::exp(-f.config.t0 * v);
      } else {
        double mass = 0;
        for (double x : f.x_hat[i]) mass += mu * x;
        term *= mass * std::exp(-f.config.t0 * v) + 1.0 - mass;
      }
    }
    u += term;
  }
  // Capacity terms.
  for (const auto& [e, t] : touched) {
    double term = std::exp(-f.config.tk * (f.caps.units[e] / f.config.r_max));
    for (int i = 0; i < inst.num_requests(); ++i) {
      if (!f.accepted[i]) continue;
      const auto& r = inst.request(i);
      const double rn = r.rate / f.config.r_max;
      const auto it = fixed.find(i);
      if (it != fixed.end()) {
        const int j = it->second;
        const bool on = j != kDeclined && r.active_at(t) &&
                        inst.path_uses_edge(i, j, e);
        term *= on ? std::exp(f.config.tk * rn) : 1.0;
      } else {
        double factor = 1.0;
        for (int j = 0; j < inst.num_paths(i); ++j) {
          if (r.active_at(t) && inst.path_uses_edge(i, j, e)) {
            factor += mu * f.x_hat[i][j] * (std::exp(f.config.tk * rn) - 1.0);
          }
        }
        term *= factor;
      }
    }
    u += term;
  }
  return u;
}

TEST(Estimator, InitialValueMatchesBruteForce) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Fixture f = make_fixture(seed, 8);
    PessimisticEstimator est(f.instance, f.caps, f.x_hat, f.accepted, f.config);
    const double expected = brute_u(f, {});
    EXPECT_NEAR(est.value(), expected, 1e-9 * (1 + expected)) << "seed " << seed;
  }
}

TEST(Estimator, CandidateValueMatchesBruteForce) {
  const Fixture f = make_fixture(7, 6);
  PessimisticEstimator est(f.instance, f.caps, f.x_hat, f.accepted, f.config);
  for (int i = 0; i < f.instance.num_requests(); ++i) {
    for (int j = kDeclined; j < f.instance.num_paths(i); ++j) {
      const double expected = brute_u(f, {{i, j}});
      const double got = est.candidate_value(i, j);
      EXPECT_NEAR(got, expected, 1e-9 * (1 + expected))
          << "request " << i << " choice " << j;
    }
  }
}

TEST(Estimator, FixUpdatesMatchBruteForceAlongWalk) {
  const Fixture f = make_fixture(11, 10);
  PessimisticEstimator est(f.instance, f.caps, f.x_hat, f.accepted, f.config);
  Rng rng(99);
  std::map<int, int> fixed;
  for (int i = 0; i < f.instance.num_requests(); ++i) {
    const int choice = rng.uniform_int(-1, f.instance.num_paths(i) - 1);
    // Cross-check the candidate before committing.
    std::map<int, int> trial = fixed;
    trial[i] = choice;
    EXPECT_NEAR(est.candidate_value(i, choice), brute_u(f, trial),
                1e-8 * (1 + brute_u(f, trial)));
    est.fix(i, choice);
    fixed[i] = choice;
    const double expected = brute_u(f, fixed);
    EXPECT_NEAR(est.value(), expected, 1e-8 * (1 + expected))
        << "after fixing request " << i;
  }
}

TEST(Estimator, ConditionalProbabilityInvariant) {
  // The minimum over a request's choices never exceeds the current value:
  // the current factor is the mu-weighted average of the choice factors.
  for (std::uint64_t seed : {5u, 6u, 7u, 8u}) {
    Fixture f = make_fixture(seed, 12);
    PessimisticEstimator est(f.instance, f.caps, f.x_hat, f.accepted, f.config);
    for (int i = 0; i < f.instance.num_requests(); ++i) {
      double best = est.candidate_value(i, kDeclined);
      int best_choice = kDeclined;
      for (int j = 0; j < f.instance.num_paths(i); ++j) {
        const double u = est.candidate_value(i, j);
        if (u < best) {
          best = u;
          best_choice = j;
        }
      }
      EXPECT_LE(best, est.value() + 1e-9 * (1 + est.value()))
          << "seed " << seed << " request " << i;
      est.fix(i, best_choice);
    }
  }
}

TEST(Estimator, DoubleFixThrows) {
  const Fixture f = make_fixture(13, 4);
  PessimisticEstimator est(f.instance, f.caps, f.x_hat, f.accepted, f.config);
  est.fix(0, kDeclined);
  EXPECT_THROW(est.fix(0, 0), std::invalid_argument);
  EXPECT_THROW(est.candidate_value(0, 0), std::invalid_argument);
}

TEST(Estimator, RejectsShapeMismatch) {
  const Fixture f = make_fixture(17, 4);
  std::vector<std::vector<double>> bad_x = f.x_hat;
  bad_x.pop_back();
  EXPECT_THROW(PessimisticEstimator(f.instance, f.caps, bad_x, f.accepted,
                                    f.config),
               std::invalid_argument);
  PessimisticEstimator::Config bad_config = f.config;
  bad_config.mu = 0;
  EXPECT_THROW(PessimisticEstimator(f.instance, f.caps, f.x_hat, f.accepted,
                                    bad_config),
               std::invalid_argument);
}

TEST(Estimator, SaturatedExponentsStayFiniteAndComparable) {
  // Regression for safe_exp's saturation cap.  It used to be the literal
  // 11000.0L, which is only below the overflow point of 80-bit x87 long
  // double; on platforms where long double is IEEE binary64 (MSVC, AArch64
  // macOS) exp(11000) is inf, and the incremental candidate updates then
  // compute inf - inf = NaN, destroying the conditional-probability walk.
  // The cap is now derived from numeric_limits<long double>::max(), so an
  // exponent far beyond any representable overflow point must still yield
  // values that are never NaN, and a whole derandomized walk must stay
  // well-defined.
  Fixture f = make_fixture(23, 6);
  f.config.t0 = 2e4;  // t0 * i_b beyond log(max) of every long double format
  f.config.i_b = 1.0;
  PessimisticEstimator est(f.instance, f.caps, f.x_hat, f.accepted, f.config);
  EXPECT_FALSE(std::isnan(est.value()));
  EXPECT_GT(est.value(), 0);
  for (int i = 0; i < f.instance.num_requests(); ++i) {
    double best = est.candidate_value(i, kDeclined);
    int best_choice = kDeclined;
    ASSERT_FALSE(std::isnan(best)) << "request " << i << " declined";
    for (int j = 0; j < f.instance.num_paths(i); ++j) {
      const double u = est.candidate_value(i, j);
      ASSERT_FALSE(std::isnan(u)) << "request " << i << " choice " << j;
      if (u < best) {
        best = u;
        best_choice = j;
      }
    }
    est.fix(i, best_choice);
    ASSERT_FALSE(std::isnan(est.value())) << "after fixing request " << i;
  }
}

TEST(Estimator, NonParticipantsContributeNothing) {
  Fixture f = make_fixture(19, 6);
  // Exclude half the requests; their x_hat content must be irrelevant.
  for (int i = 0; i < f.instance.num_requests(); i += 2) f.accepted[i] = false;
  PessimisticEstimator est(f.instance, f.caps, f.x_hat, f.accepted, f.config);
  EXPECT_NEAR(est.value(), brute_u(f, {}), 1e-9 * (1 + brute_u(f, {})));
}

}  // namespace
}  // namespace metis::core
