// Tests for SpmInstance construction and the accounting primitives (loads,
// ceiling, revenue/cost/profit, utilization).
#include <gtest/gtest.h>

#include "core/accounting.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "net/topologies.h"

namespace metis::core {
namespace {

/// 4-node diamond: 0->1->3 (price 1+1) and 0->2->3 (price 2+2).
net::Topology diamond() {
  net::Topology topo(4);
  topo.add_edge(0, 1, 1.0);
  topo.add_edge(1, 3, 1.0);
  topo.add_edge(0, 2, 2.0);
  topo.add_edge(2, 3, 2.0);
  return topo;
}

SpmInstance tiny_instance() {
  std::vector<workload::Request> requests = {
      {0, 3, 0, 3, 0.6, 5.0},   // slots 0..3
      {0, 3, 2, 5, 0.7, 4.0},   // overlaps at slots 2..3
      {1, 3, 1, 1, 0.3, 2.0},
  };
  InstanceConfig config;
  config.num_slots = 6;
  config.max_paths = 3;
  return SpmInstance(diamond(), std::move(requests), config);
}

// ----------------------------------------------------------- instance ----

TEST(Instance, PrecomputesCandidatePaths) {
  const SpmInstance instance = tiny_instance();
  EXPECT_EQ(instance.num_requests(), 3);
  EXPECT_EQ(instance.num_paths(0), 2);  // two disjoint 0->3 routes
  EXPECT_EQ(instance.num_paths(2), 1);  // only 1->3
  // Paths are sorted by price: the cheap route first.
  const net::Path& cheapest = instance.paths(0)[0];
  EXPECT_DOUBLE_EQ(
      net::path_weight(instance.topology(), cheapest, net::PathMetric::Price),
      2.0);
}

TEST(Instance, PathUsesEdgeMatchesPathEdges) {
  const SpmInstance instance = tiny_instance();
  for (int i = 0; i < instance.num_requests(); ++i) {
    for (int j = 0; j < instance.num_paths(i); ++j) {
      std::vector<bool> expect(instance.num_edges(), false);
      for (net::EdgeId e : instance.paths(i)[j].edges) expect[e] = true;
      for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
        EXPECT_EQ(instance.path_uses_edge(i, j, e), expect[e]);
      }
    }
  }
}

TEST(Instance, RejectsDisconnectedRequests) {
  net::Topology topo(3);
  topo.add_edge(0, 1, 1);
  std::vector<workload::Request> requests = {{0, 2, 0, 1, 0.1, 1.0}};
  EXPECT_THROW(SpmInstance(std::move(topo), std::move(requests)),
               std::invalid_argument);
}

TEST(Instance, RejectsInvalidRequests) {
  std::vector<workload::Request> requests = {{0, 3, 0, 20, 0.1, 1.0}};
  InstanceConfig config;
  config.num_slots = 6;
  EXPECT_THROW(SpmInstance(diamond(), std::move(requests), config),
               std::invalid_argument);
}

TEST(Instance, RejectsBadConfig) {
  InstanceConfig config;
  config.num_slots = 0;
  EXPECT_THROW(SpmInstance(diamond(), {}, config), std::invalid_argument);
  config = {};
  config.max_paths = 0;
  EXPECT_THROW(SpmInstance(diamond(), {}, config), std::invalid_argument);
}

// ----------------------------------------------------------- schedule ----

TEST(Schedule, AcceptanceCounting) {
  Schedule s = Schedule::all_declined(3);
  EXPECT_EQ(s.num_accepted(), 0);
  s.path_choice[1] = 0;
  EXPECT_EQ(s.num_accepted(), 1);
  EXPECT_FALSE(s.accepted(0));
  EXPECT_TRUE(s.accepted(1));
}

TEST(Schedule, ShapeValidation) {
  const SpmInstance instance = tiny_instance();
  Schedule s = Schedule::all_declined(2);  // wrong size
  EXPECT_THROW(validate_shape(instance, s), std::invalid_argument);
  s = Schedule::all_declined(3);
  s.path_choice[2] = 5;  // request 2 has one path
  EXPECT_THROW(validate_shape(instance, s), std::invalid_argument);
  s.path_choice[2] = 0;
  validate_shape(instance, s);  // no throw
}

// -------------------------------------------------------------- loads ----

TEST(Loads, AccumulateOverWindowAndPath) {
  const SpmInstance instance = tiny_instance();
  Schedule s = Schedule::all_declined(3);
  s.path_choice[0] = 0;  // request 0 on cheap route 0->1->3
  s.path_choice[1] = 0;  // request 1 too
  const LoadMatrix loads = compute_loads(instance, s);

  const net::EdgeId e01 = instance.topology().find_edge(0, 1);
  const net::EdgeId e13 = instance.topology().find_edge(1, 3);
  const net::EdgeId e02 = instance.topology().find_edge(0, 2);
  // Slot 1: only request 0 active.
  EXPECT_NEAR(loads.at(e01, 1), 0.6, 1e-12);
  // Slots 2-3: both active.
  EXPECT_NEAR(loads.at(e01, 2), 1.3, 1e-12);
  EXPECT_NEAR(loads.at(e13, 3), 1.3, 1e-12);
  // Slot 4-5: only request 1.
  EXPECT_NEAR(loads.at(e01, 5), 0.7, 1e-12);
  // Unused route carries nothing.
  EXPECT_DOUBLE_EQ(loads.at(e02, 2), 0.0);
  // Peak and mean.
  EXPECT_NEAR(loads.peak(e01), 1.3, 1e-12);
  EXPECT_NEAR(loads.mean(e01), (0.6 * 2 + 1.3 * 2 + 0.7 * 2) / 6, 1e-12);
}

TEST(Loads, DeclinedRequestsContributeNothing) {
  const SpmInstance instance = tiny_instance();
  const Schedule s = Schedule::all_declined(3);
  const LoadMatrix loads = compute_loads(instance, s);
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(loads.peak(e), 0.0);
  }
}

// ------------------------------------------------------------ ceiling ----

TEST(Charging, CeilsPeakLoads) {
  const SpmInstance instance = tiny_instance();
  Schedule s = Schedule::all_declined(3);
  s.path_choice[0] = 0;
  s.path_choice[1] = 0;
  const ChargingPlan plan = charging_from_loads(compute_loads(instance, s));
  const net::EdgeId e01 = instance.topology().find_edge(0, 1);
  EXPECT_EQ(plan.units[e01], 2);  // peak 1.3 -> 2 units
  const net::EdgeId e02 = instance.topology().find_edge(0, 2);
  EXPECT_EQ(plan.units[e02], 0);
  EXPECT_EQ(plan.total_units(), 4);  // 2 units on each of the two used edges
}

TEST(Charging, ChargedUnitsHelperMatchesCeilingRule) {
  // The single shared guard: ceil with a 1e-9 backoff.
  EXPECT_EQ(charged_units(0.0), 0);
  EXPECT_EQ(charged_units(1e-12), 0);    // below the backoff: nothing owed
  EXPECT_EQ(charged_units(0.3), 1);
  EXPECT_EQ(charged_units(1.0), 1);
  EXPECT_EQ(charged_units(1.0000000001), 1);  // float-accumulation slack
  EXPECT_EQ(charged_units(1.1), 2);
  EXPECT_EQ(charged_units(2.0), 2);
  EXPECT_EQ(charged_units(7.5), 8);
}

TEST(Charging, PlanUsesChargedUnitsPerEdge) {
  // charging_from_loads and the helper must agree bit-for-bit: the Metis SP
  // updater estimates savings with charged_units and must never drift from
  // the billed plan.
  const SpmInstance instance = tiny_instance();
  Schedule s = Schedule::all_declined(3);
  s.path_choice[0] = 0;
  s.path_choice[1] = 1;
  s.path_choice[2] = 0;
  const LoadMatrix loads = compute_loads(instance, s);
  const ChargingPlan plan = charging_from_loads(loads);
  for (net::EdgeId e = 0; e < instance.num_edges(); ++e) {
    EXPECT_EQ(plan.units[e], charged_units(loads.peak(e))) << "edge " << e;
  }
}

TEST(Charging, ExactIntegerPeakNotOvercharged) {
  // A rate summing to exactly 1.0 must charge 1 unit, not 2.
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 0, 0.5, 1.0}, {0, 1, 0, 0, 0.5, 1.0}};
  InstanceConfig config;
  config.num_slots = 2;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule s = Schedule::all_declined(2);
  s.path_choice[0] = 0;
  s.path_choice[1] = 0;
  const ChargingPlan plan = charging_from_loads(compute_loads(instance, s));
  EXPECT_EQ(plan.units[0], 1);
}

// ------------------------------------------------ revenue/cost/profit ----

TEST(Accounting, RevenueSumsAcceptedValues) {
  const SpmInstance instance = tiny_instance();
  Schedule s = Schedule::all_declined(3);
  EXPECT_DOUBLE_EQ(revenue(instance, s), 0.0);
  s.path_choice[0] = 0;
  s.path_choice[2] = 0;
  EXPECT_DOUBLE_EQ(revenue(instance, s), 7.0);
}

TEST(Accounting, CostWeightsUnitsByPrice) {
  const SpmInstance instance = tiny_instance();
  ChargingPlan plan = ChargingPlan::none(instance.num_edges());
  plan.units[instance.topology().find_edge(0, 2)] = 3;  // price 2
  plan.units[instance.topology().find_edge(0, 1)] = 1;  // price 1
  EXPECT_DOUBLE_EQ(cost(instance.topology(), plan), 7.0);
}

TEST(Accounting, CostValidatesPlanSize) {
  const SpmInstance instance = tiny_instance();
  EXPECT_THROW(cost(instance.topology(), ChargingPlan{{1, 2}}),
               std::invalid_argument);
}

TEST(Accounting, EvaluateDerivesProfit) {
  const SpmInstance instance = tiny_instance();
  Schedule s = Schedule::all_declined(3);
  s.path_choice[0] = 0;
  const ProfitBreakdown pb = evaluate(instance, s);
  EXPECT_DOUBLE_EQ(pb.revenue, 5.0);
  // One unit on each of 0->1 (price 1) and 1->3 (price 1).
  EXPECT_DOUBLE_EQ(pb.cost, 2.0);
  EXPECT_DOUBLE_EQ(pb.profit, 3.0);
  EXPECT_EQ(pb.accepted, 1);
}

TEST(Accounting, UtilizationSummary) {
  const SpmInstance instance = tiny_instance();
  Schedule s = Schedule::all_declined(3);
  s.path_choice[0] = 0;  // 0.6 units over slots 0..3 on two edges
  const ChargingPlan plan = charging_from_loads(compute_loads(instance, s));
  const Summary util = utilization_summary(instance, s, plan);
  EXPECT_EQ(util.count, 2u);  // two purchased edges
  // mean load = 0.6*4/6 = 0.4 over 1 unit on both edges.
  EXPECT_NEAR(util.mean, 0.4, 1e-12);
  EXPECT_NEAR(util.min, 0.4, 1e-12);
  EXPECT_NEAR(util.max, 0.4, 1e-12);
}

TEST(Loads, FullCycleRequestLoadsEverySlot) {
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {{0, 1, 0, 11, 0.3, 1.0}};
  InstanceConfig config;
  config.num_slots = 12;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule s = Schedule::all_declined(1);
  s.path_choice[0] = 0;
  const LoadMatrix loads = compute_loads(instance, s);
  for (int t = 0; t < 12; ++t) {
    EXPECT_NEAR(loads.at(0, t), 0.3, 1e-12);
  }
  EXPECT_NEAR(loads.mean(0), 0.3, 1e-12);
  EXPECT_NEAR(loads.peak(0), 0.3, 1e-12);
}

TEST(Loads, SingleSlotBoundaries) {
  // Requests pinned to the first and last slot of the cycle.
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 0, 0.4, 1.0},    // first slot only
      {0, 1, 11, 11, 0.7, 1.0},  // last slot only
  };
  InstanceConfig config;
  config.num_slots = 12;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule s = Schedule::all_declined(2);
  s.path_choice[0] = 0;
  s.path_choice[1] = 0;
  const LoadMatrix loads = compute_loads(instance, s);
  EXPECT_NEAR(loads.at(0, 0), 0.4, 1e-12);
  EXPECT_NEAR(loads.at(0, 11), 0.7, 1e-12);
  for (int t = 1; t < 11; ++t) {
    EXPECT_DOUBLE_EQ(loads.at(0, t), 0.0);
  }
  // The peak across disjoint windows is their max, not their sum.
  const ChargingPlan plan = charging_from_loads(loads);
  EXPECT_EQ(plan.units[0], 1);
}

TEST(Charging, LargeRateChargesMultipleUnits) {
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  std::vector<workload::Request> requests = {{0, 1, 0, 0, 3.2, 1.0}};
  InstanceConfig config;
  config.num_slots = 1;
  const SpmInstance instance(std::move(topo), std::move(requests), config);
  Schedule s = Schedule::all_declined(1);
  s.path_choice[0] = 0;
  EXPECT_EQ(charging_from_loads(compute_loads(instance, s)).units[0], 4);
}

TEST(Accounting, UtilizationEmptyWhenNothingPurchased) {
  const SpmInstance instance = tiny_instance();
  const Schedule s = Schedule::all_declined(3);
  const Summary util = utilization_summary(
      instance, s, ChargingPlan::none(instance.num_edges()));
  EXPECT_EQ(util.count, 0u);
}

}  // namespace
}  // namespace metis::core
