// Tests for the Waxman random WAN generator, plus cross-module property
// sweeps: the core algorithms must stay correct on arbitrary strongly
// connected topologies, not just B4.
#include <gtest/gtest.h>

#include "core/maa.h"
#include "core/metis.h"
#include "core/taa.h"
#include "net/paths.h"
#include "net/random_wan.h"
#include "sim/validate.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace metis::net {
namespace {

TEST(RandomWan, StronglyConnected) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    RandomWanConfig config;
    config.num_nodes = 9;
    const Topology topo = random_wan(config, rng);
    for (NodeId a = 0; a < topo.num_nodes(); ++a) {
      for (NodeId b = 0; b < topo.num_nodes(); ++b) {
        if (a == b) continue;
        EXPECT_TRUE(shortest_path(topo, a, b).has_value())
            << "seed " << seed << ": " << a << " -> " << b;
      }
    }
  }
}

TEST(RandomWan, BidirectionalAndPricedWithinRange) {
  Rng rng(3);
  RandomWanConfig config;
  config.num_nodes = 12;
  config.min_price = 2.0;
  config.max_price = 5.0;
  const Topology topo = random_wan(config, rng);
  EXPECT_EQ(topo.num_edges() % 2, 0);  // links come in pairs
  for (EdgeId e = 0; e < topo.num_edges(); ++e) {
    const Edge& edge = topo.edge(e);
    EXPECT_NE(topo.find_edge(edge.dst, edge.src), -1);
    EXPECT_GE(edge.price, config.min_price);
    EXPECT_LE(edge.price, config.max_price);
  }
}

TEST(RandomWan, DeterministicInRngState) {
  RandomWanConfig config;
  config.num_nodes = 8;
  Rng a(7), b(7);
  const Topology ta = random_wan(config, a);
  const Topology tb = random_wan(config, b);
  ASSERT_EQ(ta.num_edges(), tb.num_edges());
  for (EdgeId e = 0; e < ta.num_edges(); ++e) {
    EXPECT_EQ(ta.edge(e).src, tb.edge(e).src);
    EXPECT_EQ(ta.edge(e).dst, tb.edge(e).dst);
    EXPECT_DOUBLE_EQ(ta.edge(e).price, tb.edge(e).price);
  }
}

TEST(RandomWan, DensityGrowsWithBeta) {
  RandomWanConfig sparse, dense;
  sparse.num_nodes = dense.num_nodes = 14;
  sparse.beta = 0.15;
  dense.beta = 0.95;
  int sparse_edges = 0, dense_edges = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng r1(seed), r2(seed);
    sparse_edges += random_wan(sparse, r1).num_edges();
    dense_edges += random_wan(dense, r2).num_edges();
  }
  EXPECT_GT(dense_edges, sparse_edges);
}

TEST(RandomWan, RejectsBadConfig) {
  Rng rng(1);
  RandomWanConfig bad;
  bad.num_nodes = 1;
  EXPECT_THROW(random_wan(bad, rng), std::invalid_argument);
  bad = {};
  bad.beta = 0;
  EXPECT_THROW(random_wan(bad, rng), std::invalid_argument);
  bad = {};
  bad.beta = 1.5;
  EXPECT_THROW(random_wan(bad, rng), std::invalid_argument);
  bad = {};
  bad.min_price = 3;
  bad.max_price = 2;
  EXPECT_THROW(random_wan(bad, rng), std::invalid_argument);
}

// ------------------------ algorithms on random topologies ----------------

class AlgorithmsOnRandomWans : public ::testing::TestWithParam<int> {
 protected:
  core::SpmInstance make(std::uint64_t seed) const {
    Rng rng(seed);
    RandomWanConfig config;
    config.num_nodes = 8;
    Topology topo = random_wan(config, rng);
    const workload::RequestGenerator gen(topo, {});
    auto requests = gen.generate(40, rng);
    return core::SpmInstance(std::move(topo), std::move(requests), {});
  }
};

TEST_P(AlgorithmsOnRandomWans, MaaFeasibleAndBounded) {
  const core::SpmInstance instance = make(GetParam());
  Rng rng(GetParam() * 17 + 3);
  const core::MaaResult maa = core::run_maa(instance, rng);
  ASSERT_TRUE(maa.ok());
  EXPECT_TRUE(sim::check_plan_covers_schedule(instance, maa.schedule, maa.plan)
                  .empty());
  EXPECT_GE(maa.cost, maa.lp_cost - 1e-6);
}

TEST_P(AlgorithmsOnRandomWans, TaaFeasibleUnderTightCaps) {
  const core::SpmInstance instance = make(GetParam());
  core::ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 2);
  const core::TaaResult taa = core::run_taa(instance, caps);
  ASSERT_TRUE(taa.ok());
  EXPECT_TRUE(sim::check_schedule(instance, taa.schedule, caps).empty());
  EXPECT_LE(taa.revenue, taa.lp_revenue + 1e-6);
}

TEST_P(AlgorithmsOnRandomWans, MetisFeasibleAndNonNegative) {
  const core::SpmInstance instance = make(GetParam());
  Rng rng(GetParam() * 23 + 5);
  const core::MetisResult metis = core::run_metis(instance, rng);
  EXPECT_GE(metis.best.profit, 0);
  EXPECT_TRUE(
      sim::check_schedule(instance, metis.schedule, metis.plan).empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgorithmsOnRandomWans, ::testing::Range(1, 9));

}  // namespace
}  // namespace metis::net
