// Online admission pipeline (sim/online.h + core::run_metis_incremental):
// the streaming regime's contract with the paper's offline algorithm.
//
// The acceptance bar for the whole subsystem:
//   * one batch == offline Metis, bit for bit (same RNG stream, same LP
//     bytes, same control flow),
//   * commitments are final — later batches never flip an earlier decision,
//   * warm starts and path caching are pure accelerations (decisions are
//     identical with them off),
//   * the replay is deterministic for any rounding thread count.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/metis.h"
#include "sim/online.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace metis::sim {
namespace {

OnlineConfig small_config(std::uint64_t seed, int batch_size) {
  OnlineConfig config;
  config.base.network = Network::SubB4;
  config.base.num_requests = 24;
  config.base.seed = seed;
  config.batch_size = batch_size;
  return config;
}

void expect_same_decision(const core::Schedule& a, const core::ChargingPlan& pa,
                          double profit_a, const core::Schedule& b,
                          const core::ChargingPlan& pb, double profit_b) {
  EXPECT_EQ(a.path_choice, b.path_choice);
  EXPECT_EQ(pa.units, pb.units);
  EXPECT_EQ(profit_a, profit_b);  // bit-identical, not just close
}

TEST(OnlineAdmission, ConfigValidation) {
  EXPECT_THROW(OnlineAdmissionSimulator{small_config(1, 0)},
               std::invalid_argument);
  OnlineConfig bad_delay = small_config(1, 4);
  bad_delay.max_batch_delay = -0.5;
  EXPECT_THROW(OnlineAdmissionSimulator{bad_delay}, std::invalid_argument);
  OnlineConfig bad_rate = small_config(1, 4);
  bad_rate.arrivals_per_slot = -1.0;
  EXPECT_THROW(OnlineAdmissionSimulator{bad_rate}, std::invalid_argument);
}

TEST(OnlineAdmission, ArrivalStreamIsDeterministicAndInCycle) {
  const OnlineAdmissionSimulator simulator(small_config(3, 4));
  const auto stream = simulator.arrivals();
  ASSERT_FALSE(stream.empty());
  const auto again = simulator.arrivals();
  ASSERT_EQ(stream.size(), again.size());
  const int num_slots = simulator.config().base.instance.num_slots;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].request.value, again[i].request.value);
    EXPECT_EQ(stream[i].arrival_time, again[i].arrival_time);
    EXPECT_GE(stream[i].arrival_time, 0.0);
    EXPECT_LT(stream[i].arrival_time, static_cast<double>(num_slots));
    if (i > 0) {
      EXPECT_LE(stream[i - 1].arrival_time, stream[i].arrival_time);
    }
  }
}

TEST(OnlineAdmission, SingleBatchReproducesOfflineOracleBitIdentically) {
  const OnlineAdmissionSimulator simulator(small_config(7, 10'000));
  const OnlineResult online = simulator.run();
  const core::MetisResult offline = simulator.offline_oracle();
  ASSERT_EQ(online.batches.size(), 1u);
  EXPECT_EQ(online.total_arrivals,
            static_cast<int>(simulator.arrivals().size()));
  expect_same_decision(online.schedule, online.plan, online.profit.profit,
                       offline.schedule, offline.plan, offline.best.profit);
  EXPECT_EQ(online.profit.revenue, offline.best.revenue);
  EXPECT_EQ(online.profit.cost, offline.best.cost);
  EXPECT_EQ(online.total_accepted, offline.best.accepted);
}

TEST(OnlineAdmission, CommittedPrefixIsPreservedByLaterBatches) {
  // Core-level statement of "accepted stays accepted": re-running Metis
  // with the first C decisions pinned returns those decisions verbatim.
  const OnlineAdmissionSimulator simulator(small_config(11, 10'000));
  const core::SpmInstance instance = [&] {
    std::vector<workload::Request> book;
    for (const auto& a : simulator.arrivals()) book.push_back(a.request);
    return core::SpmInstance(make_network(simulator.config().base),
                             std::move(book),
                             simulator.config().base.instance);
  }();
  Rng rng = Rng(11).split(0);
  const core::MetisResult full = core::run_metis(instance, rng);

  const int pin = instance.num_requests() / 2;
  core::IncrementalState state;
  state.committed.assign(full.schedule.path_choice.begin(),
                         full.schedule.path_choice.begin() + pin);
  Rng rng2 = Rng(11).split(1);
  const core::MetisResult redo =
      core::run_metis_incremental(instance, state, rng2);
  ASSERT_EQ(redo.schedule.path_choice.size(), full.schedule.path_choice.size());
  for (int i = 0; i < pin; ++i) {
    EXPECT_EQ(redo.schedule.path_choice[i], full.schedule.path_choice[i])
        << "batch re-decide flipped committed request " << i;
  }
}

TEST(OnlineAdmission, EmptyCommitmentsReduceToPlainMetis) {
  const core::SpmInstance instance = make_instance(small_config(5, 1).base);
  Rng rng_a(42);
  const core::MetisResult plain = core::run_metis(instance, rng_a);
  core::IncrementalState state;  // empty committed, fresh snapshots
  Rng rng_b(42);
  const core::MetisResult incremental =
      core::run_metis_incremental(instance, state, rng_b);
  expect_same_decision(plain.schedule, plain.plan, plain.best.profit,
                       incremental.schedule, incremental.plan,
                       incremental.best.profit);
  EXPECT_EQ(plain.lp_stats.iterations, incremental.lp_stats.iterations);
}

TEST(OnlineAdmission, WarmStartsAndPathCacheNeverChangeTheDecision) {
  OnlineConfig warm_config = small_config(13, 5);
  const OnlineResult warm = OnlineAdmissionSimulator(warm_config).run();

  OnlineConfig cold_config = warm_config;
  cold_config.cross_batch_warm_start = false;
  cold_config.reuse_path_cache = false;
  const OnlineResult cold = OnlineAdmissionSimulator(cold_config).run();

  ASSERT_GT(warm.batches.size(), 1u);
  ASSERT_EQ(warm.batches.size(), cold.batches.size());
  expect_same_decision(warm.schedule, warm.plan, warm.profit.profit,
                       cold.schedule, cold.plan, cold.profit.profit);
  for (std::size_t b = 0; b < warm.batches.size(); ++b) {
    EXPECT_EQ(warm.batches[b].arrivals, cold.batches[b].arrivals);
    EXPECT_EQ(warm.batches[b].accepted, cold.batches[b].accepted);
    EXPECT_EQ(warm.batches[b].profit, cold.batches[b].profit);
  }
  // The accelerations actually engaged: cache hits after batch one, and at
  // least as many accepted warm starts as the cold configuration.
  EXPECT_GT(warm.path_cache_hits, 0u);
  EXPECT_EQ(cold.path_cache_hits + cold.path_cache_misses, 0u);
  EXPECT_GE(warm.lp_stats.warm_starts, cold.lp_stats.warm_starts);
}

TEST(OnlineAdmission, DeterministicForAnyRoundingThreadCount) {
  OnlineConfig serial = small_config(17, 4);
  serial.metis.maa.threads = 1;
  OnlineConfig pooled = serial;
  pooled.metis.maa.threads = 4;
  const OnlineResult a = OnlineAdmissionSimulator(serial).run();
  const OnlineResult b = OnlineAdmissionSimulator(pooled).run();
  expect_same_decision(a.schedule, a.plan, a.profit.profit, b.schedule, b.plan,
                       b.profit.profit);
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].profit, b.batches[i].profit);
  }
}

TEST(OnlineAdmission, DeadlineFlushBoundsQueueingDelay) {
  OnlineConfig config = small_config(19, 10'000);  // count never triggers
  config.max_batch_delay = 0.75;
  const OnlineAdmissionSimulator simulator(config);
  const OnlineResult result = simulator.run();
  const auto stream = simulator.arrivals();
  ASSERT_GT(result.batches.size(), 1u) << "deadline never fired";
  int covered = 0;
  for (std::size_t b = 0; b < result.batches.size(); ++b) {
    const auto& record = result.batches[b];
    ASSERT_GT(record.arrivals, 0);
    const double oldest = stream[covered].arrival_time;
    // Every batch but the cycle-end flush fires exactly at the deadline of
    // its oldest queued request; no request waits longer than the delay.
    if (b + 1 < result.batches.size()) {
      EXPECT_NEAR(record.flush_time, oldest + config.max_batch_delay, 1e-9);
    }
    EXPECT_LE(record.flush_time - oldest,
              config.base.instance.num_slots + 1e-9);
    covered += record.arrivals;
  }
  EXPECT_EQ(covered, result.total_arrivals);
  EXPECT_EQ(covered, static_cast<int>(stream.size()));
}

TEST(OnlineAdmission, ProfitIsEvaluatedOnTheCommittedBook) {
  // The reported breakdown must equal a from-scratch evaluation of the
  // final schedule on the final book (no stale per-batch accounting).
  const OnlineAdmissionSimulator simulator(small_config(23, 3));
  const OnlineResult result = simulator.run();
  std::vector<workload::Request> book;
  for (const auto& a : simulator.arrivals()) book.push_back(a.request);
  const core::SpmInstance instance(make_network(simulator.config().base),
                                   std::move(book),
                                   simulator.config().base.instance);
  const core::ProfitBreakdown check =
      core::evaluate_with_plan(instance, result.schedule, result.plan);
  EXPECT_EQ(result.profit.revenue, check.revenue);
  EXPECT_EQ(result.profit.cost, check.cost);
  EXPECT_EQ(result.profit.profit, check.profit);
  EXPECT_EQ(result.total_accepted, result.schedule.num_accepted());
}

}  // namespace
}  // namespace metis::sim
