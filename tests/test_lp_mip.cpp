// Tests for the branch & bound MIP solver, including exhaustive-enumeration
// cross-checks on random small binary programs and SUBSET-SUM instances
// (the problem the paper's NP-hardness reduction uses).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/mip.h"
#include "util/rng.h"

namespace metis::lp {
namespace {

constexpr double kTol = 1e-5;

MipResult solve(const LinearProblem& p, const std::vector<int>& ints,
                MipOptions options = {}) {
  return MipSolver(options).solve(p, ints);
}

TEST(Mip, PureLpPassThrough) {
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, 10, 3);
  p.add_row(RowType::LessEqual, 4.5, {{x, 1}});
  const MipResult r = solve(p, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 13.5, kTol);
}

TEST(Mip, SimpleIntegerRounding) {
  // max x st x <= 4.5, x integer => 4
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, 10, 1);
  p.add_row(RowType::LessEqual, 4.5, {{x, 1}});
  const MipResult r = solve(p, {x});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 4, kTol);
  EXPECT_NEAR(r.x[x], 4, kTol);
}

TEST(Mip, Knapsack) {
  // Classic: weights {2,3,4,5}, values {3,4,5,6}, cap 5 => best 7 ({2,3}).
  LinearProblem p(Sense::Maximize);
  const double w[] = {2, 3, 4, 5};
  const double v[] = {3, 4, 5, 6};
  std::vector<int> vars, ints;
  std::vector<RowEntry> entries;
  for (int i = 0; i < 4; ++i) {
    const int col = p.add_variable(0, 1, v[i]);
    vars.push_back(col);
    ints.push_back(col);
    entries.push_back({col, w[i]});
  }
  p.add_row(RowType::LessEqual, 5, entries);
  const MipResult r = solve(p, ints);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 7, kTol);
  EXPECT_EQ(r.status, SolveStatus::Optimal);
}

TEST(Mip, IntegerInfeasible) {
  // 0.4 <= x <= 0.6, x integer: no integer point.
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(0.4, 0.6, 1);
  const MipResult r = solve(p, {x});
  EXPECT_EQ(r.status, SolveStatus::Infeasible);
  EXPECT_FALSE(r.ok());
}

TEST(Mip, LpInfeasiblePropagates) {
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(0, 1, 1);
  p.add_row(RowType::GreaterEqual, 10, {{x, 1}});
  EXPECT_EQ(solve(p, {x}).status, SolveStatus::Infeasible);
}

TEST(Mip, UnboundedPropagates) {
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, kInfinity, 1);
  EXPECT_EQ(solve(p, {x}).status, SolveStatus::Unbounded);
}

TEST(Mip, EqualityWithIntegers) {
  // min x + y st 2x + 3y = 12, integers >= 0 => (0,4)->4, (3,2)->5, (6,0)->6.
  LinearProblem p(Sense::Minimize);
  const int x = p.add_variable(0, kInfinity, 1);
  const int y = p.add_variable(0, kInfinity, 1);
  p.add_row(RowType::Equal, 12, {{x, 2}, {y, 3}});
  const MipResult r = solve(p, {x, y});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 4, kTol);
}

TEST(Mip, MixedIntegerContinuous) {
  // max 2x + y st x + y <= 3.7, x integer, y continuous => x=3, y=0.7.
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, kInfinity, 2);
  const int y = p.add_variable(0, kInfinity, 1);
  p.add_row(RowType::LessEqual, 3.7, {{x, 1}, {y, 1}});
  const MipResult r = solve(p, {x});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 6.7, kTol);
  EXPECT_NEAR(r.x[x], 3, kTol);
  EXPECT_NEAR(r.x[y], 0.7, kTol);
}

TEST(Mip, SubsetSumSolvable) {
  // The paper reduces SUBSET-SUM to SPM; exercise the solver on it directly:
  // find a subset of {3, 5, 8, 13, 21} summing to 26 (5 + 8 + 13).
  LinearProblem p(Sense::Maximize);
  const double values[] = {3, 5, 8, 13, 21};
  std::vector<int> ints;
  std::vector<RowEntry> entries;
  for (double v : values) {
    const int col = p.add_variable(0, 1, 0);
    ints.push_back(col);
    entries.push_back({col, v});
  }
  p.add_row(RowType::Equal, 26, entries);
  const MipResult r = solve(p, ints);
  ASSERT_TRUE(r.ok());
  double sum = 0;
  for (std::size_t i = 0; i < 5; ++i) sum += values[i] * std::round(r.x[ints[i]]);
  EXPECT_NEAR(sum, 26, kTol);
}

TEST(Mip, SubsetSumInfeasible) {
  // No subset of {4, 6, 10} sums to 7.
  LinearProblem p(Sense::Maximize);
  const double values[] = {4, 6, 10};
  std::vector<int> ints;
  std::vector<RowEntry> entries;
  for (double v : values) {
    const int col = p.add_variable(0, 1, 0);
    ints.push_back(col);
    entries.push_back({col, v});
  }
  p.add_row(RowType::Equal, 7, entries);
  EXPECT_EQ(solve(p, ints).status, SolveStatus::Infeasible);
}

TEST(Mip, NodeLimitKeepsIncumbent) {
  // A 12-item knapsack with a 1-node budget: must still return *some*
  // incumbent (the root heuristic) flagged as NodeLimit, with bound >=
  // incumbent.
  Rng rng(5);
  LinearProblem p(Sense::Maximize);
  std::vector<int> ints;
  std::vector<RowEntry> entries;
  for (int i = 0; i < 12; ++i) {
    const int col = p.add_variable(0, 1, rng.uniform(1, 10));
    ints.push_back(col);
    entries.push_back({col, rng.uniform(1, 10)});
  }
  p.add_row(RowType::LessEqual, 15, entries);
  MipOptions options;
  options.max_nodes = 1;
  const MipResult r = solve(p, ints, options);
  if (r.has_incumbent) {
    EXPECT_GE(r.best_bound + kTol, r.objective);
  }
  EXPECT_TRUE(r.status == SolveStatus::NodeLimit ||
              r.status == SolveStatus::Optimal);
}

TEST(Mip, BadIntegerIndexThrows) {
  LinearProblem p(Sense::Minimize);
  p.add_variable(0, 1, 1);
  EXPECT_THROW(solve(p, {5}), std::invalid_argument);
}

TEST(Mip, GapReportedZeroWhenExact) {
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, 3, 1);
  const MipResult r = solve(p, {x});
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.gap(), 1e-6);
}

// ----------------------------------------------------------- warm start --

TEST(MipWarmStart, SeedBecomesIncumbentUnderZeroBudget) {
  // With a 0-node budget the solver can only return the seed.
  LinearProblem p(Sense::Maximize);
  const double w[] = {2, 3, 4, 5};
  const double v[] = {3, 4, 5, 6};
  std::vector<int> ints;
  std::vector<RowEntry> entries;
  for (int i = 0; i < 4; ++i) {
    const int col = p.add_variable(0, 1, v[i]);
    ints.push_back(col);
    entries.push_back({col, w[i]});
  }
  p.add_row(RowType::LessEqual, 5, entries);
  const std::vector<double> seed = {0, 0, 1, 0};  // value 5, feasible
  MipOptions options;
  options.max_nodes = 0;
  const MipResult r = MipSolver(options).solve(p, ints, &seed);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.objective, 5 - 1e-9);
}

TEST(MipWarmStart, ResultNeverWorseThanSeed) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    LinearProblem p(Sense::Maximize);
    std::vector<int> ints;
    std::vector<RowEntry> entries;
    for (int i = 0; i < 8; ++i) {
      const int col = p.add_variable(0, 1, rng.uniform(1, 5));
      ints.push_back(col);
      entries.push_back({col, rng.uniform(1, 4)});
    }
    p.add_row(RowType::LessEqual, 8, entries);
    // Greedy seed: take items while they fit.
    std::vector<double> seed(8, 0.0);
    double used = 0;
    for (int i = 0; i < 8; ++i) {
      if (used + entries[i].coef <= 8) {
        seed[i] = 1;
        used += entries[i].coef;
      }
    }
    ASSERT_TRUE(p.is_feasible(seed, 1e-9));
    const double seed_value = p.objective_value(seed);
    const MipResult r = MipSolver().solve(p, ints, &seed);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.objective, seed_value - 1e-9) << "trial " << trial;
  }
}

TEST(MipWarmStart, InfeasibleSeedIgnored) {
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, 1, 1);
  p.add_row(RowType::LessEqual, 0, {{x, 1}});
  const std::vector<double> bad_seed = {1.0};  // violates the row
  const MipResult r = MipSolver().solve(p, {x}, &bad_seed);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 0, 1e-9);
}

TEST(MipWarmStart, FractionalSeedIgnored) {
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, 1, 1);
  const std::vector<double> bad_seed = {0.5};
  const MipResult r = MipSolver().solve(p, {x}, &bad_seed);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 1, 1e-9);  // solved normally
}

TEST(MipWarmStart, WrongSizeSeedIgnored) {
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0, 1, 1);
  const std::vector<double> bad_seed = {1.0, 0.0};
  const MipResult r = MipSolver().solve(p, {x}, &bad_seed);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 1, 1e-9);
}

// ------------------------- exhaustive cross-check property sweep ---------

class MipVsEnumeration : public ::testing::TestWithParam<int> {};

/// Random binary programs with <= 10 variables, checked against exhaustive
/// enumeration of all 2^n assignments.
TEST_P(MipVsEnumeration, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7349u + 13);
  const int n = rng.uniform_int(2, 10);
  const int m = rng.uniform_int(1, 5);
  LinearProblem p(rng.bernoulli(0.5) ? Sense::Maximize : Sense::Minimize);
  std::vector<int> ints;
  for (int j = 0; j < n; ++j) {
    ints.push_back(p.add_variable(0, 1, rng.uniform(-5, 5)));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.6)) entries.push_back({j, rng.uniform(-3, 3)});
    }
    if (entries.empty()) continue;
    // LE rows with a slackish rhs keep a decent share feasible.
    p.add_row(rng.bernoulli(0.8) ? RowType::LessEqual : RowType::GreaterEqual,
              rng.uniform(-2, 4), entries);
  }

  // Brute force.
  bool any_feasible = false;
  double best = 0;
  std::vector<double> x(n);
  for (int mask = 0; mask < (1 << n); ++mask) {
    for (int j = 0; j < n; ++j) x[j] = (mask >> j) & 1;
    if (!p.is_feasible(x, 1e-9)) continue;
    const double obj = p.objective_value(x);
    if (!any_feasible ||
        (p.sense() == Sense::Maximize ? obj > best : obj < best)) {
      best = obj;
      any_feasible = true;
    }
  }

  const MipResult r = solve(p, ints);
  if (!any_feasible) {
    EXPECT_EQ(r.status, SolveStatus::Infeasible) << "seed " << GetParam();
  } else {
    ASSERT_TRUE(r.ok()) << "seed " << GetParam();
    EXPECT_NEAR(r.objective, best, 1e-5) << "seed " << GetParam();
    EXPECT_TRUE(p.is_feasible(r.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MipVsEnumeration, ::testing::Range(0, 50));

}  // namespace
}  // namespace metis::lp
