// Tests for the comparison baselines: MinCost, Amoeba, EcoFlow and the
// exact OPT solvers.
#include <gtest/gtest.h>

#include "baselines/amoeba.h"
#include "baselines/ecoflow.h"
#include "baselines/mincost.h"
#include "baselines/opt.h"
#include "core/accounting.h"
#include "net/paths.h"
#include "sim/scenario.h"
#include "sim/validate.h"

namespace metis::baselines {
namespace {

core::SpmInstance instance_for(std::uint64_t seed, int k,
                               sim::Network net = sim::Network::SubB4) {
  sim::Scenario s;
  s.network = net;
  s.num_requests = k;
  s.seed = seed;
  return sim::make_instance(s);
}

core::ChargingPlan uniform_caps(const core::SpmInstance& instance, int units) {
  core::ChargingPlan caps;
  caps.units.assign(instance.num_edges(), units);
  return caps;
}

// -------------------------------------------------------------- MinCost --

TEST(MinCost, AcceptsEverythingOnCheapestPath) {
  const core::SpmInstance instance = instance_for(1, 25);
  const MinCostResult result = run_mincost(instance);
  EXPECT_EQ(result.schedule.num_accepted(), instance.num_requests());
  for (int i = 0; i < instance.num_requests(); ++i) {
    const int chosen = result.schedule.path_choice[i];
    const double chosen_price = net::path_weight(
        instance.topology(), instance.paths(i)[chosen], net::PathMetric::Price);
    for (int j = 0; j < instance.num_paths(i); ++j) {
      EXPECT_LE(chosen_price,
                net::path_weight(instance.topology(), instance.paths(i)[j],
                                 net::PathMetric::Price) +
                    1e-12);
    }
  }
}

TEST(MinCost, PlanCoversLoads) {
  const core::SpmInstance instance = instance_for(2, 40, sim::Network::B4);
  const MinCostResult result = run_mincost(instance);
  EXPECT_TRUE(
      sim::check_plan_covers_schedule(instance, result.schedule, result.plan)
          .empty());
  EXPECT_NEAR(result.cost, core::cost(instance.topology(), result.plan), 1e-9);
}

// --------------------------------------------------------------- Amoeba --

class AmoebaProperty : public ::testing::TestWithParam<int> {};

TEST_P(AmoebaProperty, NeverViolatesCapacity) {
  const core::SpmInstance instance =
      instance_for(GetParam(), 80, sim::Network::B4);
  const core::ChargingPlan caps = uniform_caps(instance, 2);
  const AmoebaResult result = run_amoeba(instance, caps);
  EXPECT_TRUE(sim::check_schedule(instance, result.schedule, caps).empty());
  EXPECT_NEAR(result.revenue, core::revenue(instance, result.schedule), 1e-9);
  EXPECT_EQ(result.accepted, result.schedule.num_accepted());
}

INSTANTIATE_TEST_SUITE_P(Sweep, AmoebaProperty, ::testing::Range(1, 9));

TEST(Amoeba, MoreCapacityAcceptsMore) {
  const core::SpmInstance instance = instance_for(3, 80, sim::Network::B4);
  const AmoebaResult tight = run_amoeba(instance, uniform_caps(instance, 1));
  const AmoebaResult loose = run_amoeba(instance, uniform_caps(instance, 50));
  EXPECT_LE(tight.accepted, loose.accepted);
  EXPECT_EQ(loose.accepted, instance.num_requests());  // everything fits
}

TEST(Amoeba, ZeroCapacityDeclinesAll) {
  const core::SpmInstance instance = instance_for(4, 20);
  const AmoebaResult result = run_amoeba(instance, uniform_caps(instance, 0));
  EXPECT_EQ(result.accepted, 0);
  EXPECT_DOUBLE_EQ(result.revenue, 0);
}

TEST(Amoeba, CapacityMismatchThrows) {
  const core::SpmInstance instance = instance_for(5, 10);
  EXPECT_THROW(run_amoeba(instance, core::ChargingPlan{{1}}),
               std::invalid_argument);
}

// -------------------------------------------------------------- EcoFlow --

TEST(EcoFlow, ProfitIsNonNegativeByConstruction) {
  // Each accepted request strictly covers its incremental cost, and the
  // increments telescope to the final cost, so profit > 0 whenever anything
  // is accepted (and 0 otherwise).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const core::SpmInstance instance = instance_for(seed, 60, sim::Network::B4);
    const EcoFlowResult result = run_ecoflow(instance);
    EXPECT_GE(result.profit, -1e-9) << "seed " << seed;
    if (result.accepted > 0) {
      EXPECT_GT(result.profit, 0) << "seed " << seed;
    }
  }
}

TEST(EcoFlow, BreakdownConsistent) {
  const core::SpmInstance instance = instance_for(9, 50, sim::Network::B4);
  const EcoFlowResult result = run_ecoflow(instance);
  const core::ProfitBreakdown pb =
      core::evaluate_with_plan(instance, result.schedule, result.plan);
  EXPECT_NEAR(result.revenue, pb.revenue, 1e-9);
  EXPECT_NEAR(result.cost, pb.cost, 1e-9);
  EXPECT_NEAR(result.profit, pb.profit, 1e-9);
  EXPECT_EQ(result.accepted, pb.accepted);
  EXPECT_TRUE(
      sim::check_plan_covers_schedule(instance, result.schedule, result.plan)
          .empty());
}

TEST(EcoFlow, DeclinesWorthlessRequests) {
  // A request whose value cannot cover even one unit of the cheapest path
  // must be declined when it arrives on an empty network.
  net::Topology topo(2);
  topo.add_edge(0, 1, 10.0);  // expensive single link
  topo.add_edge(1, 0, 10.0);
  std::vector<workload::Request> requests = {{0, 1, 0, 0, 0.5, 1.0}};
  core::InstanceConfig config;
  config.num_slots = 2;
  const core::SpmInstance instance(std::move(topo), std::move(requests), config);
  const EcoFlowResult result = run_ecoflow(instance);
  EXPECT_EQ(result.accepted, 0);
}

TEST(EcoFlow, AcceptsFreeRiders) {
  // Once capacity is paid for, a second request that fits inside the same
  // charged unit has zero incremental cost and must be accepted.
  net::Topology topo(2);
  topo.add_edge(0, 1, 1.0);
  topo.add_edge(1, 0, 1.0);
  std::vector<workload::Request> requests = {
      {0, 1, 0, 0, 0.6, 5.0},   // pays for 1 unit in slot 0
      {0, 1, 1, 1, 0.6, 0.01},  // different slot: fits in the same unit
  };
  core::InstanceConfig config;
  config.num_slots = 2;
  const core::SpmInstance instance(std::move(topo), std::move(requests), config);
  const EcoFlowResult result = run_ecoflow(instance);
  EXPECT_EQ(result.accepted, 2);
  EXPECT_EQ(result.plan.units[0], 1);
}

// ------------------------------------------------------------------ OPT --

TEST(Opt, SpmProfitAtLeastRlSpmProfit) {
  // Free acceptance can never be worse than forced acceptance of all.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const core::SpmInstance instance = instance_for(seed, 12);
    const OptResult opt = run_opt_spm(instance);
    const OptResult rl = run_opt_rl_spm(instance);
    ASSERT_TRUE(opt.ok());
    ASSERT_TRUE(rl.ok());
    EXPECT_GE(opt.breakdown.profit, rl.breakdown.profit - 1e-6)
        << "seed " << seed;
  }
}

TEST(Opt, RlSpmAcceptsEverything) {
  const core::SpmInstance instance = instance_for(5, 12);
  const OptResult rl = run_opt_rl_spm(instance);
  ASSERT_TRUE(rl.ok());
  EXPECT_EQ(rl.schedule.num_accepted(), instance.num_requests());
}

TEST(Opt, SpmNeverLosesMoney) {
  // OPT(SPM) can always decline everything for profit 0.
  const core::SpmInstance instance = instance_for(6, 12);
  const OptResult opt = run_opt_spm(instance);
  ASSERT_TRUE(opt.ok());
  EXPECT_GE(opt.breakdown.profit, -1e-9);
}

TEST(Opt, ExactFlagSetOnSmallInstances) {
  const core::SpmInstance instance = instance_for(7, 8);
  const OptResult opt = run_opt_spm(instance);
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(opt.exact);
  EXPECT_EQ(opt.status, lp::SolveStatus::Optimal);
}

TEST(Opt, NodeLimitStillReturnsIncumbent) {
  const core::SpmInstance instance = instance_for(8, 20);
  lp::MipOptions options;
  options.max_nodes = 3;
  const OptResult opt = run_opt_spm(instance, options);
  // Even with a tiny budget the root heuristic usually produces something;
  // whatever comes back must be feasible and consistently labelled.
  if (opt.ok()) {
    EXPECT_TRUE(
        sim::check_plan_covers_schedule(instance, opt.schedule, opt.plan)
            .empty());
  }
  if (!opt.exact) {
    EXPECT_NE(opt.status, lp::SolveStatus::Optimal);
  }
}

TEST(Opt, ProfitMatchesReportedObjective) {
  const core::SpmInstance instance = instance_for(9, 10);
  const OptResult opt = run_opt_spm(instance);
  ASSERT_TRUE(opt.ok());
  const core::ProfitBreakdown pb =
      core::evaluate_with_plan(instance, opt.schedule, opt.plan);
  EXPECT_NEAR(pb.profit, opt.breakdown.profit, 1e-9);
}

}  // namespace
}  // namespace metis::baselines
