// Integration tests: run scaled-down versions of each figure's experiment
// driver end-to-end and assert the *shape* relations the paper reports
// (who wins, in which direction).  The full-size runs live in bench/.
#include <gtest/gtest.h>

#include "sim/experiments.h"

namespace metis::sim {
namespace {

TEST(Fig3, OrderingOptVsMetisVsAcceptAll) {
  Fig3Config config;
  config.sweep.request_counts = {16, 28};
  config.sweep.seed = 3;
  config.sweep.repetitions = 2;
  config.theta = 12;
  config.mip.max_nodes = 5000;
  config.mip.time_limit_seconds = 10;
  const auto rows = run_fig3(config);
  ASSERT_EQ(rows.size(), 2u);
  for (const Fig3Row& row : rows) {
    // OPT(SPM) is warm-started from Metis, so it dominates it even under a
    // node budget; accept-all can never beat free acceptance.
    EXPECT_GE(row.opt_spm.breakdown.profit, row.metis.breakdown.profit - 1e-6);
    EXPECT_GE(row.opt_spm.breakdown.profit,
              row.opt_rl_spm.breakdown.profit - 1e-6);
    // OPT(RL-SPM) accepts everything; the profit-seekers may decline.
    EXPECT_EQ(row.opt_rl_spm.breakdown.accepted, row.num_requests);
    EXPECT_LE(row.opt_spm.breakdown.accepted, row.num_requests);
  }
}

TEST(Fig4a, MaaBeatsMinCostAtScale) {
  // The LP-sharing advantage of MAA materializes once requests overlap
  // (the paper's K >= 100 regime); below that the ceiling noise of a single
  // rounding can win either way.
  Fig4aConfig config;
  config.sweep.request_counts = {150};
  config.sweep.seed = 5;
  config.sweep.repetitions = 2;
  config.rounding_trials = 4;
  const auto rows = run_fig4a(config);
  ASSERT_EQ(rows.size(), 1u);
  for (const Fig4aRow& row : rows) {
    EXPECT_GE(row.maa_cost, row.lp_lower_bound - 1e-6);  // bound is a floor
    EXPECT_GE(row.mincost_cost, row.lp_lower_bound - 1e-6);
    EXPECT_GE(row.mincost_over_maa, 1.0 - 1e-9) << "MAA lost to MinCost";
  }
}

TEST(Fig4b, RoundingRatioBracketed) {
  Fig4bConfig config;
  config.request_counts = {15};
  config.trials = 200;
  config.network = Network::SubB4;
  config.seed = 7;
  config.mip.time_limit_seconds = 10;
  const auto rows = run_fig4b(config);
  ASSERT_EQ(rows.size(), 1u);
  const Fig4bRow& row = rows[0];
  EXPECT_EQ(row.trials, 200);
  EXPECT_GT(row.lp_bound_cost, 0);
  ASSERT_GT(row.ilp_cost, 0);  // warm start guarantees an incumbent
  // Rounding can never beat the LP bound, and the LP-referenced ratio
  // dominates the ILP-referenced one (ILP cost >= LP cost).
  EXPECT_GE(row.ratio_mean_vs_lp, 1.0 - 1e-6);
  EXPECT_GE(row.ratio_mean_vs_lp, row.ratio_mean_vs_ilp - 1e-9);
  EXPECT_GE(row.ratio_max_vs_ilp, row.ratio_mean_vs_ilp - 1e-9);
  EXPECT_GE(row.ratio_p95_vs_ilp, row.ratio_mean_vs_ilp - 1e-9);
  if (row.ilp_exact) {
    // Rounding cannot beat the proven optimum either.
    EXPECT_GE(row.ratio_mean_vs_ilp, 1.0 - 1e-6);
  }
}

TEST(Fig4b, LpOnlyReference) {
  Fig4bConfig config;
  config.request_counts = {20};
  config.trials = 50;
  config.network = Network::B4;
  config.ilp_reference = false;
  const auto rows = run_fig4b(config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].ilp_cost, 0);
  EXPECT_GE(rows[0].ratio_mean_vs_lp, 1.0 - 1e-6);
  // With no ILP the "vs ILP" columns fall back to the LP reference.
  EXPECT_NEAR(rows[0].ratio_mean_vs_ilp, rows[0].ratio_mean_vs_lp, 1e-9);
}

TEST(Fig4cd, TaaBeatsAmoebaUnderPressure) {
  Fig4cdConfig config;
  config.sweep.request_counts = {120};
  config.sweep.seed = 11;
  config.sweep.repetitions = 3;
  config.uniform_capacity = 2;  // scarce: admission quality matters
  const auto rows = run_fig4cd(config);
  ASSERT_EQ(rows.size(), 1u);
  // TAA's global LP view beats one-by-one single-path admission.
  EXPECT_GE(rows[0].taa_revenue, rows[0].amoeba_revenue);
  EXPECT_GE(rows[0].taa_accepted, rows[0].amoeba_accepted * 0.99);
  EXPECT_LE(rows[0].taa_revenue, rows[0].lp_revenue_bound + 1e-6);
}

TEST(Fig5, MetisBeatsEcoFlowProfit) {
  Fig5Config config;
  config.sweep.request_counts = {150};
  config.sweep.seed = 13;
  config.sweep.repetitions = 2;
  config.theta = 16;
  const auto rows = run_fig5(config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GE(rows[0].metis.breakdown.profit,
            rows[0].ecoflow.breakdown.profit * 0.95);
  EXPECT_GE(rows[0].metis.breakdown.accepted,
            rows[0].ecoflow.breakdown.accepted);
}

TEST(Drivers, RowsMatchRequestedSweep) {
  Fig4aConfig config;
  config.sweep.request_counts = {10, 20, 30};
  config.sweep.repetitions = 1;
  const auto rows = run_fig4a(config);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].num_requests, 10);
  EXPECT_EQ(rows[2].num_requests, 30);
}

}  // namespace
}  // namespace metis::sim
