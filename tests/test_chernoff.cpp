// Tests for the Chernoff-Hoeffding machinery (B, D, mu selection).
#include <gtest/gtest.h>

#include <cmath>

#include "core/chernoff.h"

namespace metis::core {
namespace {

TEST(ChernoffB, KnownValues) {
  // B(m, 0) = 1 for any m.
  EXPECT_NEAR(chernoff_b(5, 0), 1.0, 1e-12);
  // B(1, 1) = e / 4.
  EXPECT_NEAR(chernoff_b(1, 1), std::exp(1) / 4.0, 1e-12);
  // Exponent scales linearly in m: B(2, 1) = (e/4)^2.
  EXPECT_NEAR(chernoff_b(2, 1), std::pow(std::exp(1) / 4.0, 2), 1e-12);
}

TEST(ChernoffB, DecreasesInDelta) {
  double prev = chernoff_b(3, 0.01);
  for (double delta = 0.2; delta < 5; delta += 0.2) {
    const double cur = chernoff_b(3, delta);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ChernoffB, DecreasesInM) {
  for (double delta : {0.5, 1.0, 2.0}) {
    EXPECT_LT(chernoff_b(4, delta), chernoff_b(2, delta));
  }
}

TEST(ChernoffB, RejectsBadArguments) {
  EXPECT_THROW(log_chernoff_b(-1, 0.5), std::invalid_argument);
  EXPECT_THROW(log_chernoff_b(1, -1.0), std::invalid_argument);
}

TEST(ChernoffD, InvertsB) {
  for (double m : {0.5, 1.0, 4.0, 20.0}) {
    for (double x : {0.5, 0.1, 0.01, 1e-6}) {
      const double delta = chernoff_d(m, x);
      EXPECT_NEAR(chernoff_b(m, delta), x, 1e-6 * (1 + x))
          << "m=" << m << " x=" << x;
    }
  }
}

TEST(ChernoffD, MonotoneInX) {
  // Smaller tail probability requires larger delta.
  EXPECT_GT(chernoff_d(2, 0.01), chernoff_d(2, 0.1));
  EXPECT_GT(chernoff_d(2, 0.1), chernoff_d(2, 0.5));
}

TEST(ChernoffD, RejectsBadArguments) {
  EXPECT_THROW(chernoff_d(0, 0.5), std::invalid_argument);
  EXPECT_THROW(chernoff_d(1, 0), std::invalid_argument);
  EXPECT_THROW(chernoff_d(1, 1), std::invalid_argument);
}

TEST(ChooseMu, SatisfiesInequalityStrictly) {
  // For each configuration, the returned mu must satisfy (6) and mu + eps
  // must not (maximality), unless mu == 0 (no feasible mu).
  const int T = 12;
  for (int N : {14, 38}) {
    for (double c : {2.0, 5.0, 20.0, 100.0}) {
      const double mu = choose_mu(c, T, N);
      ASSERT_GT(mu, 0.0) << "c=" << c << " N=" << N;
      ASSERT_LT(mu, 1.0);
      const double target = 1.0 / (T * (N + 1));
      const double lhs = std::exp((1 - mu) * c) * std::pow(mu, c);
      EXPECT_LT(lhs, target) << "c=" << c << " N=" << N;
      // Maximality within bisection resolution.
      const double mu2 = std::min(1.0 - 1e-12, mu + 1e-3);
      const double lhs2 = std::exp((1 - mu2) * c) * std::pow(mu2, c);
      EXPECT_GE(lhs2, target * 0.999) << "mu not maximal";
    }
  }
}

TEST(ChooseMu, GrowsWithCapacity) {
  const double mu_small = choose_mu(2, 12, 38);
  const double mu_large = choose_mu(50, 12, 38);
  EXPECT_GT(mu_large, mu_small);
  EXPECT_GT(mu_large, 0.5);  // ample capacity: nearly no scaling needed
}

TEST(ChooseMu, ZeroWhenNoCapacity) {
  EXPECT_DOUBLE_EQ(choose_mu(0, 12, 38), 0.0);
  EXPECT_DOUBLE_EQ(choose_mu(-1, 12, 38), 0.0);
}

TEST(ChooseMu, RejectsBadDimensions) {
  EXPECT_THROW(choose_mu(2, 0, 38), std::invalid_argument);
  EXPECT_THROW(choose_mu(2, 12, 0), std::invalid_argument);
}

TEST(ChooseMu, TinyCapacityStillReturnsSomething) {
  // c so small that mu is microscopic but the math must not blow up.
  const double mu = choose_mu(0.05, 12, 38);
  EXPECT_GE(mu, 0.0);
  EXPECT_LT(mu, 1.0);
}

}  // namespace
}  // namespace metis::core
