// Warm-start equivalence suite for the revised simplex: a carried Basis
// snapshot must never change which optimum is found (objectives agree to
// tolerance), must shrink the work on re-solves (fewer iterations than a
// cold solve), and must degrade safely — an incompatible, stale or garbage
// snapshot silently falls back to a cold start.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/accounting.h"
#include "core/lp_builder.h"
#include "lp/basis_lift.h"
#include "lp/simplex.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace metis::lp {
namespace {

constexpr double kTol = 1e-6;

core::SpmInstance small_instance(std::uint64_t seed, int k) {
  sim::Scenario s;
  s.network = sim::Network::SubB4;
  s.num_requests = k;
  s.seed = seed;
  return sim::make_instance(s);
}

double rel_diff(double a, double b) {
  return std::abs(a - b) / (1 + std::max(std::abs(a), std::abs(b)));
}

TEST(WarmStart, ResolveOfSameProblemIsNearFree) {
  const core::SpmInstance instance = small_instance(1, 25);
  const core::SpmModel model = core::build_rl_spm(instance);
  SimplexSolver solver;
  Basis basis;
  const LpSolution cold = solver.solve(model.problem, &basis);
  ASSERT_TRUE(cold.ok());
  ASSERT_FALSE(basis.empty());
  EXPECT_EQ(cold.stats.cold_starts, 1);

  const LpSolution warm = solver.solve(model.problem, &basis);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.stats.warm_starts, 1);
  EXPECT_EQ(warm.stats.cold_starts, 0);
  // The snapshot is already optimal: pricing confirms it without pivoting.
  EXPECT_LE(warm.stats.iterations, 1);
  EXPECT_LT(warm.stats.iterations, cold.stats.iterations);
  EXPECT_LE(rel_diff(warm.objective, cold.objective), kTol);
}

TEST(WarmStart, RhsPerturbationResolvesCheaper) {
  // The Metis trim step changes only capacity right-hand sides; the basis
  // from the previous optimum should put the re-solve within a few dual
  // repair pivots of the new one.
  const core::SpmInstance instance = small_instance(2, 30);
  core::ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 3);
  const core::SpmModel before = core::build_bl_spm(instance, caps);
  SimplexSolver solver;
  Basis basis;
  const LpSolution first = solver.solve(before.problem, &basis);
  ASSERT_TRUE(first.ok());

  caps.units[0] = 2;  // trim one edge
  const core::SpmModel after = core::build_bl_spm(instance, caps);
  const LpSolution warm = solver.solve(after.problem, &basis);
  const LpSolution cold = solver.solve(after.problem);
  ASSERT_TRUE(cold.ok());
  EXPECT_LE(rel_diff(warm.ok() ? warm.objective : cold.objective,
                     cold.objective),
            kTol);
  if (warm.stats.warm_starts == 1) {
    EXPECT_LE(warm.stats.iterations, cold.stats.iterations);
  }
}

TEST(WarmStart, MetisAlternationSequenceSavesIterations) {
  // Emulates the alternation loop's LP sequence: one BL-SPM shape, a
  // capacity vector trimmed by one unit per step.  The warm chain must
  // match every cold objective within tolerance and spend strictly fewer
  // simplex iterations in total (the bench pins the ratio; the test pins
  // correctness and direction).
  const core::SpmInstance instance = small_instance(3, 35);
  core::ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 4);
  SimplexSolver solver;
  Basis basis;
  long warm_iterations = 0;
  long cold_iterations = 0;
  int warm_accepted = 0;
  for (int step = 0; step < 6; ++step) {
    const core::SpmModel model = core::build_bl_spm(instance, caps);
    const LpSolution warm = solver.solve(model.problem, &basis);
    const LpSolution cold = solver.solve(model.problem);
    ASSERT_TRUE(warm.ok()) << "step " << step;
    ASSERT_TRUE(cold.ok()) << "step " << step;
    EXPECT_LE(rel_diff(warm.objective, cold.objective), kTol)
        << "step " << step;
    warm_iterations += warm.stats.iterations;
    cold_iterations += cold.stats.iterations;
    warm_accepted += warm.stats.warm_starts;
    caps.units[step % instance.num_edges()] =
        std::max(0, caps.units[step % instance.num_edges()] - 1);
  }
  EXPECT_GE(warm_accepted, 4) << "basis should survive rhs-only changes";
  EXPECT_LT(warm_iterations, cold_iterations);
}

TEST(WarmStart, IncompatibleSnapshotFallsBackToCold) {
  const core::SpmInstance a = small_instance(4, 20);
  const core::SpmInstance b = small_instance(5, 12);
  SimplexSolver solver;
  Basis basis;
  ASSERT_TRUE(solver.solve(core::build_rl_spm(a).problem, &basis).ok());
  const core::SpmModel other = core::build_rl_spm(b);
  const LpSolution sol = solver.solve(other.problem, &basis);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol.stats.cold_starts, 1);
  EXPECT_EQ(sol.stats.warm_starts, 0);
  // The slot now holds a snapshot of the problem actually solved.
  EXPECT_TRUE(
      basis.compatible(other.problem.num_variables(), other.problem.num_rows()));
}

TEST(WarmStart, GarbageSnapshotIsRejectedNotTrusted) {
  // Right shape, nonsense content (no Basic entries at all): the solver
  // must reject it, cold-start, and still reach the optimum.
  const core::SpmInstance instance = small_instance(6, 20);
  const core::SpmModel model = core::build_rl_spm(instance);
  const LpSolution reference = SimplexSolver().solve(model.problem);
  ASSERT_TRUE(reference.ok());

  Basis garbage;
  garbage.status.assign(
      model.problem.num_variables() + model.problem.num_rows(),
      BasisStatus::AtLower);
  const LpSolution sol = SimplexSolver().solve(model.problem, &garbage);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol.stats.cold_starts, 1);
  EXPECT_LE(rel_diff(sol.objective, reference.objective), kTol);
}

TEST(WarmStart, WorksThroughTheScaledPath) {
  // Basis statuses are scale-invariant, so snapshots carry across solves
  // with geometric-mean scaling enabled.
  const core::SpmInstance instance = small_instance(7, 20);
  const core::SpmModel model = core::build_rl_spm(instance);
  SimplexOptions options;
  options.scale = true;
  SimplexSolver solver(options);
  Basis basis;
  const LpSolution cold = solver.solve(model.problem, &basis);
  ASSERT_TRUE(cold.ok());
  ASSERT_FALSE(basis.empty());
  const LpSolution warm = solver.solve(model.problem, &basis);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.stats.warm_starts, 1);
  EXPECT_LE(rel_diff(warm.objective, cold.objective), kTol);
}

TEST(WarmStart, ObjectivePerturbationMatchesColdOnRandomSequence) {
  // Random-LP chain: re-solve with a slightly rotated objective from the
  // previous basis; every warm objective must match the cold one.
  Rng rng(99);
  LinearProblem p(Sense::Minimize);
  const int n = 6;
  for (int j = 0; j < n; ++j) p.add_variable(0, 4, rng.uniform(-2, 2));
  for (int r = 0; r < 5; ++r) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.6)) entries.push_back({j, rng.uniform(-2, 2)});
    }
    if (entries.empty()) entries.push_back({r % n, 1.0});
    p.add_row(RowType::LessEqual, rng.uniform(1, 6), entries);
  }
  SimplexSolver solver;
  Basis basis;
  for (int step = 0; step < 8; ++step) {
    const LpSolution warm = solver.solve(p, &basis);
    const LpSolution cold = solver.solve(p);
    ASSERT_TRUE(warm.ok()) << "step " << step;
    ASSERT_TRUE(cold.ok()) << "step " << step;
    EXPECT_LE(rel_diff(warm.objective, cold.objective), kTol)
        << "step " << step;
    const int j = rng.uniform_int(0, n - 1);
    p.set_objective_coef(j, p.objective_coef(j) + rng.uniform(-0.5, 0.5));
  }
}

// ---------------------------------------------------------- degeneracy ----
// Regression cover for the Harris ratio test (label: numeric): tied ratio
// candidates and singular warm-start bases are exactly where a ratio-test
// rewrite would break first.

TEST(Degeneracy, TiedRatioCandidatesAgreeAcrossRatioTests) {
  // Twelve identical unit-value requests over duplicated shared capacity
  // rows: every ratio-test step sees a block of exactly tied candidates,
  // and the duplicate rows force degenerate pivots.  Harris and textbook
  // ratio tests may walk different vertex sequences but must land on the
  // same objective.  Presolve off so the duplicates actually reach the
  // simplex.
  LinearProblem p(Sense::Maximize);
  std::vector<int> x;
  for (int i = 0; i < 12; ++i) x.push_back(p.add_variable(0, 1, 1.0));
  for (int dup = 0; dup < 4; ++dup) {
    std::vector<RowEntry> row;
    for (int v : x) row.push_back({v, 1.0});
    p.add_row(RowType::LessEqual, 3.0, row);
  }
  SimplexOptions harris_opt;
  harris_opt.presolve = false;
  SimplexOptions textbook_opt = harris_opt;
  textbook_opt.harris = false;
  const LpSolution harris = SimplexSolver(harris_opt).solve(p);
  const LpSolution textbook = SimplexSolver(textbook_opt).solve(p);
  ASSERT_TRUE(harris.ok());
  ASSERT_TRUE(textbook.ok());
  EXPECT_NEAR(harris.objective, 3.0, kTol);
  EXPECT_LE(rel_diff(harris.objective, textbook.objective), kTol);
}

TEST(Degeneracy, DuplicateRateRequestsMatchAcrossRatioTests) {
  // The SPM flavor of the same ambiguity: a real instance whose requests
  // share one rate, so BL-SPM capacity rows tie at every pivot.
  const core::SpmInstance instance = small_instance(11, 30);
  core::ChargingPlan caps;
  caps.units.assign(instance.num_edges(), 2);
  const core::SpmModel model = core::build_bl_spm(instance, caps);
  SimplexOptions textbook_opt;
  textbook_opt.harris = false;
  const LpSolution harris = SimplexSolver().solve(model.problem);
  const LpSolution textbook = SimplexSolver(textbook_opt).solve(model.problem);
  ASSERT_TRUE(harris.ok());
  ASSERT_TRUE(textbook.ok());
  EXPECT_LE(rel_diff(harris.objective, textbook.objective), kTol);
}

TEST(Degeneracy, SingularAfterMutationBasisFallsBackToCold) {
  // A basis that was optimal for one problem can be structurally singular
  // for a same-shaped mutated problem (here: the second row becomes a
  // multiple of the first, so the two basic structurals are dependent).
  // The factorization must detect it, reject the snapshot and cold-start —
  // never crash or silently return the stale optimum.
  LinearProblem before(Sense::Minimize);
  const int x = before.add_variable(0, 5, -1);
  const int y = before.add_variable(0, 5, -1);
  before.add_row(RowType::LessEqual, 2, {{x, 1}, {y, 1}});
  before.add_row(RowType::LessEqual, 0, {{x, 1}, {y, -1}});
  SimplexSolver solver;
  Basis basis;
  const LpSolution first = solver.solve(before, &basis);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(basis.empty());

  LinearProblem mutated(Sense::Minimize);
  const int mx = mutated.add_variable(0, 5, -1);
  const int my = mutated.add_variable(0, 5, -1);
  mutated.add_row(RowType::LessEqual, 2, {{mx, 1}, {my, 1}});
  mutated.add_row(RowType::LessEqual, 4, {{mx, 2}, {my, 2}});
  const LpSolution cold = solver.solve(mutated);
  ASSERT_TRUE(cold.ok());
  Basis stale = basis;
  const LpSolution warm = solver.solve(mutated, &stale);
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(rel_diff(warm.objective, cold.objective), kTol);
}

// ---------------------------------------------------------- basis lift ----
// Cross-shape reuse (lp/basis_lift.h): mapping the persistent part of an
// old basis onto a differently-shaped problem.  Correctness never depends
// on the lift — a rejected or empty lift is just a cold start — so these
// tests pin the mapping/repair mechanics and the end-to-end payoff.

TEST(BasisLift, EmptyOrIncompatibleOldBasisYieldsEmpty) {
  const std::vector<int> cols = {0, -1};
  const std::vector<int> rows = {0};
  EXPECT_TRUE(lift_basis(Basis{}, 2, 1, cols, rows).empty());
  Basis wrong_shape;
  wrong_shape.status.assign(2, BasisStatus::Basic);  // claims 2 != 2+1 slots
  EXPECT_TRUE(lift_basis(wrong_shape, 2, 1, cols, rows).empty());
}

TEST(BasisLift, MapsStatusesAndDefaultsNewEntities) {
  // Old: 3 columns + 2 rows.  New: 4 columns (old0, old2, two new) and
  // 3 rows (old1, two new).
  Basis old_basis;
  old_basis.status = {BasisStatus::Basic,  BasisStatus::AtLower,
                      BasisStatus::AtUpper, BasisStatus::Basic,
                      BasisStatus::AtLower};
  const std::vector<int> col_of_new = {0, 2, -1, -1};
  const std::vector<int> row_of_new = {1, -1, -1};
  const Basis lifted = lift_basis(old_basis, 3, 2, col_of_new, row_of_new);
  ASSERT_TRUE(lifted.compatible(4, 3));
  EXPECT_EQ(lifted.status[0], BasisStatus::Basic);    // mapped old col 0
  EXPECT_EQ(lifted.status[1], BasisStatus::AtUpper);  // mapped old col 2
  EXPECT_EQ(lifted.status[2], BasisStatus::AtLower);  // new column default
  EXPECT_EQ(lifted.status[3], BasisStatus::AtLower);
  EXPECT_EQ(lifted.status[4], BasisStatus::AtLower);  // mapped old row 1 slack
  EXPECT_EQ(lifted.status[5], BasisStatus::Basic);    // new row slack default
  EXPECT_EQ(lifted.status[6], BasisStatus::Basic);
  // 1 basic column + 2 basic slacks == 3 rows: already count-consistent.
}

TEST(BasisLift, CountRepairDemotesNewRowSlacksFirst) {
  // Everything Basic in the old basis produces a surplus after the lift;
  // the repair must park row slacks (new rows first), never structurals.
  Basis old_basis;
  old_basis.status.assign(4, BasisStatus::Basic);  // 2 cols + 2 rows
  const std::vector<int> col_of_new = {0, 1};
  const std::vector<int> row_of_new = {0, 1, -1};
  const Basis lifted = lift_basis(old_basis, 2, 2, col_of_new, row_of_new);
  ASSERT_TRUE(lifted.compatible(2, 3));
  EXPECT_EQ(lifted.status[0], BasisStatus::Basic);  // structurals untouched
  EXPECT_EQ(lifted.status[1], BasisStatus::Basic);
  EXPECT_EQ(lifted.status[2 + 1], BasisStatus::Basic);  // mapped row 1 kept
  EXPECT_EQ(lifted.status[2 + 2], BasisStatus::AtLower);  // new row demoted 1st
  EXPECT_EQ(lifted.status[2 + 0], BasisStatus::AtLower);  // then mapped row 0
}

TEST(BasisLift, BasicNewColumnsHonoredAndBoundsChecked) {
  Basis old_basis;
  old_basis.status = {BasisStatus::AtLower, BasisStatus::Basic};  // 1 col, 1 row
  const std::vector<int> col_of_new = {-1, 0};
  const std::vector<int> row_of_new = {0};
  const std::vector<int> mark_basic = {0};
  const Basis lifted =
      lift_basis(old_basis, 1, 1, col_of_new, row_of_new, mark_basic);
  ASSERT_TRUE(lifted.compatible(2, 1));
  EXPECT_EQ(lifted.status[0], BasisStatus::Basic);  // forced by the caller
  // Count repair parks the mapped-Basic row slack to end at exactly 1 basic.
  EXPECT_EQ(lifted.status[2], BasisStatus::AtLower);

  const std::vector<int> bad_col = {5, -1};
  EXPECT_THROW(lift_basis(old_basis, 1, 1, bad_col, row_of_new),
               std::invalid_argument);
  const std::vector<int> bad_mark = {7};
  EXPECT_THROW(
      lift_basis(old_basis, 1, 1, col_of_new, row_of_new, bad_mark),
      std::invalid_argument);
}

TEST(BasisLift, GrownRlSpmLiftMatchesColdObjective) {
  // The online pipeline's actual shape change: the same request book plus
  // ten new arrivals (generate() draws sequentially, so the smaller book
  // is a prefix of the larger).  Lifting the old optimum must never change
  // the optimum found; acceptance of the lift is the solver's call.
  const core::SpmInstance small = small_instance(8, 20);
  const core::SpmInstance grown = small_instance(8, 30);
  SimplexSolver solver;

  const core::SpmModel small_model = core::build_rl_spm(small);
  Basis basis;
  ASSERT_TRUE(solver.solve(small_model.problem, &basis).ok());
  core::ModelSnapshot snapshot;
  core::snapshot_model(small_model, basis, snapshot);
  ASSERT_FALSE(snapshot.empty());

  const core::SpmModel grown_model = core::build_rl_spm(grown);
  Basis lifted =
      core::lift_into_model(snapshot, grown_model, /*equality_assignments=*/true);
  ASSERT_FALSE(lifted.empty());
  ASSERT_TRUE(lifted.compatible(grown_model.problem.num_variables(),
                                grown_model.problem.num_rows()));
  const LpSolution warm = solver.solve(grown_model.problem, &lifted);
  const LpSolution cold = solver.solve(grown_model.problem);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  EXPECT_LE(rel_diff(warm.objective, cold.objective), kTol);
}

TEST(BasisLift, GrownBlSpmLiftMatchesColdObjective) {
  const core::SpmInstance small = small_instance(9, 20);
  const core::SpmInstance grown = small_instance(9, 30);
  core::ChargingPlan caps;
  caps.units.assign(small.num_edges(), 4);
  SimplexSolver solver;

  const core::SpmModel small_model = core::build_bl_spm(small, caps);
  Basis basis;
  ASSERT_TRUE(solver.solve(small_model.problem, &basis).ok());
  core::ModelSnapshot snapshot;
  core::snapshot_model(small_model, basis, snapshot);

  const core::SpmModel grown_model = core::build_bl_spm(grown, caps);
  Basis lifted = core::lift_into_model(snapshot, grown_model,
                                       /*equality_assignments=*/false);
  ASSERT_FALSE(lifted.empty());
  const LpSolution warm = solver.solve(grown_model.problem, &lifted);
  const LpSolution cold = solver.solve(grown_model.problem);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  EXPECT_LE(rel_diff(warm.objective, cold.objective), kTol);
}

TEST(WarmStart, DegenerateTiedRatiosStayPrimalFeasible) {
  // Regression for the textbook ratio test's tie band.  The old one-pass
  // rule banded candidates against the *running* minimum with the
  // feasibility tolerance, so a row scanned early whose ratio is within
  // tol of (but above) the true minimum could keep the leaving position
  // while a later, strictly smaller ratio went unrecorded — the step then
  // overdrives the true blocker through its bound by up to tol * |coef|.
  //
  // Construction: maximize x with two near-tied blocking rows.  Row 0
  // (smaller slack column, scanned first) has ratio 1 + 0.9e-7; row 1 has
  // the true minimum ratio 1.0 with coefficient 1000.  Under the old rule
  // the step is 1 + 0.9e-7 and row 1's activity ends at 1000.00009 —
  // a 9e-5 primal violation that survives refactorization.  The two-pass
  // rule anchors the tie band (kTieTol-sized) at the final minimum, steps
  // exactly 1.0 and keeps the point feasible.  Warm-started from the slack
  // basis so presolve cannot reduce the crafted rows away; harris = false
  // exercises the textbook path.
  LinearProblem p(Sense::Maximize);
  const int x = p.add_variable(0.0, 10.0, 1.0, "x");
  p.add_row(RowType::LessEqual, 1.0 + 0.9e-7, {{x, 1.0}});
  p.add_row(RowType::LessEqual, 1000.0, {{x, 1000.0}});

  SimplexOptions options;
  options.harris = false;
  Basis slack_basis;
  slack_basis.status = {BasisStatus::AtLower,  // x at 0
                        BasisStatus::Basic, BasisStatus::Basic};
  const LpSolution sol =
      SimplexSolver(options).solve(p, &slack_basis);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol.stats.warm_starts, 1);
  EXPECT_NEAR(sol.objective, 1.0, kTol);
  // The binding row must not be overdriven: activity <= rhs + kFeasTol.
  EXPECT_LE(1000.0 * sol.x[x], 1000.0 + num::kFeasTol);
}

}  // namespace
}  // namespace metis::lp
